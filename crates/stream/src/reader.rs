//! Top-level document reader: turns a byte stream into prolog events,
//! raw record slices, and inter-record content.
//!
//! [`TopLevelReader`] pulls tokens from [`PullParser`] while tracking
//! element depth. Children of the root element are *records*: their raw
//! bytes are captured verbatim (via the pull parser's hold mechanism)
//! and handed to the engine as one [`TopEvent::Record`] each, without
//! ever materializing their nodes here. Everything else — XML
//! declaration, DOCTYPE, comments, processing instructions, mixed text
//! between records — surfaces as its own event so the driver can
//! re-emit it exactly as the DOM serializer would.
//!
//! Memory is bounded by the largest single record plus one read chunk.

use crate::StreamError;
use std::io::BufRead;
use wmx_xml::pull::{PullParser, Pulled};
use wmx_xml::token::{Token, TokenAttribute};
use wmx_xml::{XmlError, XmlErrorKind};

/// Non-record content at the document's top levels.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Misc {
    /// Character data (only valid inside the root element).
    Text(String),
    /// A CDATA section (only valid inside the root element).
    CData(String),
    /// A comment.
    Comment(String),
    /// A processing instruction.
    Pi {
        /// PI target.
        target: String,
        /// PI data (may be empty).
        data: String,
    },
}

/// One top-level event of the document stream, in document order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TopEvent {
    /// `<?xml ...?>` content.
    XmlDecl(String),
    /// `<!DOCTYPE ...>` content.
    Doctype(String),
    /// A comment/PI before the root element.
    PrologMisc(Misc),
    /// The root element opens (attribute values already unescaped).
    RootStart {
        /// Root element name.
        name: String,
        /// Root attributes in document order.
        attributes: Vec<TokenAttribute>,
    },
    /// One complete root-child element, as raw input bytes.
    Record(String),
    /// Depth-1 content between records (text/CDATA/comment/PI).
    /// Whitespace-only text and empty CDATA are already dropped, per the
    /// default parse/serialize conventions.
    Misc(Misc),
    /// The root element closes.
    RootEnd,
    /// A comment/PI after the root element.
    TrailingMisc(Misc),
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    Prolog,
    Content,
    Epilog,
}

/// Streaming top-level splitter over any [`BufRead`] source.
pub struct TopLevelReader<R> {
    src: R,
    pull: PullParser,
    state: State,
    /// Nesting depth inside the current record (0 = at root child level).
    record_depth: usize,
    /// Stream offset where the current record started.
    record_start: u64,
    /// Trailing bytes of the previous read that were not yet a complete
    /// UTF-8 character.
    pending_utf8: Vec<u8>,
    eof: bool,
    /// Emit `RootEnd` on the next pull (self-closing root).
    pending_root_end: bool,
}

impl<R: BufRead> TopLevelReader<R> {
    /// Creates a reader over `src`.
    pub fn new(src: R) -> Self {
        TopLevelReader {
            src,
            pull: PullParser::new(),
            state: State::Prolog,
            record_depth: 0,
            record_start: 0,
            pending_utf8: Vec::new(),
            eof: false,
            pending_root_end: false,
        }
    }

    /// Reads one chunk from the source into the pull parser, handling
    /// UTF-8 sequences split across chunk boundaries. The common case
    /// (no pending partial character) pushes straight from the source
    /// buffer without copying.
    fn fill(&mut self) -> Result<(), StreamError> {
        if self.eof {
            return Ok(());
        }
        // Borrow fields separately so the source's buffer can be pushed
        // into the pull parser without an intermediate copy.
        let TopLevelReader {
            src,
            pull,
            pending_utf8,
            eof,
            ..
        } = self;
        let chunk = src.fill_buf()?;
        if chunk.is_empty() {
            *eof = true;
            if !pending_utf8.is_empty() {
                return Err(StreamError::Unsupported(
                    "input ends inside a UTF-8 character".to_string(),
                ));
            }
            pull.finish();
            return Ok(());
        }
        let consumed = chunk.len();
        let push_prefix = |pull: &mut PullParser,
                           pending_utf8: &mut Vec<u8>,
                           bytes: &[u8]|
         -> Result<(), StreamError> {
            match std::str::from_utf8(bytes) {
                Ok(text) => {
                    pull.push_str(text);
                    Ok(())
                }
                Err(e) => {
                    let valid = e.valid_up_to();
                    if e.error_len().is_some() || bytes.len() - valid > 3 {
                        return Err(StreamError::Unsupported(
                            "input is not valid UTF-8".to_string(),
                        ));
                    }
                    // A character split across chunks: keep its prefix.
                    pull.push_str(std::str::from_utf8(&bytes[..valid]).expect("checked prefix"));
                    *pending_utf8 = bytes[valid..].to_vec();
                    Ok(())
                }
            }
        };
        if pending_utf8.is_empty() {
            push_prefix(pull, pending_utf8, chunk)?;
        } else {
            let mut joined = std::mem::take(pending_utf8);
            joined.extend_from_slice(chunk);
            push_prefix(pull, pending_utf8, &joined)?;
        }
        self.src.consume(consumed);
        Ok(())
    }

    fn err_at(&self, kind: XmlErrorKind) -> StreamError {
        StreamError::Xml(XmlError::dom(kind))
    }

    /// Pulls the next top-level event, or `None` at end of document.
    #[allow(clippy::too_many_lines)]
    pub fn next_event(&mut self) -> Result<Option<TopEvent>, StreamError> {
        if self.pending_root_end {
            self.pending_root_end = false;
            self.state = State::Epilog;
            return Ok(Some(TopEvent::RootEnd));
        }
        loop {
            // While scanning between records, hold from the current
            // offset so a record's raw bytes stay addressable; inside a
            // record the hold set at its start must persist.
            if self.record_depth == 0 {
                self.pull.hold_from(self.pull.stream_offset());
            }
            // Offset of the token about to be pulled (NeedMore leaves it
            // unchanged, so re-reading each iteration is correct).
            let tok_start = self.pull.stream_offset();
            let token = match self.pull.next()? {
                Pulled::Token(t) => t.token,
                Pulled::NeedMore => {
                    self.fill()?;
                    continue;
                }
                Pulled::End => {
                    return match self.state {
                        State::Prolog => Err(self.err_at(XmlErrorKind::NoRootElement)),
                        State::Content => Err(self.err_at(XmlErrorKind::UnexpectedEof {
                            while_parsing: "element content (unclosed element)",
                        })),
                        State::Epilog => Ok(None),
                    };
                }
            };
            if self.record_depth > 0 {
                // Inside a record: only the depth bookkeeping matters;
                // the raw bytes are captured wholesale at record end.
                match token {
                    Token::StartTag {
                        self_closing: false,
                        ..
                    } => {
                        self.record_depth += 1;
                    }
                    Token::EndTag { .. } => {
                        self.record_depth -= 1;
                        if self.record_depth == 0 {
                            let end = self.pull.stream_offset();
                            let raw = self
                                .pull
                                .raw_range(self.record_start, end)
                                .expect("record bytes are held")
                                .to_string();
                            self.pull.release_hold();
                            return Ok(Some(TopEvent::Record(raw)));
                        }
                    }
                    _ => {}
                }
                continue;
            }
            match self.state {
                State::Prolog => match token {
                    Token::XmlDecl { content } => return Ok(Some(TopEvent::XmlDecl(content))),
                    Token::Doctype { content } => return Ok(Some(TopEvent::Doctype(content))),
                    Token::Comment { content } => {
                        return Ok(Some(TopEvent::PrologMisc(Misc::Comment(content))))
                    }
                    Token::ProcessingInstruction { target, data } => {
                        return Ok(Some(TopEvent::PrologMisc(Misc::Pi { target, data })))
                    }
                    Token::Text { content } => {
                        if wmx_xml::scan::is_all_whitespace(&content) {
                            continue;
                        }
                        return Err(self.err_at(XmlErrorKind::NoRootElement));
                    }
                    Token::CData { .. } => return Err(self.err_at(XmlErrorKind::NoRootElement)),
                    Token::StartTag {
                        name,
                        attributes,
                        self_closing,
                    } => {
                        self.state = State::Content;
                        self.pending_root_end = self_closing;
                        // Resolve symbols at this boundary: the event
                        // outlives the pull parser's name table.
                        let names = self.pull.interner();
                        return Ok(Some(TopEvent::RootStart {
                            name: names.resolve(name).to_string(),
                            attributes: attributes.iter().map(|a| a.resolve(names)).collect(),
                        }));
                    }
                    Token::EndTag { name } => {
                        let close = self.pull.interner().resolve(name).to_string();
                        return Err(self.err_at(XmlErrorKind::UnmatchedClose { close }));
                    }
                },
                State::Content => match token {
                    Token::StartTag { self_closing, .. } => {
                        self.record_start = tok_start;
                        if self_closing {
                            let end = self.pull.stream_offset();
                            let raw = self
                                .pull
                                .raw_range(self.record_start, end)
                                .expect("record bytes are held")
                                .to_string();
                            self.pull.release_hold();
                            return Ok(Some(TopEvent::Record(raw)));
                        }
                        self.record_depth = 1;
                        continue;
                    }
                    Token::EndTag { .. } => {
                        self.state = State::Epilog;
                        return Ok(Some(TopEvent::RootEnd));
                    }
                    Token::Text { content } => {
                        if wmx_xml::scan::is_all_whitespace(&content) {
                            continue; // default ParseOptions drop these
                        }
                        return Ok(Some(TopEvent::Misc(Misc::Text(content.into_string()))));
                    }
                    Token::CData { content } => {
                        if content.is_empty() {
                            continue; // invisible to the compact serializer
                        }
                        return Ok(Some(TopEvent::Misc(Misc::CData(content.into_string()))));
                    }
                    Token::Comment { content } => {
                        return Ok(Some(TopEvent::Misc(Misc::Comment(content))))
                    }
                    Token::ProcessingInstruction { target, data } => {
                        return Ok(Some(TopEvent::Misc(Misc::Pi { target, data })))
                    }
                    Token::XmlDecl { .. } | Token::Doctype { .. } => {
                        return Err(StreamError::Unsupported(
                            "XML declaration/DOCTYPE inside the root element".to_string(),
                        ))
                    }
                },
                State::Epilog => match token {
                    Token::Comment { content } => {
                        return Ok(Some(TopEvent::TrailingMisc(Misc::Comment(content))))
                    }
                    Token::ProcessingInstruction { target, data } => {
                        return Ok(Some(TopEvent::TrailingMisc(Misc::Pi { target, data })))
                    }
                    Token::Text { content } => {
                        if wmx_xml::scan::is_all_whitespace(&content) {
                            continue;
                        }
                        return Err(self.err_at(XmlErrorKind::TrailingContent));
                    }
                    Token::StartTag { .. } => return Err(self.err_at(XmlErrorKind::MultipleRoots)),
                    Token::EndTag { name } => {
                        let close = self.pull.interner().resolve(name).to_string();
                        return Err(self.err_at(XmlErrorKind::UnmatchedClose { close }));
                    }
                    Token::CData { .. } => return Err(self.err_at(XmlErrorKind::TrailingContent)),
                    Token::XmlDecl { .. } | Token::Doctype { .. } => {
                        return Err(StreamError::Unsupported(
                            "XML declaration/DOCTYPE after the root element".to_string(),
                        ))
                    }
                },
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn events(input: &str) -> Vec<TopEvent> {
        let mut reader = TopLevelReader::new(input.as_bytes());
        let mut out = Vec::new();
        while let Some(ev) = reader.next_event().unwrap() {
            out.push(ev);
        }
        out
    }

    #[test]
    fn splits_records_and_misc() {
        let evs = events(
            "<?xml version=\"1.0\"?><!-- head --><db id=\"1\">\n  \
             <book><t>A</t></book>mixed<book/>\n<!-- mid --></db><!-- tail -->",
        );
        assert_eq!(
            evs,
            vec![
                TopEvent::XmlDecl("version=\"1.0\"".into()),
                TopEvent::PrologMisc(Misc::Comment(" head ".into())),
                TopEvent::RootStart {
                    name: "db".into(),
                    attributes: vec![TokenAttribute {
                        name: "id".into(),
                        value: "1".into()
                    }],
                },
                TopEvent::Record("<book><t>A</t></book>".into()),
                TopEvent::Misc(Misc::Text("mixed".into())),
                TopEvent::Record("<book/>".into()),
                TopEvent::Misc(Misc::Comment(" mid ".into())),
                TopEvent::RootEnd,
                TopEvent::TrailingMisc(Misc::Comment(" tail ".into())),
            ]
        );
    }

    #[test]
    fn nested_records_capture_whole_subtree() {
        let evs = events("<db><shelf><book><t>X</t></book><book/></shelf></db>");
        assert!(matches!(
            &evs[1],
            TopEvent::Record(raw) if raw == "<shelf><book><t>X</t></book><book/></shelf>"
        ));
    }

    #[test]
    fn self_closing_root() {
        let evs = events("<db a=\"1\"/>");
        assert_eq!(evs.len(), 2);
        assert!(matches!(&evs[0], TopEvent::RootStart { name, .. } if name == "db"));
        assert_eq!(evs[1], TopEvent::RootEnd);
    }

    #[test]
    fn errors_mirror_the_dom_parser() {
        let fail = |input: &str| {
            let mut r = TopLevelReader::new(input.as_bytes());
            loop {
                match r.next_event() {
                    Err(e) => return e,
                    Ok(None) => panic!("expected an error for {input:?}"),
                    Ok(Some(_)) => {}
                }
            }
        };
        assert!(matches!(fail("  "), StreamError::Xml(_)));
        assert!(matches!(fail("<a/><b/>"), StreamError::Xml(e)
            if matches!(e.kind, XmlErrorKind::MultipleRoots)));
        assert!(matches!(fail("<a/>txt"), StreamError::Xml(e)
            if matches!(e.kind, XmlErrorKind::TrailingContent)));
        assert!(matches!(fail("<a><b>"), StreamError::Xml(e)
            if matches!(e.kind, XmlErrorKind::UnexpectedEof { .. })));
        assert!(matches!(fail("hello<a/>"), StreamError::Xml(e)
            if matches!(e.kind, XmlErrorKind::NoRootElement)));
    }

    /// A reader that returns at most `n` bytes per fill, to exercise
    /// chunk-boundary resumption.
    struct Trickle<'a> {
        data: &'a [u8],
        pos: usize,
        n: usize,
    }

    impl std::io::Read for Trickle<'_> {
        fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
            let take = self.n.min(self.data.len() - self.pos).min(buf.len());
            buf[..take].copy_from_slice(&self.data[self.pos..self.pos + take]);
            self.pos += take;
            Ok(take)
        }
    }

    #[test]
    fn tiny_chunks_and_multibyte_boundaries() {
        let input = "<db><r>中文 – héllo</r><r n=\"ü\"/></db>";
        let whole = events(input);
        for n in [1usize, 2, 3, 5] {
            let src = std::io::BufReader::with_capacity(
                8,
                Trickle {
                    data: input.as_bytes(),
                    pos: 0,
                    n,
                },
            );
            let mut reader = TopLevelReader::new(src);
            let mut out = Vec::new();
            while let Some(ev) = reader.next_event().unwrap() {
                out.push(ev);
            }
            assert_eq!(out, whole, "chunk size {n}");
        }
    }
}
