//! `wmx-stream`: single-pass streaming watermark embed/detect.
//!
//! The DOM pipeline in `wmx-core` materializes an entire document before
//! touching a single value, so memory scales with document size. This
//! crate is a second execution engine over the same watermarking
//! semantics: it pulls tokens from [`wmx_xml::pull::PullParser`], splits
//! the document at top-level record boundaries (the children of the root
//! element), materializes **one record at a time** as a mini-document,
//! runs the shared per-unit decision ([`wmx_core::UnitMarker`] through
//! the [`wmx_core::NodeCtx`] seam), and emits output incrementally.
//!
//! # Guarantees
//!
//! * **Byte-identical output.** Streaming embed produces exactly the
//!   bytes of `wmx_xml::to_string(dom_embedded)` — the equivalence suite
//!   in `tests/tests/stream_equivalence.rs` enforces this across the
//!   generated corpora and adversarial documents.
//! * **Bounded memory.** At most O(depth + one record) XML nodes are
//!   resident at any time ([`StreamEmbedReport::peak_resident_nodes`]
//!   measures the high-water mark); the token buffer is bounded by the
//!   largest single record.
//! * **Deterministic parallelism.** [`par_embed`]/[`par_detect`] split
//!   the record list across worker threads; because every per-unit
//!   decision depends only on the unit id and the secret key, chunked
//!   output is byte-identical to sequential output, and detection vote
//!   counts merge exactly.
//!
//! # Scope
//!
//! The streaming engine assumes the default parse conventions
//! ([`wmx_xml::ParseOptions`]: whitespace-only text skipped, comments
//! and processing instructions kept) and compact serialization. It
//! requires entity instances to live at or below the root's child
//! elements — an entity bound to the document root itself is rejected
//! with an error pointing at the DOM engine. Unlike DOM detection it is
//! *query-free*: it re-enumerates units per record and re-derives the
//! keyed selection, so only the secret key, the watermark, and the
//! semantic package are needed (no safeguarded query file) — but it
//! cannot rewrite through a schema mapping; reorganized suspects still
//! need the DOM decoder.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod driver;
pub mod engine;
mod metrics;
pub mod parallel;
pub mod reader;
pub mod report;

pub use driver::{stream_detect, stream_detect_forensic, stream_embed};
pub use parallel::{par_detect, par_detect_forensic, par_embed};
pub use reader::{Misc, TopEvent, TopLevelReader};
pub use report::{ChunkSummary, ChunkTiming, StreamDetectReport, StreamEmbedReport, StreamFault};

use wmx_core::WmError;
use wmx_xml::XmlError;

/// The semantic package a streaming run needs: the same binding, FDs and
/// encoder configuration the DOM pipeline takes.
#[derive(Debug, Clone, Copy)]
pub struct StreamContext<'a> {
    /// Binding of logical entities onto the document schema.
    pub binding: &'a wmx_rewrite::SchemaBinding,
    /// Declared functional dependencies.
    pub fds: &'a [wmx_schema::Fd],
    /// Encoder configuration (γ, markable/structural attributes).
    pub config: &'a wmx_core::EncoderConfig,
}

/// Errors raised by the streaming engine.
#[derive(Debug)]
pub enum StreamError {
    /// Malformed XML in the input stream.
    Xml(XmlError),
    /// Watermarking-semantics error (bad binding/config, write failure).
    Wm(WmError),
    /// I/O failure on the input reader or output writer.
    Io(std::io::Error),
    /// Input the streaming engine does not support (use the DOM engine).
    Unsupported(String),
}

impl std::fmt::Display for StreamError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StreamError::Xml(e) => write!(f, "xml error: {e}"),
            StreamError::Wm(e) => write!(f, "watermark error: {e}"),
            StreamError::Io(e) => write!(f, "io error: {e}"),
            StreamError::Unsupported(msg) => write!(f, "unsupported by streaming engine: {msg}"),
        }
    }
}

impl std::error::Error for StreamError {}

impl From<XmlError> for StreamError {
    fn from(e: XmlError) -> Self {
        StreamError::Xml(e)
    }
}

impl From<WmError> for StreamError {
    fn from(e: WmError) -> Self {
        StreamError::Wm(e)
    }
}

impl From<std::io::Error> for StreamError {
    fn from(e: std::io::Error) -> Self {
        StreamError::Io(e)
    }
}
