//! Streaming report accumulation and cross-chunk merging.
//!
//! Key-identified and order units are local to one record, so their
//! counters simply add up. FD-redundancy groups span records (every
//! member of `editor → publisher` carries the same mark wherever it
//! lives), so each chunk counts them into id *sets* and the merge takes
//! unions — reproducing exactly the whole-document counts the DOM
//! encoder reports.

use std::collections::BTreeSet;
use wmx_core::{BitVotes, EmbedReport, StoredQuery};

/// Wall-clock telemetry for one contiguous run of records, consumed by
/// the `wmx-bench` telemetry reports. The two driver families time
/// different spans: the sequential drivers emit **one** entry covering
/// the whole pass (reading, record splitting, per-record work, and
/// output emission), while the parallel drivers emit one entry per
/// worker chunk covering only that chunk's per-record embed/detect work
/// (the upfront split and final reassembly are shared). Compare entries
/// within a family, not across families.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChunkTiming {
    /// Records processed by this chunk.
    pub records: usize,
    /// Wall-clock time for this chunk's span (see type docs), in µs.
    pub micros: u128,
}

/// Streaming embed outcome: the DOM-equivalent report plus streaming
/// telemetry.
#[derive(Debug, Clone)]
pub struct StreamEmbedReport {
    /// The embedding report (unit counts, safeguarded query set) —
    /// equal, as a multiset of units, to what the DOM encoder reports.
    pub report: EmbedReport,
    /// Records processed.
    pub records: usize,
    /// High-water mark of XML nodes resident at once (wrapper root +
    /// one record), the O(depth + record) memory guarantee.
    pub peak_resident_nodes: usize,
    /// Per-chunk wall-clock timings (one entry for sequential runs, one
    /// per worker chunk for parallel runs).
    pub chunk_timings: Vec<ChunkTiming>,
}

/// Streaming detect outcome.
#[derive(Debug, Clone)]
pub struct StreamDetectReport {
    /// The detection report. `total_queries` counts enumerated selected
    /// units, `located_queries` those that produced at least one vote.
    pub report: wmx_core::DetectionReport,
    /// Records processed.
    pub records: usize,
    /// High-water mark of XML nodes resident at once.
    pub peak_resident_nodes: usize,
    /// Per-chunk wall-clock timings (one entry for sequential runs, one
    /// per worker chunk for parallel runs).
    pub chunk_timings: Vec<ChunkTiming>,
}

/// Per-chunk embed accumulator.
#[derive(Debug, Default)]
pub(crate) struct PartialEmbed {
    pub records: usize,
    pub peak_resident_nodes: usize,
    pub total_local: usize,
    pub selected_local: usize,
    pub marked_local: usize,
    pub marked_nodes: usize,
    /// Stored queries in discovery order, tagged with the FD unit id
    /// when the unit is an FD group (for cross-chunk dedup).
    pub queries: Vec<(Option<String>, StoredQuery)>,
    pub fd_total: BTreeSet<String>,
    pub fd_selected: BTreeSet<String>,
    pub fd_marked: BTreeSet<String>,
    pub chunk_timings: Vec<ChunkTiming>,
}

impl PartialEmbed {
    pub fn merge(&mut self, other: PartialEmbed) {
        self.records += other.records;
        self.peak_resident_nodes = self.peak_resident_nodes.max(other.peak_resident_nodes);
        self.total_local += other.total_local;
        self.selected_local += other.selected_local;
        self.marked_local += other.marked_local;
        self.marked_nodes += other.marked_nodes;
        self.fd_total.extend(other.fd_total);
        self.fd_selected.extend(other.fd_selected);
        self.queries.extend(other.queries);
        // fd_marked is unioned implicitly by finalize()'s dedup walk.
        self.fd_marked.extend(other.fd_marked);
        self.chunk_timings.extend(other.chunk_timings);
    }

    pub fn finalize(self) -> StreamEmbedReport {
        let mut seen_fd: BTreeSet<String> = BTreeSet::new();
        let mut queries = Vec::with_capacity(self.queries.len());
        for (fd_id, query) in self.queries {
            if let Some(id) = fd_id {
                if !seen_fd.insert(id) {
                    continue; // the same FD group marked in another chunk
                }
            }
            queries.push(query);
        }
        StreamEmbedReport {
            report: EmbedReport {
                total_units: self.total_local + self.fd_total.len(),
                selected_units: self.selected_local + self.fd_selected.len(),
                marked_units: self.marked_local + self.fd_marked.len(),
                marked_nodes: self.marked_nodes,
                queries,
            },
            records: self.records,
            peak_resident_nodes: self.peak_resident_nodes,
            chunk_timings: self.chunk_timings,
        }
    }
}

/// Per-chunk detect accumulator.
#[derive(Debug)]
pub(crate) struct PartialDetect {
    pub records: usize,
    pub peak_resident_nodes: usize,
    pub bit_votes: Vec<BitVotes>,
    pub votes_cast: usize,
    pub total_local: usize,
    pub located_local: usize,
    pub fd_total: BTreeSet<String>,
    pub fd_located: BTreeSet<String>,
    pub chunk_timings: Vec<ChunkTiming>,
}

impl PartialDetect {
    pub fn new(wm_len: usize) -> Self {
        PartialDetect {
            records: 0,
            peak_resident_nodes: 0,
            bit_votes: vec![BitVotes::default(); wm_len],
            votes_cast: 0,
            total_local: 0,
            located_local: 0,
            fd_total: BTreeSet::new(),
            fd_located: BTreeSet::new(),
            chunk_timings: Vec::new(),
        }
    }

    pub fn merge(&mut self, other: PartialDetect) {
        self.records += other.records;
        self.peak_resident_nodes = self.peak_resident_nodes.max(other.peak_resident_nodes);
        for (mine, theirs) in self.bit_votes.iter_mut().zip(&other.bit_votes) {
            mine.merge(theirs);
        }
        self.votes_cast += other.votes_cast;
        self.total_local += other.total_local;
        self.located_local += other.located_local;
        self.fd_total.extend(other.fd_total);
        self.fd_located.extend(other.fd_located);
        self.chunk_timings.extend(other.chunk_timings);
    }

    pub fn finalize(self, watermark: &wmx_core::Watermark, threshold: f64) -> StreamDetectReport {
        let report = wmx_core::report_from_votes(
            self.bit_votes,
            watermark,
            threshold,
            wmx_core::VoteCounters {
                total_queries: self.total_local + self.fd_total.len(),
                located_queries: self.located_local + self.fd_located.len(),
                unrewritable_queries: 0,
                votes_cast: self.votes_cast,
            },
        );
        StreamDetectReport {
            report,
            records: self.records,
            peak_resident_nodes: self.peak_resident_nodes,
            chunk_timings: self.chunk_timings,
        }
    }
}
