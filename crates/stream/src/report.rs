//! Streaming report accumulation and cross-chunk merging.
//!
//! Key-identified and order units are local to one record, so their
//! counters simply add up. FD-redundancy groups span records (every
//! member of `editor → publisher` carries the same mark wherever it
//! lives), so each chunk tracks them in a single [`UnitKey`]-keyed flag
//! map — one entry per group carrying its total/selected/marked (or
//! located) state — and the merge ORs the flags, reproducing exactly
//! the whole-document counts the DOM encoder reports. Keys are compact
//! symbol tuples ([`wmx_core::SelectionTable`] symbols are stable
//! across chunks), so no unit-id strings are built or cloned anywhere
//! on the merge path.

use std::collections::{BTreeMap, BTreeSet};
use wmx_core::{BitVotes, EmbedReport, ForensicTallies, SelectionTable, StoredQuery, UnitKey};

/// Wall-clock telemetry for one contiguous run of records, consumed by
/// the `wmx-bench` telemetry reports. The two driver families time
/// different spans: the sequential drivers emit **one** entry covering
/// the whole pass (reading, record splitting, per-record work, and
/// output emission), while the parallel drivers emit one entry per
/// worker chunk covering only that chunk's per-record embed/detect work
/// (the upfront split and final reassembly are shared). Compare entries
/// within a family, not across families.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChunkTiming {
    /// Records processed by this chunk.
    pub records: usize,
    /// Wall-clock time for this chunk's span (see type docs), in µs.
    pub micros: u128,
}

/// Aggregated view of a run's [`ChunkTiming`]s — the user-visible
/// summary the raw per-chunk vector never had (it was collected but
/// silently dropped by every consumer until the telemetry layer landed).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChunkSummary {
    /// Chunks timed.
    pub chunks: usize,
    /// Records across all timed chunks.
    pub records: usize,
    /// Summed chunk wall-clock, in µs (not wall time of the run: chunks
    /// overlap under parallel drivers).
    pub total_micros: u128,
    /// Fastest chunk, in µs.
    pub min_micros: u128,
    /// Slowest chunk, in µs.
    pub max_micros: u128,
}

impl ChunkSummary {
    /// Folds raw timings into a summary (`None` when nothing was timed).
    pub fn from_timings(timings: &[ChunkTiming]) -> Option<ChunkSummary> {
        let first = timings.first()?;
        let mut summary = ChunkSummary {
            chunks: 0,
            records: 0,
            total_micros: 0,
            min_micros: first.micros,
            max_micros: first.micros,
        };
        for t in timings {
            summary.chunks += 1;
            summary.records += t.records;
            summary.total_micros += t.micros;
            summary.min_micros = summary.min_micros.min(t.micros);
            summary.max_micros = summary.max_micros.max(t.micros);
        }
        Some(summary)
    }

    /// Mean chunk wall-clock, in µs.
    pub fn mean_micros(&self) -> u128 {
        self.total_micros / self.chunks as u128
    }
}

/// Streaming embed outcome: the DOM-equivalent report plus streaming
/// telemetry.
#[derive(Debug, Clone)]
pub struct StreamEmbedReport {
    /// The embedding report (unit counts, safeguarded query set) —
    /// equal, as a multiset of units, to what the DOM encoder reports.
    pub report: EmbedReport,
    /// Records processed.
    pub records: usize,
    /// High-water mark of XML nodes resident at once (wrapper root +
    /// one record), the O(depth + record) memory guarantee.
    pub peak_resident_nodes: usize,
    /// Per-chunk wall-clock timings (one entry for sequential runs, one
    /// per worker chunk for parallel runs).
    pub chunk_timings: Vec<ChunkTiming>,
}

impl StreamEmbedReport {
    /// Aggregated chunk-timing summary (`None` when nothing was timed).
    pub fn chunk_summary(&self) -> Option<ChunkSummary> {
        ChunkSummary::from_timings(&self.chunk_timings)
    }
}

/// What went wrong mid-stream when the fault-tolerant detect drivers
/// kept going: the verdict in the accompanying report covers only the
/// records processed before the fault (a *partial verdict*), never an
/// error and never a panic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StreamFault {
    /// Records fully processed before the fault stopped the reader.
    pub records_processed: usize,
    /// Indices (0-based, in stream order) of records that were skipped
    /// because their own bytes failed to parse; processing continued
    /// with the next record.
    pub skipped_records: Vec<usize>,
    /// Human-readable description of the first stream-level error.
    pub error: String,
    /// Whether the stream itself broke (truncation / malformed bytes /
    /// I/O) as opposed to per-record damage only.
    pub truncated: bool,
}

/// Streaming detect outcome.
#[derive(Debug, Clone)]
pub struct StreamDetectReport {
    /// The detection report. `total_queries` counts enumerated selected
    /// units, `located_queries` those that produced at least one vote.
    pub report: wmx_core::DetectionReport,
    /// Records processed.
    pub records: usize,
    /// High-water mark of XML nodes resident at once.
    pub peak_resident_nodes: usize,
    /// Per-chunk wall-clock timings (one entry for sequential runs, one
    /// per worker chunk for parallel runs).
    pub chunk_timings: Vec<ChunkTiming>,
    /// Mid-stream fault, when the fault-tolerant drivers salvaged a
    /// partial verdict (`None` on a complete pass).
    pub fault: Option<StreamFault>,
}

impl StreamDetectReport {
    /// Aggregated chunk-timing summary (`None` when nothing was timed).
    pub fn chunk_summary(&self) -> Option<ChunkSummary> {
        ChunkSummary::from_timings(&self.chunk_timings)
    }
}

/// Per-FD-group embed state: one map entry per group replaces the three
/// id-keyed sets the merge path used to clone unit-id strings into.
/// Presence in the map means the group was enumerated (total).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub(crate) struct FdEmbedFlags {
    /// The PRF selected the group.
    pub selected: bool,
    /// Some chunk wrote the mark into the group.
    pub marked: bool,
}

/// Per-chunk embed accumulator.
#[derive(Debug, Default)]
pub(crate) struct PartialEmbed {
    pub records: usize,
    pub peak_resident_nodes: usize,
    pub total_local: usize,
    pub selected_local: usize,
    pub marked_local: usize,
    pub marked_nodes: usize,
    /// Stored queries in discovery order, tagged with the FD unit key
    /// when the unit is an FD group (for cross-chunk dedup).
    pub queries: Vec<(Option<UnitKey>, StoredQuery)>,
    pub fd_flags: BTreeMap<UnitKey, FdEmbedFlags>,
    pub chunk_timings: Vec<ChunkTiming>,
}

impl PartialEmbed {
    /// The flag entry for an FD group, created on first sight (the only
    /// point the key is cloned in this chunk).
    pub fn fd_entry(&mut self, key: &UnitKey) -> &mut FdEmbedFlags {
        if !self.fd_flags.contains_key(key) {
            self.fd_flags.insert(key.clone(), FdEmbedFlags::default());
        }
        self.fd_flags.get_mut(key).expect("inserted above")
    }

    pub fn merge(&mut self, other: PartialEmbed) {
        self.records += other.records;
        self.peak_resident_nodes = self.peak_resident_nodes.max(other.peak_resident_nodes);
        self.total_local += other.total_local;
        self.selected_local += other.selected_local;
        self.marked_local += other.marked_local;
        self.marked_nodes += other.marked_nodes;
        for (key, flags) in other.fd_flags {
            let mine = self.fd_flags.entry(key).or_default();
            mine.selected |= flags.selected;
            mine.marked |= flags.marked;
        }
        self.queries.extend(other.queries);
        self.chunk_timings.extend(other.chunk_timings);
    }

    pub fn finalize(self) -> StreamEmbedReport {
        let mut seen_fd: BTreeSet<UnitKey> = BTreeSet::new();
        let mut queries = Vec::with_capacity(self.queries.len());
        for (fd_key, query) in self.queries {
            if let Some(key) = fd_key {
                if !seen_fd.insert(key) {
                    continue; // the same FD group marked in another chunk
                }
            }
            queries.push(query);
        }
        let fd_selected = self.fd_flags.values().filter(|f| f.selected).count();
        let fd_marked = self.fd_flags.values().filter(|f| f.marked).count();
        StreamEmbedReport {
            report: EmbedReport {
                total_units: self.total_local + self.fd_flags.len(),
                selected_units: self.selected_local + fd_selected,
                marked_units: self.marked_local + fd_marked,
                marked_nodes: self.marked_nodes,
                queries,
            },
            records: self.records,
            peak_resident_nodes: self.peak_resident_nodes,
            chunk_timings: self.chunk_timings,
        }
    }
}

/// Per-chunk detect accumulator.
#[derive(Debug)]
pub(crate) struct PartialDetect {
    pub records: usize,
    pub peak_resident_nodes: usize,
    pub bit_votes: Vec<BitVotes>,
    pub votes_cast: usize,
    pub total_local: usize,
    pub located_local: usize,
    /// Selected FD groups → whether any chunk located votes for them.
    pub fd_located: BTreeMap<UnitKey, bool>,
    /// Per-unit forensic tallies, accumulated only when the forensic
    /// drivers enable them (`None` keeps the default hot path untouched).
    pub forensics: Option<ForensicTallies>,
    pub chunk_timings: Vec<ChunkTiming>,
}

impl PartialDetect {
    pub fn new(wm_len: usize) -> Self {
        PartialDetect {
            records: 0,
            peak_resident_nodes: 0,
            bit_votes: vec![BitVotes::default(); wm_len],
            votes_cast: 0,
            total_local: 0,
            located_local: 0,
            fd_located: BTreeMap::new(),
            forensics: None,
            chunk_timings: Vec::new(),
        }
    }

    /// A fresh accumulator with forensic tallies enabled.
    pub fn with_forensics(wm_len: usize) -> Self {
        let mut partial = PartialDetect::new(wm_len);
        partial.forensics = Some(ForensicTallies::new());
        partial
    }

    /// The located flag for a selected FD group. Takes the key by value:
    /// an already-present key is dropped, not cloned.
    pub fn fd_entry(&mut self, key: UnitKey) -> &mut bool {
        self.fd_located.entry(key).or_default()
    }

    pub fn merge(&mut self, other: PartialDetect) {
        self.records += other.records;
        self.peak_resident_nodes = self.peak_resident_nodes.max(other.peak_resident_nodes);
        for (mine, theirs) in self.bit_votes.iter_mut().zip(&other.bit_votes) {
            mine.merge(theirs);
        }
        self.votes_cast += other.votes_cast;
        self.total_local += other.total_local;
        self.located_local += other.located_local;
        for (key, located) in other.fd_located {
            *self.fd_located.entry(key).or_default() |= located;
        }
        match (&mut self.forensics, other.forensics) {
            (Some(mine), Some(theirs)) => mine.merge(theirs),
            (mine @ None, Some(theirs)) => *mine = Some(theirs),
            (_, None) => {}
        }
        self.chunk_timings.extend(other.chunk_timings);
    }

    fn counters(&self) -> wmx_core::VoteCounters {
        let fd_located = self.fd_located.values().filter(|l| **l).count();
        wmx_core::VoteCounters {
            total_queries: self.total_local + self.fd_located.len(),
            located_queries: self.located_local + fd_located,
            unrewritable_queries: 0,
            votes_cast: self.votes_cast,
        }
    }

    pub fn finalize(self, watermark: &wmx_core::Watermark, threshold: f64) -> StreamDetectReport {
        let counters = self.counters();
        // The base-width, no-forensics case keeps the original pinned
        // path; a wider tally means redundancy mode, which needs the
        // group-majority decode.
        let report = if self.bit_votes.len() == watermark.len() {
            wmx_core::report_from_votes(self.bit_votes, watermark, threshold, counters)
        } else {
            wmx_core::finalize_forensic_report(self.bit_votes, watermark, threshold, counters, None)
        };
        StreamDetectReport {
            report,
            records: self.records,
            peak_resident_nodes: self.peak_resident_nodes,
            chunk_timings: self.chunk_timings,
            fault: None,
        }
    }

    /// Finalize with the forensic tallies rendered through the same
    /// [`wmx_core::finalize_forensic_report`] seam the DOM forensic
    /// decoder uses — DOM and stream forensics agree by construction.
    pub fn finalize_forensic(
        self,
        watermark: &wmx_core::Watermark,
        threshold: f64,
        table: &SelectionTable,
    ) -> StreamDetectReport {
        let counters = self.counters();
        let report = wmx_core::finalize_forensic_report(
            self.bit_votes,
            watermark,
            threshold,
            counters,
            self.forensics.as_ref().map(|t| (t, table)),
        );
        StreamDetectReport {
            report,
            records: self.records,
            peak_resident_nodes: self.peak_resident_nodes,
            chunk_timings: self.chunk_timings,
            fault: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunk_summary_aggregates_timings() {
        assert_eq!(ChunkSummary::from_timings(&[]), None);
        let timings = [
            ChunkTiming {
                records: 10,
                micros: 40,
            },
            ChunkTiming {
                records: 30,
                micros: 100,
            },
            ChunkTiming {
                records: 20,
                micros: 70,
            },
        ];
        let summary = ChunkSummary::from_timings(&timings).unwrap();
        assert_eq!(summary.chunks, 3);
        assert_eq!(summary.records, 60);
        assert_eq!(summary.total_micros, 210);
        assert_eq!(summary.min_micros, 40);
        assert_eq!(summary.max_micros, 100);
        assert_eq!(summary.mean_micros(), 70);
    }
}
