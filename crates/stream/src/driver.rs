//! Sequential single-pass drivers: embed to a writer, detect to a vote
//! tally, both with O(depth + one record) resident nodes.

use crate::engine::{open_tag, RecordEngine};
use crate::metrics::stream_metrics;
use crate::reader::{Misc, TopEvent, TopLevelReader};
use crate::report::{
    ChunkTiming, PartialDetect, PartialEmbed, StreamDetectReport, StreamEmbedReport,
};
use crate::{StreamContext, StreamError};
use std::io::{BufRead, Write};
use std::time::Instant;
use wmx_core::{Watermark, WmError};
use wmx_crypto::SecretKey;
use wmx_xml::escape::escape_text;
use wmx_xml::serialize::{cdata_text, comment_text, pi_text, BufferPool};

/// Incremental output writer that reproduces `wmx_xml::to_string` bytes
/// from top-level events: prolog pieces are buffered until the root
/// opens (the serializer emits `<?xml?>`/`<!DOCTYPE>` before pre-root
/// comments regardless of input order), and the root open tag is held
/// back until the first visible child so an empty root collapses to
/// `<name/>` exactly like the DOM serializer.
pub(crate) struct Emitter<W: Write> {
    out: W,
    xml_decl: Option<String>,
    doctype: Option<String>,
    prolog_misc: Vec<Misc>,
    root_open: Option<String>,
    root_name: String,
    root_open_written: bool,
}

fn misc_bytes(misc: &Misc) -> String {
    // Each arm delegates to the DOM serializer's own formatting helpers,
    // so byte parity cannot drift.
    match misc {
        Misc::Text(t) => escape_text(t).into_owned(),
        Misc::CData(t) => cdata_text(t),
        Misc::Comment(t) => comment_text(t),
        Misc::Pi { target, data } => pi_text(target, data),
    }
}

impl<W: Write> Emitter<W> {
    pub fn new(out: W) -> Self {
        Emitter {
            out,
            xml_decl: None,
            doctype: None,
            prolog_misc: Vec::new(),
            root_open: None,
            root_name: String::new(),
            root_open_written: false,
        }
    }

    fn ensure_root_open(&mut self) -> Result<(), StreamError> {
        if !self.root_open_written {
            let open = self.root_open.as_deref().expect("root started");
            self.out.write_all(open.as_bytes())?;
            self.root_open_written = true;
        }
        Ok(())
    }

    /// Handles one event; `record_out` carries the processed bytes for
    /// [`TopEvent::Record`] and must be `Some` exactly then.
    pub fn event(&mut self, ev: &TopEvent, record_out: Option<&str>) -> Result<(), StreamError> {
        match ev {
            TopEvent::XmlDecl(content) => self.xml_decl = Some(content.clone()),
            TopEvent::Doctype(content) => self.doctype = Some(content.clone()),
            TopEvent::PrologMisc(misc) => self.prolog_misc.push(misc.clone()),
            TopEvent::RootStart { name, attributes } => {
                if let Some(decl) = &self.xml_decl {
                    self.out.write_all(format!("<?xml {decl}?>").as_bytes())?;
                }
                if let Some(doctype) = &self.doctype {
                    self.out
                        .write_all(format!("<!DOCTYPE {doctype}>").as_bytes())?;
                }
                for misc in &self.prolog_misc {
                    self.out.write_all(misc_bytes(misc).as_bytes())?;
                }
                self.root_open = Some(open_tag(name, attributes));
                self.root_name = name.clone();
            }
            TopEvent::Record(_) => {
                self.ensure_root_open()?;
                let bytes = record_out.expect("record output provided");
                self.out.write_all(bytes.as_bytes())?;
            }
            TopEvent::Misc(misc) => {
                self.ensure_root_open()?;
                self.out.write_all(misc_bytes(misc).as_bytes())?;
            }
            TopEvent::RootEnd => {
                if self.root_open_written {
                    self.out
                        .write_all(format!("</{}>", self.root_name).as_bytes())?;
                } else {
                    // No visible children: the serializer collapses the
                    // root to a self-closing tag.
                    let open = self.root_open.as_deref().expect("root started");
                    let without_gt = &open[..open.len() - 1];
                    self.out.write_all(without_gt.as_bytes())?;
                    self.out.write_all(b"/>")?;
                    self.root_open_written = true;
                }
            }
            TopEvent::TrailingMisc(misc) => {
                self.out.write_all(misc_bytes(misc).as_bytes())?;
            }
        }
        Ok(())
    }

    pub fn finish(mut self) -> Result<(), StreamError> {
        self.out.flush()?;
        Ok(())
    }
}

/// Embeds `watermark` while streaming `input` to `output` in a single
/// pass. The output bytes are identical to
/// `wmx_xml::to_string(&dom_embedded)` for the same input, key, and
/// watermark; at most one record's nodes are materialized at a time.
pub fn stream_embed<R: BufRead, W: Write>(
    input: R,
    output: W,
    ctx: StreamContext<'_>,
    key: &SecretKey,
    watermark: &Watermark,
) -> Result<StreamEmbedReport, StreamError> {
    if watermark.is_empty() {
        return Err(WmError::new("watermark must have at least one bit").into());
    }
    let mut reader = TopLevelReader::new(input);
    let mut emitter = Emitter::new(output);
    let mut engine: Option<RecordEngine<'_>> = None;
    let mut partial = PartialEmbed::default();
    // One pooled output buffer serves every record: its capacity warms
    // up to the largest record seen and is recycled instead of re-grown.
    let mut pool = BufferPool::new();
    let mut record_buf = pool.acquire();
    let start = Instant::now();
    while let Some(ev) = reader.next_event()? {
        match &ev {
            TopEvent::RootStart { name, attributes } => {
                engine = Some(RecordEngine::new(ctx, key, watermark, name, attributes)?);
                emitter.event(&ev, None)?;
            }
            TopEvent::Record(raw) => {
                record_buf.clear();
                engine
                    .as_ref()
                    .expect("record implies root")
                    .embed_record_into(raw, &mut partial, &mut record_buf)?;
                emitter.event(&ev, Some(&record_buf))?;
            }
            _ => emitter.event(&ev, None)?,
        }
    }
    pool.release(record_buf);
    emitter.finish()?;
    let timing = ChunkTiming {
        records: partial.records,
        micros: start.elapsed().as_micros(),
    };
    stream_metrics().record_chunk(&timing);
    partial.chunk_timings.push(timing);
    Ok(partial.finalize())
}

/// Detects `watermark` in a single pass over `input` without a
/// safeguarded query file: units are re-enumerated per record and the
/// keyed PRF re-derives which ones were selected. Votes equal the DOM
/// decoder's votes on the same (un-reorganized) document.
pub fn stream_detect<R: BufRead>(
    input: R,
    ctx: StreamContext<'_>,
    key: &SecretKey,
    watermark: &Watermark,
    threshold: f64,
) -> Result<StreamDetectReport, StreamError> {
    if watermark.is_empty() {
        return Err(WmError::new("watermark must have at least one bit").into());
    }
    let mut reader = TopLevelReader::new(input);
    let mut engine: Option<RecordEngine<'_>> = None;
    let mut partial = PartialDetect::new(effective_len(&ctx, watermark));
    let start = Instant::now();
    while let Some(ev) = reader.next_event()? {
        match &ev {
            TopEvent::RootStart { name, attributes } => {
                engine = Some(RecordEngine::new(ctx, key, watermark, name, attributes)?);
            }
            TopEvent::Record(raw) => {
                engine
                    .as_ref()
                    .expect("record implies root")
                    .detect_record(raw, &mut partial)?;
            }
            _ => {}
        }
    }
    let timing = ChunkTiming {
        records: partial.records,
        micros: start.elapsed().as_micros(),
    };
    let metrics = stream_metrics();
    metrics.record_chunk(&timing);
    metrics.votes.add(partial.votes_cast as u64);
    partial.chunk_timings.push(timing);
    Ok(partial.finalize(watermark, threshold))
}

/// Effective vote-tally width: base watermark length times the
/// redundancy factor.
pub(crate) fn effective_len(ctx: &StreamContext<'_>, watermark: &Watermark) -> usize {
    watermark.len() * ctx.config.redundancy.max(1) as usize
}

/// Fault-tolerant streaming detect with per-unit forensics.
///
/// Unlike [`stream_detect`], a stream that breaks mid-way (truncated
/// file, garbled bytes, I/O error) does **not** error out once the root
/// element has been seen: the verdict over the records processed so far
/// is returned as a *partial verdict* with
/// [`StreamFault`](crate::StreamFault) describing what happened, and a
/// record whose own bytes fail to parse is skipped and noted while the
/// scan continues. Errors before the root (or semantic-package errors)
/// still fail hard — there is nothing to salvage.
pub fn stream_detect_forensic<R: BufRead>(
    input: R,
    ctx: StreamContext<'_>,
    key: &SecretKey,
    watermark: &Watermark,
    threshold: f64,
) -> Result<StreamDetectReport, StreamError> {
    if watermark.is_empty() {
        return Err(WmError::new("watermark must have at least one bit").into());
    }
    let mut reader = TopLevelReader::new(input);
    let mut engine: Option<RecordEngine<'_>> = None;
    let mut partial = PartialDetect::with_forensics(effective_len(&ctx, watermark));
    let mut skipped_records: Vec<usize> = Vec::new();
    let mut record_index = 0usize;
    let mut stream_error: Option<StreamError> = None;
    let start = Instant::now();
    loop {
        match reader.next_event() {
            Ok(Some(ev)) => match &ev {
                TopEvent::RootStart { name, attributes } => {
                    engine = Some(RecordEngine::new(ctx, key, watermark, name, attributes)?);
                }
                TopEvent::Record(raw) => {
                    let index = record_index;
                    record_index += 1;
                    let result = engine
                        .as_ref()
                        .expect("record implies root")
                        .detect_record(raw, &mut partial);
                    if result.is_err() {
                        // Per-record damage: skip the record, keep the
                        // verdict over everything else.
                        skipped_records.push(index);
                    }
                }
                _ => {}
            },
            Ok(None) => break,
            Err(e) => {
                if engine.is_none() {
                    return Err(e); // broke before any watermark-bearing content
                }
                stream_error = Some(e);
                break;
            }
        }
    }
    let engine = match engine {
        Some(engine) => engine,
        // Clean end without a root element cannot happen (the reader
        // errors first), but handle it as a hard error for completeness.
        None => {
            return Err(StreamError::Unsupported(
                "stream ended before a root element".to_string(),
            ))
        }
    };
    let timing = ChunkTiming {
        records: partial.records,
        micros: start.elapsed().as_micros(),
    };
    let metrics = stream_metrics();
    metrics.record_chunk(&timing);
    metrics.votes.add(partial.votes_cast as u64);
    partial.chunk_timings.push(timing);
    let fault = match (&stream_error, skipped_records.is_empty()) {
        (None, true) => None,
        _ => Some(crate::StreamFault {
            records_processed: partial.records,
            skipped_records,
            error: stream_error
                .as_ref()
                .map(|e| e.to_string())
                .unwrap_or_else(|| "damaged records skipped".to_string()),
            truncated: matches!(
                stream_error,
                Some(StreamError::Xml(_)) | Some(StreamError::Io(_))
            ),
        }),
    };
    let mut report = partial.finalize_forensic(watermark, threshold, engine.table());
    report.fault = fault;
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use wmx_core::{EncoderConfig, MarkableAttr};
    use wmx_rewrite::binding::{AttrBinding, EntityBinding};
    use wmx_rewrite::SchemaBinding;

    fn binding() -> SchemaBinding {
        SchemaBinding::new(
            "db1",
            vec![EntityBinding::new(
                "book",
                "/db/book",
                "title",
                vec![
                    ("title", AttrBinding::ChildText("title".into())),
                    ("year", AttrBinding::ChildText("year".into())),
                ],
            )
            .unwrap()],
        )
    }

    fn config() -> EncoderConfig {
        EncoderConfig::new(1, vec![MarkableAttr::integer("book", "year", 1)])
    }

    fn doc(n: usize) -> String {
        let mut s = String::from("<db>");
        for i in 0..n {
            s.push_str(&format!(
                "<book><title>B{i}</title><year>{}</year></book>",
                1990 + (i % 7)
            ));
        }
        s.push_str("</db>");
        s
    }

    fn run_embed(input: &str) -> (String, StreamEmbedReport) {
        let binding = binding();
        let config = config();
        let ctx = StreamContext {
            binding: &binding,
            fds: &[],
            config: &config,
        };
        let key = SecretKey::from_passphrase("drv");
        let wm = Watermark::parse("1011").unwrap();
        let mut out = Vec::new();
        let report = stream_embed(input.as_bytes(), &mut out, ctx, &key, &wm).unwrap();
        (String::from_utf8(out).unwrap(), report)
    }

    #[test]
    fn embed_matches_dom_engine_bytes() {
        let input = doc(40);
        let (stream_out, report) = run_embed(&input);

        let mut dom = wmx_xml::parse(&input).unwrap();
        let binding = binding();
        let dom_report = wmx_core::embed(
            &mut dom,
            &binding,
            &[],
            &config(),
            &SecretKey::from_passphrase("drv"),
            &Watermark::parse("1011").unwrap(),
        )
        .unwrap();
        assert_eq!(stream_out, wmx_xml::to_string(&dom));
        assert_eq!(report.report.total_units, dom_report.total_units);
        assert_eq!(report.report.selected_units, dom_report.selected_units);
        assert_eq!(report.report.marked_units, dom_report.marked_units);
        assert_eq!(report.report.marked_nodes, dom_report.marked_nodes);
        assert_eq!(report.records, 40);
    }

    #[test]
    fn detect_recovers_the_mark_without_queries() {
        let input = doc(60);
        let (marked, _) = run_embed(&input);
        let binding = binding();
        let config = config();
        let ctx = StreamContext {
            binding: &binding,
            fds: &[],
            config: &config,
        };
        let d = stream_detect(
            marked.as_bytes(),
            ctx,
            &SecretKey::from_passphrase("drv"),
            &Watermark::parse("1011").unwrap(),
            0.85,
        )
        .unwrap();
        assert!(d.report.detected);
        assert_eq!(d.report.match_fraction(), 1.0);
        // Wrong key does not detect.
        let wrong = stream_detect(
            marked.as_bytes(),
            ctx,
            &SecretKey::from_passphrase("oops"),
            &Watermark::parse("1011").unwrap(),
            0.85,
        )
        .unwrap();
        assert!(wrong.report.match_fraction() < 1.0 || !wrong.report.detected);
    }

    #[test]
    fn resident_nodes_stay_bounded() {
        let input = doc(500);
        let (_, report) = run_embed(&input);
        let full = wmx_xml::parse(&input).unwrap().arena_len();
        assert!(
            report.peak_resident_nodes * 10 < full,
            "streaming kept {} nodes resident vs {} in the DOM",
            report.peak_resident_nodes,
            full
        );
    }

    #[test]
    fn empty_and_prolog_edge_cases_roundtrip() {
        for input in [
            "<db/>",
            "<?xml version=\"1.0\"?><db/>",
            "<!-- a --><db></db><!-- b -->",
            "<db>text only</db>",
            "<db><![CDATA[x<y]]></db>",
            "<!DOCTYPE db><db><book><title>T</title><year>2000</year></book></db>",
        ] {
            let (out, _) = run_embed(input);
            let mut dom = wmx_xml::parse(input).unwrap();
            wmx_core::embed(
                &mut dom,
                &binding(),
                &[],
                &config(),
                &SecretKey::from_passphrase("drv"),
                &Watermark::parse("1011").unwrap(),
            )
            .unwrap();
            assert_eq!(out, wmx_xml::to_string(&dom), "input {input:?}");
        }
    }

    #[test]
    fn forensic_detect_matches_plain_on_clean_stream() {
        let input = doc(80);
        let (marked, _) = run_embed(&input);
        let binding = binding();
        let config = config();
        let ctx = StreamContext {
            binding: &binding,
            fds: &[],
            config: &config,
        };
        let key = SecretKey::from_passphrase("drv");
        let wm = Watermark::parse("1011").unwrap();
        let plain = stream_detect(marked.as_bytes(), ctx, &key, &wm, 0.85).unwrap();
        let forensic = stream_detect_forensic(marked.as_bytes(), ctx, &key, &wm, 0.85).unwrap();
        assert_eq!(forensic.report.bit_votes, plain.report.bit_votes);
        assert_eq!(forensic.report.detected, plain.report.detected);
        assert!(forensic.fault.is_none());
        let f = forensic.report.forensics.unwrap();
        assert!(!f.tampered);
        assert_eq!(f.total_units, 80);
    }

    #[test]
    fn truncated_stream_yields_partial_verdict_not_error() {
        let input = doc(100);
        let (marked, _) = run_embed(&input);
        let binding = binding();
        let config = config();
        let ctx = StreamContext {
            binding: &binding,
            fds: &[],
            config: &config,
        };
        let key = SecretKey::from_passphrase("drv");
        let wm = Watermark::parse("1011").unwrap();
        // Chop the marked stream at 60% — mid-record, no closing root.
        let cut = marked.len() * 60 / 100;
        let truncated = &marked[..cut];
        // The strict driver errors...
        assert!(stream_detect(truncated.as_bytes(), ctx, &key, &wm, 0.85).is_err());
        // ...the forensic driver salvages a partial verdict.
        let partial = stream_detect_forensic(truncated.as_bytes(), ctx, &key, &wm, 0.85).unwrap();
        let fault = partial.fault.expect("truncation must be reported");
        assert!(fault.truncated);
        assert!(fault.records_processed > 0 && fault.records_processed < 100);
        assert_eq!(fault.records_processed, partial.records);
        assert!(partial.report.detected, "surviving records still testify");
        let f = partial.report.forensics.unwrap();
        assert!(!f.tampered, "surviving records are clean");
    }

    #[test]
    fn root_bound_entity_is_rejected() {
        let binding = SchemaBinding::new(
            "weird",
            vec![EntityBinding::new(
                "db",
                "/db",
                "title",
                vec![
                    ("title", AttrBinding::Attribute("title".into())),
                    ("year", AttrBinding::ChildText("year".into())),
                ],
            )
            .unwrap()],
        );
        let config = EncoderConfig::new(1, vec![MarkableAttr::integer("db", "year", 1)]);
        let ctx = StreamContext {
            binding: &binding,
            fds: &[],
            config: &config,
        };
        let err = stream_embed(
            "<db title=\"t\"><year>2000</year></db>".as_bytes(),
            Vec::new(),
            ctx,
            &SecretKey::from_passphrase("k"),
            &Watermark::parse("1").unwrap(),
        )
        .unwrap_err();
        assert!(matches!(err, StreamError::Unsupported(_)), "{err}");
    }
}
