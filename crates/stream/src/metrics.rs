//! Registry handles for the streaming drivers' chunk-level metrics.
//!
//! Resolved once per process via `OnceLock`; the handles themselves are
//! lock-free, so recording from parallel worker chunks costs only
//! Relaxed atomics. Per-record work inside `RecordEngine` is left
//! uninstrumented on purpose — chunk granularity is the finest level
//! that doesn't tax the record loop.

use std::sync::{Arc, OnceLock};

use wmx_telemetry::{Counter, Histogram};

use crate::report::ChunkTiming;

pub(crate) struct StreamMetrics {
    /// Wall-clock per chunk (sequential: whole pass; parallel: one
    /// worker chunk) — see `ChunkTiming`'s family caveat.
    pub chunk_micros: Arc<Histogram>,
    /// Records processed across all chunks.
    pub records: Arc<Counter>,
    /// Chunks timed.
    pub chunks: Arc<Counter>,
    /// Node votes cast by detect chunks.
    pub votes: Arc<Counter>,
    /// Cross-chunk partial-report merges performed by parallel drivers.
    pub merges: Arc<Counter>,
}

impl StreamMetrics {
    /// Folds one finished chunk into the histograms/counters.
    pub fn record_chunk(&self, timing: &ChunkTiming) {
        self.chunk_micros
            .record(u64::try_from(timing.micros).unwrap_or(u64::MAX));
        self.records.add(timing.records as u64);
        self.chunks.inc();
    }
}

pub(crate) fn stream_metrics() -> &'static StreamMetrics {
    static METRICS: OnceLock<StreamMetrics> = OnceLock::new();
    METRICS.get_or_init(|| {
        let registry = wmx_telemetry::global();
        StreamMetrics {
            chunk_micros: registry.histogram("stream.chunk_micros"),
            records: registry.counter("stream.records"),
            chunks: registry.counter("stream.chunks"),
            votes: registry.counter("stream.votes"),
            merges: registry.counter("stream.merges"),
        }
    })
}
