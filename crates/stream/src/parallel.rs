//! Chunked parallel driver: records fan out across worker threads.
//!
//! Because every per-unit decision (selection, bit index, nonce,
//! whitening) is a pure function of the unit id and the secret key,
//! records can be embedded in any order on any thread and the
//! reassembled output is byte-identical to the sequential pass. For
//! detection, per-chunk vote tallies merge by addition (FD-group
//! counters by id-set union), so the merged report equals the
//! sequential one exactly.

use crate::driver::Emitter;
use crate::engine::RecordEngine;
use crate::metrics::stream_metrics;
use crate::reader::{TopEvent, TopLevelReader};
use crate::report::{
    ChunkTiming, PartialDetect, PartialEmbed, StreamDetectReport, StreamEmbedReport,
};
use crate::{StreamContext, StreamError};
use std::time::Instant;
use wmx_core::{Watermark, WmError};
use wmx_crypto::SecretKey;

/// Collects the event list and locates the root info.
fn collect_events(input: &str) -> Result<Vec<TopEvent>, StreamError> {
    let mut reader = TopLevelReader::new(input.as_bytes());
    let mut events = Vec::new();
    while let Some(ev) = reader.next_event()? {
        events.push(ev);
    }
    Ok(events)
}

/// Fault-tolerant twin of [`collect_events`]: salvages every event read
/// before the first stream-level error and returns the error alongside.
fn collect_events_tolerant(input: &str) -> (Vec<TopEvent>, Option<StreamError>) {
    let mut reader = TopLevelReader::new(input.as_bytes());
    let mut events = Vec::new();
    loop {
        match reader.next_event() {
            Ok(Some(ev)) => events.push(ev),
            Ok(None) => return (events, None),
            Err(e) => return (events, Some(e)),
        }
    }
}

fn root_of(events: &[TopEvent]) -> (&str, &[wmx_xml::TokenAttribute]) {
    events
        .iter()
        .find_map(|ev| match ev {
            TopEvent::RootStart { name, attributes } => {
                Some((name.as_str(), attributes.as_slice()))
            }
            _ => None,
        })
        .expect("reader guarantees a root element")
}

/// Splits `records` into at most `workers` contiguous chunks, runs
/// `work` on each chunk concurrently, and returns the per-chunk results
/// in record order.
fn fan_out<I: Sync, T: Send>(
    records: &[I],
    workers: usize,
    work: impl Fn(&[I]) -> Result<T, StreamError> + Sync,
) -> Result<Vec<T>, StreamError> {
    if records.is_empty() {
        return Ok(Vec::new());
    }
    let workers = workers.max(1).min(records.len());
    let chunk = records.len().div_ceil(workers);
    let results: Vec<Result<T, StreamError>> = std::thread::scope(|scope| {
        let handles: Vec<_> = records
            .chunks(chunk)
            .map(|slice| scope.spawn(|| work(slice)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("stream worker panicked"))
            .collect()
    });
    results.into_iter().collect()
}

/// Parallel streaming embed over an in-memory document. Returns the
/// embedded bytes (identical to [`crate::stream_embed`]'s output and to
/// the DOM engine's `to_string`) and the merged report.
pub fn par_embed(
    input: &str,
    workers: usize,
    ctx: StreamContext<'_>,
    key: &SecretKey,
    watermark: &Watermark,
) -> Result<(String, StreamEmbedReport), StreamError> {
    if watermark.is_empty() {
        return Err(WmError::new("watermark must have at least one bit").into());
    }
    let events = collect_events(input)?;
    let (root_name, root_attrs) = root_of(&events);
    let engine = RecordEngine::new(ctx, key, watermark, root_name, root_attrs)?;
    let records: Vec<&str> = events
        .iter()
        .filter_map(|ev| match ev {
            TopEvent::Record(raw) => Some(raw.as_str()),
            _ => None,
        })
        .collect();

    let chunk_results = fan_out(&records, workers, |slice| {
        let start = Instant::now();
        let mut partial = PartialEmbed::default();
        let mut outputs = Vec::with_capacity(slice.len());
        for raw in slice {
            outputs.push(engine.embed_record(raw, &mut partial)?);
        }
        let timing = ChunkTiming {
            records: slice.len(),
            micros: start.elapsed().as_micros(),
        };
        stream_metrics().record_chunk(&timing);
        partial.chunk_timings.push(timing);
        Ok((outputs, partial))
    })?;

    let mut partial = PartialEmbed::default();
    let mut record_outputs: Vec<String> = Vec::with_capacity(records.len());
    for (outputs, chunk_partial) in chunk_results {
        record_outputs.extend(outputs);
        partial.merge(chunk_partial);
        stream_metrics().merges.inc();
    }

    let mut buf: Vec<u8> = Vec::with_capacity(input.len());
    let mut emitter = Emitter::new(&mut buf);
    let mut next_record = 0usize;
    for ev in &events {
        match ev {
            TopEvent::Record(_) => {
                emitter.event(ev, Some(&record_outputs[next_record]))?;
                next_record += 1;
            }
            _ => emitter.event(ev, None)?,
        }
    }
    emitter.finish()?;
    Ok((
        String::from_utf8(buf).expect("serialized XML is UTF-8"),
        partial.finalize(),
    ))
}

/// Parallel streaming detect over an in-memory document: chunk vote
/// tallies are merged into one report equal to the sequential pass.
pub fn par_detect(
    input: &str,
    workers: usize,
    ctx: StreamContext<'_>,
    key: &SecretKey,
    watermark: &Watermark,
    threshold: f64,
) -> Result<StreamDetectReport, StreamError> {
    if watermark.is_empty() {
        return Err(WmError::new("watermark must have at least one bit").into());
    }
    let events = collect_events(input)?;
    let (root_name, root_attrs) = root_of(&events);
    let engine = RecordEngine::new(ctx, key, watermark, root_name, root_attrs)?;
    let records: Vec<&str> = events
        .iter()
        .filter_map(|ev| match ev {
            TopEvent::Record(raw) => Some(raw.as_str()),
            _ => None,
        })
        .collect();

    let eff_len = crate::driver::effective_len(&ctx, watermark);
    let chunk_results = fan_out(&records, workers, |slice| {
        let start = Instant::now();
        let mut partial = PartialDetect::new(eff_len);
        for raw in slice {
            engine.detect_record(raw, &mut partial)?;
        }
        let timing = ChunkTiming {
            records: slice.len(),
            micros: start.elapsed().as_micros(),
        };
        let metrics = stream_metrics();
        metrics.record_chunk(&timing);
        metrics.votes.add(partial.votes_cast as u64);
        partial.chunk_timings.push(timing);
        Ok(partial)
    })?;

    let mut merged = PartialDetect::new(eff_len);
    for chunk_partial in chunk_results {
        merged.merge(chunk_partial);
        stream_metrics().merges.inc();
    }
    Ok(merged.finalize(watermark, threshold))
}

/// Fault-tolerant parallel detect with per-unit forensics — the
/// parallel twin of [`crate::stream_detect_forensic`]. Records fan out
/// across `workers` threads; per-chunk forensic tallies merge by unit
/// key, so the rendered forensics are identical for every worker count
/// (and identical to the sequential and DOM forensic passes). A broken
/// tail of the input yields a partial verdict with a
/// [`crate::StreamFault`]; records whose own bytes fail to parse are
/// skipped and noted.
pub fn par_detect_forensic(
    input: &str,
    workers: usize,
    ctx: StreamContext<'_>,
    key: &SecretKey,
    watermark: &Watermark,
    threshold: f64,
) -> Result<StreamDetectReport, StreamError> {
    if watermark.is_empty() {
        return Err(WmError::new("watermark must have at least one bit").into());
    }
    let (events, stream_error) = collect_events_tolerant(input);
    let Some((root_name, root_attrs)) = events.iter().find_map(|ev| match ev {
        TopEvent::RootStart { name, attributes } => Some((name.as_str(), attributes.as_slice())),
        _ => None,
    }) else {
        // Broke before any watermark-bearing content: nothing to salvage.
        return Err(stream_error.unwrap_or_else(|| {
            StreamError::Unsupported("stream ended before a root element".to_string())
        }));
    };
    let engine = RecordEngine::new(ctx, key, watermark, root_name, root_attrs)?;
    let records: Vec<(usize, &str)> = events
        .iter()
        .filter_map(|ev| match ev {
            TopEvent::Record(raw) => Some(raw.as_str()),
            _ => None,
        })
        .enumerate()
        .collect();

    let eff_len = crate::driver::effective_len(&ctx, watermark);
    let chunk_results = fan_out(&records, workers, |slice| {
        let start = Instant::now();
        let mut partial = PartialDetect::with_forensics(eff_len);
        let mut skipped = Vec::new();
        for (index, raw) in slice {
            if engine.detect_record(raw, &mut partial).is_err() {
                skipped.push(*index);
            }
        }
        let timing = ChunkTiming {
            records: slice.len(),
            micros: start.elapsed().as_micros(),
        };
        let metrics = stream_metrics();
        metrics.record_chunk(&timing);
        metrics.votes.add(partial.votes_cast as u64);
        partial.chunk_timings.push(timing);
        Ok((partial, skipped))
    })?;

    let mut merged = PartialDetect::with_forensics(eff_len);
    let mut skipped_records: Vec<usize> = Vec::new();
    for (chunk_partial, chunk_skipped) in chunk_results {
        merged.merge(chunk_partial);
        skipped_records.extend(chunk_skipped);
        stream_metrics().merges.inc();
    }
    skipped_records.sort_unstable();
    let fault = match (&stream_error, skipped_records.is_empty()) {
        (None, true) => None,
        _ => Some(crate::StreamFault {
            records_processed: merged.records,
            skipped_records,
            error: stream_error
                .as_ref()
                .map(|e| e.to_string())
                .unwrap_or_else(|| "damaged records skipped".to_string()),
            truncated: matches!(
                stream_error,
                Some(StreamError::Xml(_)) | Some(StreamError::Io(_))
            ),
        }),
    };
    let mut report = merged.finalize_forensic(watermark, threshold, engine.table());
    report.fault = fault;
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use wmx_core::{EncoderConfig, MarkableAttr};
    use wmx_rewrite::binding::{AttrBinding, EntityBinding};
    use wmx_rewrite::SchemaBinding;
    use wmx_schema::Fd;

    fn binding() -> SchemaBinding {
        SchemaBinding::new(
            "db1",
            vec![EntityBinding::new(
                "book",
                "/db/book",
                "title",
                vec![
                    ("title", AttrBinding::ChildText("title".into())),
                    ("editor", AttrBinding::ChildText("editor".into())),
                    ("year", AttrBinding::ChildText("year".into())),
                    ("publisher", AttrBinding::Attribute("publisher".into())),
                ],
            )
            .unwrap()],
        )
    }

    fn config() -> EncoderConfig {
        EncoderConfig::new(
            2,
            vec![
                MarkableAttr::integer("book", "year", 1),
                MarkableAttr::text("book", "publisher"),
            ],
        )
    }

    fn fd() -> Fd {
        Fd::new("editor-publisher", "/db/book", &["editor"], &["@publisher"]).unwrap()
    }

    fn doc(n: usize) -> String {
        let mut s = String::from("<db>");
        for i in 0..n {
            s.push_str(&format!(
                "<book publisher=\"pub{}\"><title>B{i}</title><editor>Ed{}</editor><year>{}</year></book>",
                i % 4,
                i % 4,
                1980 + (i % 30)
            ));
        }
        s.push_str("</db>");
        s
    }

    #[test]
    fn parallel_output_equals_sequential_and_dom() {
        let input = doc(120);
        let binding = binding();
        let config = config();
        let fds = [fd()];
        let ctx = StreamContext {
            binding: &binding,
            fds: &fds,
            config: &config,
        };
        let key = SecretKey::from_passphrase("par");
        let wm = Watermark::parse("10110100").unwrap();

        let mut seq_out = Vec::new();
        let seq_report =
            crate::stream_embed(input.as_bytes(), &mut seq_out, ctx, &key, &wm).unwrap();
        let seq_out = String::from_utf8(seq_out).unwrap();

        for workers in [1usize, 2, 4, 7] {
            let (par_out, par_report) = par_embed(&input, workers, ctx, &key, &wm).unwrap();
            assert_eq!(par_out, seq_out, "workers={workers}");
            assert_eq!(
                par_report.report.total_units, seq_report.report.total_units,
                "workers={workers}"
            );
            assert_eq!(
                par_report.report.marked_units, seq_report.report.marked_units,
                "workers={workers}"
            );
            assert_eq!(
                par_report.report.marked_nodes, seq_report.report.marked_nodes,
                "workers={workers}"
            );
        }

        let mut dom = wmx_xml::parse(&input).unwrap();
        wmx_core::embed(&mut dom, &binding, &fds, &config, &key, &wm).unwrap();
        assert_eq!(seq_out, wmx_xml::to_string(&dom));
    }

    #[test]
    fn forensics_are_worker_count_invariant() {
        let input = doc(130);
        let binding = binding();
        let config = config();
        let fds = [fd()];
        let ctx = StreamContext {
            binding: &binding,
            fds: &fds,
            config: &config,
        };
        let key = SecretKey::from_passphrase("par-forensic");
        let wm = Watermark::parse("10110100").unwrap();
        let (marked, _) = par_embed(&input, 4, ctx, &key, &wm).unwrap();
        // Vandalize every 9th year by +7 (odd: guaranteed parity flip)
        // so there is something to localize.
        let mut dom = wmx_xml::parse(&marked).unwrap();
        let years = wmx_xpath::Query::compile("/db/book/year")
            .unwrap()
            .select(&dom);
        for node in years.iter().step_by(9) {
            let v: i64 = node.string_value(&dom).parse().unwrap();
            wmx_core::write_value(&mut dom, node, &(v + 7).to_string()).unwrap();
        }
        let damaged = wmx_xml::to_string(&dom);
        let seq = crate::stream_detect_forensic(damaged.as_bytes(), ctx, &key, &wm, 0.85)
            .unwrap()
            .report
            .forensics
            .unwrap();
        assert!(seq.tampered);
        for workers in [1usize, 2, 3, 5, 8] {
            let par = par_detect_forensic(&damaged, workers, ctx, &key, &wm, 0.85)
                .unwrap()
                .report
                .forensics
                .unwrap();
            assert_eq!(par, seq, "workers={workers}");
        }
    }

    #[test]
    fn parallel_forensic_skips_garbled_records() {
        let input = doc(90);
        let binding = binding();
        let config = config();
        let ctx = StreamContext {
            binding: &binding,
            fds: &[],
            config: &config,
        };
        let key = SecretKey::from_passphrase("par-skip");
        let wm = Watermark::parse("1011").unwrap();
        let (marked, _) = par_embed(&input, 2, ctx, &key, &wm).unwrap();
        // Truncate mid-stream: the tolerant collector salvages the head.
        let cut = marked.len() * 70 / 100;
        let report = par_detect_forensic(&marked[..cut], 4, ctx, &key, &wm, 0.85).unwrap();
        let fault = report.fault.expect("truncation reported");
        assert!(fault.truncated);
        assert!(report.report.detected);
        // And the partial forensics agree with the sequential salvage.
        let seq =
            crate::stream_detect_forensic(&marked.as_bytes()[..cut], ctx, &key, &wm, 0.85).unwrap();
        assert_eq!(
            report.report.forensics.unwrap(),
            seq.report.forensics.unwrap()
        );
        assert_eq!(report.records, seq.records);
    }

    #[test]
    fn parallel_detect_votes_merge_exactly() {
        let input = doc(150);
        let binding = binding();
        let config = config();
        let fds = [fd()];
        let ctx = StreamContext {
            binding: &binding,
            fds: &fds,
            config: &config,
        };
        let key = SecretKey::from_passphrase("par");
        let wm = Watermark::parse("10110100").unwrap();
        let (marked, _) = par_embed(&input, 4, ctx, &key, &wm).unwrap();

        let seq = crate::stream_detect(marked.as_bytes(), ctx, &key, &wm, 0.85).unwrap();
        assert!(seq.report.detected);
        for workers in [2usize, 3, 8] {
            let par = par_detect(&marked, workers, ctx, &key, &wm, 0.85).unwrap();
            assert_eq!(
                par.report.bit_votes, seq.report.bit_votes,
                "workers={workers}"
            );
            assert_eq!(par.report.votes_cast, seq.report.votes_cast);
            assert_eq!(par.report.matched_bits, seq.report.matched_bits);
            assert!(par.report.detected);
        }
    }
}
