//! Chunked parallel driver: records fan out across worker threads.
//!
//! Because every per-unit decision (selection, bit index, nonce,
//! whitening) is a pure function of the unit id and the secret key,
//! records can be embedded in any order on any thread and the
//! reassembled output is byte-identical to the sequential pass. For
//! detection, per-chunk vote tallies merge by addition (FD-group
//! counters by id-set union), so the merged report equals the
//! sequential one exactly.

use crate::driver::Emitter;
use crate::engine::RecordEngine;
use crate::metrics::stream_metrics;
use crate::reader::{TopEvent, TopLevelReader};
use crate::report::{
    ChunkTiming, PartialDetect, PartialEmbed, StreamDetectReport, StreamEmbedReport,
};
use crate::{StreamContext, StreamError};
use std::time::Instant;
use wmx_core::{Watermark, WmError};
use wmx_crypto::SecretKey;

/// Collects the event list and locates the root info.
fn collect_events(input: &str) -> Result<Vec<TopEvent>, StreamError> {
    let mut reader = TopLevelReader::new(input.as_bytes());
    let mut events = Vec::new();
    while let Some(ev) = reader.next_event()? {
        events.push(ev);
    }
    Ok(events)
}

fn root_of(events: &[TopEvent]) -> (&str, &[wmx_xml::TokenAttribute]) {
    events
        .iter()
        .find_map(|ev| match ev {
            TopEvent::RootStart { name, attributes } => {
                Some((name.as_str(), attributes.as_slice()))
            }
            _ => None,
        })
        .expect("reader guarantees a root element")
}

/// Splits `records` into at most `workers` contiguous chunks, runs
/// `work` on each chunk concurrently, and returns the per-chunk results
/// in record order.
fn fan_out<T: Send>(
    records: &[&str],
    workers: usize,
    work: impl Fn(&[&str]) -> Result<T, StreamError> + Sync,
) -> Result<Vec<T>, StreamError> {
    if records.is_empty() {
        return Ok(Vec::new());
    }
    let workers = workers.max(1).min(records.len());
    let chunk = records.len().div_ceil(workers);
    let results: Vec<Result<T, StreamError>> = std::thread::scope(|scope| {
        let handles: Vec<_> = records
            .chunks(chunk)
            .map(|slice| scope.spawn(|| work(slice)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("stream worker panicked"))
            .collect()
    });
    results.into_iter().collect()
}

/// Parallel streaming embed over an in-memory document. Returns the
/// embedded bytes (identical to [`crate::stream_embed`]'s output and to
/// the DOM engine's `to_string`) and the merged report.
pub fn par_embed(
    input: &str,
    workers: usize,
    ctx: StreamContext<'_>,
    key: &SecretKey,
    watermark: &Watermark,
) -> Result<(String, StreamEmbedReport), StreamError> {
    if watermark.is_empty() {
        return Err(WmError::new("watermark must have at least one bit").into());
    }
    let events = collect_events(input)?;
    let (root_name, root_attrs) = root_of(&events);
    let engine = RecordEngine::new(ctx, key, watermark, root_name, root_attrs)?;
    let records: Vec<&str> = events
        .iter()
        .filter_map(|ev| match ev {
            TopEvent::Record(raw) => Some(raw.as_str()),
            _ => None,
        })
        .collect();

    let chunk_results = fan_out(&records, workers, |slice| {
        let start = Instant::now();
        let mut partial = PartialEmbed::default();
        let mut outputs = Vec::with_capacity(slice.len());
        for raw in slice {
            outputs.push(engine.embed_record(raw, &mut partial)?);
        }
        let timing = ChunkTiming {
            records: slice.len(),
            micros: start.elapsed().as_micros(),
        };
        stream_metrics().record_chunk(&timing);
        partial.chunk_timings.push(timing);
        Ok((outputs, partial))
    })?;

    let mut partial = PartialEmbed::default();
    let mut record_outputs: Vec<String> = Vec::with_capacity(records.len());
    for (outputs, chunk_partial) in chunk_results {
        record_outputs.extend(outputs);
        partial.merge(chunk_partial);
        stream_metrics().merges.inc();
    }

    let mut buf: Vec<u8> = Vec::with_capacity(input.len());
    let mut emitter = Emitter::new(&mut buf);
    let mut next_record = 0usize;
    for ev in &events {
        match ev {
            TopEvent::Record(_) => {
                emitter.event(ev, Some(&record_outputs[next_record]))?;
                next_record += 1;
            }
            _ => emitter.event(ev, None)?,
        }
    }
    emitter.finish()?;
    Ok((
        String::from_utf8(buf).expect("serialized XML is UTF-8"),
        partial.finalize(),
    ))
}

/// Parallel streaming detect over an in-memory document: chunk vote
/// tallies are merged into one report equal to the sequential pass.
pub fn par_detect(
    input: &str,
    workers: usize,
    ctx: StreamContext<'_>,
    key: &SecretKey,
    watermark: &Watermark,
    threshold: f64,
) -> Result<StreamDetectReport, StreamError> {
    if watermark.is_empty() {
        return Err(WmError::new("watermark must have at least one bit").into());
    }
    let events = collect_events(input)?;
    let (root_name, root_attrs) = root_of(&events);
    let engine = RecordEngine::new(ctx, key, watermark, root_name, root_attrs)?;
    let records: Vec<&str> = events
        .iter()
        .filter_map(|ev| match ev {
            TopEvent::Record(raw) => Some(raw.as_str()),
            _ => None,
        })
        .collect();

    let chunk_results = fan_out(&records, workers, |slice| {
        let start = Instant::now();
        let mut partial = PartialDetect::new(watermark.len());
        for raw in slice {
            engine.detect_record(raw, &mut partial)?;
        }
        let timing = ChunkTiming {
            records: slice.len(),
            micros: start.elapsed().as_micros(),
        };
        let metrics = stream_metrics();
        metrics.record_chunk(&timing);
        metrics.votes.add(partial.votes_cast as u64);
        partial.chunk_timings.push(timing);
        Ok(partial)
    })?;

    let mut merged = PartialDetect::new(watermark.len());
    for chunk_partial in chunk_results {
        merged.merge(chunk_partial);
        stream_metrics().merges.inc();
    }
    Ok(merged.finalize(watermark, threshold))
}

#[cfg(test)]
mod tests {
    use super::*;
    use wmx_core::{EncoderConfig, MarkableAttr};
    use wmx_rewrite::binding::{AttrBinding, EntityBinding};
    use wmx_rewrite::SchemaBinding;
    use wmx_schema::Fd;

    fn binding() -> SchemaBinding {
        SchemaBinding::new(
            "db1",
            vec![EntityBinding::new(
                "book",
                "/db/book",
                "title",
                vec![
                    ("title", AttrBinding::ChildText("title".into())),
                    ("editor", AttrBinding::ChildText("editor".into())),
                    ("year", AttrBinding::ChildText("year".into())),
                    ("publisher", AttrBinding::Attribute("publisher".into())),
                ],
            )
            .unwrap()],
        )
    }

    fn config() -> EncoderConfig {
        EncoderConfig::new(
            2,
            vec![
                MarkableAttr::integer("book", "year", 1),
                MarkableAttr::text("book", "publisher"),
            ],
        )
    }

    fn fd() -> Fd {
        Fd::new("editor-publisher", "/db/book", &["editor"], &["@publisher"]).unwrap()
    }

    fn doc(n: usize) -> String {
        let mut s = String::from("<db>");
        for i in 0..n {
            s.push_str(&format!(
                "<book publisher=\"pub{}\"><title>B{i}</title><editor>Ed{}</editor><year>{}</year></book>",
                i % 4,
                i % 4,
                1980 + (i % 30)
            ));
        }
        s.push_str("</db>");
        s
    }

    #[test]
    fn parallel_output_equals_sequential_and_dom() {
        let input = doc(120);
        let binding = binding();
        let config = config();
        let fds = [fd()];
        let ctx = StreamContext {
            binding: &binding,
            fds: &fds,
            config: &config,
        };
        let key = SecretKey::from_passphrase("par");
        let wm = Watermark::parse("10110100").unwrap();

        let mut seq_out = Vec::new();
        let seq_report =
            crate::stream_embed(input.as_bytes(), &mut seq_out, ctx, &key, &wm).unwrap();
        let seq_out = String::from_utf8(seq_out).unwrap();

        for workers in [1usize, 2, 4, 7] {
            let (par_out, par_report) = par_embed(&input, workers, ctx, &key, &wm).unwrap();
            assert_eq!(par_out, seq_out, "workers={workers}");
            assert_eq!(
                par_report.report.total_units, seq_report.report.total_units,
                "workers={workers}"
            );
            assert_eq!(
                par_report.report.marked_units, seq_report.report.marked_units,
                "workers={workers}"
            );
            assert_eq!(
                par_report.report.marked_nodes, seq_report.report.marked_nodes,
                "workers={workers}"
            );
        }

        let mut dom = wmx_xml::parse(&input).unwrap();
        wmx_core::embed(&mut dom, &binding, &fds, &config, &key, &wm).unwrap();
        assert_eq!(seq_out, wmx_xml::to_string(&dom));
    }

    #[test]
    fn parallel_detect_votes_merge_exactly() {
        let input = doc(150);
        let binding = binding();
        let config = config();
        let fds = [fd()];
        let ctx = StreamContext {
            binding: &binding,
            fds: &fds,
            config: &config,
        };
        let key = SecretKey::from_passphrase("par");
        let wm = Watermark::parse("10110100").unwrap();
        let (marked, _) = par_embed(&input, 4, ctx, &key, &wm).unwrap();

        let seq = crate::stream_detect(marked.as_bytes(), ctx, &key, &wm, 0.85).unwrap();
        assert!(seq.report.detected);
        for workers in [2usize, 3, 8] {
            let par = par_detect(&marked, workers, ctx, &key, &wm, 0.85).unwrap();
            assert_eq!(
                par.report.bit_votes, seq.report.bit_votes,
                "workers={workers}"
            );
            assert_eq!(par.report.votes_cast, seq.report.votes_cast);
            assert_eq!(par.report.matched_bits, seq.report.matched_bits);
            assert!(par.report.detected);
        }
    }
}
