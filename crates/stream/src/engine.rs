//! Per-record embed/detect: the heart of the streaming engine.
//!
//! Each raw record slice is re-parsed into a *mini-document* wrapped in
//! a copy of the root element (so absolute instance paths like
//! `/db/book` resolve), the shared unit enumeration from `wmx-core` runs
//! over it, and every unit goes through the same [`UnitMarker`] the DOM
//! encoder/decoder uses. Unit identities are key-based — never
//! positional — so a unit's selection, bit index, nonce, and whitening
//! are identical whether the unit was found in a 10 GB document or in
//! its own record: that is what makes streaming output bit-for-bit equal
//! to DOM output.

use crate::report::{PartialDetect, PartialEmbed};
use crate::{StreamContext, StreamError};
use wmx_core::{enumerate_units, DomNodes, DomNodesMut, UnitKind, UnitMarker, Watermark};
use wmx_crypto::SecretKey;
use wmx_xml::token::TokenAttribute;
use wmx_xml::{node_to_string, parse, Document};

/// A compiled streaming engine for one document's root + semantics.
pub(crate) struct RecordEngine<'a> {
    ctx: StreamContext<'a>,
    marker: UnitMarker,
    watermark: &'a Watermark,
    root_open: String,
    root_close: String,
}

/// Builds the compact open tag `<name a="v" ...>` from the serializer's
/// own attribute formatting, so streaming/DOM byte parity holds by
/// construction.
pub(crate) fn open_tag(name: &str, attributes: &[TokenAttribute]) -> String {
    let mut out = format!("<{name}");
    for attr in attributes {
        out.push_str(&wmx_xml::serialize::attribute_text(&attr.name, &attr.value));
    }
    out.push('>');
    out
}

impl<'a> RecordEngine<'a> {
    /// Creates the engine and validates that the semantic package is
    /// usable under streaming: configuration errors the DOM encoder
    /// would raise are raised here up front (even for empty documents),
    /// and entities bound to the document root itself are rejected.
    pub fn new(
        ctx: StreamContext<'a>,
        key: &SecretKey,
        watermark: &'a Watermark,
        root_name: &str,
        root_attributes: &[TokenAttribute],
    ) -> Result<Self, StreamError> {
        let root_open = open_tag(root_name, root_attributes);
        let root_close = format!("</{root_name}>");
        let probe = parse(&format!("{root_open}{root_close}")).map_err(StreamError::Xml)?;
        // Binding/config validation (unbound attributes, markable keys…)
        // happens before any instance loop, so the probe surfaces the
        // same errors the DOM encoder would.
        enumerate_units(&probe, ctx.binding, ctx.fds, ctx.config).map_err(StreamError::Wm)?;
        let probe_root = probe.root_element().expect("probe has a root");
        let mut entity_names: Vec<&str> = ctx
            .config
            .markable
            .iter()
            .map(|m| m.entity.as_str())
            .chain(ctx.config.structural.iter().map(|s| s.entity.as_str()))
            .collect();
        entity_names.sort_unstable();
        entity_names.dedup();
        for name in entity_names {
            if let Some(entity) = ctx.binding.entity(name) {
                let hits_root = entity
                    .instances(&probe)
                    .iter()
                    .any(|n| matches!(n, wmx_xpath::NodeRef::Node(id) if *id == probe_root));
                if hits_root {
                    return Err(StreamError::Unsupported(format!(
                        "entity {name:?} is bound to the document root ({}); \
                         record streaming needs instances below the root — use the DOM engine",
                        entity.instance_path
                    )));
                }
            }
        }
        Ok(RecordEngine {
            ctx,
            marker: UnitMarker::new(key.clone()),
            watermark,
            root_open,
            root_close,
        })
    }

    /// Parses one raw record slice into its wrapped mini-document.
    fn mini_doc(&self, record_raw: &str) -> Result<Document, StreamError> {
        let text = format!("{}{record_raw}{}", self.root_open, self.root_close);
        parse(&text).map_err(StreamError::Xml)
    }

    /// Embeds into one record; returns the record's serialized bytes.
    pub fn embed_record(
        &self,
        record_raw: &str,
        partial: &mut PartialEmbed,
    ) -> Result<String, StreamError> {
        let mut mini = self.mini_doc(record_raw)?;
        let units = enumerate_units(&mini, self.ctx.binding, self.ctx.fds, self.ctx.config)
            .map_err(StreamError::Wm)?;
        for unit in units {
            let fd_id = match &unit.kind {
                UnitKind::FdGroup { .. } => Some(unit.unit_id.clone()),
                _ => None,
            };
            match &fd_id {
                Some(id) => {
                    partial.fd_total.insert(id.clone());
                }
                None => partial.total_local += 1,
            }
            if !self
                .marker
                .is_selected(&unit.unit_id, self.ctx.config.gamma)
            {
                continue;
            }
            match &fd_id {
                Some(id) => {
                    partial.fd_selected.insert(id.clone());
                }
                None => partial.selected_local += 1,
            }
            let marked_nodes = self.marker.mark_unit(
                &mut DomNodesMut::new(&mut mini, &unit.nodes),
                &unit.unit_id,
                unit.mark,
                self.watermark,
            )?;
            if marked_nodes == 0 {
                continue;
            }
            partial.marked_nodes += marked_nodes;
            let newly_marked = match &fd_id {
                Some(id) => partial.fd_marked.insert(id.clone()),
                None => {
                    partial.marked_local += 1;
                    true
                }
            };
            if newly_marked {
                partial.queries.push((
                    fd_id,
                    wmx_core::StoredQuery {
                        unit_id: unit.unit_id.clone(),
                        xpath: unit.query.to_string(),
                        logical: unit.logical.clone(),
                        mark: unit.mark,
                    },
                ));
            }
        }
        partial.records += 1;
        partial.peak_resident_nodes = partial.peak_resident_nodes.max(mini.arena_len());
        let root = mini.root_element().expect("mini doc has a root");
        let record_node = mini
            .child_elements(root)
            .next()
            .expect("mini doc wraps exactly one record");
        Ok(node_to_string(&mini, record_node))
    }

    /// Extracts votes from one record.
    pub fn detect_record(
        &self,
        record_raw: &str,
        partial: &mut PartialDetect,
    ) -> Result<(), StreamError> {
        let mini = self.mini_doc(record_raw)?;
        let units = enumerate_units(&mini, self.ctx.binding, self.ctx.fds, self.ctx.config)
            .map_err(StreamError::Wm)?;
        let wm_len = self.watermark.len();
        for unit in units {
            if !self
                .marker
                .is_selected(&unit.unit_id, self.ctx.config.gamma)
            {
                continue;
            }
            let is_fd = matches!(unit.kind, UnitKind::FdGroup { .. });
            if is_fd {
                partial.fd_total.insert(unit.unit_id.clone());
            } else {
                partial.total_local += 1;
            }
            let votes = self.marker.extract_unit(
                &DomNodes::new(&mini, &unit.nodes),
                &unit.unit_id,
                unit.mark,
                wm_len,
            );
            if votes.bits.is_empty() {
                continue;
            }
            if is_fd {
                partial.fd_located.insert(unit.unit_id.clone());
            } else {
                partial.located_local += 1;
            }
            for bit in votes.bits {
                partial.votes_cast += 1;
                partial.bit_votes[votes.bit_index].add(bit);
            }
        }
        partial.records += 1;
        partial.peak_resident_nodes = partial.peak_resident_nodes.max(mini.arena_len());
        Ok(())
    }
}
