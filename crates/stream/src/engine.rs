//! Per-record embed/detect: the heart of the streaming engine.
//!
//! Each raw record slice is re-parsed into a *mini-document* wrapped in
//! a copy of the root element (so absolute instance paths like
//! `/db/book` resolve), the compiled [`SelectionPlan`] from `wmx-core`
//! runs over it, and every unit goes through the same [`UnitMarker`] the
//! DOM encoder/decoder uses. Unit identities are key-based — never
//! positional — so a unit's selection, bit index, nonce, and whitening
//! are identical whether the unit was found in a 10 GB document or in
//! its own record: that is what makes streaming output bit-for-bit equal
//! to DOM output.
//!
//! The engine is compiled **once per stream** and shared by every
//! record (and every worker thread): the plan is fetched from the
//! process-wide [`wmx_core::PlanCache`], so repeated streams over the
//! same schema reuse one compiled plan, its interned selection
//! vocabulary lets [`wmx_core::UnitKey`]s from different records/chunks
//! compare and merge directly, record mini-documents are parsed from a
//! clone of a seeded prototype [`Interner`] (root + binding vocabulary)
//! so their symbol ids stay stable across the whole stream, and identity
//! queries are only constructed for units that actually mark — detection
//! builds none at all. Per-record work does no name lookups and parses
//! no queries: every access step was resolved at plan compile time.

use crate::report::{PartialDetect, PartialEmbed};
use crate::{StreamContext, StreamError};
use std::fmt::Write as _;
use std::sync::Arc;
use wmx_core::{
    global_plan_cache, DomNodes, DomNodesMut, SelectionPlan, UnitMarker, UnitTag, Watermark,
};
use wmx_crypto::SecretKey;
use wmx_rewrite::binding::AttrBinding;
use wmx_xml::serialize::node_to_string_into;
use wmx_xml::token::TokenAttribute;
use wmx_xml::{parse, parse_seeded_owned, Document, Interner, ParseOptions};

/// A compiled streaming engine for one document's root + semantics.
pub(crate) struct RecordEngine<'a> {
    ctx: StreamContext<'a>,
    marker: UnitMarker,
    /// The *effective* watermark: the caller's watermark repeated
    /// `config.redundancy` times when redundancy mode is on, otherwise a
    /// plain copy. Every per-record embed/extract indexes into this.
    watermark: Watermark,
    root_open: String,
    root_close: String,
    /// Compiled selection plan shared across records, chunks, and worker
    /// threads (and, through the global cache, across streams with the
    /// same schema). Pre-resolved symbols and pre-compiled access steps
    /// mean per-record execution never touches an interner or a parser.
    plan: Arc<SelectionPlan>,
    /// Seeded prototype symbol table cloned into every record
    /// mini-document: record symbols are stable across the stream.
    prototype: Interner,
}

/// Builds the compact open tag `<name a="v" ...>` from the serializer's
/// own attribute formatting, so streaming/DOM byte parity holds by
/// construction.
pub(crate) fn open_tag(name: &str, attributes: &[TokenAttribute]) -> String {
    let mut out = String::with_capacity(name.len() + 2);
    out.push('<');
    out.push_str(name);
    for attr in attributes {
        out.push_str(&wmx_xml::serialize::attribute_text(&attr.name, &attr.value));
    }
    out.push('>');
    out
}

/// Interns the name-shaped fragments of a path text (step and attribute
/// names) into `proto` — a cheap overapproximation that pre-seeds the
/// vocabulary records will re-use.
fn seed_path_names(proto: &mut Interner, path: &str) {
    for part in path.split(|c: char| !(c.is_alphanumeric() || matches!(c, '_' | '-' | '.'))) {
        if !part.is_empty() && !part.chars().next().is_some_and(|c| c.is_ascii_digit()) {
            proto.intern(part);
        }
    }
}

impl<'a> RecordEngine<'a> {
    /// Creates the engine and validates that the semantic package is
    /// usable under streaming: configuration errors the DOM encoder
    /// would raise are raised here up front (even for empty documents)
    /// by plan compilation, and entities bound to the document root
    /// itself are rejected.
    pub fn new(
        ctx: StreamContext<'a>,
        key: &SecretKey,
        watermark: &'a Watermark,
        root_name: &str,
        root_attributes: &[TokenAttribute],
    ) -> Result<Self, StreamError> {
        let root_open = open_tag(root_name, root_attributes);
        let mut root_close = String::with_capacity(root_name.len() + 3);
        root_close.push_str("</");
        root_close.push_str(root_name);
        root_close.push('>');
        // Binding/config validation (unbound attributes, markable keys…)
        // happens at plan compile time, before any record is seen, so
        // the same errors the DOM encoder would raise surface here.
        let plan = global_plan_cache()
            .get_or_compile(ctx.binding, ctx.fds, ctx.config)
            .map_err(StreamError::Wm)?;
        let mut probe_text = String::with_capacity(root_open.len() + root_close.len());
        probe_text.push_str(&root_open);
        probe_text.push_str(&root_close);
        let probe = parse(&probe_text).map_err(StreamError::Xml)?;
        let probe_root = probe.root_element().expect("probe has a root");
        let mut entity_names: Vec<&str> = ctx
            .config
            .markable
            .iter()
            .map(|m| m.entity.as_str())
            .chain(ctx.config.structural.iter().map(|s| s.entity.as_str()))
            .collect();
        entity_names.sort_unstable();
        entity_names.dedup();
        for name in entity_names {
            if let Some(entity) = ctx.binding.entity(name) {
                let hits_root = entity
                    .instances(&probe)
                    .iter()
                    .any(|n| matches!(n, wmx_xpath::NodeRef::Node(id) if *id == probe_root));
                if hits_root {
                    let mut msg = String::new();
                    let _ = write!(
                        msg,
                        "entity {name:?} is bound to the document root ({}); \
                         record streaming needs instances below the root — use the DOM engine",
                        entity.instance_path
                    );
                    return Err(StreamError::Unsupported(msg));
                }
            }
        }
        // Prototype = the probe's symbols (root + root attributes) plus
        // the binding vocabulary records will mention. Every record's
        // mini-document starts from a clone, so shared names resolve to
        // the same symbol id in every record of the stream.
        let mut prototype = probe.interner().clone();
        for entity in ctx.binding.entities.values() {
            seed_path_names(&mut prototype, &entity.instance_path);
            for attr_binding in entity.attrs.values() {
                match attr_binding {
                    AttrBinding::ChildText(name) | AttrBinding::Attribute(name) => {
                        prototype.intern(name);
                    }
                    AttrBinding::Path(path) => seed_path_names(&mut prototype, path),
                    AttrBinding::SelfText => {}
                }
            }
        }
        let redundancy = ctx.config.redundancy.max(1) as usize;
        let watermark = if redundancy > 1 {
            watermark.repeat(redundancy)
        } else {
            watermark.clone()
        };
        Ok(RecordEngine {
            ctx,
            marker: UnitMarker::new(key.clone()),
            watermark,
            root_open,
            root_close,
            plan,
            prototype,
        })
    }

    /// The compiled plan's interned selection vocabulary — needed to
    /// render forensic unit keys at finalize time.
    pub fn table(&self) -> &wmx_core::SelectionTable {
        self.plan.table()
    }

    /// Parses one raw record slice into its wrapped mini-document.
    fn mini_doc(&self, record_raw: &str) -> Result<Document, StreamError> {
        let mut text =
            String::with_capacity(self.root_open.len() + record_raw.len() + self.root_close.len());
        text.push_str(&self.root_open);
        text.push_str(record_raw);
        text.push_str(&self.root_close);
        // Handing the buffer to the parser (instead of re-borrowing it)
        // lets the lexer back text/attribute spans with the shared input
        // — record values land in the DOM as zero-copy slices.
        parse_seeded_owned(text, ParseOptions::default(), self.prototype.clone())
            .map_err(StreamError::Xml)
    }

    /// Embeds into one record; returns the record's serialized bytes.
    pub fn embed_record(
        &self,
        record_raw: &str,
        partial: &mut PartialEmbed,
    ) -> Result<String, StreamError> {
        let mut out = String::new();
        self.embed_record_into(record_raw, partial, &mut out)?;
        Ok(out)
    }

    /// Buffer-reuse twin of [`RecordEngine::embed_record`]: appends the
    /// record's serialized bytes to `out` so the sequential driver can
    /// recycle one output allocation across all records.
    pub fn embed_record_into(
        &self,
        record_raw: &str,
        partial: &mut PartialEmbed,
        out: &mut String,
    ) -> Result<(), StreamError> {
        let mut mini = self.mini_doc(record_raw)?;
        let units = self.plan.execute(&mini);
        let table = self.plan.table();
        for unit in units {
            let is_fd = unit.key.tag == UnitTag::FdGroup;
            let selected = self
                .marker
                .is_selected(&unit.key.id(table), self.ctx.config.gamma);
            if is_fd {
                // One map entry per FD group carries total/selected/
                // marked flags — the key is cloned at most once per
                // chunk instead of once per counter set per record.
                let flags = partial.fd_entry(&unit.key);
                flags.selected |= selected;
            } else {
                partial.total_local += 1;
                if selected {
                    partial.selected_local += 1;
                }
            }
            if !selected {
                continue;
            }
            let marked_nodes = self.marker.mark_unit(
                &mut DomNodesMut::new(&mut mini, &unit.nodes),
                &unit.key.id(table),
                unit.mark,
                &self.watermark,
            )?;
            if marked_nodes == 0 {
                continue;
            }
            partial.marked_nodes += marked_nodes;
            let newly_marked = if is_fd {
                let flags = partial.fd_entry(&unit.key);
                let first = !flags.marked;
                flags.marked = true;
                first
            } else {
                partial.marked_local += 1;
                true
            };
            if newly_marked {
                // Identity queries (and textual unit ids) exist only
                // for units that actually marked.
                let (query, logical) =
                    unit.query_and_logical(table, self.ctx.binding, self.ctx.fds)?;
                let stored = wmx_core::StoredQuery {
                    unit_id: unit.key.display(table),
                    xpath: query.to_string(),
                    logical,
                    mark: unit.mark,
                };
                partial.queries.push((is_fd.then_some(unit.key), stored));
            }
        }
        partial.records += 1;
        partial.peak_resident_nodes = partial.peak_resident_nodes.max(mini.arena_len());
        let root = mini.root_element().expect("mini doc has a root");
        let record_node = mini
            .child_elements(root)
            .next()
            .expect("mini doc wraps exactly one record");
        node_to_string_into(&mini, record_node, out);
        Ok(())
    }

    /// Extracts votes from one record.
    pub fn detect_record(
        &self,
        record_raw: &str,
        partial: &mut PartialDetect,
    ) -> Result<(), StreamError> {
        let mini = self.mini_doc(record_raw)?;
        let units = self.plan.execute(&mini);
        let table = self.plan.table();
        let wm_len = self.watermark.len();
        for unit in units {
            if !self
                .marker
                .is_selected(&unit.key.id(table), self.ctx.config.gamma)
            {
                if let Some(tallies) = partial.forensics.as_mut() {
                    tallies.observe_unselected(&unit.key);
                }
                continue;
            }
            let is_fd = unit.key.tag == UnitTag::FdGroup;
            let votes = self.marker.extract_unit(
                &DomNodes::new(&mini, &unit.nodes),
                &unit.key.id(table),
                unit.mark,
                wm_len,
            );
            if let Some(tallies) = partial.forensics.as_mut() {
                tallies.observe(
                    &unit.key,
                    votes.bit_index,
                    self.watermark.bit(votes.bit_index),
                    &votes.bits,
                );
            }
            let located = !votes.bits.is_empty();
            if is_fd {
                // Map presence = selected FD unit; the flag = located.
                let entry = partial.fd_entry(unit.key);
                *entry |= located;
            } else {
                partial.total_local += 1;
                if located {
                    partial.located_local += 1;
                }
            }
            for bit in votes.bits {
                partial.votes_cast += 1;
                partial.bit_votes[votes.bit_index].add(bit);
            }
        }
        partial.records += 1;
        partial.peak_resident_nodes = partial.peak_resident_nodes.max(mini.arena_len());
        Ok(())
    }
}
