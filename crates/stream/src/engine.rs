//! Per-record embed/detect: the heart of the streaming engine.
//!
//! Each raw record slice is re-parsed into a *mini-document* wrapped in
//! a copy of the root element (so absolute instance paths like
//! `/db/book` resolve), the shared unit enumeration from `wmx-core` runs
//! over it, and every unit goes through the same [`UnitMarker`] the DOM
//! encoder/decoder uses. Unit identities are key-based — never
//! positional — so a unit's selection, bit index, nonce, and whitening
//! are identical whether the unit was found in a 10 GB document or in
//! its own record: that is what makes streaming output bit-for-bit equal
//! to DOM output.
//!
//! The engine is compiled **once per stream** and shared by every
//! record (and every worker thread): the [`SelectionTable`] interns the
//! selection vocabulary so [`wmx_core::UnitKey`]s from different
//! records/chunks compare and merge directly, record mini-documents are
//! parsed from a clone of a seeded prototype [`Interner`] (root +
//! binding vocabulary) so their symbol ids stay stable across the whole
//! stream, and identity queries are only constructed for units that
//! actually mark — detection builds none at all.

use crate::report::{PartialDetect, PartialEmbed};
use crate::{StreamContext, StreamError};
use wmx_core::{
    enumerate_units, DomNodes, DomNodesMut, SelectionTable, UnitMarker, UnitTag, Watermark,
};
use wmx_crypto::SecretKey;
use wmx_rewrite::binding::AttrBinding;
use wmx_xml::token::TokenAttribute;
use wmx_xml::{node_to_string, parse, parse_seeded, Document, Interner, ParseOptions};

/// A compiled streaming engine for one document's root + semantics.
pub(crate) struct RecordEngine<'a> {
    ctx: StreamContext<'a>,
    marker: UnitMarker,
    watermark: &'a Watermark,
    root_open: String,
    root_close: String,
    /// Interned selection vocabulary; shared by every record and chunk
    /// so unit keys merge without rendering.
    table: SelectionTable,
    /// Seeded prototype symbol table cloned into every record
    /// mini-document: record symbols are stable across the stream.
    prototype: Interner,
}

/// Builds the compact open tag `<name a="v" ...>` from the serializer's
/// own attribute formatting, so streaming/DOM byte parity holds by
/// construction.
pub(crate) fn open_tag(name: &str, attributes: &[TokenAttribute]) -> String {
    let mut out = format!("<{name}");
    for attr in attributes {
        out.push_str(&wmx_xml::serialize::attribute_text(&attr.name, &attr.value));
    }
    out.push('>');
    out
}

/// Interns the name-shaped fragments of a path text (step and attribute
/// names) into `proto` — a cheap overapproximation that pre-seeds the
/// vocabulary records will re-use.
fn seed_path_names(proto: &mut Interner, path: &str) {
    for part in path.split(|c: char| !(c.is_alphanumeric() || matches!(c, '_' | '-' | '.'))) {
        if !part.is_empty() && !part.chars().next().is_some_and(|c| c.is_ascii_digit()) {
            proto.intern(part);
        }
    }
}

impl<'a> RecordEngine<'a> {
    /// Creates the engine and validates that the semantic package is
    /// usable under streaming: configuration errors the DOM encoder
    /// would raise are raised here up front (even for empty documents),
    /// and entities bound to the document root itself are rejected.
    pub fn new(
        ctx: StreamContext<'a>,
        key: &SecretKey,
        watermark: &'a Watermark,
        root_name: &str,
        root_attributes: &[TokenAttribute],
    ) -> Result<Self, StreamError> {
        let root_open = open_tag(root_name, root_attributes);
        let root_close = format!("</{root_name}>");
        let table = SelectionTable::build(ctx.config, ctx.fds);
        let probe = parse(&format!("{root_open}{root_close}")).map_err(StreamError::Xml)?;
        // Binding/config validation (unbound attributes, markable keys…)
        // happens before any instance loop, so the probe surfaces the
        // same errors the DOM encoder would.
        enumerate_units(&probe, ctx.binding, ctx.fds, ctx.config, &table)
            .map_err(StreamError::Wm)?;
        let probe_root = probe.root_element().expect("probe has a root");
        let mut entity_names: Vec<&str> = ctx
            .config
            .markable
            .iter()
            .map(|m| m.entity.as_str())
            .chain(ctx.config.structural.iter().map(|s| s.entity.as_str()))
            .collect();
        entity_names.sort_unstable();
        entity_names.dedup();
        for name in entity_names {
            if let Some(entity) = ctx.binding.entity(name) {
                let hits_root = entity
                    .instances(&probe)
                    .iter()
                    .any(|n| matches!(n, wmx_xpath::NodeRef::Node(id) if *id == probe_root));
                if hits_root {
                    return Err(StreamError::Unsupported(format!(
                        "entity {name:?} is bound to the document root ({}); \
                         record streaming needs instances below the root — use the DOM engine",
                        entity.instance_path
                    )));
                }
            }
        }
        // Prototype = the probe's symbols (root + root attributes) plus
        // the binding vocabulary records will mention. Every record's
        // mini-document starts from a clone, so shared names resolve to
        // the same symbol id in every record of the stream.
        let mut prototype = probe.interner().clone();
        for entity in ctx.binding.entities.values() {
            seed_path_names(&mut prototype, &entity.instance_path);
            for attr_binding in entity.attrs.values() {
                match attr_binding {
                    AttrBinding::ChildText(name) | AttrBinding::Attribute(name) => {
                        prototype.intern(name);
                    }
                    AttrBinding::Path(path) => seed_path_names(&mut prototype, path),
                    AttrBinding::SelfText => {}
                }
            }
        }
        Ok(RecordEngine {
            ctx,
            marker: UnitMarker::new(key.clone()),
            watermark,
            root_open,
            root_close,
            table,
            prototype,
        })
    }

    /// Parses one raw record slice into its wrapped mini-document.
    fn mini_doc(&self, record_raw: &str) -> Result<Document, StreamError> {
        let text = format!("{}{record_raw}{}", self.root_open, self.root_close);
        parse_seeded(&text, ParseOptions::default(), self.prototype.clone())
            .map_err(StreamError::Xml)
    }

    /// Embeds into one record; returns the record's serialized bytes.
    pub fn embed_record(
        &self,
        record_raw: &str,
        partial: &mut PartialEmbed,
    ) -> Result<String, StreamError> {
        let mut mini = self.mini_doc(record_raw)?;
        let units = enumerate_units(
            &mini,
            self.ctx.binding,
            self.ctx.fds,
            self.ctx.config,
            &self.table,
        )
        .map_err(StreamError::Wm)?;
        for unit in units {
            let is_fd = unit.key.tag == UnitTag::FdGroup;
            let selected = self
                .marker
                .is_selected(&unit.key.id(&self.table), self.ctx.config.gamma);
            if is_fd {
                // One map entry per FD group carries total/selected/
                // marked flags — the key is cloned at most once per
                // chunk instead of once per counter set per record.
                let flags = partial.fd_entry(&unit.key);
                flags.selected |= selected;
            } else {
                partial.total_local += 1;
                if selected {
                    partial.selected_local += 1;
                }
            }
            if !selected {
                continue;
            }
            let marked_nodes = self.marker.mark_unit(
                &mut DomNodesMut::new(&mut mini, &unit.nodes),
                &unit.key.id(&self.table),
                unit.mark,
                self.watermark,
            )?;
            if marked_nodes == 0 {
                continue;
            }
            partial.marked_nodes += marked_nodes;
            let newly_marked = if is_fd {
                let flags = partial.fd_entry(&unit.key);
                let first = !flags.marked;
                flags.marked = true;
                first
            } else {
                partial.marked_local += 1;
                true
            };
            if newly_marked {
                // Identity queries (and textual unit ids) exist only
                // for units that actually marked.
                let (query, logical) =
                    unit.query_and_logical(&self.table, self.ctx.binding, self.ctx.fds)?;
                let stored = wmx_core::StoredQuery {
                    unit_id: unit.key.display(&self.table),
                    xpath: query.to_string(),
                    logical,
                    mark: unit.mark,
                };
                partial.queries.push((is_fd.then_some(unit.key), stored));
            }
        }
        partial.records += 1;
        partial.peak_resident_nodes = partial.peak_resident_nodes.max(mini.arena_len());
        let root = mini.root_element().expect("mini doc has a root");
        let record_node = mini
            .child_elements(root)
            .next()
            .expect("mini doc wraps exactly one record");
        Ok(node_to_string(&mini, record_node))
    }

    /// Extracts votes from one record.
    pub fn detect_record(
        &self,
        record_raw: &str,
        partial: &mut PartialDetect,
    ) -> Result<(), StreamError> {
        let mini = self.mini_doc(record_raw)?;
        let units = enumerate_units(
            &mini,
            self.ctx.binding,
            self.ctx.fds,
            self.ctx.config,
            &self.table,
        )
        .map_err(StreamError::Wm)?;
        let wm_len = self.watermark.len();
        for unit in units {
            if !self
                .marker
                .is_selected(&unit.key.id(&self.table), self.ctx.config.gamma)
            {
                continue;
            }
            let is_fd = unit.key.tag == UnitTag::FdGroup;
            let votes = self.marker.extract_unit(
                &DomNodes::new(&mini, &unit.nodes),
                &unit.key.id(&self.table),
                unit.mark,
                wm_len,
            );
            let located = !votes.bits.is_empty();
            if is_fd {
                // Map presence = selected FD unit; the flag = located.
                let entry = partial.fd_entry(unit.key);
                *entry |= located;
            } else {
                partial.total_local += 1;
                if located {
                    partial.located_local += 1;
                }
            }
            for bit in votes.bits {
                partial.votes_cast += 1;
                partial.bit_votes[votes.bit_index].add(bit);
            }
        }
        partial.records += 1;
        partial.peak_resident_nodes = partial.peak_resident_nodes.max(mini.arena_len());
        Ok(())
    }
}
