//! Shared workload setup and table rendering for the experiment harness
//! and the Criterion benches.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod table;
pub mod workloads;

pub use table::Table;
pub use workloads::{
    marked_publications, streaming_publications, MarkedWorkload, StreamingWorkload,
};
