//! Shared workload setup, table rendering, and the perf/robustness
//! telemetry subsystem (measurement runtime, BENCH report schema,
//! baseline store, regression gate) for the experiment harness and the
//! Criterion benches.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baseline;
pub mod gate;
pub mod json;
pub mod measure;
pub mod report;
pub mod table;
pub mod workloads;

pub use baseline::{baseline_from_report, compare, Baseline, BaselineMetric, Comparison};
pub use gate::{run_gate, run_suite, GateOptions, GateOutcome, SuiteParams};
pub use json::Json;
pub use measure::{peak_rss_kb, MeasureConfig, Measurement};
pub use report::{BenchReport, RobustnessStat, RunContext, ThroughputStat, SCHEMA_VERSION};
pub use table::Table;
pub use workloads::{
    marked_publications, streaming_publications, MarkedWorkload, StreamingWorkload,
};
