//! Baseline store and per-metric comparator for the regression gate.
//!
//! A baseline is a checked-in JSON file (`crates/bench/baselines/`)
//! pinning the flattened metrics of a known-good [`BenchReport`] run.
//! Every metric is higher-is-better (see [`BenchReport::metrics`]) and
//! carries a *tolerance*: the allowed fractional drop below the pinned
//! value before the gate fails.
//!
//! * Robustness metrics (detection verdicts, match fractions) are
//!   deterministic under fixed seeds, so their tolerance is `0.0` —
//!   **any** drop fails the gate.
//! * Throughput varies across machines, so its default tolerance is
//!   generous ([`THROUGHPUT_TOLERANCE`]); the gate catches catastrophic
//!   regressions everywhere while stricter floors can be set per-metric
//!   by editing the baseline file.

use crate::json::{obj, Json};
use crate::report::{BenchReport, SCHEMA_VERSION};
use std::path::Path;

/// Default allowed fractional drop for `throughput/…` metrics when a
/// baseline is refreshed: the gate only fails when throughput falls
/// below 25% of the pinned value, which tolerates CI machine variance
/// but still catches order-of-magnitude regressions.
pub const THROUGHPUT_TOLERANCE: f64 = 0.75;

/// A pinned set of metric floors.
#[derive(Debug, Clone, PartialEq)]
pub struct Baseline {
    /// Schema version (shared with the report schema).
    pub schema_version: u32,
    /// The workload this baseline pins.
    pub workload: String,
    /// Pinned metrics.
    pub metrics: Vec<BaselineMetric>,
}

/// One pinned metric.
#[derive(Debug, Clone, PartialEq)]
pub struct BaselineMetric {
    /// Flattened metric name (see [`BenchReport::metrics`]).
    pub name: String,
    /// The pinned (known-good) value.
    pub value: f64,
    /// Allowed fractional drop: the floor is `value * (1 - tolerance)`.
    pub tolerance: f64,
}

impl BaselineMetric {
    /// The lowest current value that still passes.
    pub fn floor(&self) -> f64 {
        self.value * (1.0 - self.tolerance)
    }
}

/// Verdict for one baseline metric.
#[derive(Debug, Clone, PartialEq)]
pub enum MetricStatus {
    /// Current value is at or above the floor.
    Pass,
    /// Current value is below the floor — the gate fails.
    Regressed,
    /// The metric is missing from the current report — the gate fails
    /// (a silently dropped measurement must not pass).
    Missing,
}

/// Comparison outcome for one metric.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricOutcome {
    /// Metric name.
    pub name: String,
    /// Pinned baseline value.
    pub baseline: f64,
    /// The floor the current value had to meet.
    pub floor: f64,
    /// Current value (`None` when missing).
    pub current: Option<f64>,
    /// Verdict.
    pub status: MetricStatus,
}

/// Full comparison of a report against a baseline.
#[derive(Debug, Clone)]
pub struct Comparison {
    /// One outcome per baseline metric.
    pub outcomes: Vec<MetricOutcome>,
    /// Metrics present in the report but not pinned (informational —
    /// refresh the baseline to start gating them).
    pub new_metrics: Vec<String>,
}

impl Comparison {
    /// Whether the gate passes (no regressed or missing metrics).
    pub fn passed(&self) -> bool {
        self.outcomes.iter().all(|o| o.status == MetricStatus::Pass)
    }

    /// Names of failing metrics.
    pub fn failures(&self) -> Vec<&MetricOutcome> {
        self.outcomes
            .iter()
            .filter(|o| o.status != MetricStatus::Pass)
            .collect()
    }

    /// Renders a human-readable verdict table.
    pub fn render(&self) -> String {
        let mut t =
            crate::table::Table::new(&["metric", "baseline", "floor", "current", "verdict"]);
        for o in &self.outcomes {
            t.row(vec![
                o.name.clone(),
                format!("{:.4}", o.baseline),
                format!("{:.4}", o.floor),
                o.current.map_or("-".into(), |v| format!("{v:.4}")),
                match o.status {
                    MetricStatus::Pass => "pass".into(),
                    MetricStatus::Regressed => "REGRESSED".into(),
                    MetricStatus::Missing => "MISSING".into(),
                },
            ]);
        }
        let mut out = t.render();
        if !self.new_metrics.is_empty() {
            out.push_str(&format!(
                "\nnew metrics not yet pinned ({}): {}\n",
                self.new_metrics.len(),
                self.new_metrics.join(", ")
            ));
        }
        out
    }
}

/// Compares a report's flattened metrics against a baseline.
pub fn compare(baseline: &Baseline, report: &BenchReport) -> Comparison {
    let current: Vec<(String, f64)> = report.metrics();
    let lookup = |name: &str| current.iter().find(|(n, _)| n == name).map(|(_, v)| *v);
    let outcomes = baseline
        .metrics
        .iter()
        .map(|m| {
            let floor = m.floor();
            let value = lookup(&m.name);
            let status = match value {
                None => MetricStatus::Missing,
                Some(v) if v < floor => MetricStatus::Regressed,
                Some(_) => MetricStatus::Pass,
            };
            MetricOutcome {
                name: m.name.clone(),
                baseline: m.value,
                floor,
                current: value,
                status,
            }
        })
        .collect();
    let new_metrics = current
        .iter()
        .filter(|(name, _)| !baseline.metrics.iter().any(|m| &m.name == name))
        .map(|(name, _)| name.clone())
        .collect();
    Comparison {
        outcomes,
        new_metrics,
    }
}

/// Builds a fresh baseline from a report, applying the default
/// tolerances: [`THROUGHPUT_TOLERANCE`] for `throughput/…`, exact
/// (`0.0`) for robustness metrics.
pub fn baseline_from_report(report: &BenchReport) -> Baseline {
    Baseline {
        schema_version: SCHEMA_VERSION,
        workload: report.workload.clone(),
        metrics: report
            .metrics()
            .into_iter()
            .map(|(name, value)| {
                let tolerance = if name.starts_with("throughput/") {
                    THROUGHPUT_TOLERANCE
                } else {
                    0.0
                };
                BaselineMetric {
                    name,
                    value,
                    tolerance,
                }
            })
            .collect(),
    }
}

impl Baseline {
    /// Serializes to pretty JSON.
    pub fn to_json_string(&self) -> String {
        obj(vec![
            ("schema_version", Json::Number(self.schema_version as f64)),
            ("workload", Json::String(self.workload.clone())),
            (
                "metrics",
                Json::Array(
                    self.metrics
                        .iter()
                        .map(|m| {
                            obj(vec![
                                ("name", Json::String(m.name.clone())),
                                ("value", Json::Number(m.value)),
                                ("tolerance", Json::Number(m.tolerance)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
        .to_pretty_string()
    }

    /// Parses a baseline file's contents.
    pub fn from_json_str(text: &str) -> Result<Baseline, String> {
        let json = Json::parse(text).map_err(|e| format!("malformed baseline JSON: {e}"))?;
        let version = json
            .get("schema_version")
            .and_then(Json::as_usize)
            .ok_or("missing schema_version")? as u32;
        if version != SCHEMA_VERSION {
            return Err(format!(
                "unsupported baseline schema version {version} (this build reads {SCHEMA_VERSION})"
            ));
        }
        let workload = json
            .get("workload")
            .and_then(Json::as_str)
            .ok_or("missing workload")?
            .to_string();
        let mut metrics = Vec::new();
        for m in json
            .get("metrics")
            .and_then(Json::as_array)
            .ok_or("missing metrics")?
        {
            let name = m
                .get("name")
                .and_then(Json::as_str)
                .ok_or("metric missing name")?
                .to_string();
            let value = m
                .get("value")
                .and_then(Json::as_f64)
                .ok_or("metric missing value")?;
            let tolerance = m
                .get("tolerance")
                .and_then(Json::as_f64)
                .ok_or("metric missing tolerance")?;
            if !(0.0..=1.0).contains(&tolerance) {
                return Err(format!(
                    "metric {name:?} has tolerance {tolerance} outside [0, 1]"
                ));
            }
            metrics.push(BaselineMetric {
                name,
                value,
                tolerance,
            });
        }
        Ok(Baseline {
            schema_version: version,
            workload,
            metrics,
        })
    }

    /// Reads a baseline from a file.
    pub fn load(path: &Path) -> Result<Baseline, String> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        Self::from_json_str(&text)
    }

    /// Writes the baseline to a file.
    pub fn save(&self, path: &Path) -> Result<(), String> {
        std::fs::write(path, self.to_json_string())
            .map_err(|e| format!("cannot write {}: {e}", path.display()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::{RobustnessStat, RunContext, ThroughputStat};

    fn report() -> BenchReport {
        BenchReport {
            schema_version: SCHEMA_VERSION,
            workload: "unit".into(),
            context: RunContext {
                records: 100,
                gamma: 3,
                seed: 1,
                watermark_bits: 24,
                threshold: 0.85,
                workers: 2,
                peak_rss_kb: None,
            },
            throughput: vec![ThroughputStat {
                name: "embed".into(),
                iters: 3,
                p50_ms: 10.0,
                p90_ms: 11.0,
                min_ms: 9.0,
                max_ms: 11.0,
                mean_ms: 10.0,
                mb_per_s: 100.0,
                records_per_s: 10000.0,
                peak_resident_nodes: None,
                chunk_ms: vec![],
            }],
            robustness: vec![RobustnessStat {
                name: "e2@0.30".into(),
                experiment: "e2".into(),
                detected: true,
                match_fraction: 0.95,
                votes_ones: 10,
                votes_zeros: 5,
            }],
            forensics: vec![crate::report::ForensicsStat::new(
                "localize@0.05",
                vec![("precision", 1.0)],
            )],
        }
    }

    #[test]
    fn fresh_baseline_passes_its_own_report() {
        let r = report();
        let b = baseline_from_report(&r);
        let cmp = compare(&b, &r);
        assert!(cmp.passed(), "{}", cmp.render());
        assert!(cmp.new_metrics.is_empty());
        // Default tolerances: generous for throughput, exact for rates.
        let embed = b
            .metrics
            .iter()
            .find(|m| m.name == "throughput/embed/mb_per_s")
            .unwrap();
        assert_eq!(embed.tolerance, THROUGHPUT_TOLERANCE);
        let detected = b
            .metrics
            .iter()
            .find(|m| m.name == "robustness/e2@0.30/detected")
            .unwrap();
        assert_eq!(detected.tolerance, 0.0);
    }

    #[test]
    fn throughput_regression_beyond_tolerance_fails() {
        let r = report();
        let mut b = baseline_from_report(&r);
        // Inflate the pinned throughput so the current run looks 10x
        // slower than the recorded baseline.
        for m in &mut b.metrics {
            if m.name == "throughput/embed/mb_per_s" {
                m.value = 1000.0; // floor = 250 > current 100
            }
        }
        let cmp = compare(&b, &r);
        assert!(!cmp.passed());
        let failures = cmp.failures();
        assert_eq!(failures.len(), 1);
        assert_eq!(failures[0].name, "throughput/embed/mb_per_s");
        assert_eq!(failures[0].status, MetricStatus::Regressed);
        assert!(cmp.render().contains("REGRESSED"));
    }

    #[test]
    fn tolerance_boundary_is_inclusive() {
        let r = report(); // current mb_per_s = 100
        let mut b = baseline_from_report(&r);
        let m = b
            .metrics
            .iter_mut()
            .find(|m| m.name == "throughput/embed/mb_per_s")
            .unwrap();
        // Floor exactly equals the current value: 400 * (1 - 0.75) = 100.
        m.value = 400.0;
        assert!(compare(&b, &r).passed());
        // A hair above the boundary fails.
        let m = b
            .metrics
            .iter_mut()
            .find(|m| m.name == "throughput/embed/mb_per_s")
            .unwrap();
        m.value = 400.0001;
        assert!(!compare(&b, &r).passed());
    }

    #[test]
    fn any_detection_rate_drop_fails() {
        let mut r = report();
        let b = baseline_from_report(&report());
        r.robustness[0].detected = false;
        r.robustness[0].match_fraction = 0.80;
        let cmp = compare(&b, &r);
        let failing: Vec<&str> = cmp.failures().iter().map(|o| o.name.as_str()).collect();
        assert!(failing.contains(&"robustness/e2@0.30/detected"));
        assert!(failing.contains(&"robustness/e2@0.30/match_fraction"));
    }

    #[test]
    fn missing_metric_fails_and_new_metric_is_reported() {
        let r = report();
        let mut b = baseline_from_report(&r);
        b.metrics.push(BaselineMetric {
            name: "throughput/vanished/mb_per_s".into(),
            value: 10.0,
            tolerance: 0.5,
        });
        let cmp = compare(&b, &r);
        assert!(!cmp.passed());
        assert_eq!(cmp.failures()[0].status, MetricStatus::Missing);
        assert!(cmp.render().contains("MISSING"));

        // A metric the report gained but the baseline does not pin yet
        // is informational, not a failure.
        let mut b2 = baseline_from_report(&r);
        b2.metrics
            .retain(|m| m.name != "robustness/e2@0.30/match_fraction");
        let cmp2 = compare(&b2, &r);
        assert!(cmp2.passed());
        assert_eq!(cmp2.new_metrics, vec!["robustness/e2@0.30/match_fraction"]);
    }

    #[test]
    fn baseline_roundtrips_and_validates() {
        let b = baseline_from_report(&report());
        let parsed = Baseline::from_json_str(&b.to_json_string()).unwrap();
        assert_eq!(parsed, b);

        let bad = r#"{"schema_version": 1, "workload": "w", "metrics": [
            {"name": "m", "value": 1, "tolerance": 1.5}
        ]}"#;
        assert!(Baseline::from_json_str(bad)
            .unwrap_err()
            .contains("tolerance"));
        assert!(Baseline::from_json_str("{}").is_err());
    }
}
