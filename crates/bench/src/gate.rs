//! The regression gate: runs a deterministic-seed measurement suite,
//! writes `BENCH_<workload>.json`, and compares it against a checked-in
//! baseline (`crates/bench/baselines/<workload>.json`).
//!
//! Exit-code contract (used by the `gate` binary, the `wmxml bench`
//! subcommand, and CI):
//!
//! * `0` — every pinned metric is at or above its floor.
//! * `2` — a throughput metric regressed past its tolerance, a
//!   detection-rate/match-fraction metric dropped at all, or a pinned
//!   metric vanished from the report.
//! * `1` — operational failure (unreadable baseline, I/O error); the
//!   binary maps `Err` to this.

use crate::baseline::{baseline_from_report, compare, Baseline, Comparison};
use crate::measure::{peak_rss_kb, MeasureConfig, Measurement};
use crate::report::{
    BenchReport, ForensicsStat, RobustnessStat, RunContext, ThroughputStat, SCHEMA_VERSION,
};
use crate::workloads::{escape_microbench_input, marked_publications, streaming_publications};
use std::collections::BTreeSet;
use std::path::{Path, PathBuf};
use wmx_attacks::redundancy::UnifyStrategy;
use wmx_attacks::{
    AlterationAttack, GarbleAttack, GarbleMode, ReductionAttack, RedundancyRemovalAttack,
    RoundingAttack, TruncationAttack,
};
use wmx_core::{
    detect, detect_forensic, embed, DetectionInput, DetectionReport, EncoderConfig,
    ForensicContext, MarkableAttr, UnitStatus, Watermark,
};
use wmx_crypto::SecretKey;
use wmx_data::publications::{self, PublicationsConfig};
use wmx_telemetry::json::Json as TJson;

/// Parameters of one gate suite run. All seeds are fixed so the
/// robustness grid is bit-for-bit reproducible across machines.
#[derive(Debug, Clone)]
pub struct SuiteParams {
    /// Workload name (names the report and baseline files).
    pub workload: String,
    /// Records in the throughput dataset.
    pub records: usize,
    /// Distinct editors (FD determinant cardinality).
    pub editors: usize,
    /// Selection density γ.
    pub gamma: u32,
    /// Dataset generator seed.
    pub seed: u64,
    /// Timed iterations per throughput measurement.
    pub iters: usize,
    /// Untimed warmup iterations.
    pub warmup: usize,
    /// Worker threads for the parallel streaming measurements.
    pub workers: usize,
}

/// Detection threshold τ used by every suite detection.
pub const THRESHOLD: f64 = 0.85;

/// Alteration intensities of the E2 grid points.
pub const E2_ALPHAS: [f64; 3] = [0.10, 0.30, 0.50];

/// Keep fractions of the E3 grid points.
pub const E3_KEEPS: [f64; 3] = [0.80, 0.40, 0.10];

/// The throughput entry points every suite measures. Besides the six
/// pipeline entry points, the suite pins the substrate stages the
/// interned-DOM and symbol-native refactors target: `parse`
/// (text → DOM), `serialize` (DOM → text), `query_eval` (the
/// safeguarded identity-query set re-evaluated against the marked
/// document — the detection hot path in isolation; its `records_per_s`
/// reads as queries/s), and `unit_select` (unit enumeration + keyed
/// PRF selection over every unit, no marking — the `UnitKey` layer in
/// isolation; its `records_per_s` reads as units/s). `stream_detect`'s
/// `records_per_s` doubles as the streaming per-record detect gauge.
/// `batch_detect` re-answers the same query set through
/// [`wmx_xpath::batch_select`] — one shared scan per identity-query
/// family instead of one evaluator pass per query; the contrast with
/// `query_eval` is the batch-detection speedup in isolation.
/// `parse_escape_free` / `parse_unescape_heavy` parse two synthetic
/// documents of identical shape, one with no entity references (all
/// values stay zero-copy spans) and one with references in every value
/// (all values materialize through unescape) — the pair brackets the
/// lexer's escape economy.
pub const THROUGHPUT_NAMES: [&str; 13] = [
    "embed",
    "detect",
    "stream_embed",
    "stream_detect",
    "par_embed",
    "par_detect",
    "parse",
    "parse_escape_free",
    "parse_unescape_heavy",
    "serialize",
    "query_eval",
    "unit_select",
    "batch_detect",
];

/// Grid-point names in emission order.
fn grid_point_names() -> Vec<String> {
    let mut names: Vec<String> = Vec::new();
    for alpha in E2_ALPHAS {
        names.push(format!("e2_alteration@{alpha:.2}"));
    }
    for keep in E3_KEEPS {
        names.push(format!("e3_reduction@{keep:.2}"));
    }
    names.push("e5_redundancy/fd_groups".into());
    names.push("e10_rounding/numeric_only".into());
    names.push("e10_rounding/all_families".into());
    names
}

/// Forensic-scenario names and their metric keys, in emission order.
/// Every metric is a deterministic function of the suite seeds, so the
/// baseline pins them with zero tolerance (like the robustness grid):
///
/// * `localize@0.05` — 5% of the selected numeric units perturbed;
///   `precision`/`recall` of suspect-record localization against the
///   known damage set.
/// * `recover@r3` — redundancy-3 embedding with every 8th year
///   perturbed; `rate` is recovered/(suspect+recovered+unrecoverable)
///   units, `detected` the verdict after group decode.
/// * `fault_truncate@0.60` — marked stream cut at 60% of its bytes;
///   `partial` is 1.0 iff the fault-tolerant decoder salvaged a
///   truncated partial verdict that still detects the mark.
/// * `fault_garble` — a digit-scrambled byte window mid-stream;
///   `isolated` is 1.0 iff detection survives and the suspects form a
///   non-empty strict subset of the records.
fn forensic_points() -> Vec<(&'static str, Vec<&'static str>)> {
    vec![
        ("localize@0.05", vec!["precision", "recall"]),
        ("recover@r3", vec!["rate", "detected"]),
        ("fault_truncate@0.60", vec!["partial"]),
        ("fault_garble", vec!["isolated"]),
    ]
}

impl SuiteParams {
    /// The CI smoke suite: small and fast, deterministic seeds.
    pub fn smoke() -> SuiteParams {
        SuiteParams {
            workload: "smoke".into(),
            records: 400,
            editors: 10,
            gamma: 3,
            seed: 2005,
            iters: 3,
            warmup: 1,
            workers: 2,
        }
    }

    /// A heavier local suite (same grid, larger documents).
    pub fn full() -> SuiteParams {
        SuiteParams {
            workload: "full".into(),
            records: 2000,
            editors: 40,
            gamma: 3,
            seed: 2005,
            iters: 5,
            warmup: 1,
            workers: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4)
                .min(8),
        }
    }

    /// The flattened metric names a run of this suite will produce, in
    /// order, without running it — used to validate that a checked-in
    /// baseline still lines up with the suite.
    pub fn expected_metric_names(&self) -> Vec<String> {
        let mut out = Vec::new();
        for name in THROUGHPUT_NAMES {
            out.push(format!("throughput/{name}/mb_per_s"));
            out.push(format!("throughput/{name}/records_per_s"));
        }
        for point in grid_point_names() {
            out.push(format!("robustness/{point}/detected"));
            out.push(format!("robustness/{point}/match_fraction"));
        }
        for (point, metrics) in forensic_points() {
            for metric in metrics {
                out.push(format!("forensics/{point}/{metric}"));
            }
        }
        out
    }
}

/// Runs the measurement suite and assembles the report.
pub fn run_suite(p: &SuiteParams) -> BenchReport {
    run_suite_full(p).0
}

/// Runs the measurement suite and also returns the forensic-scenario
/// artifact (the record-level localization detail behind the flattened
/// `forensics/…` metrics) the gate writes to `FORENSICS_<workload>.json`.
pub fn run_suite_full(p: &SuiteParams) -> (BenchReport, TJson) {
    let mcfg = MeasureConfig {
        warmup: p.warmup,
        iters: p.iters,
    };
    let w = marked_publications(p.records, p.editors, p.gamma, p.seed);
    let sw = streaming_publications(p.records, p.editors, p.gamma, p.seed);
    let input_bytes = sw.input.len() as u64;
    let records = p.records as u64;

    let mut throughput = Vec::new();

    // DOM embed (includes the copy of the original, as any caller pays it).
    let m = Measurement::run(&mcfg, input_bytes, records, || {
        let mut doc = w.original.clone();
        embed(
            &mut doc,
            &w.dataset.binding,
            &w.dataset.fds,
            &w.dataset.config,
            &w.key,
            &w.watermark,
        )
        .expect("embed");
    });
    throughput.push(ThroughputStat::from_measurement("embed", &m));

    // DOM detect over the safeguarded query set.
    let m = Measurement::run(&mcfg, input_bytes, records, || {
        let d = detect(
            &w.marked,
            &DetectionInput {
                queries: &w.report.queries,
                key: w.key.clone(),
                watermark: w.watermark.clone(),
                threshold: THRESHOLD,
                mapping: None,
            },
        );
        assert!(d.detected, "suite detect must recover the mark");
    });
    throughput.push(ThroughputStat::from_measurement("detect", &m));

    // Streaming embed (sequential, bounded memory). The last timed
    // iteration's output doubles as the detect input below.
    let mut stream_result = None;
    let m = Measurement::run(&mcfg, input_bytes, records, || {
        let mut out = Vec::with_capacity(sw.input.len());
        let report = wmx_stream::stream_embed(
            sw.input.as_bytes(),
            &mut out,
            sw.ctx(),
            &sw.key,
            &sw.watermark,
        )
        .expect("stream embed");
        stream_result = Some((report, out));
    });
    let (stream_report, marked_bytes) = stream_result.expect("at least one iteration ran");
    let marked_text = String::from_utf8(marked_bytes).expect("XML output is UTF-8");
    throughput.push(
        ThroughputStat::from_measurement("stream_embed", &m).with_stream_telemetry(
            stream_report.peak_resident_nodes,
            &stream_report.chunk_timings,
        ),
    );

    // Streaming detect (query-free).
    let mut detect_report = None;
    let m = Measurement::run(&mcfg, input_bytes, records, || {
        detect_report = Some(
            wmx_stream::stream_detect(
                marked_text.as_bytes(),
                sw.ctx(),
                &sw.key,
                &sw.watermark,
                THRESHOLD,
            )
            .expect("stream detect"),
        );
    });
    let detect_report = detect_report.expect("at least one iteration ran");
    assert!(detect_report.report.detected);
    throughput.push(
        ThroughputStat::from_measurement("stream_detect", &m).with_stream_telemetry(
            detect_report.peak_resident_nodes,
            &detect_report.chunk_timings,
        ),
    );

    // Parallel streaming embed/detect (per-chunk worker timings).
    let mut par_report = None;
    let m = Measurement::run(&mcfg, input_bytes, records, || {
        let (_, r) = wmx_stream::par_embed(&sw.input, p.workers, sw.ctx(), &sw.key, &sw.watermark)
            .expect("par embed");
        par_report = Some(r);
    });
    let par_report = par_report.expect("at least one iteration ran");
    throughput.push(
        ThroughputStat::from_measurement("par_embed", &m)
            .with_stream_telemetry(par_report.peak_resident_nodes, &par_report.chunk_timings),
    );

    let mut par_detect_report = None;
    let m = Measurement::run(&mcfg, input_bytes, records, || {
        par_detect_report = Some(
            wmx_stream::par_detect(
                &marked_text,
                p.workers,
                sw.ctx(),
                &sw.key,
                &sw.watermark,
                THRESHOLD,
            )
            .expect("par detect"),
        );
    });
    let par_detect_report = par_detect_report.expect("at least one iteration ran");
    throughput.push(
        ThroughputStat::from_measurement("par_detect", &m).with_stream_telemetry(
            par_detect_report.peak_resident_nodes,
            &par_detect_report.chunk_timings,
        ),
    );

    // DOM parse of the serialized input — the substrate cost every
    // pipeline pays first (lexing, interning, tree build).
    let m = Measurement::run(&mcfg, input_bytes, records, || {
        let doc = wmx_xml::parse(&sw.input).expect("suite parse");
        assert!(doc.root_element().is_some());
    });
    throughput.push(ThroughputStat::from_measurement("parse", &m));

    // Escape-economy microbench pair: same document shape, one input
    // entirely free of entity references (every text/attribute value
    // stays a zero-copy span of the parse buffer) and one salted with
    // references in every value (every value materializes through
    // unescape). The gap between the two isolates the cost of the
    // copy-and-rewrite path that clean input now skips.
    let escape_free = escape_microbench_input(p.records, false);
    let m = Measurement::run(&mcfg, escape_free.len() as u64, records, || {
        let doc = wmx_xml::parse(&escape_free).expect("escape-free parse");
        assert!(doc.root_element().is_some());
    });
    throughput.push(ThroughputStat::from_measurement("parse_escape_free", &m));

    let unescape_heavy = escape_microbench_input(p.records, true);
    let m = Measurement::run(&mcfg, unescape_heavy.len() as u64, records, || {
        let doc = wmx_xml::parse(&unescape_heavy).expect("unescape-heavy parse");
        assert!(doc.root_element().is_some());
    });
    throughput.push(ThroughputStat::from_measurement("parse_unescape_heavy", &m));

    // Compact serialization of the marked document (symbol resolution +
    // escaping; must stay byte-identical and fast).
    let m = Measurement::run(&mcfg, input_bytes, records, || {
        let out = wmx_xml::to_string(&w.marked);
        assert!(!out.is_empty());
    });
    throughput.push(ThroughputStat::from_measurement("serialize", &m));

    // Identity-query evaluation: the safeguarded query set re-executed
    // against the marked document, exactly what detection does per
    // unit. records_per_iter is the query count, so `records_per_s`
    // reads as queries evaluated per second.
    let queries: Vec<wmx_xpath::Query> = w
        .report
        .queries
        .iter()
        .map(|q| q.xpath.parse().expect("stored query compiles"))
        .collect();
    assert!(!queries.is_empty(), "suite embeds at least one unit");
    let m = Measurement::run(&mcfg, input_bytes, queries.len() as u64, || {
        let mut located = 0usize;
        for q in &queries {
            located += q.select(&w.marked).len();
        }
        assert!(located > 0, "identity queries must locate nodes");
    });
    throughput.push(ThroughputStat::from_measurement("query_eval", &m));

    // Symbol-native unit selection in isolation: enumerate every
    // markable unit and run the keyed PRF selection over its compact
    // key — the shared front half of embed and streaming detect.
    // records_per_iter is the unit count, so `records_per_s` reads as
    // units selected per second.
    let table = wmx_core::SelectionTable::build(&w.dataset.config, &w.dataset.fds);
    let unit_count = wmx_core::enumerate_units(
        &w.marked,
        &w.dataset.binding,
        &w.dataset.fds,
        &w.dataset.config,
        &table,
    )
    .expect("suite enumerates")
    .len() as u64;
    assert!(unit_count > 0, "suite workload has units");
    let marker = wmx_core::UnitMarker::new(w.key.clone());
    let m = Measurement::run(&mcfg, input_bytes, unit_count, || {
        let units = wmx_core::enumerate_units(
            &w.marked,
            &w.dataset.binding,
            &w.dataset.fds,
            &w.dataset.config,
            &table,
        )
        .expect("suite enumerates");
        let selected = units
            .iter()
            .filter(|u| marker.is_selected(&u.key.id(&table), w.dataset.config.gamma))
            .count();
        assert!(selected > 0, "selection must pick units at gamma");
    });
    throughput.push(ThroughputStat::from_measurement("unit_select", &m));

    // Batched identity-query evaluation: the safeguarded query set
    // answered through `batch_select`, which groups queries by family
    // and runs one shared instance scan + key-path evaluation per
    // group. records_per_iter is the query count, so `records_per_s`
    // reads as queries answered per second, directly comparable to
    // `query_eval` above.
    let m = Measurement::run(&mcfg, input_bytes, queries.len() as u64, || {
        let evaluator = wmx_xpath::Evaluator::new(&w.marked);
        let answers = wmx_xpath::batch_select(&evaluator, &queries);
        let mut located = 0usize;
        for (q, batch) in queries.iter().zip(&answers) {
            located += match batch {
                Some(nodes) => nodes.len(),
                None => q.select_with(&evaluator).len(),
            };
        }
        assert!(located > 0, "batched identity queries must locate nodes");
    });
    throughput.push(ThroughputStat::from_measurement("batch_detect", &m));

    let (forensics, forensics_artifact) = forensics_grid(p, &w, &sw, &marked_text);
    let report = BenchReport {
        schema_version: SCHEMA_VERSION,
        workload: p.workload.clone(),
        context: RunContext {
            records: p.records,
            gamma: p.gamma,
            seed: p.seed,
            watermark_bits: w.watermark.len(),
            threshold: THRESHOLD,
            workers: p.workers,
            peak_rss_kb: peak_rss_kb(),
        },
        throughput,
        robustness: attack_grid(p, &w),
        forensics,
    };
    (report, forensics_artifact)
}

fn detect_with(w: &crate::MarkedWorkload, doc: &wmx_xml::Document) -> DetectionReport {
    detect(
        doc,
        &DetectionInput {
            queries: &w.report.queries,
            key: w.key.clone(),
            watermark: w.watermark.clone(),
            threshold: THRESHOLD,
            mapping: None,
        },
    )
}

/// The fixed E2/E3/E5/E10 attack grid (demo attacks A, B, D and the
/// documented rounding limit), every point seeded deterministically.
fn attack_grid(p: &SuiteParams, w: &crate::MarkedWorkload) -> Vec<RobustnessStat> {
    let mut grid = Vec::new();

    // E2 — alteration attack (demo attack A).
    for alpha in E2_ALPHAS {
        let mut attacked = w.marked.clone();
        AlterationAttack::values(
            alpha,
            vec!["//book/year".into()],
            p.seed + (alpha * 100.0) as u64,
        )
        .apply(&mut attacked);
        grid.push(RobustnessStat::from_detection(
            &format!("e2_alteration@{alpha:.2}"),
            "e2",
            &detect_with(w, &attacked),
        ));
    }

    // E3 — reduction attack (demo attack B).
    for keep in E3_KEEPS {
        let mut attacked = w.marked.clone();
        ReductionAttack::new(keep, "/db/book", p.seed + (keep * 100.0) as u64).apply(&mut attacked);
        grid.push(RobustnessStat::from_detection(
            &format!("e3_reduction@{keep:.2}"),
            "e3",
            &detect_with(w, &attacked),
        ));
    }

    // E5 — redundancy removal (demo attack D): FD-aware marks survive
    // unification of duplicated publisher values.
    {
        let dataset = publications::generate(&PublicationsConfig {
            records: p.records,
            editors: p.editors,
            seed: p.seed + 50,
            gamma: 1,
        });
        let config = EncoderConfig::new(1, vec![MarkableAttr::text("book", "publisher")]);
        let key = SecretKey::from_passphrase("gate-e5");
        let wm = Watermark::from_message("gate-e5", 16);
        let mut marked = dataset.doc.clone();
        let report = embed(
            &mut marked,
            &dataset.binding,
            &dataset.fds,
            &config,
            &key,
            &wm,
        )
        .expect("e5 embed");
        let mut attacked = marked.clone();
        RedundancyRemovalAttack::new(dataset.fds.clone(), UnifyStrategy::MajorityValue)
            .apply(&mut attacked);
        let d = detect(
            &attacked,
            &DetectionInput {
                queries: &report.queries,
                key,
                watermark: wm,
                threshold: THRESHOLD,
                mapping: None,
            },
        );
        grid.push(RobustnessStat::from_detection(
            "e5_redundancy/fd_groups",
            "e5",
            &d,
        ));
    }

    // E10 — rounding attack: numeric parity marks are erased (the
    // documented limit), mixing in the text/order families preserves
    // detection. Both facts are pinned.
    for (label, numeric_only) in [("numeric_only", true), ("all_families", false)] {
        let dataset = publications::generate(&PublicationsConfig {
            records: p.records,
            editors: p.editors,
            seed: p.seed + 100,
            gamma: 1,
        });
        let mut markable = vec![MarkableAttr::integer("book", "year", 1)];
        if !numeric_only {
            markable.push(MarkableAttr::text("book", "publisher"));
        }
        let mut config = EncoderConfig::new(1, markable);
        if !numeric_only {
            config = config.with_structural("book", "author");
        }
        let key = SecretKey::from_passphrase("gate-e10");
        let wm = Watermark::from_message("gate-e10", 16);
        let mut marked = dataset.doc.clone();
        let report = embed(
            &mut marked,
            &dataset.binding,
            &dataset.fds,
            &config,
            &key,
            &wm,
        )
        .expect("e10 embed");
        let mut attacked = marked.clone();
        RoundingAttack::new(2, vec!["//book/year".into()]).apply(&mut attacked);
        let d = detect(
            &attacked,
            &DetectionInput {
                queries: &report.queries,
                key,
                watermark: wm,
                threshold: THRESHOLD,
                mapping: None,
            },
        );
        grid.push(RobustnessStat::from_detection(
            &format!("e10_rounding/{label}"),
            "e10",
            &d,
        ));
    }

    grid
}

fn tobj(members: Vec<(&str, TJson)>) -> TJson {
    TJson::Object(
        members
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

/// The deterministic forensic-scenario grid (see [`forensic_points`]):
/// flattened gate metrics plus the record-level artifact written to
/// `FORENSICS_<workload>.json`.
fn forensics_grid(
    p: &SuiteParams,
    w: &crate::MarkedWorkload,
    sw: &crate::StreamingWorkload,
    marked_stream: &str,
) -> (Vec<ForensicsStat>, TJson) {
    let mut stats = Vec::new();
    let mut scenarios = Vec::new();

    // localize@0.05 — perturb 5% of the selected numeric units (the +7
    // flips the parity mark) and demand that the suspect records the
    // forensic pass flags are exactly the damaged ones.
    {
        let table = wmx_core::SelectionTable::build(&w.dataset.config, &w.dataset.fds);
        let units = wmx_core::enumerate_units(
            &w.marked,
            &w.dataset.binding,
            &w.dataset.fds,
            &w.dataset.config,
            &table,
        )
        .expect("forensic enumerate");
        let marker = wmx_core::UnitMarker::new(w.key.clone());
        let mut doc = w.marked.clone();
        let mut damaged: BTreeSet<String> = BTreeSet::new();
        let mut numeric_seen = 0usize;
        for unit in &units {
            if !marker.is_selected(&unit.key.id(&table), w.dataset.config.gamma) {
                continue;
            }
            let Ok(year) = unit.nodes[0].string_value(&doc).parse::<i64>() else {
                continue;
            };
            numeric_seen += 1;
            if !numeric_seen.is_multiple_of(20) {
                continue;
            }
            wmx_core::write_value(&mut doc, &unit.nodes[0], &(year + 7).to_string())
                .expect("damage year");
            damaged.insert(unit.key.record_scope(&table));
        }
        assert!(!damaged.is_empty(), "localize scenario must damage records");
        let d = detect_forensic(
            &doc,
            &DetectionInput {
                queries: &w.report.queries,
                key: w.key.clone(),
                watermark: w.watermark.clone(),
                threshold: THRESHOLD,
                mapping: None,
            },
            ForensicContext {
                binding: &w.dataset.binding,
                fds: &w.dataset.fds,
                config: &w.dataset.config,
            },
        )
        .expect("localize forensic detect");
        let f = d.forensics.as_ref().expect("forensics attached");
        let suspects: BTreeSet<String> = f
            .records
            .iter()
            .filter(|r| r.status == UnitStatus::Suspect)
            .map(|r| r.record.clone())
            .collect();
        let hits = suspects.intersection(&damaged).count() as f64;
        let precision = if suspects.is_empty() {
            0.0
        } else {
            hits / suspects.len() as f64
        };
        let recall = hits / damaged.len() as f64;
        stats.push(ForensicsStat::new(
            "localize@0.05",
            vec![("precision", precision), ("recall", recall)],
        ));
        scenarios.push(tobj(vec![
            ("name", TJson::String("localize@0.05".into())),
            ("damaged_records", TJson::Number(damaged.len() as f64)),
            ("suspect_records", TJson::Number(suspects.len() as f64)),
            ("precision", TJson::Number(precision)),
            ("recall", TJson::Number(recall)),
            ("forensics", f.to_json()),
        ]));
    }

    // recover@r3 — embed with 3-way group redundancy, damage every 8th
    // year, and demand the group decode recovers every damaged unit.
    {
        let dataset = publications::generate(&PublicationsConfig {
            records: p.records,
            editors: p.editors,
            seed: p.seed + 300,
            gamma: 1,
        });
        let config = dataset.config.clone().with_redundancy(3);
        let key = SecretKey::from_passphrase("gate-forensics");
        let wm = Watermark::from_message("gate-forensics", 16);
        let mut marked = dataset.doc.clone();
        let report = embed(
            &mut marked,
            &dataset.binding,
            &dataset.fds,
            &config,
            &key,
            &wm,
        )
        .expect("r3 embed");
        let years = wmx_xpath::Query::compile("//book/year")
            .expect("year query")
            .select(&marked);
        for (i, node) in years.iter().enumerate() {
            if !i.is_multiple_of(8) {
                continue;
            }
            let year: i64 = node.string_value(&marked).parse().expect("numeric year");
            wmx_core::write_value(&mut marked, node, &(year + 7).to_string()).expect("damage year");
        }
        let d = detect_forensic(
            &marked,
            &DetectionInput {
                queries: &report.queries,
                key,
                watermark: wm,
                threshold: THRESHOLD,
                mapping: None,
            },
            ForensicContext {
                binding: &dataset.binding,
                fds: &dataset.fds,
                config: &config,
            },
        )
        .expect("r3 forensic detect");
        let f = d.forensics.as_ref().expect("forensics attached");
        let flagged = f.suspect_units + f.recovered_units + f.unrecoverable_units;
        let rate = if flagged == 0 {
            0.0
        } else {
            f.recovered_units as f64 / flagged as f64
        };
        let detected = if d.detected { 1.0 } else { 0.0 };
        stats.push(ForensicsStat::new(
            "recover@r3",
            vec![("rate", rate), ("detected", detected)],
        ));
        scenarios.push(tobj(vec![
            ("name", TJson::String("recover@r3".into())),
            ("recovered_units", TJson::Number(f.recovered_units as f64)),
            ("suspect_units", TJson::Number(f.suspect_units as f64)),
            (
                "unrecoverable_units",
                TJson::Number(f.unrecoverable_units as f64),
            ),
            ("rate", TJson::Number(rate)),
            ("detected", TJson::Bool(d.detected)),
        ]));
    }

    // fault_truncate@0.60 — cut the marked stream at 60% of its bytes;
    // the fault-tolerant decoder must salvage a truncated partial
    // verdict that still detects the mark from the surviving prefix.
    {
        let cut = TruncationAttack::new(0.60).apply(marked_stream);
        let r = wmx_stream::stream_detect_forensic(
            cut.as_bytes(),
            sw.ctx(),
            &sw.key,
            &sw.watermark,
            THRESHOLD,
        )
        .expect("truncated stream salvages a partial verdict");
        let partial = match &r.fault {
            Some(fault)
                if fault.truncated
                    && r.records > 0
                    && r.records < p.records
                    && r.report.detected =>
            {
                1.0
            }
            _ => 0.0,
        };
        stats.push(ForensicsStat::new(
            "fault_truncate@0.60",
            vec![("partial", partial)],
        ));
        scenarios.push(tobj(vec![
            ("name", TJson::String("fault_truncate@0.60".into())),
            ("records_processed", TJson::Number(r.records as f64)),
            ("records_total", TJson::Number(p.records as f64)),
            (
                "truncated",
                TJson::Bool(r.fault.as_ref().is_some_and(|f| f.truncated)),
            ),
            ("detected", TJson::Bool(r.report.detected)),
            ("partial", TJson::Number(partial)),
        ]));
    }

    // fault_garble — scramble the digits in a mid-stream byte window
    // (still well-formed XML); detection must survive and the suspects
    // must be a non-empty strict subset of the records: the damage is
    // noticed AND isolated.
    {
        let garble = GarbleAttack::new(0.45, 1000, GarbleMode::ScrambleDigits, 2);
        let garbled =
            String::from_utf8(garble.apply(marked_stream)).expect("digit scramble stays UTF-8");
        let r = wmx_stream::stream_detect_forensic(
            garbled.as_bytes(),
            sw.ctx(),
            &sw.key,
            &sw.watermark,
            THRESHOLD,
        )
        .expect("garbled stream still parses");
        let f = r.report.forensics.as_ref().expect("forensics attached");
        let isolated = if f.tampered
            && f.suspect_records > 0
            && f.suspect_records < f.records.len()
            && r.report.detected
        {
            1.0
        } else {
            0.0
        };
        stats.push(ForensicsStat::new(
            "fault_garble",
            vec![("isolated", isolated)],
        ));
        scenarios.push(tobj(vec![
            ("name", TJson::String("fault_garble".into())),
            ("suspect_records", TJson::Number(f.suspect_records as f64)),
            ("records_total", TJson::Number(f.records.len() as f64)),
            ("tampered", TJson::Bool(f.tampered)),
            ("detected", TJson::Bool(r.report.detected)),
            ("isolated", TJson::Number(isolated)),
        ]));
    }

    let artifact = tobj(vec![
        ("schema_version", TJson::Number(SCHEMA_VERSION as f64)),
        ("workload", TJson::String(p.workload.clone())),
        ("scenarios", TJson::Array(scenarios)),
    ]);
    (stats, artifact)
}

/// Options for one gate invocation.
#[derive(Debug, Clone)]
pub struct GateOptions {
    /// Suite parameters (smoke or full, or custom in tests).
    pub params: SuiteParams,
    /// Directory the `BENCH_<workload>.json` report is written to.
    pub out_dir: PathBuf,
    /// Baseline file (defaults to
    /// `crates/bench/baselines/<workload>.json`).
    pub baseline_path: Option<PathBuf>,
    /// Refresh the baseline from this run instead of comparing.
    pub write_baseline: bool,
    /// Write the report but skip the comparison.
    pub skip_compare: bool,
}

impl GateOptions {
    /// The standard CI invocation: smoke suite, report in the current
    /// directory, checked-in baseline.
    pub fn smoke() -> GateOptions {
        GateOptions {
            params: SuiteParams::smoke(),
            out_dir: PathBuf::from("."),
            baseline_path: None,
            write_baseline: false,
            skip_compare: false,
        }
    }
}

/// Result of a gate run.
#[derive(Debug)]
pub struct GateOutcome {
    /// Where the report was written.
    pub report_path: PathBuf,
    /// Where the validated telemetry snapshot was written.
    pub telemetry_path: PathBuf,
    /// Where the forensic-scenario artifact was written
    /// (`FORENSICS_<workload>.json`).
    pub forensics_path: PathBuf,
    /// The comparison (absent with `--write-baseline`/`--no-compare`).
    pub comparison: Option<Comparison>,
    /// Process exit code per the module contract.
    pub exit_code: i32,
    /// Human-readable summary (verdict table or refresh notice).
    pub summary: String,
}

/// The checked-in default baseline location for a workload: the
/// repo-relative `crates/bench/baselines/<workload>.json` when it
/// resolves from the current directory (any binary run from the
/// workspace root, e.g. CI), falling back to the build-time manifest
/// directory (`cargo run` from a subdirectory of the same tree).
pub fn default_baseline_path(workload: &str) -> PathBuf {
    let file = format!("{workload}.json");
    let relative = Path::new("crates/bench/baselines").join(&file);
    if relative.exists() {
        return relative;
    }
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("baselines")
        .join(file)
}

/// Writes `TELEMETRY_<workload>.json` — the process-wide registry
/// snapshot — into `out_dir`, validating it against the snapshot schema
/// before returning.
fn write_telemetry_snapshot(workload: &str, out_dir: &Path) -> Result<PathBuf, String> {
    let snapshot = wmx_telemetry::global_snapshot();
    wmx_telemetry::validate_snapshot(&snapshot)
        .map_err(|e| format!("telemetry snapshot failed schema validation: {e}"))?;
    let path = out_dir.join(format!("TELEMETRY_{workload}.json"));
    std::fs::write(&path, snapshot.to_pretty_string())
        .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
    Ok(path)
}

/// Runs the suite, writes the report, and compares or refreshes the
/// baseline. `Err` means an operational failure (exit 1 in the binary);
/// a failed comparison is `Ok` with `exit_code` 2.
pub fn run_gate(opts: &GateOptions) -> Result<GateOutcome, String> {
    let (report, forensics_artifact) = run_suite_full(&opts.params);
    let report_path = report
        .write_to_dir(&opts.out_dir)
        .map_err(|e| format!("cannot write report into {}: {e}", opts.out_dir.display()))?;
    // The suite just drove both engines end to end, so the global
    // telemetry registry is fully populated: export it next to the
    // BENCH report and hold it to the snapshot schema — the gate is
    // also the CI proof that instrumentation stays well-formed.
    let telemetry_path = write_telemetry_snapshot(&opts.params.workload, &opts.out_dir)?;
    // Record-level localization detail behind the flattened forensics
    // metrics — the artifact CI uploads for post-mortem inspection.
    let forensics_path = opts
        .out_dir
        .join(format!("FORENSICS_{}.json", opts.params.workload));
    std::fs::write(&forensics_path, forensics_artifact.to_pretty_string())
        .map_err(|e| format!("cannot write {}: {e}", forensics_path.display()))?;
    let baseline_path = opts
        .baseline_path
        .clone()
        .unwrap_or_else(|| default_baseline_path(&opts.params.workload));

    if opts.write_baseline {
        let baseline = baseline_from_report(&report);
        if let Some(parent) = baseline_path.parent() {
            std::fs::create_dir_all(parent)
                .map_err(|e| format!("cannot create {}: {e}", parent.display()))?;
        }
        baseline.save(&baseline_path)?;
        return Ok(GateOutcome {
            report_path,
            telemetry_path,
            forensics_path,
            comparison: None,
            exit_code: 0,
            summary: format!(
                "baseline refreshed: {} ({} metrics pinned)",
                baseline_path.display(),
                baseline.metrics.len()
            ),
        });
    }
    if opts.skip_compare {
        let summary = format!(
            "report written to {} (comparison skipped)",
            report_path.display()
        );
        return Ok(GateOutcome {
            report_path,
            telemetry_path,
            forensics_path,
            comparison: None,
            exit_code: 0,
            summary,
        });
    }

    let baseline = Baseline::load(&baseline_path).map_err(|e| {
        format!("{e}\nhint: refresh it with `cargo run -p wmx-bench --bin gate -- --smoke --write-baseline`")
    })?;
    if baseline.workload != report.workload {
        return Err(format!(
            "baseline pins workload {:?} but the suite ran {:?}",
            baseline.workload, report.workload
        ));
    }
    let comparison = compare(&baseline, &report);
    let passed = comparison.passed();
    let summary = format!(
        "{}\ngate {}: {} metric(s) checked against {}",
        comparison.render(),
        if passed { "PASSED" } else { "FAILED" },
        comparison.outcomes.len(),
        baseline_path.display()
    );
    Ok(GateOutcome {
        report_path,
        telemetry_path,
        forensics_path,
        comparison: Some(comparison),
        exit_code: if passed { 0 } else { 2 },
        summary,
    })
}
