//! Canonical experiment workloads.

use wmx_core::{embed, EmbedReport, Watermark};
use wmx_crypto::SecretKey;
use wmx_data::publications::{generate, PublicationsConfig};
use wmx_data::Dataset;
use wmx_xml::Document;

/// A marked publications workload shared by experiments and benches.
pub struct MarkedWorkload {
    /// The dataset (original document + semantics).
    pub dataset: Dataset,
    /// The original document (same as `dataset.doc`).
    pub original: Document,
    /// The marked document.
    pub marked: Document,
    /// Embedding report (query set etc.).
    pub report: EmbedReport,
    /// The secret key.
    pub key: SecretKey,
    /// The watermark.
    pub watermark: Watermark,
}

/// Generates and watermarks a publications database.
pub fn marked_publications(
    records: usize,
    editors: usize,
    gamma: u32,
    seed: u64,
) -> MarkedWorkload {
    let dataset = generate(&PublicationsConfig {
        records,
        editors,
        seed,
        gamma,
    });
    let original = dataset.doc.clone();
    let key = SecretKey::from_passphrase("bench-key");
    let watermark = Watermark::from_message("© bench owner", 24);
    let mut marked = original.clone();
    let report = embed(
        &mut marked,
        &dataset.binding,
        &dataset.fds,
        &dataset.config,
        &key,
        &watermark,
    )
    .expect("embedding succeeds on generated data");
    MarkedWorkload {
        dataset,
        original,
        marked,
        report,
        key,
        watermark,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_builds_and_is_marked() {
        let w = marked_publications(50, 5, 2, 7);
        assert!(w.report.marked_units > 0);
        assert_eq!(w.dataset.name, "publications");
    }
}
