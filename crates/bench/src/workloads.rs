//! Canonical experiment workloads.

use wmx_core::{embed, EmbedReport, Watermark};
use wmx_crypto::SecretKey;
use wmx_data::publications::{generate, PublicationsConfig};
use wmx_data::Dataset;
use wmx_xml::Document;

/// A marked publications workload shared by experiments and benches.
pub struct MarkedWorkload {
    /// The dataset (original document + semantics).
    pub dataset: Dataset,
    /// The original document (same as `dataset.doc`).
    pub original: Document,
    /// The marked document.
    pub marked: Document,
    /// Embedding report (query set etc.).
    pub report: EmbedReport,
    /// The secret key.
    pub key: SecretKey,
    /// The watermark.
    pub watermark: Watermark,
}

/// Generates and watermarks a publications database.
pub fn marked_publications(
    records: usize,
    editors: usize,
    gamma: u32,
    seed: u64,
) -> MarkedWorkload {
    let dataset = generate(&PublicationsConfig {
        records,
        editors,
        seed,
        gamma,
    });
    let original = dataset.doc.clone();
    let key = SecretKey::from_passphrase("bench-key");
    let watermark = Watermark::from_message("© bench owner", 24);
    let mut marked = original.clone();
    let report = embed(
        &mut marked,
        &dataset.binding,
        &dataset.fds,
        &dataset.config,
        &key,
        &watermark,
    )
    .expect("embedding succeeds on generated data");
    MarkedWorkload {
        dataset,
        original,
        marked,
        report,
        key,
        watermark,
    }
}

/// A serialized publications document plus everything the streaming
/// engine needs — shared by the streaming bench and experiment E11.
pub struct StreamingWorkload {
    /// The dataset (semantics: binding, FDs, config).
    pub dataset: Dataset,
    /// The original document, compact-serialized (the stream input).
    pub input: String,
    /// The secret key.
    pub key: SecretKey,
    /// The watermark.
    pub watermark: Watermark,
}

impl StreamingWorkload {
    /// The streaming context borrowing this workload's semantics.
    pub fn ctx(&self) -> wmx_stream::StreamContext<'_> {
        wmx_stream::StreamContext {
            binding: &self.dataset.binding,
            fds: &self.dataset.fds,
            config: &self.dataset.config,
        }
    }
}

/// Generates a publications database and serializes it for streaming.
pub fn streaming_publications(
    records: usize,
    editors: usize,
    gamma: u32,
    seed: u64,
) -> StreamingWorkload {
    let dataset = generate(&PublicationsConfig {
        records,
        editors,
        seed,
        gamma,
    });
    let input = wmx_xml::to_string(&dataset.doc);
    StreamingWorkload {
        dataset,
        input,
        key: SecretKey::from_passphrase("bench-key"),
        watermark: Watermark::from_message("© bench owner", 24),
    }
}

/// Synthesizes a document for the escape-economy microbench pair:
/// `records` flat records with text and attribute payloads that are
/// either entirely reference-free (`heavy = false` — every value can
/// stay a zero-copy span of the input) or salted with entity
/// references in every value (`heavy = true` — every value must be
/// unescaped into an owned copy). Same element shape and similar byte
/// volume either way, so the throughput gap isolates the cost of the
/// materialize-and-rewrite path.
pub fn escape_microbench_input(records: usize, heavy: bool) -> String {
    let mut out = String::with_capacity(records * 96 + 16);
    out.push_str("<db>");
    for i in 0..records {
        out.push_str("<rec id=\"");
        if heavy {
            out.push_str("id &amp; ");
        } else {
            out.push_str("id no.  ");
        }
        out.push_str(&i.to_string());
        out.push_str("\"><v>");
        if heavy {
            out.push_str("R &amp; D &lt;payload&gt; &#65;&#66; value ");
        } else {
            out.push_str("R and D (payload) AB text body value ");
        }
        out.push_str(&i.to_string());
        out.push_str("</v></rec>");
    }
    out.push_str("</db>");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_builds_and_is_marked() {
        let w = marked_publications(50, 5, 2, 7);
        assert!(w.report.marked_units > 0);
        assert_eq!(w.dataset.name, "publications");
    }

    #[test]
    fn streaming_workload_matches_dom_engine() {
        let w = streaming_publications(80, 8, 2, 7);
        let mut out = Vec::new();
        let report =
            wmx_stream::stream_embed(w.input.as_bytes(), &mut out, w.ctx(), &w.key, &w.watermark)
                .expect("stream embed");
        let mut dom = w.dataset.doc.clone();
        let dom_report = embed(
            &mut dom,
            &w.dataset.binding,
            &w.dataset.fds,
            &w.dataset.config,
            &w.key,
            &w.watermark,
        )
        .expect("dom embed");
        assert_eq!(String::from_utf8(out).unwrap(), wmx_xml::to_string(&dom));
        assert_eq!(report.report.marked_units, dom_report.marked_units);
        assert!(report.peak_resident_nodes < dom.arena_len());
    }
}
