//! The CI regression gate.
//!
//! ```text
//! cargo run --release -p wmx-bench --bin gate -- --smoke
//! cargo run --release -p wmx-bench --bin gate -- --smoke --write-baseline
//! ```
//!
//! Runs a deterministic-seed measurement suite, writes
//! `BENCH_<workload>.json`, and diffs it against the checked-in
//! baseline under `crates/bench/baselines/`. Exits 0 when every pinned
//! metric holds, 2 on a throughput regression past tolerance or any
//! detection-rate drop, 1 on operational errors.

use std::path::PathBuf;
use wmx_bench::gate::{run_gate, GateOptions, SuiteParams};

fn usage() -> &'static str {
    "gate — BENCH regression gate

USAGE: gate [--smoke | --full] [--out DIR] [--baseline FILE]
            [--write-baseline] [--no-compare]

  --smoke           run the small deterministic CI suite (default)
  --full            run the heavier local suite
  --out DIR         directory for BENCH_<workload>.json (default .)
  --baseline FILE   baseline to compare against
                    (default crates/bench/baselines/<workload>.json)
  --write-baseline  refresh the baseline from this run instead of comparing
  --no-compare      write the report only

EXIT CODES: 0 pass, 2 regression or detection-rate drop, 1 error"
}

fn parse(argv: &[String]) -> Result<GateOptions, String> {
    let mut opts = GateOptions::smoke();
    let mut iter = argv.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--smoke" => opts.params = SuiteParams::smoke(),
            "--full" => opts.params = SuiteParams::full(),
            "--out" => {
                opts.out_dir =
                    PathBuf::from(iter.next().ok_or("--out needs a directory argument")?);
            }
            "--baseline" => {
                opts.baseline_path = Some(PathBuf::from(
                    iter.next().ok_or("--baseline needs a file argument")?,
                ));
            }
            "--write-baseline" => opts.write_baseline = true,
            "--no-compare" => opts.skip_compare = true,
            "--help" | "-h" => {
                println!("{}", usage());
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument {other:?}\n\n{}", usage())),
        }
    }
    Ok(opts)
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse(&argv) {
        Ok(opts) => opts,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    };
    println!(
        "gate: running the {:?} suite ({} records, {} iters, {} workers)",
        opts.params.workload, opts.params.records, opts.params.iters, opts.params.workers
    );
    match run_gate(&opts) {
        Ok(outcome) => {
            println!("report: {}", outcome.report_path.display());
            println!("telemetry: {}", outcome.telemetry_path.display());
            println!("forensics: {}", outcome.forensics_path.display());
            println!("{}", outcome.summary);
            std::process::exit(outcome.exit_code);
        }
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}
