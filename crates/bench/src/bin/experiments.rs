//! The WmXML experiment harness: regenerates every experiment of the
//! paper's demonstration (§4) as a parameter-swept text table.
//!
//! ```text
//! cargo run -p wmx-bench --bin experiments                    # all experiments
//! cargo run -p wmx-bench --bin experiments -- e2 e5           # a subset
//! cargo run -p wmx-bench --bin experiments -- --smoke e2 e3   # CI smoke mode
//! ```
//!
//! `--smoke` scales every workload down (~8x fewer records) so CI can
//! exercise the attack-robustness tables on every push without the
//! full-size run times; the tables are printed, not asserted.
//!
//! Experiment ids follow DESIGN.md §5:
//!   e1  capacity & imperceptibility (demo part 1)
//!   e2  alteration attack (demo attack A)
//!   e3  reduction attack (demo attack B)
//!   e4  re-organization attack (demo attack C, Fig. 1/2)
//!   e5  redundancy removal (demo attack D, challenge C)
//!   e6  false positives / key security
//!   e7  throughput & scalability
//!   e8  structure units vs value units (ablation: fragility to reordering)
//!   e9  γ / τ ablation (selection density vs robustness)
//!   e10 rounding attack (documented robustness limit of parity marks)
//!   e11 streaming engine: DOM vs single-pass embed/detect (time + resident nodes)

use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Instant;
use wmx_attacks::redundancy::UnifyStrategy;
use wmx_attacks::{
    AlterationAttack, ReductionAttack, RedundancyRemovalAttack, ReorganizationAttack, ShuffleAttack,
};
use wmx_bench::table::{pct, yn, Table};
use wmx_bench::workloads::marked_publications;
use wmx_core::baseline::{baseline_detect, baseline_embed, BaselineConfig, BaselinePath};
use wmx_core::{
    detect, embed, measure_usability, DetectionInput, DetectionReport, EncoderConfig, MarkableAttr,
    Watermark,
};
use wmx_crypto::SecretKey;
use wmx_data::{jobs, library, publications};
use wmx_rewrite::SchemaMapping;
use wmx_schema::DataType;
use wmx_xml::Document;

const THRESHOLD: f64 = 0.85;

/// Set by `--smoke`: scale workloads down for CI exercise runs.
static SMOKE: AtomicBool = AtomicBool::new(false);

/// The effective record count: full size normally, ~8x smaller (with a
/// floor that keeps the attack statistics meaningful) under `--smoke`.
fn scaled(records: usize) -> usize {
    if SMOKE.load(Ordering::Relaxed) {
        (records / 8).max(60)
    } else {
        records
    }
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut ids: Vec<String> = Vec::new();
    for arg in argv {
        match arg.as_str() {
            "--smoke" => SMOKE.store(true, Ordering::Relaxed),
            a if a.starts_with("--") => {
                eprintln!("unknown flag {a:?} (only --smoke is recognized)");
                std::process::exit(1);
            }
            _ => ids.push(arg),
        }
    }
    let all = ids.is_empty();
    let want = |id: &str| all || ids.iter().any(|a| a == id);

    println!("WmXML experiment harness (threshold τ = {THRESHOLD})");
    if SMOKE.load(Ordering::Relaxed) {
        println!("(smoke mode: workloads scaled down for CI)");
    }
    if want("e1") {
        e1_capacity_and_imperceptibility();
    }
    if want("e2") {
        e2_alteration();
    }
    if want("e3") {
        e3_reduction();
    }
    if want("e4") {
        e4_reorganization();
    }
    if want("e5") {
        e5_redundancy_removal();
    }
    if want("e6") {
        e6_false_positives();
    }
    if want("e7") {
        e7_throughput();
    }
    if want("e8") {
        e8_structure_units();
    }
    if want("e9") {
        e9_gamma_tau_ablation();
    }
    if want("e10") {
        e10_rounding();
    }
    if want("e11") {
        e11_streaming();
    }
}

fn detect_marked(
    doc: &Document,
    w: &wmx_bench::MarkedWorkload,
    mapping: Option<&SchemaMapping>,
) -> DetectionReport {
    detect(
        doc,
        &DetectionInput {
            queries: &w.report.queries,
            key: w.key.clone(),
            watermark: w.watermark.clone(),
            threshold: THRESHOLD,
            mapping,
        },
    )
}

fn usability_of(doc: &Document, w: &wmx_bench::MarkedWorkload) -> f64 {
    measure_usability(
        &w.original,
        &w.dataset.binding,
        doc,
        &w.dataset.binding,
        &w.dataset.templates,
        &w.dataset.config,
    )
    .map(|u| u.overall())
    .unwrap_or(0.0)
}

// ---------------------------------------------------------------------
// E1 — capacity utilization & imperceptibility (demo part 1)
// ---------------------------------------------------------------------
fn e1_capacity_and_imperceptibility() {
    println!("\n[E1] capacity & imperceptibility — demo part 1");
    println!("claim: \"the watermark capacity is fully utilized by WmXML, and the");
    println!("usability of XML document would not be seriously degraded\"\n");

    let mut t = Table::new(&[
        "dataset",
        "records",
        "gamma",
        "units",
        "selected",
        "marked",
        "util %",
        "usability %",
    ]);
    for gamma in [3u32, 10, 30] {
        for name in ["publications", "jobs", "library"] {
            let (dataset, records) = match name {
                "publications" => (
                    publications::generate(&publications::PublicationsConfig {
                        records: scaled(1000),
                        editors: 20,
                        seed: 1,
                        gamma,
                    }),
                    scaled(1000),
                ),
                "jobs" => (
                    jobs::generate(&jobs::JobsConfig {
                        records: scaled(1000),
                        companies: 25,
                        seed: 2,
                        gamma,
                    }),
                    scaled(1000),
                ),
                _ => (
                    library::generate(&library::LibraryConfig {
                        records: scaled(400),
                        image_size: 12,
                        seed: 3,
                        gamma,
                    }),
                    scaled(400),
                ),
            };
            let key = SecretKey::from_passphrase("e1");
            let wm = Watermark::from_message("e1", 24);
            let mut marked = dataset.doc.clone();
            let report = embed(
                &mut marked,
                &dataset.binding,
                &dataset.fds,
                &dataset.config,
                &key,
                &wm,
            )
            .expect("embed");
            let usability = measure_usability(
                &dataset.doc,
                &dataset.binding,
                &marked,
                &dataset.binding,
                &dataset.templates,
                &dataset.config,
            )
            .map(|u| u.overall())
            .unwrap_or(0.0);
            t.row(vec![
                name.into(),
                records.to_string(),
                gamma.to_string(),
                report.total_units.to_string(),
                report.selected_units.to_string(),
                report.marked_units.to_string(),
                pct(report.capacity_utilization()),
                pct(usability),
            ]);
        }
    }
    t.print();

    // Challenge (A) companion: the value-identified baseline collapses
    // duplicated values into shared units, losing bandwidth.
    println!("\n[E1b] bandwidth: WmXML key-identified vs value-identified baseline");
    let mut t = Table::new(&[
        "records",
        "value nodes",
        "wmxml units",
        "baseline units",
        "collapse %",
    ]);
    for records in [250usize, 500, 1000, 2000].map(scaled) {
        let dataset = publications::generate(&publications::PublicationsConfig {
            records,
            editors: 20,
            seed: 4,
            gamma: 1,
        });
        // WmXML units over year only (to compare like with like).
        let cfg = EncoderConfig::new(1, vec![MarkableAttr::integer("book", "year", 1)]);
        let table = wmx_core::SelectionTable::build(&cfg, &[]);
        let units = wmx_core::enumerate_units(&dataset.doc, &dataset.binding, &[], &cfg, &table)
            .expect("enumerate")
            .len();
        let mut scratch = dataset.doc.clone();
        let baseline = baseline_embed(
            &mut scratch,
            &BaselineConfig {
                paths: vec![BaselinePath {
                    path: "//year".into(),
                    data_type: DataType::Integer,
                }],
                gamma: 1,
            },
            &SecretKey::from_passphrase("e1b"),
            &Watermark::from_message("e1b", 24),
        )
        .expect("baseline embed");
        t.row(vec![
            records.to_string(),
            baseline.total_nodes.to_string(),
            units.to_string(),
            baseline.total_units.to_string(),
            pct(baseline.collapse_fraction()),
        ]);
    }
    t.print();
}

// ---------------------------------------------------------------------
// E2 — alteration attack (demo attack A)
// ---------------------------------------------------------------------
fn e2_alteration() {
    println!("\n[E2] alteration attack (A) — perturb values beyond tolerance");
    println!("claim: the watermark dies only after usability dies\n");
    let w = marked_publications(scaled(1000), 20, 2, 10);
    let mut t = Table::new(&["alpha", "detected", "match %", "voted bits", "usability %"]);
    for alpha in [0.0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0] {
        let mut attacked = w.marked.clone();
        AlterationAttack::values(
            alpha,
            vec!["//book/year".into()],
            100 + (alpha * 10.0) as u64,
        )
        .apply(&mut attacked);
        let d = detect_marked(&attacked, &w, None);
        t.row(vec![
            format!("{alpha:.1}"),
            yn(d.detected),
            pct(d.match_fraction()),
            d.voted_bits.to_string(),
            pct(usability_of(&attacked, &w)),
        ]);
    }
    t.print();
}

// ---------------------------------------------------------------------
// E3 — reduction attack (demo attack B)
// ---------------------------------------------------------------------
fn e3_reduction() {
    println!("\n[E3] reduction attack (B) — keep a random subset of records");
    println!("claim: detection survives subsetting; completeness usability falls\n");
    let w = marked_publications(scaled(1000), 20, 2, 20);
    let mut t = Table::new(&[
        "keep",
        "detected",
        "match %",
        "coverage %",
        "located queries",
        "usability %",
    ]);
    for keep in [1.0, 0.8, 0.6, 0.4, 0.2, 0.1, 0.05, 0.02] {
        let mut attacked = w.marked.clone();
        ReductionAttack::new(keep, "/db/book", 200).apply(&mut attacked);
        let d = detect_marked(&attacked, &w, None);
        t.row(vec![
            format!("{keep:.2}"),
            yn(d.detected),
            pct(d.match_fraction()),
            pct(d.coverage()),
            format!("{}/{}", d.located_queries, d.total_queries),
            pct(usability_of(&attacked, &w)),
        ]);
    }
    t.print();
}

// ---------------------------------------------------------------------
// E4 — re-organization attack (demo attack C; Fig. 1 + Fig. 2)
// ---------------------------------------------------------------------
fn e4_reorganization() {
    println!("\n[E4] re-organization attack (C) — db1.xml -> db2.xml + shuffle");
    println!("claim: rewriting recovers the mark; physical identification fails\n");
    let w = marked_publications(scaled(600), 15, 2, 30);

    // Baseline marks a separate copy.
    let mut baseline_marked = w.original.clone();
    let baseline_report = baseline_embed(
        &mut baseline_marked,
        &BaselineConfig {
            paths: vec![BaselinePath {
                path: "//year".into(),
                data_type: DataType::Integer,
            }],
            gamma: 2,
        },
        &w.key,
        &w.watermark,
    )
    .expect("baseline embed");

    let attack = ReorganizationAttack::new("book", "db", publications::db2_layout());
    let mut reorganized = attack.apply(&w.marked, &w.dataset.binding).expect("reorg");
    ShuffleAttack::new(300).apply(&mut reorganized);
    let mut baseline_reorganized = attack
        .apply(&baseline_marked, &w.dataset.binding)
        .expect("reorg");
    ShuffleAttack::new(300).apply(&mut baseline_reorganized);

    let mapping = SchemaMapping::new(w.dataset.binding.clone(), publications::db2_binding())
        .expect("mapping");
    let with = detect_marked(&reorganized, &w, Some(&mapping));
    let without = detect_marked(&reorganized, &w, None);
    let baseline = baseline_detect(
        &baseline_reorganized,
        &baseline_report.queries,
        &w.key,
        &w.watermark,
        THRESHOLD,
    );

    let usability = measure_usability(
        &w.original,
        &w.dataset.binding,
        &reorganized,
        &publications::db2_binding(),
        &[
            wmx_core::QueryTemplate::new("who-wrote", "book", "author"),
            wmx_core::QueryTemplate::new("published-when", "book", "year"),
            wmx_core::QueryTemplate::new("published-by", "book", "publisher"),
        ],
        &w.dataset.config,
    )
    .map(|u| u.overall())
    .unwrap_or(0.0);
    println!(
        "usability of reorganized copy (shared attributes): {} %",
        pct(usability)
    );

    let mut t = Table::new(&["scheme", "detected", "match %", "located queries"]);
    t.row(vec![
        "WmXML + rewriting".into(),
        yn(with.detected),
        pct(with.match_fraction()),
        format!("{}/{}", with.located_queries, with.total_queries),
    ]);
    t.row(vec![
        "WmXML, no rewriting".into(),
        yn(without.detected),
        pct(without.match_fraction()),
        format!("{}/{}", without.located_queries, without.total_queries),
    ]);
    t.row(vec![
        "value-identified baseline".into(),
        yn(baseline.detected),
        pct(baseline.match_fraction()),
        format!("{}/{}", baseline.located_queries, baseline.total_queries),
    ]);
    t.print();
}

// ---------------------------------------------------------------------
// E5 — redundancy removal (demo attack D; challenge C)
// ---------------------------------------------------------------------
fn e5_redundancy_removal() {
    println!("\n[E5] redundancy-removal attack (D) — unify FD duplicates");
    println!("claim: FD-aware marks survive; FD-unaware marks are erased with");
    println!("zero usability cost\n");

    let mut t = Table::new(&[
        "scheme",
        "dupes unified",
        "detected",
        "match %",
        "usability %",
    ]);
    for (label, fd_aware) in [("WmXML (FD groups)", true), ("FD-unaware ablation", false)] {
        let dataset = publications::generate(&publications::PublicationsConfig {
            records: scaled(800),
            editors: 12,
            seed: 50,
            gamma: 1,
        });
        let config = {
            let c = EncoderConfig::new(1, vec![MarkableAttr::text("book", "publisher")]);
            if fd_aware {
                c
            } else {
                c.without_fd_groups()
            }
        };
        let key = SecretKey::from_passphrase("e5");
        let wm = Watermark::from_message("e5", 16);
        let mut marked = dataset.doc.clone();
        let report = embed(
            &mut marked,
            &dataset.binding,
            &dataset.fds,
            &config,
            &key,
            &wm,
        )
        .expect("embed");
        let mut attacked = marked.clone();
        let unified =
            RedundancyRemovalAttack::new(dataset.fds.clone(), UnifyStrategy::MajorityValue)
                .apply(&mut attacked);
        let d = detect(
            &attacked,
            &DetectionInput {
                queries: &report.queries,
                key,
                watermark: wm,
                threshold: THRESHOLD,
                mapping: None,
            },
        );
        let usability = measure_usability(
            &dataset.doc,
            &dataset.binding,
            &attacked,
            &dataset.binding,
            &dataset.templates,
            &config,
        )
        .map(|u| u.overall())
        .unwrap_or(0.0);
        t.row(vec![
            label.into(),
            unified.to_string(),
            yn(d.detected),
            pct(d.match_fraction()),
            pct(usability),
        ]);
    }
    t.print();
}

// ---------------------------------------------------------------------
// E6 — false positives / key security
// ---------------------------------------------------------------------
fn e6_false_positives() {
    println!("\n[E6] false positives — wrong keys, wrong marks, unmarked data");
    println!("claim: only the correct secret key + watermark detect\n");
    let w = marked_publications(scaled(800), 16, 2, 60);

    // 100 wrong keys (20 in smoke mode).
    let trials = if SMOKE.load(Ordering::Relaxed) {
        20
    } else {
        100
    };
    let mut fractions = Vec::new();
    let mut detections = 0usize;
    for i in 0..trials {
        let d = detect(
            &w.marked,
            &DetectionInput {
                queries: &w.report.queries,
                key: SecretKey::from_passphrase(&format!("wrong-key-{i}")),
                watermark: w.watermark.clone(),
                threshold: THRESHOLD,
                mapping: None,
            },
        );
        fractions.push(d.match_fraction());
        if d.detected {
            detections += 1;
        }
    }
    let mean = fractions.iter().sum::<f64>() / fractions.len() as f64;
    let max = fractions.iter().cloned().fold(0.0f64, f64::max);

    let right = detect_marked(&w.marked, &w, None);
    let wrong_wm = detect(
        &w.marked,
        &DetectionInput {
            queries: &w.report.queries,
            key: w.key.clone(),
            watermark: Watermark::from_message("not the mark", 24),
            threshold: THRESHOLD,
            mapping: None,
        },
    );
    let unmarked = detect_marked(&w.original, &w, None);

    let mut t = Table::new(&["attempt", "detected", "match %", "p-value"]);
    t.row(vec![
        "correct key + mark".into(),
        yn(right.detected),
        pct(right.match_fraction()),
        format!("{:.2e}", right.p_value),
    ]);
    t.row(vec![
        "correct key, wrong mark".into(),
        yn(wrong_wm.detected),
        pct(wrong_wm.match_fraction()),
        format!("{:.2e}", wrong_wm.p_value),
    ]);
    t.row(vec![
        "unmarked original".into(),
        yn(unmarked.detected),
        pct(unmarked.match_fraction()),
        format!("{:.2e}", unmarked.p_value),
    ]);
    t.row(vec![
        format!("{trials} wrong keys (mean)"),
        format!("{detections}/{trials}"),
        pct(mean),
        "-".into(),
    ]);
    t.row(vec![
        format!("{trials} wrong keys (max)"),
        "-".into(),
        pct(max),
        "-".into(),
    ]);
    t.print();
}

// ---------------------------------------------------------------------
// E7 — throughput & scalability
// ---------------------------------------------------------------------
fn e7_throughput() {
    println!("\n[E7] throughput — parse / embed / detect wall-times (single run;");
    println!("see `cargo bench` for statistically rigorous numbers)\n");
    let mut t = Table::new(&[
        "records",
        "doc KB",
        "parse ms",
        "embed ms",
        "detect ms",
        "queries",
    ]);
    let sizes: &[usize] = if SMOKE.load(Ordering::Relaxed) {
        &[250, 500]
    } else {
        &[250, 500, 1000, 2000, 4000]
    };
    for &records in sizes {
        let dataset = publications::generate(&publications::PublicationsConfig {
            records,
            editors: records / 50 + 2,
            seed: 70,
            gamma: 3,
        });
        let text = wmx_xml::to_string(&dataset.doc);
        let kb = text.len() / 1024;

        let start = Instant::now();
        let parsed = wmx_xml::parse(&text).expect("reparse");
        let parse_ms = start.elapsed().as_secs_f64() * 1000.0;
        drop(parsed);

        let key = SecretKey::from_passphrase("e7");
        let wm = Watermark::from_message("e7", 24);
        let mut marked = dataset.doc.clone();
        let start = Instant::now();
        let report = embed(
            &mut marked,
            &dataset.binding,
            &dataset.fds,
            &dataset.config,
            &key,
            &wm,
        )
        .expect("embed");
        let embed_ms = start.elapsed().as_secs_f64() * 1000.0;

        let start = Instant::now();
        let d = detect(
            &marked,
            &DetectionInput {
                queries: &report.queries,
                key,
                watermark: wm,
                threshold: THRESHOLD,
                mapping: None,
            },
        );
        let detect_ms = start.elapsed().as_secs_f64() * 1000.0;
        assert!(d.detected);

        t.row(vec![
            records.to_string(),
            kb.to_string(),
            format!("{parse_ms:.1}"),
            format!("{embed_ms:.1}"),
            format!("{detect_ms:.1}"),
            report.queries.len().to_string(),
        ]);
    }
    t.print();
}

// ---------------------------------------------------------------------
// E8 — structure units vs value units (the paper: "both the data
// elements and structures ... could contain bandwidth for watermarking")
// ---------------------------------------------------------------------
fn e8_structure_units() {
    println!("\n[E8] structure units vs value units under element reordering");
    println!("claim: order marks add zero-perturbation bandwidth but are erased");
    println!("by sibling reordering; value marks survive it\n");

    let dataset = publications::generate(&publications::PublicationsConfig {
        records: scaled(600),
        editors: 12,
        seed: 80,
        gamma: 1,
    });
    let key = SecretKey::from_passphrase("e8");
    let wm = Watermark::from_message("e8", 16);

    let mut t = Table::new(&[
        "unit family",
        "units",
        "marked",
        "detect (no attack)",
        "detect (shuffle)",
        "match % (shuffle)",
    ]);
    for (label, value_units, order_units) in [
        ("value only (year)", true, false),
        ("order only (authors)", false, true),
        ("both", true, true),
    ] {
        let mut config = EncoderConfig::new(
            1,
            if value_units {
                vec![MarkableAttr::integer("book", "year", 1)]
            } else {
                vec![]
            },
        );
        if order_units {
            config = config.with_structural("book", "author");
        }
        let mut marked = dataset.doc.clone();
        let report = embed(&mut marked, &dataset.binding, &[], &config, &key, &wm).expect("embed");

        let run = |doc: &Document| {
            detect(
                doc,
                &DetectionInput {
                    queries: &report.queries,
                    key: key.clone(),
                    watermark: wm.clone(),
                    threshold: THRESHOLD,
                    mapping: None,
                },
            )
        };
        let clean = run(&marked);
        let mut shuffled = marked.clone();
        ShuffleAttack::new(81).apply(&mut shuffled);
        let after = run(&shuffled);

        t.row(vec![
            label.into(),
            report.total_units.to_string(),
            report.marked_units.to_string(),
            yn(clean.detected),
            yn(after.detected),
            pct(after.match_fraction()),
        ]);
    }
    t.print();
}

// ---------------------------------------------------------------------
// E9 — γ / τ ablation: selection density vs robustness to alteration
// ---------------------------------------------------------------------
fn e9_gamma_tau_ablation() {
    println!("\n[E9] gamma/tau ablation — marks per bit vs robustness to a fixed");
    println!("30% alteration attack (more marks per bit -> stronger majority)\n");

    let mut t = Table::new(&[
        "gamma",
        "marked units",
        "marks per bit",
        "match %",
        "det @ t=0.75",
        "det @ t=0.85",
        "det @ t=0.95",
    ]);
    for gamma in [1u32, 2, 4, 8, 16, 32] {
        let dataset = publications::generate(&publications::PublicationsConfig {
            records: scaled(800),
            editors: 16,
            seed: 90,
            gamma,
        });
        let config = EncoderConfig::new(gamma, vec![MarkableAttr::integer("book", "year", 1)]);
        let key = SecretKey::from_passphrase("e9");
        let wm = Watermark::from_message("e9", 16);
        let mut marked = dataset.doc.clone();
        let report = embed(&mut marked, &dataset.binding, &[], &config, &key, &wm).expect("embed");

        let mut attacked = marked.clone();
        AlterationAttack::values(0.30, vec!["//book/year".into()], 91).apply(&mut attacked);

        let run = |threshold: f64| {
            detect(
                &attacked,
                &DetectionInput {
                    queries: &report.queries,
                    key: key.clone(),
                    watermark: wm.clone(),
                    threshold,
                    mapping: None,
                },
            )
        };
        let d = run(0.85);
        t.row(vec![
            gamma.to_string(),
            report.marked_units.to_string(),
            format!("{:.1}", report.marked_units as f64 / wm.len() as f64),
            pct(d.match_fraction()),
            yn(run(0.75).detected),
            yn(d.detected),
            yn(run(0.95).detected),
        ]);
    }
    t.print();
}

// ---------------------------------------------------------------------
// E10 — rounding attack: an honest robustness limit of parity marks
// ---------------------------------------------------------------------
fn e10_rounding() {
    println!("\n[E10] rounding attack — snap numerics to multiples of 2");
    println!("limit: rounding moves every value by <= 1 (inside the owner's own");
    println!("tolerance) and zeroes every parity: numeric value marks are erased");
    println!("at negligible usability cost. Other families are unaffected; mixing");
    println!("families preserves detection.\n");

    let dataset = publications::generate(&publications::PublicationsConfig {
        records: scaled(600),
        editors: 12,
        seed: 100,
        gamma: 1,
    });
    let key = SecretKey::from_passphrase("e10");
    let wm = Watermark::from_message("e10", 16);

    let mut t = Table::new(&[
        "unit family",
        "detect (clean)",
        "detect (rounded)",
        "match % (rounded)",
        "usability %",
    ]);
    for (label, numeric, text_units, order_units) in [
        ("numeric (year) only", true, false, false),
        ("text (publisher FD) only", false, true, false),
        ("order (authors) only", false, false, true),
        ("all families", true, true, true),
    ] {
        let mut markable = vec![];
        if numeric {
            markable.push(MarkableAttr::integer("book", "year", 1));
        }
        if text_units {
            markable.push(MarkableAttr::text("book", "publisher"));
        }
        let mut config = EncoderConfig::new(1, markable);
        if order_units {
            config = config.with_structural("book", "author");
        }
        let mut marked = dataset.doc.clone();
        let report = embed(
            &mut marked,
            &dataset.binding,
            &dataset.fds,
            &config,
            &key,
            &wm,
        )
        .expect("embed");

        let run = |doc: &Document| {
            detect(
                doc,
                &DetectionInput {
                    queries: &report.queries,
                    key: key.clone(),
                    watermark: wm.clone(),
                    threshold: THRESHOLD,
                    mapping: None,
                },
            )
        };
        let clean = run(&marked);
        let mut rounded = marked.clone();
        wmx_attacks::RoundingAttack::new(2, vec!["//book/year".into()]).apply(&mut rounded);
        let after = run(&rounded);
        let usability = measure_usability(
            &dataset.doc,
            &dataset.binding,
            &rounded,
            &dataset.binding,
            &dataset.templates,
            &config,
        )
        .map(|u| u.overall())
        .unwrap_or(0.0);

        t.row(vec![
            label.into(),
            yn(clean.detected),
            yn(after.detected),
            pct(after.match_fraction()),
            pct(usability),
        ]);
    }
    t.print();
    println!("\nmitigations (not in the 2005 paper): embed into a keyed digit");
    println!("position within a wider tolerance, or rely on the text/image/order");
    println!("families, which rounding cannot reach.");
}

// ---------------------------------------------------------------------
// E11 — streaming engine: DOM vs single-pass embed/detect
// ---------------------------------------------------------------------
fn e11_streaming() {
    println!("\n[E11] streaming engine — DOM vs single-pass (wmx-stream)");
    println!("claim: byte-identical output with O(one record) resident nodes and");
    println!("parallel record chunking; detection needs no safeguarded query file\n");

    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .min(8);
    let mut t = Table::new(&[
        "records",
        "doc KB",
        "dom embed ms",
        "stream ms",
        &format!("par×{workers} ms"),
        "dom nodes",
        "stream nodes",
        "bytes equal",
        "detect equal",
    ]);
    let sizes: &[usize] = if SMOKE.load(Ordering::Relaxed) {
        &[200, 500]
    } else {
        &[500, 2000, 4000]
    };
    for &records in sizes {
        let w = wmx_bench::streaming_publications(records, records / 50 + 2, 3, 110);
        let kb = w.input.len() / 1024;

        let start = Instant::now();
        let mut dom = wmx_xml::parse(&w.input).expect("parse");
        let dom_nodes = dom.arena_len();
        let dom_report = embed(
            &mut dom,
            &w.dataset.binding,
            &w.dataset.fds,
            &w.dataset.config,
            &w.key,
            &w.watermark,
        )
        .expect("embed");
        let dom_out = wmx_xml::to_string(&dom);
        let dom_ms = start.elapsed().as_secs_f64() * 1000.0;

        let start = Instant::now();
        let mut stream_out = Vec::with_capacity(w.input.len());
        let stream_report = wmx_stream::stream_embed(
            w.input.as_bytes(),
            &mut stream_out,
            w.ctx(),
            &w.key,
            &w.watermark,
        )
        .expect("stream embed");
        let stream_ms = start.elapsed().as_secs_f64() * 1000.0;

        let start = Instant::now();
        let (par_out, _) = wmx_stream::par_embed(&w.input, workers, w.ctx(), &w.key, &w.watermark)
            .expect("parallel embed");
        let par_ms = start.elapsed().as_secs_f64() * 1000.0;

        let bytes_equal = dom_out.as_bytes() == stream_out.as_slice() && dom_out == par_out;

        let dom_detect = detect(
            &dom,
            &DetectionInput {
                queries: &dom_report.queries,
                key: w.key.clone(),
                watermark: w.watermark.clone(),
                threshold: THRESHOLD,
                mapping: None,
            },
        );
        let stream_detect =
            wmx_stream::par_detect(&dom_out, workers, w.ctx(), &w.key, &w.watermark, THRESHOLD)
                .expect("stream detect");
        let detect_equal = dom_detect.detected == stream_detect.report.detected
            && (dom_detect.match_fraction() - stream_detect.report.match_fraction()).abs() < 1e-12;

        t.row(vec![
            records.to_string(),
            kb.to_string(),
            format!("{dom_ms:.1}"),
            format!("{stream_ms:.1}"),
            format!("{par_ms:.1}"),
            dom_nodes.to_string(),
            stream_report.peak_resident_nodes.to_string(),
            yn(bytes_equal),
            yn(detect_equal),
        ]);
    }
    t.print();
}
