//! The hand-rolled JSON reader/writer.
//!
//! The implementation moved to `wmx-telemetry` (so the telemetry
//! snapshot exporter and audit sink can use it without a dependency
//! cycle — this crate depends on the instrumented engine crates, which
//! in turn depend on `wmx-telemetry`). This module re-exports it
//! unchanged; `crate::json::{obj, Json}` call sites and downstream
//! `wmx_bench::Json` users are unaffected.

pub use wmx_telemetry::json::{obj, Json, JsonError};
