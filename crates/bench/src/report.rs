//! The schema-versioned BENCH report: machine-readable perf and
//! robustness telemetry written to `BENCH_<workload>.json`.
//!
//! A report records two kinds of evidence, mirroring how the paper
//! evaluates WmXML:
//!
//! * **Throughput** for the pipeline entry points (DOM embed/detect,
//!   streaming embed/detect, parallel embed/detect) and the substrate
//!   stages (`parse`, `serialize`, `query_eval`), with wall-clock
//!   percentiles and MB/s + records/s derived by [`crate::measure`],
//!   plus streaming-only telemetry (resident-node high-water mark and
//!   per-chunk worker timings exposed by `wmx-stream`).
//! * **Robustness**: the detection verdict and vote tallies across the
//!   fixed E2/E3/E5/E10 attack grid — the survey's point that robustness
//!   claims are only meaningful as detection rates under a fixed grid.
//! * **Forensics**: deterministic tamper-localization and recovery
//!   scenarios (localization precision/recall, redundant-group recovery
//!   rate, fault-injection partial verdicts), flattened as
//!   `forensics/<scenario>/<metric>` and pinned with zero tolerance.
//!
//! The flattened metric view ([`BenchReport::metrics`]) is what the
//! baseline comparator gates on; every metric is oriented so that
//! *higher is better*.

use crate::json::{obj, Json};
use crate::measure::Measurement;
use std::path::{Path, PathBuf};
use wmx_core::DetectionReport;

/// Version of the BENCH JSON schema this crate writes and reads.
pub const SCHEMA_VERSION: u32 = 1;

/// One BENCH report (one workload run).
#[derive(Debug, Clone, PartialEq)]
pub struct BenchReport {
    /// Schema version ([`SCHEMA_VERSION`] on write; readers reject
    /// other versions).
    pub schema_version: u32,
    /// Workload name; the report file is `BENCH_<workload>.json`.
    pub workload: String,
    /// The deterministic run parameters.
    pub context: RunContext,
    /// Throughput per pipeline entry point.
    pub throughput: Vec<ThroughputStat>,
    /// Detection outcome per attack-grid point.
    pub robustness: Vec<RobustnessStat>,
    /// Deterministic forensic-scenario metrics (localization, recovery,
    /// fault injection). Absent from pre-forensics reports, which read
    /// back as an empty list.
    pub forensics: Vec<ForensicsStat>,
}

/// Deterministic parameters of a report run.
#[derive(Debug, Clone, PartialEq)]
pub struct RunContext {
    /// Records in the generated dataset.
    pub records: usize,
    /// Selection density γ.
    pub gamma: u32,
    /// Dataset generator seed.
    pub seed: u64,
    /// Watermark length in bits.
    pub watermark_bits: usize,
    /// Detection threshold τ.
    pub threshold: f64,
    /// Worker threads used by the parallel streaming measurements.
    pub workers: usize,
    /// Peak RSS of the measuring process in KiB (absent off Linux).
    pub peak_rss_kb: Option<u64>,
}

/// Latency/throughput statistics for one pipeline entry point.
#[derive(Debug, Clone, PartialEq)]
pub struct ThroughputStat {
    /// Entry point: `embed`, `detect`, `stream_embed`, `stream_detect`,
    /// `par_embed`, `par_detect`, `parse`, `serialize`, or `query_eval`
    /// (for `query_eval`, `records_per_s` counts queries per second).
    pub name: String,
    /// Timed iterations behind the percentiles.
    pub iters: usize,
    /// Median wall-clock per iteration, ms.
    pub p50_ms: f64,
    /// 90th-percentile wall-clock, ms.
    pub p90_ms: f64,
    /// Fastest iteration, ms.
    pub min_ms: f64,
    /// Slowest iteration, ms.
    pub max_ms: f64,
    /// Mean wall-clock, ms.
    pub mean_ms: f64,
    /// Document MB/s over the median iteration.
    pub mb_per_s: f64,
    /// Records/s over the median iteration.
    pub records_per_s: f64,
    /// Streaming only: resident-node high-water mark.
    pub peak_resident_nodes: Option<usize>,
    /// Streaming only: per-chunk wall-clock (ms) from the last timed
    /// iteration (one entry sequentially, one per worker chunk in
    /// parallel).
    pub chunk_ms: Vec<f64>,
}

impl ThroughputStat {
    /// Builds the stat from a [`Measurement`].
    pub fn from_measurement(name: &str, m: &Measurement) -> ThroughputStat {
        ThroughputStat {
            name: name.to_string(),
            iters: m.samples_ns.len(),
            p50_ms: m.median_ms(),
            p90_ms: m.percentile_ms(90.0),
            min_ms: m.min_ms(),
            max_ms: m.max_ms(),
            mean_ms: m.mean_ms(),
            mb_per_s: m.mb_per_s(),
            records_per_s: m.records_per_s(),
            peak_resident_nodes: None,
            chunk_ms: Vec::new(),
        }
    }

    /// Attaches the streaming telemetry `wmx-stream` reports expose.
    pub fn with_stream_telemetry(
        mut self,
        peak_resident_nodes: usize,
        chunk_timings: &[wmx_stream::ChunkTiming],
    ) -> ThroughputStat {
        self.peak_resident_nodes = Some(peak_resident_nodes);
        self.chunk_ms = chunk_timings
            .iter()
            .map(|t| t.micros as f64 / 1e3)
            .collect();
        self
    }
}

/// Detection outcome for one point of the attack grid.
#[derive(Debug, Clone, PartialEq)]
pub struct RobustnessStat {
    /// Grid-point name, e.g. `e2_alteration@0.30`.
    pub name: String,
    /// The experiment family (`e2`, `e3`, `e5`, `e10`).
    pub experiment: String,
    /// Whether the watermark was declared detected.
    pub detected: bool,
    /// Matched fraction over voted bits.
    pub match_fraction: f64,
    /// Total votes for 1 across all bits (from `wmx-core`'s tallies).
    pub votes_ones: usize,
    /// Total votes for 0 across all bits.
    pub votes_zeros: usize,
}

impl RobustnessStat {
    /// Builds the stat from a detection report.
    pub fn from_detection(name: &str, experiment: &str, d: &DetectionReport) -> RobustnessStat {
        let (votes_ones, votes_zeros) = d.vote_totals();
        RobustnessStat {
            name: name.to_string(),
            experiment: experiment.to_string(),
            detected: d.detected,
            match_fraction: d.match_fraction(),
            votes_ones,
            votes_zeros,
        }
    }
}

/// Metrics of one deterministic forensic scenario.
///
/// Unlike [`ThroughputStat`], every value here is a pure function of
/// the suite seeds (selection is keyed-PRF-driven and the attacks are
/// explicitly seeded), so the baseline pins them with tolerance `0.0`
/// exactly like the robustness grid.
#[derive(Debug, Clone, PartialEq)]
pub struct ForensicsStat {
    /// Scenario name, e.g. `localize@0.05` or `fault_truncate@0.60`.
    pub name: String,
    /// Named metric values, flattened as `forensics/<name>/<metric>`.
    pub values: Vec<(String, f64)>,
}

impl ForensicsStat {
    /// Creates the stat from `(metric, value)` pairs.
    pub fn new(name: &str, values: Vec<(&str, f64)>) -> ForensicsStat {
        ForensicsStat {
            name: name.to_string(),
            values: values
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        }
    }
}

impl BenchReport {
    /// The canonical file name, `BENCH_<workload>.json`.
    pub fn file_name(&self) -> String {
        format!("BENCH_{}.json", self.workload)
    }

    /// Writes the report into `dir` under [`BenchReport::file_name`].
    pub fn write_to_dir(&self, dir: &Path) -> std::io::Result<PathBuf> {
        let path = dir.join(self.file_name());
        std::fs::write(&path, self.to_json_string())?;
        Ok(path)
    }

    /// Serializes to pretty JSON.
    pub fn to_json_string(&self) -> String {
        self.to_json().to_pretty_string()
    }

    fn to_json(&self) -> Json {
        obj(vec![
            ("schema_version", Json::Number(self.schema_version as f64)),
            ("workload", Json::String(self.workload.clone())),
            (
                "context",
                obj(vec![
                    ("records", Json::Number(self.context.records as f64)),
                    ("gamma", Json::Number(self.context.gamma as f64)),
                    ("seed", Json::Number(self.context.seed as f64)),
                    (
                        "watermark_bits",
                        Json::Number(self.context.watermark_bits as f64),
                    ),
                    ("threshold", Json::Number(self.context.threshold)),
                    ("workers", Json::Number(self.context.workers as f64)),
                    (
                        "peak_rss_kb",
                        self.context
                            .peak_rss_kb
                            .map_or(Json::Null, |kb| Json::Number(kb as f64)),
                    ),
                ]),
            ),
            (
                "throughput",
                Json::Array(
                    self.throughput
                        .iter()
                        .map(|t| {
                            obj(vec![
                                ("name", Json::String(t.name.clone())),
                                ("iters", Json::Number(t.iters as f64)),
                                ("p50_ms", Json::Number(t.p50_ms)),
                                ("p90_ms", Json::Number(t.p90_ms)),
                                ("min_ms", Json::Number(t.min_ms)),
                                ("max_ms", Json::Number(t.max_ms)),
                                ("mean_ms", Json::Number(t.mean_ms)),
                                ("mb_per_s", Json::Number(t.mb_per_s)),
                                ("records_per_s", Json::Number(t.records_per_s)),
                                (
                                    "peak_resident_nodes",
                                    t.peak_resident_nodes
                                        .map_or(Json::Null, |n| Json::Number(n as f64)),
                                ),
                                (
                                    "chunk_ms",
                                    Json::Array(
                                        t.chunk_ms.iter().map(|&ms| Json::Number(ms)).collect(),
                                    ),
                                ),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "robustness",
                Json::Array(
                    self.robustness
                        .iter()
                        .map(|r| {
                            obj(vec![
                                ("name", Json::String(r.name.clone())),
                                ("experiment", Json::String(r.experiment.clone())),
                                ("detected", Json::Bool(r.detected)),
                                ("match_fraction", Json::Number(r.match_fraction)),
                                ("votes_ones", Json::Number(r.votes_ones as f64)),
                                ("votes_zeros", Json::Number(r.votes_zeros as f64)),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "forensics",
                Json::Array(
                    self.forensics
                        .iter()
                        .map(|f| {
                            obj(vec![
                                ("name", Json::String(f.name.clone())),
                                (
                                    "values",
                                    Json::Array(
                                        f.values
                                            .iter()
                                            .map(|(k, v)| {
                                                obj(vec![
                                                    ("name", Json::String(k.clone())),
                                                    ("value", Json::Number(*v)),
                                                ])
                                            })
                                            .collect(),
                                    ),
                                ),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }

    /// Parses a report, rejecting unknown schema versions.
    pub fn from_json_str(text: &str) -> Result<BenchReport, String> {
        let json = Json::parse(text).map_err(|e| format!("malformed BENCH JSON: {e}"))?;
        let version = json
            .get("schema_version")
            .and_then(Json::as_usize)
            .ok_or("missing schema_version")? as u32;
        if version != SCHEMA_VERSION {
            return Err(format!(
                "unsupported BENCH schema version {version} (this build reads {SCHEMA_VERSION})"
            ));
        }
        let workload = json
            .get("workload")
            .and_then(Json::as_str)
            .ok_or("missing workload")?
            .to_string();
        let ctx = json.get("context").ok_or("missing context")?;
        let context = RunContext {
            records: field_usize(ctx, "records")?,
            gamma: field_usize(ctx, "gamma")? as u32,
            seed: field_usize(ctx, "seed")? as u64,
            watermark_bits: field_usize(ctx, "watermark_bits")?,
            threshold: field_f64(ctx, "threshold")?,
            workers: field_usize(ctx, "workers")?,
            peak_rss_kb: ctx
                .get("peak_rss_kb")
                .and_then(Json::as_usize)
                .map(|kb| kb as u64),
        };
        let mut throughput = Vec::new();
        for t in json
            .get("throughput")
            .and_then(Json::as_array)
            .ok_or("missing throughput")?
        {
            throughput.push(ThroughputStat {
                name: field_str(t, "name")?,
                iters: field_usize(t, "iters")?,
                p50_ms: field_f64(t, "p50_ms")?,
                p90_ms: field_f64(t, "p90_ms")?,
                min_ms: field_f64(t, "min_ms")?,
                max_ms: field_f64(t, "max_ms")?,
                mean_ms: field_f64(t, "mean_ms")?,
                mb_per_s: field_f64(t, "mb_per_s")?,
                records_per_s: field_f64(t, "records_per_s")?,
                peak_resident_nodes: t.get("peak_resident_nodes").and_then(Json::as_usize),
                chunk_ms: t
                    .get("chunk_ms")
                    .and_then(Json::as_array)
                    .unwrap_or(&[])
                    .iter()
                    .filter_map(Json::as_f64)
                    .collect(),
            });
        }
        let mut robustness = Vec::new();
        for r in json
            .get("robustness")
            .and_then(Json::as_array)
            .ok_or("missing robustness")?
        {
            robustness.push(RobustnessStat {
                name: field_str(r, "name")?,
                experiment: field_str(r, "experiment")?,
                detected: r
                    .get("detected")
                    .and_then(Json::as_bool)
                    .ok_or("missing detected")?,
                match_fraction: field_f64(r, "match_fraction")?,
                votes_ones: field_usize(r, "votes_ones")?,
                votes_zeros: field_usize(r, "votes_zeros")?,
            });
        }
        // Tolerant of the section's absence: reports written before the
        // forensic suite existed stay readable.
        let mut forensics = Vec::new();
        for f in json
            .get("forensics")
            .and_then(Json::as_array)
            .unwrap_or(&[])
        {
            let mut values = Vec::new();
            for v in f.get("values").and_then(Json::as_array).unwrap_or(&[]) {
                values.push((field_str(v, "name")?, field_f64(v, "value")?));
            }
            forensics.push(ForensicsStat {
                name: field_str(f, "name")?,
                values,
            });
        }
        Ok(BenchReport {
            schema_version: version,
            workload,
            context,
            throughput,
            robustness,
            forensics,
        })
    }

    /// Reads a report from a file.
    pub fn load(path: &Path) -> Result<BenchReport, String> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        Self::from_json_str(&text)
    }

    /// Flattens the report into named gateable metrics. Every metric is
    /// oriented higher-is-better:
    ///
    /// * `throughput/<name>/mb_per_s` and `.../records_per_s`
    /// * `robustness/<name>/detected` (1.0 or 0.0)
    /// * `robustness/<name>/match_fraction`
    /// * `forensics/<name>/<metric>` (deterministic, pinned exactly)
    pub fn metrics(&self) -> Vec<(String, f64)> {
        let mut out = Vec::new();
        for t in &self.throughput {
            out.push((format!("throughput/{}/mb_per_s", t.name), t.mb_per_s));
            out.push((
                format!("throughput/{}/records_per_s", t.name),
                t.records_per_s,
            ));
        }
        for r in &self.robustness {
            out.push((
                format!("robustness/{}/detected", r.name),
                if r.detected { 1.0 } else { 0.0 },
            ));
            out.push((
                format!("robustness/{}/match_fraction", r.name),
                r.match_fraction,
            ));
        }
        for f in &self.forensics {
            for (metric, value) in &f.values {
                out.push((format!("forensics/{}/{metric}", f.name), *value));
            }
        }
        out
    }
}

fn field_f64(json: &Json, key: &str) -> Result<f64, String> {
    json.get(key)
        .and_then(Json::as_f64)
        .ok_or_else(|| format!("missing numeric field {key:?}"))
}

fn field_usize(json: &Json, key: &str) -> Result<usize, String> {
    json.get(key)
        .and_then(Json::as_usize)
        .ok_or_else(|| format!("missing integer field {key:?}"))
}

fn field_str(json: &Json, key: &str) -> Result<String, String> {
    json.get(key)
        .and_then(Json::as_str)
        .map(str::to_string)
        .ok_or_else(|| format!("missing string field {key:?}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    pub(crate) fn sample_report() -> BenchReport {
        BenchReport {
            schema_version: SCHEMA_VERSION,
            workload: "unit".into(),
            context: RunContext {
                records: 400,
                gamma: 3,
                seed: 2005,
                watermark_bits: 24,
                threshold: 0.85,
                workers: 2,
                peak_rss_kb: Some(51200),
            },
            throughput: vec![
                ThroughputStat {
                    name: "embed".into(),
                    iters: 3,
                    p50_ms: 10.0,
                    p90_ms: 12.0,
                    min_ms: 9.5,
                    max_ms: 12.0,
                    mean_ms: 10.5,
                    mb_per_s: 85.5,
                    records_per_s: 40000.0,
                    peak_resident_nodes: None,
                    chunk_ms: vec![],
                },
                ThroughputStat {
                    name: "stream_embed".into(),
                    iters: 3,
                    p50_ms: 8.0,
                    p90_ms: 9.0,
                    min_ms: 7.5,
                    max_ms: 9.0,
                    mean_ms: 8.2,
                    mb_per_s: 110.0,
                    records_per_s: 50000.0,
                    peak_resident_nodes: Some(17),
                    chunk_ms: vec![4.1, 3.9],
                },
            ],
            robustness: vec![RobustnessStat {
                name: "e2_alteration@0.30".into(),
                experiment: "e2".into(),
                detected: true,
                match_fraction: 1.0,
                votes_ones: 321,
                votes_zeros: 123,
            }],
            forensics: vec![ForensicsStat::new(
                "localize@0.05",
                vec![("precision", 1.0), ("recall", 1.0)],
            )],
        }
    }

    #[test]
    fn report_roundtrips_through_json() {
        let report = sample_report();
        let text = report.to_json_string();
        let parsed = BenchReport::from_json_str(&text).unwrap();
        assert_eq!(parsed, report);
        assert_eq!(report.file_name(), "BENCH_unit.json");
    }

    #[test]
    fn absent_optionals_roundtrip_as_null() {
        let mut report = sample_report();
        report.context.peak_rss_kb = None;
        let parsed = BenchReport::from_json_str(&report.to_json_string()).unwrap();
        assert_eq!(parsed.context.peak_rss_kb, None);
        assert_eq!(parsed.throughput[0].peak_resident_nodes, None);
    }

    #[test]
    fn unknown_schema_version_is_rejected() {
        let mut report = sample_report();
        report.schema_version = SCHEMA_VERSION + 1;
        let err = BenchReport::from_json_str(&report.to_json_string()).unwrap_err();
        assert!(err.contains("unsupported BENCH schema version"), "{err}");
    }

    #[test]
    fn malformed_reports_are_rejected_with_context() {
        assert!(BenchReport::from_json_str("{}")
            .unwrap_err()
            .contains("schema_version"));
        let no_workload = format!("{{\"schema_version\": {SCHEMA_VERSION}}}");
        assert!(BenchReport::from_json_str(&no_workload)
            .unwrap_err()
            .contains("workload"));
        assert!(BenchReport::from_json_str("not json").is_err());
    }

    #[test]
    fn metrics_flatten_higher_is_better() {
        let metrics = sample_report().metrics();
        let find = |name: &str| {
            metrics
                .iter()
                .find(|(n, _)| n == name)
                .map(|(_, v)| *v)
                .unwrap()
        };
        assert_eq!(find("throughput/embed/mb_per_s"), 85.5);
        assert_eq!(find("throughput/stream_embed/records_per_s"), 50000.0);
        assert_eq!(find("robustness/e2_alteration@0.30/detected"), 1.0);
        assert_eq!(find("robustness/e2_alteration@0.30/match_fraction"), 1.0);
        assert_eq!(find("forensics/localize@0.05/precision"), 1.0);
        assert_eq!(find("forensics/localize@0.05/recall"), 1.0);
        assert_eq!(metrics.len(), 8);
    }

    #[test]
    fn reports_without_a_forensics_section_still_parse() {
        let mut report = sample_report();
        report.forensics.clear();
        let text = report.to_json_string();
        // Simulate a pre-forensics report by dropping the section
        // (it is the last member, so the preceding comma goes too).
        let stripped = text.replace(",\n  \"forensics\": []", "");
        assert_ne!(stripped, text, "section must have been present");
        let parsed = BenchReport::from_json_str(&stripped).expect("old schema parses");
        assert!(parsed.forensics.is_empty());
        assert_eq!(parsed.robustness, report.robustness);
    }

    #[test]
    fn write_to_dir_uses_canonical_name() {
        let dir = std::env::temp_dir().join("wmx-bench-report-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = sample_report().write_to_dir(&dir).unwrap();
        assert!(path.ends_with("BENCH_unit.json"));
        assert_eq!(BenchReport::load(&path).unwrap(), sample_report());
    }
}
