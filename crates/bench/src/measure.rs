//! Criterion-free measurement runtime for the telemetry reports.
//!
//! Criterion (and its vendored shim) prints human-oriented summaries;
//! the regression gate instead needs raw numbers it can serialize and
//! compare. This module provides warmup/iteration control, wall-clock
//! percentiles, MB/s and records/s throughput derived from the median
//! iteration, and a peak-RSS probe.

use std::time::Instant;

/// Warmup and iteration counts for one measurement.
#[derive(Debug, Clone, Copy)]
pub struct MeasureConfig {
    /// Untimed warmup iterations (cache/allocator settling).
    pub warmup: usize,
    /// Timed iterations.
    pub iters: usize,
}

impl Default for MeasureConfig {
    fn default() -> Self {
        MeasureConfig {
            warmup: 1,
            iters: 5,
        }
    }
}

/// Wall-clock samples for one workload, plus the per-iteration work
/// volume that turns latency into throughput.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// Per-iteration wall-clock durations in nanoseconds (run order).
    pub samples_ns: Vec<u128>,
    /// Bytes processed per iteration (0 = byte throughput unknown).
    pub bytes_per_iter: u64,
    /// Records processed per iteration (0 = record throughput unknown).
    pub records_per_iter: u64,
}

impl Measurement {
    /// Runs `f` for `cfg.warmup` untimed and `cfg.iters` timed rounds.
    pub fn run<F: FnMut()>(
        cfg: &MeasureConfig,
        bytes_per_iter: u64,
        records_per_iter: u64,
        mut f: F,
    ) -> Measurement {
        for _ in 0..cfg.warmup {
            f();
        }
        let iters = cfg.iters.max(1);
        let mut samples_ns = Vec::with_capacity(iters);
        for _ in 0..iters {
            let start = Instant::now();
            f();
            samples_ns.push(start.elapsed().as_nanos());
        }
        Measurement {
            samples_ns,
            bytes_per_iter,
            records_per_iter,
        }
    }

    fn sorted(&self) -> Vec<u128> {
        let mut s = self.samples_ns.clone();
        s.sort_unstable();
        s
    }

    /// Nearest-rank percentile (p in 0..=100) in milliseconds.
    pub fn percentile_ms(&self, p: f64) -> f64 {
        let sorted = self.sorted();
        if sorted.is_empty() {
            return 0.0;
        }
        let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
        let idx = rank.clamp(1, sorted.len()) - 1;
        sorted[idx] as f64 / 1e6
    }

    /// Median latency in milliseconds.
    pub fn median_ms(&self) -> f64 {
        self.percentile_ms(50.0)
    }

    /// Fastest iteration in milliseconds.
    pub fn min_ms(&self) -> f64 {
        self.samples_ns
            .iter()
            .min()
            .map_or(0.0, |&n| n as f64 / 1e6)
    }

    /// Slowest iteration in milliseconds.
    pub fn max_ms(&self) -> f64 {
        self.samples_ns
            .iter()
            .max()
            .map_or(0.0, |&n| n as f64 / 1e6)
    }

    /// Mean latency in milliseconds.
    pub fn mean_ms(&self) -> f64 {
        if self.samples_ns.is_empty() {
            return 0.0;
        }
        let total: u128 = self.samples_ns.iter().sum();
        total as f64 / self.samples_ns.len() as f64 / 1e6
    }

    /// Throughput in MB/s over the median iteration (0 when unknown).
    pub fn mb_per_s(&self) -> f64 {
        let median_s = self.median_ms() / 1e3;
        if median_s <= 0.0 || self.bytes_per_iter == 0 {
            return 0.0;
        }
        self.bytes_per_iter as f64 / (1024.0 * 1024.0) / median_s
    }

    /// Throughput in records/s over the median iteration (0 when unknown).
    pub fn records_per_s(&self) -> f64 {
        let median_s = self.median_ms() / 1e3;
        if median_s <= 0.0 || self.records_per_iter == 0 {
            return 0.0;
        }
        self.records_per_iter as f64 / median_s
    }
}

/// The process's peak resident set size in KiB, read from
/// `/proc/self/status` (`VmHWM`). `None` where procfs is unavailable
/// (non-Linux hosts) — reports record the absence rather than a guess.
pub fn peak_rss_kb() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            let number = rest.trim().trim_end_matches("kB").trim();
            return number.parse().ok();
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fixed(samples: &[u128]) -> Measurement {
        Measurement {
            samples_ns: samples.to_vec(),
            bytes_per_iter: 2 * 1024 * 1024,
            records_per_iter: 1000,
        }
    }

    #[test]
    fn percentiles_are_nearest_rank() {
        let m = fixed(&[5_000_000, 1_000_000, 3_000_000, 2_000_000, 4_000_000]);
        assert_eq!(m.percentile_ms(50.0), 3.0);
        assert_eq!(m.percentile_ms(90.0), 5.0);
        assert_eq!(m.percentile_ms(100.0), 5.0);
        assert_eq!(m.min_ms(), 1.0);
        assert_eq!(m.max_ms(), 5.0);
        assert_eq!(m.mean_ms(), 3.0);
    }

    #[test]
    fn throughput_uses_the_median_iteration() {
        // Median 2 ms over 2 MiB and 1000 records.
        let m = fixed(&[1_000_000, 2_000_000, 50_000_000]);
        assert!((m.mb_per_s() - 1000.0).abs() < 1e-9);
        assert!((m.records_per_s() - 500_000.0).abs() < 1e-6);
        // Unknown volumes yield 0, not a division by zero.
        let unknown = Measurement {
            bytes_per_iter: 0,
            records_per_iter: 0,
            ..fixed(&[1_000_000])
        };
        assert_eq!(unknown.mb_per_s(), 0.0);
        assert_eq!(unknown.records_per_s(), 0.0);
    }

    #[test]
    fn run_collects_the_requested_iterations() {
        let mut calls = 0usize;
        let m = Measurement::run(
            &MeasureConfig {
                warmup: 2,
                iters: 3,
            },
            10,
            1,
            || calls += 1,
        );
        assert_eq!(calls, 5);
        assert_eq!(m.samples_ns.len(), 3);
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn peak_rss_is_readable_on_linux() {
        let kb = peak_rss_kb().expect("procfs VmHWM");
        assert!(kb > 0);
    }
}
