//! Fixed-width text tables for experiment output.

/// A simple left-padded text table.
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(headers: &[&str]) -> Self {
        Table {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Adds a row (must match the header count).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "column count mismatch");
        self.rows.push(cells);
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.chars().count());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (i, cell) in cells.iter().enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(cell);
                for _ in cell.chars().count()..widths[i] {
                    line.push(' ');
                }
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Prints the table to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Formats a ratio as a percentage with one decimal.
pub fn pct(x: f64) -> String {
    format!("{:.1}", 100.0 * x)
}

/// Formats a boolean as yes/NO (capitals draw the eye to failures).
pub fn yn(b: bool) -> String {
    if b {
        "yes".to_string()
    } else {
        "NO".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(&["name", "value"]);
        t.row(vec!["alpha".into(), "1".into()]);
        t.row(vec!["b".into(), "10000".into()]);
        let r = t.render();
        let lines: Vec<&str> = r.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[1].starts_with("---"));
        // Columns align: "value" column starts at the same offset.
        let off0 = lines[0].find("value").unwrap();
        let off2 = lines[2].find('1').unwrap();
        assert_eq!(off0, off2);
    }

    #[test]
    #[should_panic(expected = "column count mismatch")]
    fn row_length_checked() {
        let mut t = Table::new(&["a", "b"]);
        t.row(vec!["only-one".into()]);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(pct(0.5), "50.0");
        assert_eq!(yn(true), "yes");
        assert_eq!(yn(false), "NO");
    }
}
