//! End-to-end tests for the regression gate: report emission, baseline
//! comparison, and the exit-code contract, on a tiny deterministic
//! suite so debug-mode CI stays fast.

use std::path::PathBuf;
use wmx_bench::{
    baseline_from_report, run_gate, run_suite, Baseline, BenchReport, GateOptions, SuiteParams,
};

fn tiny(workload: &str) -> SuiteParams {
    SuiteParams {
        workload: workload.into(),
        records: 60,
        editors: 6,
        gamma: 2,
        seed: 11,
        iters: 1,
        warmup: 0,
        workers: 2,
    }
}

fn scratch_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("wmx-gate-{name}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

#[test]
fn suite_robustness_is_deterministic_and_roundtrips() {
    let params = tiny("det");
    let r1 = run_suite(&params);
    let r2 = run_suite(&params);
    // Fixed seeds: the whole attack grid reproduces bit-for-bit.
    assert_eq!(r1.robustness, r2.robustness);
    assert!(!r1.robustness.is_empty());

    // So does the forensic-scenario grid, one stat per scenario.
    assert_eq!(r1.forensics, r2.forensics);
    assert_eq!(r1.forensics.len(), 4);

    let parsed = BenchReport::from_json_str(&r1.to_json_string()).expect("roundtrip");
    assert_eq!(parsed.robustness, r1.robustness);
    assert_eq!(parsed.context, r1.context);

    // The streaming stats carry the wmx-stream telemetry: resident-node
    // high-water mark and per-chunk timings (one sequential chunk, up
    // to `workers` parallel chunks).
    let stat = |name: &str| {
        r1.throughput
            .iter()
            .find(|t| t.name == name)
            .unwrap_or_else(|| panic!("missing throughput stat {name}"))
    };
    assert!(stat("stream_embed").peak_resident_nodes.unwrap() > 0);
    assert_eq!(stat("stream_embed").chunk_ms.len(), 1);
    assert_eq!(stat("stream_detect").chunk_ms.len(), 1);
    assert_eq!(stat("par_embed").chunk_ms.len(), params.workers);
    assert_eq!(stat("par_detect").chunk_ms.len(), params.workers);
    assert!(stat("embed").peak_resident_nodes.is_none());
    assert!(stat("embed").records_per_s > 0.0);
}

#[test]
fn gate_exit_codes_cover_refresh_pass_regression_and_errors() {
    let dir = scratch_dir("codes");
    let baseline_path = dir.join("baseline.json");
    let mut opts = GateOptions {
        params: tiny("gatetest"),
        out_dir: dir.clone(),
        baseline_path: Some(baseline_path.clone()),
        write_baseline: true,
        skip_compare: false,
    };

    // --write-baseline refreshes and exits 0.
    let outcome = run_gate(&opts).expect("refresh run");
    assert_eq!(outcome.exit_code, 0);
    assert!(outcome.comparison.is_none());
    assert!(outcome.report_path.ends_with("BENCH_gatetest.json"));
    assert!(outcome.forensics_path.ends_with("FORENSICS_gatetest.json"));
    assert!(outcome.forensics_path.exists());
    assert!(baseline_path.exists());

    // A clean compare against the just-written baseline passes.
    opts.write_baseline = false;
    let outcome = run_gate(&opts).expect("compare run");
    assert_eq!(outcome.exit_code, 0, "{}", outcome.summary);
    assert!(outcome.comparison.as_ref().unwrap().passed());

    // Artificially inflating a pinned throughput metric makes the same
    // tree look regressed: exit 2.
    let mut inflated = Baseline::load(&baseline_path).unwrap();
    for m in &mut inflated.metrics {
        if m.name == "throughput/embed/records_per_s" {
            m.value *= 1000.0;
        }
    }
    inflated.save(&baseline_path).unwrap();
    let outcome = run_gate(&opts).expect("regressed run");
    assert_eq!(outcome.exit_code, 2);
    assert!(outcome.summary.contains("REGRESSED"));

    // A pinned metric the report no longer produces also fails.
    let mut missing = Baseline::load(&baseline_path).unwrap();
    for m in &mut missing.metrics {
        if m.name == "throughput/embed/records_per_s" {
            m.value /= 1000.0;
            m.name = "throughput/vanished/records_per_s".into();
        }
    }
    missing.save(&baseline_path).unwrap();
    let outcome = run_gate(&opts).expect("missing-metric run");
    assert_eq!(outcome.exit_code, 2);
    assert!(outcome.summary.contains("MISSING"));

    // An unreadable baseline is an operational error (exit 1 in the
    // binary), not a gate verdict.
    opts.baseline_path = Some(dir.join("does-not-exist.json"));
    assert!(run_gate(&opts).is_err());

    // A baseline for a different workload is rejected.
    let report = run_suite(&tiny("otherload"));
    let other = baseline_from_report(&report);
    let other_path = dir.join("other.json");
    other.save(&other_path).unwrap();
    opts.baseline_path = Some(other_path);
    assert!(run_gate(&opts).unwrap_err().contains("workload"));

    // --no-compare writes the report and exits 0 without a baseline.
    opts.baseline_path = Some(dir.join("still-missing.json"));
    opts.skip_compare = true;
    let outcome = run_gate(&opts).expect("no-compare run");
    assert_eq!(outcome.exit_code, 0);
    assert!(outcome.comparison.is_none());

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn checked_in_smoke_baseline_parses_and_matches_the_schema() {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("baselines")
        .join("smoke.json");
    let baseline = Baseline::load(&path).expect("checked-in baseline parses");
    assert_eq!(baseline.workload, "smoke");
    assert_eq!(baseline.schema_version, wmx_bench::SCHEMA_VERSION);
    // Robustness and forensic metrics are deterministic and pinned
    // exactly; throughput has slack.
    for m in &baseline.metrics {
        if m.name.starts_with("robustness/") || m.name.starts_with("forensics/") {
            assert_eq!(m.tolerance, 0.0, "{}", m.name);
        } else {
            assert!(m.tolerance > 0.0, "{}", m.name);
        }
    }
    // The forensic scenarios hold localization and recovery to
    // perfection under the smoke seeds: any drop fails the gate.
    for name in [
        "forensics/localize@0.05/precision",
        "forensics/localize@0.05/recall",
        "forensics/recover@r3/rate",
        "forensics/recover@r3/detected",
        "forensics/fault_truncate@0.60/partial",
        "forensics/fault_garble/isolated",
    ] {
        let m = baseline
            .metrics
            .iter()
            .find(|m| m.name == name)
            .unwrap_or_else(|| panic!("missing pinned forensic metric {name}"));
        assert_eq!(m.value, 1.0, "{name}");
    }
    // The smoke suite's metric names line up with what is pinned, so
    // the gate can never silently skip a metric.
    let expected: Vec<String> = SuiteParams::smoke()
        .expected_metric_names()
        .into_iter()
        .collect();
    let pinned: Vec<String> = baseline.metrics.iter().map(|m| m.name.clone()).collect();
    assert_eq!(pinned, expected);
}
