//! Bench: the core pipeline — unit enumeration, embedding, detection
//! (experiments E1/E7).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use wmx_bench::workloads::marked_publications;
use wmx_core::{detect, embed, enumerate_units, DetectionInput, SelectionTable};
use wmx_data::publications::{generate, PublicationsConfig};

fn bench_enumerate(c: &mut Criterion) {
    let dataset = generate(&PublicationsConfig {
        records: 500,
        editors: 10,
        seed: 1,
        gamma: 3,
    });
    let table = SelectionTable::build(&dataset.config, &dataset.fds);
    c.bench_function("enumerate_units_500rec", |b| {
        b.iter(|| {
            enumerate_units(
                black_box(&dataset.doc),
                &dataset.binding,
                &dataset.fds,
                &dataset.config,
                &table,
            )
            .expect("enumerates")
        });
    });
}

fn bench_embed(c: &mut Criterion) {
    let mut group = c.benchmark_group("embed");
    group.sample_size(20);
    for records in [100usize, 500, 1000] {
        let w = marked_publications(records, 10, 3, 1);
        group.bench_with_input(BenchmarkId::from_parameter(records), &w, |b, w| {
            b.iter(|| {
                let mut doc = w.original.clone();
                embed(
                    &mut doc,
                    &w.dataset.binding,
                    &w.dataset.fds,
                    &w.dataset.config,
                    &w.key,
                    &w.watermark,
                )
                .expect("embeds")
            });
        });
    }
    group.finish();
}

fn bench_detect(c: &mut Criterion) {
    let mut group = c.benchmark_group("detect");
    group.sample_size(10);
    for records in [100usize, 500] {
        let w = marked_publications(records, 10, 3, 1);
        group.bench_with_input(BenchmarkId::from_parameter(records), &w, |b, w| {
            b.iter(|| {
                let report = detect(
                    black_box(&w.marked),
                    &DetectionInput {
                        queries: &w.report.queries,
                        key: w.key.clone(),
                        watermark: w.watermark.clone(),
                        threshold: 0.85,
                        mapping: None,
                    },
                );
                assert!(report.detected);
                report
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_enumerate, bench_embed, bench_detect);
criterion_main!(benches);
