//! Bench: query engine — compilation and evaluation shapes used by the
//! encoder/decoder (supports experiment E7).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use wmx_data::publications::{generate, PublicationsConfig};
use wmx_xpath::Query;

fn bench_compile(c: &mut Criterion) {
    let mut group = c.benchmark_group("xpath_compile");
    for (name, text) in [
        ("simple", "/db/book/year"),
        (
            "key_predicate",
            "/db/book[title = 'Readings in Database Systems 17']/year",
        ),
        (
            "complex",
            "db/book[year >= 1990 and @publisher='mkp']/author | db/book/editor",
        ),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| Query::compile(black_box(text)).expect("compiles"));
        });
    }
    group.finish();
}

fn bench_select(c: &mut Criterion) {
    let dataset = generate(&PublicationsConfig {
        records: 500,
        editors: 10,
        seed: 1,
        gamma: 3,
    });
    let doc = &dataset.doc;
    // A real key from the generated data, for the identity-query shape.
    let first_title = Query::compile("/db/book[1]/title")
        .unwrap()
        .select_string(doc)
        .unwrap();
    let identity = Query::compile(&format!("/db/book[title = '{first_title}']/year")).unwrap();
    let child_scan = Query::compile("/db/book/year").unwrap();
    let descendant = Query::compile("//year").unwrap();
    let filtered = Query::compile("/db/book[year >= 1990]/title").unwrap();
    let count = Query::compile("count(//book)").unwrap();

    let mut group = c.benchmark_group("xpath_select_500rec");
    group.bench_function("identity_query", |b| {
        b.iter(|| black_box(&identity).select(doc));
    });
    group.bench_function("child_scan", |b| {
        b.iter(|| black_box(&child_scan).select(doc));
    });
    group.bench_function("descendant_scan", |b| {
        b.iter(|| black_box(&descendant).select(doc));
    });
    group.bench_function("predicate_filter", |b| {
        b.iter(|| black_box(&filtered).select(doc));
    });
    group.bench_function("count_function", |b| {
        b.iter(|| black_box(&count).evaluate(doc).expect("evaluates"));
    });
    group.finish();
}

criterion_group!(benches, bench_compile, bench_select);
criterion_main!(benches);
