//! Bench: schema mapping machinery (experiment E4) — record extraction,
//! reorganization, and query rewriting.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use wmx_data::publications::{db2_binding, db2_layout, generate, PublicationsConfig};
use wmx_rewrite::rewrite::rewrite_query;
use wmx_rewrite::transform::{extract_records, reorganize};
use wmx_rewrite::LogicalQuery;
use wmx_xpath::Query;

fn bench_transform(c: &mut Criterion) {
    let dataset = generate(&PublicationsConfig {
        records: 500,
        editors: 10,
        seed: 1,
        gamma: 3,
    });
    let mut group = c.benchmark_group("reorganize_500rec");
    group.sample_size(10);
    group.bench_function("extract_records", |b| {
        b.iter(|| {
            extract_records(black_box(&dataset.doc), &dataset.binding, "book").expect("extracts")
        });
    });
    group.bench_function("db1_to_db2", |b| {
        b.iter(|| {
            reorganize(
                black_box(&dataset.doc),
                &dataset.binding,
                "book",
                "db",
                &db2_layout(),
            )
            .expect("reorganizes")
        });
    });
    group.finish();
}

fn bench_rewrite(c: &mut Criterion) {
    let dataset = generate(&PublicationsConfig {
        records: 100,
        editors: 5,
        seed: 1,
        gamma: 3,
    });
    let from = dataset.binding.clone();
    let to = db2_binding();
    let concrete =
        Query::compile("/db/book[title = 'Readings in Database Systems 17']/year").unwrap();
    let logical = LogicalQuery::new("book", "Readings in Database Systems 17", "year");

    let mut group = c.benchmark_group("query_rewriting");
    group.bench_function("concrete_rewrite", |b| {
        b.iter(|| rewrite_query(black_box(&concrete), &from, &to).expect("rewrites"));
    });
    group.bench_function("logical_compile", |b| {
        b.iter(|| black_box(&logical).compile(&to).expect("compiles"));
    });
    group.finish();
}

criterion_group!(benches, bench_transform, bench_rewrite);
criterion_main!(benches);
