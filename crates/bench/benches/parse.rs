//! Bench: XML substrate — parse and serialize (supports experiment E7).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;
use wmx_data::publications::{generate, PublicationsConfig};
use wmx_xml::{parse, to_canonical_string, to_pretty_string, to_string};

fn bench_parse(c: &mut Criterion) {
    let mut group = c.benchmark_group("xml_parse");
    for records in [100usize, 500, 1000] {
        let dataset = generate(&PublicationsConfig {
            records,
            editors: 10,
            seed: 1,
            gamma: 3,
        });
        let text = to_string(&dataset.doc);
        group.throughput(Throughput::Bytes(text.len() as u64));
        group.bench_with_input(BenchmarkId::from_parameter(records), &text, |b, text| {
            b.iter(|| parse(black_box(text)).expect("parses"));
        });
    }
    group.finish();
}

fn bench_serialize(c: &mut Criterion) {
    let dataset = generate(&PublicationsConfig {
        records: 500,
        editors: 10,
        seed: 1,
        gamma: 3,
    });
    let mut group = c.benchmark_group("xml_serialize");
    group.bench_function("compact", |b| {
        b.iter(|| to_string(black_box(&dataset.doc)));
    });
    group.bench_function("pretty", |b| {
        b.iter(|| to_pretty_string(black_box(&dataset.doc)));
    });
    group.bench_function("canonical", |b| {
        b.iter(|| to_canonical_string(black_box(&dataset.doc)));
    });
    group.finish();
}

criterion_group!(benches, bench_parse, bench_serialize);
criterion_main!(benches);
