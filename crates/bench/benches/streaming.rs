//! Bench: DOM vs streaming engine — embed/detect throughput over the
//! same serialized input, plus the nodes-resident memory proxy
//! (experiment E11 prints the same comparison as a table).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use wmx_bench::workloads::streaming_publications;
use wmx_core::{detect, embed, DetectionInput};

fn bench_embed_engines(c: &mut Criterion) {
    let mut group = c.benchmark_group("embed_engine");
    group.sample_size(10);
    for records in [200usize, 1000] {
        let w = streaming_publications(records, records / 50 + 2, 3, 1);
        group.bench_with_input(BenchmarkId::new("dom", records), &w, |b, w| {
            // The DOM pipeline a file-based embed actually runs:
            // parse -> embed -> serialize.
            b.iter(|| {
                let mut doc = wmx_xml::parse(black_box(&w.input)).expect("parse");
                embed(
                    &mut doc,
                    &w.dataset.binding,
                    &w.dataset.fds,
                    &w.dataset.config,
                    &w.key,
                    &w.watermark,
                )
                .expect("embeds");
                wmx_xml::to_string(&doc)
            });
        });
        group.bench_with_input(BenchmarkId::new("stream", records), &w, |b, w| {
            b.iter(|| {
                let mut out = Vec::with_capacity(w.input.len());
                wmx_stream::stream_embed(
                    black_box(w.input.as_bytes()),
                    &mut out,
                    w.ctx(),
                    &w.key,
                    &w.watermark,
                )
                .expect("stream embeds");
                out
            });
        });
        group.bench_with_input(BenchmarkId::new("stream_par4", records), &w, |b, w| {
            b.iter(|| {
                wmx_stream::par_embed(black_box(&w.input), 4, w.ctx(), &w.key, &w.watermark)
                    .expect("parallel embeds")
            });
        });
    }
    group.finish();
}

fn bench_detect_engines(c: &mut Criterion) {
    let mut group = c.benchmark_group("detect_engine");
    group.sample_size(10);
    for records in [200usize, 1000] {
        let w = streaming_publications(records, records / 50 + 2, 3, 1);
        let (marked, report) =
            wmx_stream::par_embed(&w.input, 4, w.ctx(), &w.key, &w.watermark).expect("embed");
        group.bench_with_input(BenchmarkId::new("dom", records), &w, |b, w| {
            b.iter(|| {
                let doc = wmx_xml::parse(black_box(&marked)).expect("parse");
                let d = detect(
                    &doc,
                    &DetectionInput {
                        queries: &report.report.queries,
                        key: w.key.clone(),
                        watermark: w.watermark.clone(),
                        threshold: 0.85,
                        mapping: None,
                    },
                );
                assert!(d.detected);
                d
            });
        });
        group.bench_with_input(BenchmarkId::new("stream", records), &w, |b, w| {
            b.iter(|| {
                let d = wmx_stream::stream_detect(
                    black_box(marked.as_bytes()),
                    w.ctx(),
                    &w.key,
                    &w.watermark,
                    0.85,
                )
                .expect("stream detects");
                assert!(d.report.detected);
                d
            });
        });
        group.bench_with_input(BenchmarkId::new("stream_par4", records), &w, |b, w| {
            b.iter(|| {
                wmx_stream::par_detect(black_box(&marked), 4, w.ctx(), &w.key, &w.watermark, 0.85)
                    .expect("parallel detects")
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_embed_engines, bench_detect_engines);
criterion_main!(benches);
