//! Bench: the attack suite (experiments E2/E3/E5) — adversary cost.

use criterion::{criterion_group, criterion_main, Criterion};
use wmx_attacks::redundancy::UnifyStrategy;
use wmx_attacks::{AlterationAttack, ReductionAttack, RedundancyRemovalAttack, ShuffleAttack};
use wmx_bench::workloads::marked_publications;

fn bench_attacks(c: &mut Criterion) {
    let w = marked_publications(500, 10, 2, 1);
    let mut group = c.benchmark_group("attacks_500rec");
    group.sample_size(20);

    group.bench_function("alteration_30pct", |b| {
        let attack = AlterationAttack::values(0.3, vec!["//book/year".into()], 7);
        b.iter(|| {
            let mut doc = w.marked.clone();
            attack.apply(&mut doc)
        });
    });

    group.bench_function("reduction_keep_half", |b| {
        let attack = ReductionAttack::new(0.5, "/db/book", 7);
        b.iter(|| {
            let mut doc = w.marked.clone();
            attack.apply(&mut doc)
        });
    });

    group.bench_function("shuffle_all_siblings", |b| {
        let attack = ShuffleAttack::new(7);
        b.iter(|| {
            let mut doc = w.marked.clone();
            attack.apply(&mut doc)
        });
    });

    group.bench_function("redundancy_removal", |b| {
        let attack =
            RedundancyRemovalAttack::new(w.dataset.fds.clone(), UnifyStrategy::MajorityValue);
        b.iter(|| {
            let mut doc = w.marked.clone();
            attack.apply(&mut doc)
        });
    });

    group.finish();
}

criterion_group!(benches, bench_attacks);
criterion_main!(benches);
