//! Lowercase hexadecimal encoding/decoding for digests and keys.

/// Errors produced by [`decode`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HexError {
    /// Input length is odd.
    OddLength,
    /// A non-hex character was encountered.
    InvalidChar {
        /// Offset of the offending byte.
        position: usize,
        /// The offending byte.
        byte: u8,
    },
}

impl std::fmt::Display for HexError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HexError::OddLength => write!(f, "hex input has odd length"),
            HexError::InvalidChar { position, byte } => {
                write!(f, "invalid hex byte 0x{byte:02x} at offset {position}")
            }
        }
    }
}

impl std::error::Error for HexError {}

/// Encodes `data` as lowercase hex.
pub fn encode(data: &[u8]) -> String {
    let mut out = String::with_capacity(data.len() * 2);
    for b in data {
        out.push(char::from_digit(u32::from(b >> 4), 16).expect("nibble < 16"));
        out.push(char::from_digit(u32::from(b & 0xf), 16).expect("nibble < 16"));
    }
    out
}

fn nibble(byte: u8, position: usize) -> Result<u8, HexError> {
    match byte {
        b'0'..=b'9' => Ok(byte - b'0'),
        b'a'..=b'f' => Ok(byte - b'a' + 10),
        b'A'..=b'F' => Ok(byte - b'A' + 10),
        _ => Err(HexError::InvalidChar { position, byte }),
    }
}

/// Decodes hexadecimal text (either case) to bytes.
pub fn decode(text: &str) -> Result<Vec<u8>, HexError> {
    let bytes = text.as_bytes();
    if !bytes.len().is_multiple_of(2) {
        return Err(HexError::OddLength);
    }
    let mut out = Vec::with_capacity(bytes.len() / 2);
    for (i, pair) in bytes.chunks_exact(2).enumerate() {
        let hi = nibble(pair[0], i * 2)?;
        let lo = nibble(pair[1], i * 2 + 1)?;
        out.push((hi << 4) | lo);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn basic_roundtrip() {
        assert_eq!(encode(&[0x00, 0xff, 0x10]), "00ff10");
        assert_eq!(decode("00ff10").unwrap(), vec![0x00, 0xff, 0x10]);
        assert_eq!(decode("00FF10").unwrap(), vec![0x00, 0xff, 0x10]);
    }

    #[test]
    fn empty() {
        assert_eq!(encode(&[]), "");
        assert_eq!(decode("").unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn errors() {
        assert_eq!(decode("abc"), Err(HexError::OddLength));
        assert!(matches!(
            decode("zz"),
            Err(HexError::InvalidChar {
                position: 0,
                byte: b'z'
            })
        ));
    }

    proptest! {
        #[test]
        fn roundtrip(data in proptest::collection::vec(any::<u8>(), 0..256)) {
            prop_assert_eq!(decode(&encode(&data)).unwrap(), data);
        }
    }
}
