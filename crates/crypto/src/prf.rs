//! The keyed pseudo-random function that drives watermark decisions.
//!
//! Every watermarkable unit in a document has a stable textual identity
//! (derived from keys and functional dependencies — see
//! `wmx-core::identifier`). For a secret key `K`, the encoder and decoder
//! must *independently* and *deterministically* agree on:
//!
//! 1. whether the unit is selected to carry a mark (one in γ units is,
//!    following the Agrawal–Kiernan selection discipline the paper cites);
//! 2. which bit index of the multi-bit watermark the unit carries;
//! 3. an unbounded stream of keyed pseudo-random bytes used by the
//!    embedding plug-ins (e.g. which low-order digit to perturb).
//!
//! All three are derived from `HMAC(K, domain || unit-id)` with distinct
//! domain-separation tags, so that e.g. the selection decision and the
//! bit-index assignment are statistically independent.

use crate::hmac::HmacSha256;
use crate::sha256::DIGEST_LEN;
use std::fmt;

/// A watermarking secret key.
///
/// Wraps arbitrary bytes; in the demo the user types a passphrase. The
/// wrapper exists so keys do not get confused with other byte-strings in
/// APIs, and so `Debug` does not leak the key material into logs.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct SecretKey(Vec<u8>);

impl SecretKey {
    /// Creates a key from raw bytes.
    pub fn new(bytes: impl Into<Vec<u8>>) -> Self {
        SecretKey(bytes.into())
    }

    /// Creates a key from a passphrase string.
    pub fn from_passphrase(passphrase: &str) -> Self {
        SecretKey(passphrase.as_bytes().to_vec())
    }

    /// The raw key bytes.
    pub fn as_bytes(&self) -> &[u8] {
        &self.0
    }
}

impl fmt::Debug for SecretKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SecretKey(<{} bytes>)", self.0.len())
    }
}

impl From<&str> for SecretKey {
    fn from(s: &str) -> Self {
        SecretKey::from_passphrase(s)
    }
}

/// Domain-separation tags for the PRF uses.
const DOMAIN_SELECT: &[u8] = b"wmxml/select/v1";
const DOMAIN_BIT_INDEX: &[u8] = b"wmxml/bit-index/v1";
const DOMAIN_STREAM: &[u8] = b"wmxml/stream/v1";
const DOMAIN_VALUE: &[u8] = b"wmxml/value/v1";
const DOMAIN_WHITEN: &[u8] = b"wmxml/whiten/v1";

/// A unit identity that can feed its bytes into an HMAC incrementally.
///
/// The PRF is defined over the unit id's *bytes*, not over any
/// particular container: a composite key (entity symbol, key value,
/// attribute symbol) that feeds the same byte sequence as its textual
/// rendering produces the same MAC as the rendered `String` — without
/// ever materializing it. That is the contract the symbol-native
/// selection pipeline in `wmx-core` relies on: `&str` unit ids (the
/// persisted form in safeguarded query files) and compact `UnitKey`s
/// (the in-memory form on the embed/detect hot path) are
/// interchangeable PRF inputs as long as their byte streams agree.
pub trait PrfInput {
    /// Feeds the identity's bytes into `mac`, in order.
    fn feed(&self, mac: &mut HmacSha256);
}

impl PrfInput for str {
    fn feed(&self, mac: &mut HmacSha256) {
        mac.update(self.as_bytes());
    }
}

impl PrfInput for [u8] {
    fn feed(&self, mac: &mut HmacSha256) {
        mac.update(self);
    }
}

impl PrfInput for String {
    fn feed(&self, mac: &mut HmacSha256) {
        mac.update(self.as_bytes());
    }
}

impl<T: PrfInput + ?Sized> PrfInput for &T {
    fn feed(&self, mac: &mut HmacSha256) {
        (**self).feed(mac);
    }
}

/// Keyed PRF bound to one secret key.
#[derive(Clone, Debug)]
pub struct Prf {
    key: SecretKey,
}

impl Prf {
    /// Creates the PRF for `key`.
    pub fn new(key: SecretKey) -> Self {
        Prf { key }
    }

    /// The underlying secret key.
    pub fn key(&self) -> &SecretKey {
        &self.key
    }

    fn mac<I: PrfInput + ?Sized>(&self, domain: &[u8], unit_id: &I) -> [u8; DIGEST_LEN] {
        let mut mac = HmacSha256::new(self.key.as_bytes());
        mac.update(domain);
        mac.update(&[0u8]);
        unit_id.feed(&mut mac);
        mac.finalize()
    }

    fn mac_u64<I: PrfInput + ?Sized>(&self, domain: &[u8], unit_id: &I) -> u64 {
        let digest = self.mac(domain, unit_id);
        u64::from_be_bytes(digest[..8].try_into().expect("digest >= 8 bytes"))
    }

    /// Selection decision: is the unit identified by `unit_id` selected
    /// when one in `gamma` units should carry a mark?
    ///
    /// `gamma == 0` is treated as "select nothing"; `gamma == 1` selects
    /// every unit.
    pub fn is_selected<I: PrfInput + ?Sized>(&self, unit_id: &I, gamma: u32) -> bool {
        if gamma == 0 {
            return false;
        }
        self.mac_u64(DOMAIN_SELECT, unit_id)
            .is_multiple_of(u64::from(gamma))
    }

    /// The watermark bit index (in `0..wm_len`) carried by the unit.
    ///
    /// # Panics
    /// Panics if `wm_len == 0`; a zero-length watermark cannot be embedded.
    pub fn bit_index<I: PrfInput + ?Sized>(&self, unit_id: &I, wm_len: usize) -> usize {
        assert!(wm_len > 0, "watermark length must be positive");
        (self.mac_u64(DOMAIN_BIT_INDEX, unit_id) % wm_len as u64) as usize
    }

    /// A keyed pseudo-random `u64` used by embedding plug-ins to vary
    /// *how* a mark is written into a value (e.g. perturbation direction).
    pub fn value_nonce<I: PrfInput + ?Sized>(&self, unit_id: &I) -> u64 {
        self.mac_u64(DOMAIN_VALUE, unit_id)
    }

    /// The whitening bit for a unit. The encoder embeds
    /// `watermark_bit XOR whiten_bit`, so the physically stored bit
    /// stream is balanced and key-dependent even when the watermark
    /// itself is biased; without this, a heavily biased watermark would
    /// let *wrong* keys reach match fractions near the bias (the
    /// majority-vote degeneracy).
    pub fn whiten_bit<I: PrfInput + ?Sized>(&self, unit_id: &I) -> bool {
        self.mac_u64(DOMAIN_WHITEN, unit_id) & 1 == 1
    }

    /// An iterator of keyed pseudo-random bytes for `unit_id`, generated
    /// in counter mode: `HMAC(K, stream-domain || unit-id || counter)`.
    pub fn byte_stream<'a, I: PrfInput + ?Sized>(&'a self, unit_id: &'a I) -> PrfStream<'a, I> {
        PrfStream {
            prf: self,
            unit_id,
            counter: 0,
            block: [0u8; DIGEST_LEN],
            pos: DIGEST_LEN,
        }
    }
}

/// Counter-mode byte stream produced by [`Prf::byte_stream`].
pub struct PrfStream<'a, I: PrfInput + ?Sized = str> {
    prf: &'a Prf,
    unit_id: &'a I,
    counter: u64,
    block: [u8; DIGEST_LEN],
    pos: usize,
}

impl<I: PrfInput + ?Sized> PrfStream<'_, I> {
    fn refill(&mut self) {
        let mut mac = HmacSha256::new(self.prf.key.as_bytes());
        mac.update(DOMAIN_STREAM);
        mac.update(&[0u8]);
        self.unit_id.feed(&mut mac);
        mac.update(&[0u8]);
        mac.update(&self.counter.to_be_bytes());
        self.block = mac.finalize();
        self.counter += 1;
        self.pos = 0;
    }
}

impl<I: PrfInput + ?Sized> Iterator for PrfStream<'_, I> {
    type Item = u8;

    fn next(&mut self) -> Option<u8> {
        if self.pos >= DIGEST_LEN {
            self.refill();
        }
        let b = self.block[self.pos];
        self.pos += 1;
        Some(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn prf() -> Prf {
        Prf::new(SecretKey::from_passphrase("vldb-2005"))
    }

    #[test]
    fn selection_is_deterministic() {
        let p = prf();
        for id in ["book:DB Design", "book:Readings", "job:1234"] {
            assert_eq!(p.is_selected(id, 10), p.is_selected(id, 10));
        }
    }

    #[test]
    fn selection_rate_approximates_one_over_gamma() {
        let p = prf();
        for gamma in [2u32, 5, 10] {
            let n = 20_000;
            let selected = (0..n)
                .filter(|i| p.is_selected(&format!("unit-{i}"), gamma))
                .count();
            let expect = n as f64 / f64::from(gamma);
            let sd = (n as f64 * (1.0 / f64::from(gamma)) * (1.0 - 1.0 / f64::from(gamma))).sqrt();
            let delta = (selected as f64 - expect).abs();
            assert!(
                delta < 5.0 * sd,
                "gamma {gamma}: selected {selected}, expected {expect} ± {sd}"
            );
        }
    }

    #[test]
    fn gamma_edge_cases() {
        let p = prf();
        assert!(!p.is_selected("x", 0));
        assert!(p.is_selected("x", 1));
    }

    #[test]
    fn bit_index_in_range_and_roughly_uniform() {
        let p = prf();
        let wm_len = 8;
        let mut counts = vec![0usize; wm_len];
        let n = 16_000;
        for i in 0..n {
            let idx = p.bit_index(&format!("unit-{i}"), wm_len);
            counts[idx] += 1;
        }
        let expect = n as f64 / wm_len as f64;
        for (i, &c) in counts.iter().enumerate() {
            assert!(
                (c as f64 - expect).abs() < expect * 0.2,
                "bit {i} count {c} far from {expect}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "watermark length must be positive")]
    fn bit_index_rejects_empty_watermark() {
        prf().bit_index("x", 0);
    }

    #[test]
    fn different_keys_disagree() {
        let p1 = Prf::new(SecretKey::from_passphrase("k1"));
        let p2 = Prf::new(SecretKey::from_passphrase("k2"));
        let disagreements = (0..1000)
            .filter(|i| {
                let id = format!("unit-{i}");
                p1.is_selected(&id, 2) != p2.is_selected(&id, 2)
            })
            .count();
        // Two independent fair coins disagree half the time.
        assert!(disagreements > 350 && disagreements < 650);
    }

    #[test]
    fn domains_are_separated() {
        let p = prf();
        // The select decision and bit index for the same id must come from
        // different MACs; check that they are not trivially correlated by
        // ensuring the raw MACs differ.
        let a = p.mac(super::DOMAIN_SELECT, "id");
        let b = p.mac(super::DOMAIN_BIT_INDEX, "id");
        let c = p.mac(super::DOMAIN_VALUE, "id");
        assert_ne!(a, b);
        assert_ne!(b, c);
        assert_ne!(a, c);
    }

    #[test]
    fn byte_stream_is_deterministic_and_long() {
        let p = prf();
        let a: Vec<u8> = p.byte_stream("unit").take(100).collect();
        let b: Vec<u8> = p.byte_stream("unit").take(100).collect();
        assert_eq!(a, b);
        let c: Vec<u8> = p.byte_stream("other-unit").take(100).collect();
        assert_ne!(a, c);
        // Stream crosses block boundaries (32-byte HMAC blocks).
        assert_eq!(a.len(), 100);
    }

    #[test]
    fn debug_does_not_leak_key() {
        let k = SecretKey::from_passphrase("hunter2");
        let dbg = format!("{k:?}");
        assert!(!dbg.contains("hunter2"));
    }
}
