//! HMAC-SHA256 (RFC 2104), verified against the RFC 4231 test vectors.

use crate::sha256::{Sha256, BLOCK_LEN, DIGEST_LEN};

/// Streaming HMAC-SHA256 context.
///
/// ```
/// use wmx_crypto::hmac::HmacSha256;
/// let mut mac = HmacSha256::new(b"key");
/// mac.update(b"The quick brown fox jumps over the lazy dog");
/// assert_eq!(
///     wmx_crypto::hex::encode(&mac.finalize()),
///     "f7bc83f430538424b13298e6aa6fb143ef4d59a14946175997479dbc2d1a3cd8"
/// );
/// ```
#[derive(Clone)]
pub struct HmacSha256 {
    inner: Sha256,
    opad_key: [u8; BLOCK_LEN],
}

impl HmacSha256 {
    /// Creates an HMAC context for `key`. Keys longer than the SHA-256
    /// block size are first hashed, per RFC 2104.
    pub fn new(key: &[u8]) -> Self {
        let mut block_key = [0u8; BLOCK_LEN];
        if key.len() > BLOCK_LEN {
            let digest = crate::sha256::sha256(key);
            block_key[..DIGEST_LEN].copy_from_slice(&digest);
        } else {
            block_key[..key.len()].copy_from_slice(key);
        }

        let mut ipad_key = [0u8; BLOCK_LEN];
        let mut opad_key = [0u8; BLOCK_LEN];
        for i in 0..BLOCK_LEN {
            ipad_key[i] = block_key[i] ^ 0x36;
            opad_key[i] = block_key[i] ^ 0x5c;
        }

        let mut inner = Sha256::new();
        inner.update(&ipad_key);
        HmacSha256 { inner, opad_key }
    }

    /// Absorbs message bytes.
    pub fn update(&mut self, data: &[u8]) {
        self.inner.update(data);
    }

    /// Finishes the MAC computation.
    pub fn finalize(self) -> [u8; DIGEST_LEN] {
        let inner_digest = self.inner.finalize();
        let mut outer = Sha256::new();
        outer.update(&self.opad_key);
        outer.update(&inner_digest);
        outer.finalize()
    }
}

/// One-shot HMAC-SHA256 of `message` under `key`.
pub fn hmac_sha256(key: &[u8], message: &[u8]) -> [u8; DIGEST_LEN] {
    let mut mac = HmacSha256::new(key);
    mac.update(message);
    mac.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hex;

    fn mac_hex(key: &[u8], msg: &[u8]) -> String {
        hex::encode(&hmac_sha256(key, msg))
    }

    #[test]
    fn rfc4231_case1() {
        let key = [0x0b_u8; 20];
        assert_eq!(
            mac_hex(&key, b"Hi There"),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
        );
    }

    #[test]
    fn rfc4231_case2() {
        assert_eq!(
            mac_hex(b"Jefe", b"what do ya want for nothing?"),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
        );
    }

    #[test]
    fn rfc4231_case3() {
        let key = [0xaa_u8; 20];
        let msg = [0xdd_u8; 50];
        assert_eq!(
            mac_hex(&key, &msg),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe"
        );
    }

    #[test]
    fn rfc4231_case4() {
        let key: Vec<u8> = (1u8..=25).collect();
        let msg = [0xcd_u8; 50];
        assert_eq!(
            mac_hex(&key, &msg),
            "82558a389a443c0ea4cc819899f2083a85f0faa3e578f8077a2e3ff46729665b"
        );
    }

    #[test]
    fn rfc4231_case6_long_key() {
        let key = [0xaa_u8; 131];
        assert_eq!(
            mac_hex(
                &key,
                b"Test Using Larger Than Block-Size Key - Hash Key First"
            ),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
        );
    }

    #[test]
    fn rfc4231_case7_long_key_long_message() {
        let key = [0xaa_u8; 131];
        let msg = b"This is a test using a larger than block-size key and a larger than block-size data. The key needs to be hashed before being used by the HMAC algorithm.";
        assert_eq!(
            mac_hex(&key, msg),
            "9b09ffa71b942fcb27635fbcd5b0e944bfdc63644f0713938a7f51535c3a35e2"
        );
    }

    #[test]
    fn streaming_matches_oneshot() {
        let key = b"secret key";
        let msg = b"a somewhat longer message split into pieces";
        let expect = hmac_sha256(key, msg);
        for split in [0, 1, 7, 20, msg.len()] {
            let mut mac = HmacSha256::new(key);
            mac.update(&msg[..split]);
            mac.update(&msg[split..]);
            assert_eq!(mac.finalize(), expect, "split {split}");
        }
    }

    #[test]
    fn distinct_keys_distinct_macs() {
        assert_ne!(hmac_sha256(b"k1", b"m"), hmac_sha256(b"k2", b"m"));
        assert_ne!(hmac_sha256(b"k", b"m1"), hmac_sha256(b"k", b"m2"));
    }
}
