//! Keyed cryptographic primitives for WmXML.
//!
//! The WmXML watermarking scheme needs a small set of deterministic keyed
//! primitives:
//!
//! * [`sha256`](mod@sha256) — the FIPS 180-4 SHA-256 compression function, used as the
//!   base hash for everything else;
//! * [`hmac`] — RFC 2104 HMAC-SHA256, the keyed MAC that drives watermark
//!   unit selection (`HMAC(K, unit-id)`), exactly as in the
//!   Agrawal–Kiernan lineage the paper builds on;
//! * [`prf`] — a thin pseudo-random-function facade over HMAC providing
//!   the three decisions the encoder makes per unit: *is this unit
//!   selected* (1/γ), *which watermark bit index does it carry*, and
//!   *which embedding nonce perturbs its value*;
//! * [`base64`] / [`hex`] — codecs used to embed binary payloads (images)
//!   inside XML text content and to print keys and digests.
//!
//! None of the approved offline dependencies provide a hash function, so
//! SHA-256 is implemented from scratch and verified against the FIPS
//! 180-4 and RFC 4231 test vectors in the unit tests.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod base64;
pub mod hex;
pub mod hmac;
pub mod prf;
pub mod sha256;

pub use base64::{decode as base64_decode, encode as base64_encode, Base64Error};
pub use hex::{decode as hex_decode, encode as hex_encode, HexError};
pub use hmac::{hmac_sha256, HmacSha256};
pub use prf::{Prf, PrfInput, PrfStream, SecretKey};
pub use sha256::{sha256, Sha256, DIGEST_LEN};
