//! Standard (RFC 4648) base64 encoding and decoding.
//!
//! Used to embed binary image payloads inside XML text nodes. Encoding
//! always pads with `=`; decoding accepts padded input and ignores ASCII
//! whitespace (XML pretty-printers may wrap long payload lines).

/// Errors produced by [`decode`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Base64Error {
    /// A byte that is neither a base64 alphabet character, padding, nor
    /// whitespace was encountered.
    InvalidByte {
        /// Offset of the offending byte in the input.
        position: usize,
        /// The offending byte.
        byte: u8,
    },
    /// The input (after stripping whitespace) is not a multiple of four
    /// characters, or padding appears in an impossible position.
    InvalidLength,
}

impl std::fmt::Display for Base64Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Base64Error::InvalidByte { position, byte } => {
                write!(f, "invalid base64 byte 0x{byte:02x} at offset {position}")
            }
            Base64Error::InvalidLength => write!(f, "invalid base64 length or padding"),
        }
    }
}

impl std::error::Error for Base64Error {}

const ALPHABET: &[u8; 64] = b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/";

fn decode_char(c: u8) -> Option<u8> {
    match c {
        b'A'..=b'Z' => Some(c - b'A'),
        b'a'..=b'z' => Some(c - b'a' + 26),
        b'0'..=b'9' => Some(c - b'0' + 52),
        b'+' => Some(62),
        b'/' => Some(63),
        _ => None,
    }
}

/// Encodes `data` as padded base64.
pub fn encode(data: &[u8]) -> String {
    let mut out = String::with_capacity(data.len().div_ceil(3) * 4);
    let mut chunks = data.chunks_exact(3);
    for chunk in &mut chunks {
        let n = (u32::from(chunk[0]) << 16) | (u32::from(chunk[1]) << 8) | u32::from(chunk[2]);
        out.push(ALPHABET[(n >> 18) as usize & 0x3f] as char);
        out.push(ALPHABET[(n >> 12) as usize & 0x3f] as char);
        out.push(ALPHABET[(n >> 6) as usize & 0x3f] as char);
        out.push(ALPHABET[n as usize & 0x3f] as char);
    }
    match chunks.remainder() {
        [] => {}
        [a] => {
            let n = u32::from(*a) << 16;
            out.push(ALPHABET[(n >> 18) as usize & 0x3f] as char);
            out.push(ALPHABET[(n >> 12) as usize & 0x3f] as char);
            out.push('=');
            out.push('=');
        }
        [a, b] => {
            let n = (u32::from(*a) << 16) | (u32::from(*b) << 8);
            out.push(ALPHABET[(n >> 18) as usize & 0x3f] as char);
            out.push(ALPHABET[(n >> 12) as usize & 0x3f] as char);
            out.push(ALPHABET[(n >> 6) as usize & 0x3f] as char);
            out.push('=');
        }
        _ => unreachable!("chunks_exact(3) remainder has at most 2 elements"),
    }
    out
}

/// Decodes padded base64, ignoring ASCII whitespace.
pub fn decode(text: &str) -> Result<Vec<u8>, Base64Error> {
    let mut quad = [0u8; 4];
    let mut quad_len = 0usize;
    let mut pad = 0usize;
    let mut out = Vec::with_capacity(text.len() / 4 * 3);

    for (position, byte) in text.bytes().enumerate() {
        if byte.is_ascii_whitespace() {
            continue;
        }
        if byte == b'=' {
            if quad_len < 2 {
                return Err(Base64Error::InvalidLength);
            }
            pad += 1;
            quad[quad_len] = 0;
            quad_len += 1;
            if pad > 2 {
                return Err(Base64Error::InvalidLength);
            }
        } else {
            if pad > 0 {
                // Data after padding is malformed.
                return Err(Base64Error::InvalidByte { position, byte });
            }
            match decode_char(byte) {
                Some(v) => {
                    quad[quad_len] = v;
                    quad_len += 1;
                }
                None => return Err(Base64Error::InvalidByte { position, byte }),
            }
        }
        if quad_len == 4 {
            let n = (u32::from(quad[0]) << 18)
                | (u32::from(quad[1]) << 12)
                | (u32::from(quad[2]) << 6)
                | u32::from(quad[3]);
            out.push((n >> 16) as u8);
            if pad < 2 {
                out.push((n >> 8) as u8);
            }
            if pad < 1 {
                out.push(n as u8);
            }
            if pad > 0 {
                // Padding closes the payload; only whitespace may follow.
                return finish_after_padding(text, position, out);
            }
            quad_len = 0;
        }
    }

    if quad_len != 0 {
        return Err(Base64Error::InvalidLength);
    }
    Ok(out)
}

/// After a padded quad, only whitespace may follow.
fn finish_after_padding(
    text: &str,
    end_position: usize,
    out: Vec<u8>,
) -> Result<Vec<u8>, Base64Error> {
    for (offset, byte) in text.bytes().enumerate().skip(end_position + 1) {
        if !byte.is_ascii_whitespace() {
            return Err(Base64Error::InvalidByte {
                position: offset,
                byte,
            });
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn rfc4648_vectors() {
        let cases: &[(&[u8], &str)] = &[
            (b"", ""),
            (b"f", "Zg=="),
            (b"fo", "Zm8="),
            (b"foo", "Zm9v"),
            (b"foob", "Zm9vYg=="),
            (b"fooba", "Zm9vYmE="),
            (b"foobar", "Zm9vYmFy"),
        ];
        for (raw, enc) in cases {
            assert_eq!(encode(raw), *enc);
            assert_eq!(decode(enc).unwrap(), raw.to_vec());
        }
    }

    #[test]
    fn whitespace_is_ignored() {
        assert_eq!(decode("Zm9v\nYmFy").unwrap(), b"foobar".to_vec());
        assert_eq!(decode("  Zm9v YmE=\n").unwrap(), b"fooba".to_vec());
    }

    #[test]
    fn rejects_invalid_bytes() {
        assert!(matches!(
            decode("Zm9v!"),
            Err(Base64Error::InvalidByte { byte: b'!', .. })
        ));
    }

    #[test]
    fn rejects_bad_lengths() {
        assert_eq!(decode("Zm9"), Err(Base64Error::InvalidLength));
        assert_eq!(decode("Z==="), Err(Base64Error::InvalidLength));
        assert_eq!(decode("===="), Err(Base64Error::InvalidLength));
    }

    #[test]
    fn rejects_data_after_padding() {
        assert!(matches!(
            decode("Zm8=Zm8="),
            Err(Base64Error::InvalidByte { .. })
        ));
    }

    proptest! {
        #[test]
        fn roundtrip(data in proptest::collection::vec(any::<u8>(), 0..512)) {
            let enc = encode(&data);
            prop_assert_eq!(decode(&enc).unwrap(), data);
        }

        #[test]
        fn encoded_alphabet_is_clean(data in proptest::collection::vec(any::<u8>(), 0..256)) {
            let enc = encode(&data);
            prop_assert!(enc.bytes().all(|b| b.is_ascii_alphanumeric() || b == b'+' || b == b'/' || b == b'='));
        }
    }
}
