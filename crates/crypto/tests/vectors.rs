//! Published-vector conformance tests for the `wmx-crypto` public API.
//!
//! The in-module unit tests already pin the core FIPS 180-4 and RFC 4231
//! cases against the private internals; this suite re-verifies the
//! *public* re-exports (`wmx_crypto::sha256`, `hmac_sha256`, the codecs)
//! against additional published vectors, so the PRF substrate every
//! other crate builds on cannot drift without a test failing here.

use wmx_crypto::{
    base64_decode, base64_encode, hex_decode, hex_encode, hmac_sha256, sha256, HmacSha256, Sha256,
    DIGEST_LEN,
};

fn sha_hex(data: &[u8]) -> String {
    hex_encode(&sha256(data))
}

/// FIPS 180-4 / NIST CAVP SHA-256 message vectors.
#[test]
fn sha256_fips_vectors() {
    let cases: &[(&[u8], &str)] = &[
        (
            b"",
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855",
        ),
        (
            b"abc",
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad",
        ),
        // 448-bit two-round message from FIPS 180-4 example B.2.
        (
            b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq",
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1",
        ),
        // 896-bit four-letter-window message (the standard long SHA-2 vector).
        (
            b"abcdefghbcdefghicdefghijdefghijkefghijklfghijklmghijklmnhijklmno\
              ijklmnopjklmnopqklmnopqrlmnopqrsmnopqrstnopqrstu",
            "cf5b16a778af8380036ce59e7b0492370b249b11e8f07a51afac45037afee9d1",
        ),
    ];
    for (msg, digest) in cases {
        assert_eq!(
            sha_hex(msg),
            *digest,
            "message {:?}",
            String::from_utf8_lossy(msg)
        );
    }
}

/// The widely published "quick brown fox" digests.
#[test]
fn sha256_fox_vectors() {
    assert_eq!(
        sha_hex(b"The quick brown fox jumps over the lazy dog"),
        "d7a8fbb307d7809469ca9abcb0082e4f8d5651e46d3cdb762d02d0bf37c9e592"
    );
    assert_eq!(
        sha_hex(b"The quick brown fox jumps over the lazy dog."),
        "ef537f25c895bfa782526529a9b63d97aa631564d5d789c2b765448c8635fb6c"
    );
}

/// FIPS 180-4 "one million a's" vector through the streaming interface.
#[test]
fn sha256_million_a_streaming() {
    let mut h = Sha256::new();
    for _ in 0..10_000 {
        h.update(&[b'a'; 100]);
    }
    assert_eq!(
        hex_encode(&h.finalize()),
        "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
    );
}

/// RFC 4231 test case 5: truncated-output HMAC.
///
/// The RFC publishes only the first 128 bits of the tag for this case;
/// we verify that prefix.
#[test]
fn hmac_rfc4231_case5_truncated() {
    let key = [0x0c_u8; 20];
    let tag = hmac_sha256(&key, b"Test With Truncation");
    assert_eq!(hex_encode(&tag[..16]), "a3b6167473100ee06e0c796c2955552b");
}

/// HMAC must equal its textbook definition H((K' ^ opad) || H((K' ^ ipad) || m))
/// when recomputed through the public SHA-256 API.
#[test]
fn hmac_matches_textbook_construction() {
    let key = b"wmxml interop key";
    let msg = b"unit 42 of document db1.xml";

    let mut padded = [0u8; 64];
    padded[..key.len()].copy_from_slice(key);
    let ipad: Vec<u8> = padded.iter().map(|b| b ^ 0x36).collect();
    let opad: Vec<u8> = padded.iter().map(|b| b ^ 0x5c).collect();

    let mut inner = Sha256::new();
    inner.update(&ipad);
    inner.update(msg);
    let mut outer = Sha256::new();
    outer.update(&opad);
    outer.update(&inner.finalize());

    assert_eq!(outer.finalize(), hmac_sha256(key, msg));
}

/// Streaming HMAC equals the one-shot form at every split point.
#[test]
fn hmac_streaming_equals_oneshot() {
    let key = b"k";
    let msg: Vec<u8> = (0u8..=200).collect();
    let expect = hmac_sha256(key, &msg);
    for split in 0..=msg.len() {
        let mut mac = HmacSha256::new(key);
        mac.update(&msg[..split]);
        mac.update(&msg[split..]);
        assert_eq!(mac.finalize(), expect, "split at {split}");
    }
}

/// RFC 4648 §10 base64 vectors through the public re-exports.
#[test]
fn base64_rfc4648_vectors() {
    let cases: &[(&[u8], &str)] = &[
        (b"", ""),
        (b"f", "Zg=="),
        (b"fo", "Zm8="),
        (b"foo", "Zm9v"),
        (b"foob", "Zm9vYg=="),
        (b"fooba", "Zm9vYmE="),
        (b"foobar", "Zm9vYmFy"),
    ];
    for (raw, enc) in cases {
        assert_eq!(base64_encode(raw), *enc);
        assert_eq!(base64_decode(enc).unwrap(), raw.to_vec());
    }
}

/// Codec round-trips over digest-shaped material: every SHA-256 output
/// must survive hex and base64 round-trips byte-identically.
#[test]
fn codec_roundtrips_over_digests() {
    for i in 0..64u32 {
        let digest = sha256(&i.to_be_bytes());
        assert_eq!(digest.len(), DIGEST_LEN);
        let hex = hex_encode(&digest);
        assert_eq!(hex.len(), 2 * DIGEST_LEN);
        assert_eq!(hex_decode(&hex).unwrap(), digest.to_vec());
        let b64 = base64_encode(&digest);
        assert_eq!(base64_decode(&b64).unwrap(), digest.to_vec());
    }
}

/// Hex decoding accepts both cases and round-trips mixed-case input.
#[test]
fn hex_case_insensitive() {
    assert_eq!(
        hex_decode("DeadBEEF").unwrap(),
        vec![0xde, 0xad, 0xbe, 0xef]
    );
    assert_eq!(hex_encode(&[0xde, 0xad, 0xbe, 0xef]), "deadbeef");
}
