//! The adversary toolkit — the four attack families of the paper's
//! demonstration (§4, part 2):
//!
//! * **(A) [alteration]** — "modify the elements or the structures of the
//!   semi-structured data to destroy the embedded watermark": random
//!   value perturbation, element deletion, and decoy insertion, with a
//!   tunable intensity;
//! * **(B) [reduction]** — "selectively use a subset of the
//!   semi-structured data and discard the rest": keep a random fraction
//!   of entity instances;
//! * **(C) [reorganization]** — "reorganize the data according to a new
//!   schema and reorder the data elements": mapping-driven restructuring
//!   (via `wmx-rewrite`), sibling shuffling, and element renaming;
//! * **(D) [redundancy]** — "identify and remove redundancies within the
//!   data": unify every FD-duplicate group to a single consensus value,
//!   erasing minority marks.
//!
//! A fifth family, **[fault]**, attacks the *serialized bytes* rather
//! than the data: truncation, garbled byte windows, namespace mangling,
//! and entity re-encoding — the stream-scale scenarios the robustness
//! gate drives through the fault-tolerant decoders.
//!
//! # Determinism
//!
//! Every attack is a pure function of its configuration: the randomized
//! ones ([`AlterationAttack`], [`ReductionAttack`], [`ShuffleAttack`],
//! [`GarbleAttack`]) carry an **explicit `seed` field** and derive all
//! randomness from a `StdRng` (or arithmetic) seeded with it — no
//! global or thread-local RNG state anywhere; the rest
//! ([`RoundingAttack`], [`RenameAttack`], [`ReorganizationAttack`],
//! [`RedundancyRemovalAttack`], [`TruncationAttack`],
//! [`NamespaceMangleAttack`], [`reencode_char_refs`]) use no randomness
//! at all. Applying the same attack value to the same document always
//! yields byte-identical output, so experiment corpora and gate metrics
//! are exactly reproducible.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod alteration;
pub mod fault;
pub mod reduction;
pub mod redundancy;
pub mod reorganization;

pub use alteration::{AlterationAttack, RoundingAttack};
pub use fault::{
    reencode_char_refs, GarbleAttack, GarbleMode, NamespaceMangleAttack, TruncationAttack,
};
pub use reduction::ReductionAttack;
pub use redundancy::RedundancyRemovalAttack;
pub use reorganization::{RenameAttack, ReorganizationAttack, ShuffleAttack};
