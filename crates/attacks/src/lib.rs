//! The adversary toolkit — the four attack families of the paper's
//! demonstration (§4, part 2):
//!
//! * **(A) [alteration]** — "modify the elements or the structures of the
//!   semi-structured data to destroy the embedded watermark": random
//!   value perturbation, element deletion, and decoy insertion, with a
//!   tunable intensity;
//! * **(B) [reduction]** — "selectively use a subset of the
//!   semi-structured data and discard the rest": keep a random fraction
//!   of entity instances;
//! * **(C) [reorganization]** — "reorganize the data according to a new
//!   schema and reorder the data elements": mapping-driven restructuring
//!   (via `wmx-rewrite`), sibling shuffling, and element renaming;
//! * **(D) [redundancy]** — "identify and remove redundancies within the
//!   data": unify every FD-duplicate group to a single consensus value,
//!   erasing minority marks.
//!
//! All attacks are deterministic given their seed, so experiments are
//! reproducible.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod alteration;
pub mod reduction;
pub mod redundancy;
pub mod reorganization;

pub use alteration::{AlterationAttack, RoundingAttack};
pub use reduction::ReductionAttack;
pub use redundancy::RedundancyRemovalAttack;
pub use reorganization::{RenameAttack, ReorganizationAttack, ShuffleAttack};
