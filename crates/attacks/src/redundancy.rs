//! Attack (D): redundancy removal.
//!
//! The adversary mines the functional dependencies (assumed public — they
//! follow from the domain, not from the secret key) and "make[s] all the
//! duplicates identical": every FD-duplicate group is unified to a single
//! consensus value. Marks embedded *independently* into duplicates are
//! majority-voted away; marks embedded once per group (WmXML) are merely
//! copied onto every duplicate and survive.

use std::collections::HashMap;
use wmx_schema::{discover_groups, Fd};
use wmx_xml::Document;

/// How the unified value is chosen within each duplicate group.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnifyStrategy {
    /// The most frequent value among the duplicates (ties: smallest).
    /// This is the strongest erasure: minority (marked) variants vanish.
    MajorityValue,
    /// The first duplicate's value in document order.
    FirstValue,
}

/// The redundancy-removal attack.
///
/// Deterministic: uses no randomness — [`UnifyStrategy`] resolves ties
/// by value order, so the output is a pure function of the input and
/// no seed field is needed.
#[derive(Debug, Clone)]
pub struct RedundancyRemovalAttack {
    /// The (mined) FDs whose redundancy is removed.
    pub fds: Vec<Fd>,
    /// Unification strategy.
    pub strategy: UnifyStrategy,
}

impl RedundancyRemovalAttack {
    /// Creates the attack.
    pub fn new(fds: Vec<Fd>, strategy: UnifyStrategy) -> Self {
        RedundancyRemovalAttack { fds, strategy }
    }

    /// Applies in place; returns the number of duplicate nodes rewritten.
    pub fn apply(&self, doc: &mut Document) -> usize {
        let groups = discover_groups(doc, &self.fds);
        let mut rewritten = 0usize;
        for group in groups {
            if group.members.len() < 2 {
                continue;
            }
            let values: Vec<String> = group.members.iter().map(|m| m.string_value(doc)).collect();
            let unified = match self.strategy {
                UnifyStrategy::FirstValue => values[0].clone(),
                UnifyStrategy::MajorityValue => {
                    let mut counts: HashMap<&str, usize> = HashMap::new();
                    for v in &values {
                        *counts.entry(v.as_str()).or_default() += 1;
                    }
                    let mut best: Vec<(&str, usize)> = counts.into_iter().collect();
                    // Most frequent first; ties resolved by value order so
                    // the attack stays deterministic.
                    best.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(b.0)));
                    best[0].0.to_string()
                }
            };
            for (member, value) in group.members.iter().zip(&values) {
                if value != &unified {
                    write_back(doc, member, &unified);
                    rewritten += 1;
                }
            }
        }
        rewritten
    }
}

fn write_back(doc: &mut Document, node: &wmx_xpath::NodeRef, value: &str) {
    match node {
        wmx_xpath::NodeRef::Node(id) => {
            if doc.is_element(*id) {
                let _ = doc.set_text_content(*id, value);
            } else if doc.is_text(*id) {
                doc.set_text(*id, value);
            }
        }
        wmx_xpath::NodeRef::Attribute { element, name } => {
            let _ = doc.set_attribute(*element, name.clone(), value);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wmx_xml::parse;
    use wmx_xpath::Query;

    fn fd() -> Fd {
        Fd::new("editor-publisher", "/db/book", &["editor"], &["@publisher"]).unwrap()
    }

    #[test]
    fn unifies_divergent_duplicates_to_majority() {
        // Three duplicates: two say mkp, one (marked) says mkp2.
        let mut d = parse(
            r#"<db>
                <book publisher="mkp"><title>A</title><editor>P</editor></book>
                <book publisher="mkp2"><title>B</title><editor>P</editor></book>
                <book publisher="mkp"><title>C</title><editor>P</editor></book>
            </db>"#,
        )
        .unwrap();
        let rewritten =
            RedundancyRemovalAttack::new(vec![fd()], UnifyStrategy::MajorityValue).apply(&mut d);
        assert_eq!(rewritten, 1);
        let values: Vec<String> = Query::compile("//book/@publisher")
            .unwrap()
            .select(&d)
            .iter()
            .map(|n| n.string_value(&d))
            .collect();
        assert_eq!(values, vec!["mkp", "mkp", "mkp"]);
    }

    #[test]
    fn consistent_groups_untouched() {
        let mut d = parse(
            r#"<db>
                <book publisher="acm"><title>A</title><editor>G</editor></book>
                <book publisher="acm"><title>B</title><editor>G</editor></book>
            </db>"#,
        )
        .unwrap();
        let before = wmx_xml::to_canonical_string(&d);
        let rewritten =
            RedundancyRemovalAttack::new(vec![fd()], UnifyStrategy::MajorityValue).apply(&mut d);
        assert_eq!(rewritten, 0);
        assert_eq!(wmx_xml::to_canonical_string(&d), before);
    }

    #[test]
    fn first_value_strategy() {
        let mut d = parse(
            r#"<db>
                <book publisher="x1"><title>A</title><editor>P</editor></book>
                <book publisher="x2"><title>B</title><editor>P</editor></book>
                <book publisher="x2"><title>C</title><editor>P</editor></book>
            </db>"#,
        )
        .unwrap();
        RedundancyRemovalAttack::new(vec![fd()], UnifyStrategy::FirstValue).apply(&mut d);
        let values: std::collections::BTreeSet<String> = Query::compile("//book/@publisher")
            .unwrap()
            .select(&d)
            .iter()
            .map(|n| n.string_value(&d))
            .collect();
        assert_eq!(values.len(), 1);
        assert!(values.contains("x1"));
    }

    #[test]
    fn singleton_groups_ignored() {
        let mut d =
            parse(r#"<db><book publisher="mkp"><title>A</title><editor>Solo</editor></book></db>"#)
                .unwrap();
        let rewritten =
            RedundancyRemovalAttack::new(vec![fd()], UnifyStrategy::MajorityValue).apply(&mut d);
        assert_eq!(rewritten, 0);
    }
}
