//! Stream-scale fault injection: attacks on the *serialized bytes* of a
//! marked document rather than on its DOM.
//!
//! The DOM attack families (A–D) model an adversary editing data; this
//! module models transport- and storage-level damage — truncated files,
//! garbled byte ranges, namespace mangling, and entity re-encoding — the
//! robustness gate drives through the fault-tolerant streaming decoders
//! to assert *partial verdicts with precise localization* instead of
//! errors. Every attack here is a pure function of its inputs (plus an
//! explicit `seed` where randomness is involved): corpora are exactly
//! reproducible.

/// Cuts a serialized document at a byte fraction, backing off to the
/// nearest UTF-8 character boundary — the classic torn-download /
/// half-written-file fault. The result is (almost always) malformed
/// XML: records after the cut are gone and the record straddling it is
/// damaged.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TruncationAttack {
    /// Fraction of the byte length to keep (0.0–1.0).
    pub keep_fraction: f64,
}

impl TruncationAttack {
    /// Creates the attack; `keep_fraction` is clamped to `[0, 1]`.
    pub fn new(keep_fraction: f64) -> Self {
        TruncationAttack {
            keep_fraction: keep_fraction.clamp(0.0, 1.0),
        }
    }

    /// Returns the truncated prefix.
    pub fn apply(&self, xml: &str) -> String {
        let mut cut = (xml.len() as f64 * self.keep_fraction) as usize;
        while cut < xml.len() && !xml.is_char_boundary(cut) {
            cut -= 1;
        }
        xml[..cut.min(xml.len())].to_string()
    }
}

/// How [`GarbleAttack`] damages its byte window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GarbleMode {
    /// Rotate every ASCII digit in the window by a seed-derived amount
    /// (never zero): the document still parses, but every numeric value
    /// in the window is wrong — the forensic pass must localize the
    /// damage to exactly those records.
    ScrambleDigits,
    /// Overwrite the window with `0xFF` bytes: the result is not valid
    /// UTF-8, so streaming readers fail at the window — the
    /// fault-tolerant decoders must salvage the head as a partial
    /// verdict.
    InvalidUtf8,
}

/// Garbles a contiguous byte window of a serialized document.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GarbleAttack {
    /// Window start as a fraction of the byte length.
    pub offset_fraction: f64,
    /// Window length in bytes.
    pub length: usize,
    /// Damage mode.
    pub mode: GarbleMode,
    /// Seed for the digit rotation (documented: the only randomness is
    /// the rotation amount `1 + seed % 9`; the window placement is
    /// fully determined by `offset_fraction`/`length`).
    pub seed: u64,
}

impl GarbleAttack {
    /// Creates the attack; `offset_fraction` is clamped to `[0, 1]`.
    pub fn new(offset_fraction: f64, length: usize, mode: GarbleMode, seed: u64) -> Self {
        GarbleAttack {
            offset_fraction: offset_fraction.clamp(0.0, 1.0),
            length,
            mode,
            seed,
        }
    }

    /// Returns the garbled bytes. [`GarbleMode::ScrambleDigits`] output
    /// is still valid UTF-8 (digits map to digits);
    /// [`GarbleMode::InvalidUtf8`] output deliberately is not.
    pub fn apply(&self, xml: &str) -> Vec<u8> {
        let mut bytes = xml.as_bytes().to_vec();
        let start = (bytes.len() as f64 * self.offset_fraction) as usize;
        let end = (start + self.length).min(bytes.len());
        match self.mode {
            GarbleMode::ScrambleDigits => {
                let rot = (1 + self.seed % 9) as u8;
                for b in &mut bytes[start..end] {
                    if b.is_ascii_digit() {
                        *b = b'0' + (*b - b'0' + rot) % 10;
                    }
                }
            }
            GarbleMode::InvalidUtf8 => {
                for b in &mut bytes[start..end] {
                    *b = 0xFF;
                }
            }
        }
        bytes
    }
}

/// Prefixes every element name with an undeclared-vocabulary namespace
/// prefix (and declares it on the root): `<book>` becomes
/// `<m:book xmlns:m="urn:wmx-mangle">…`. The document stays well-formed,
/// but entity bindings no longer match any instance path — detection
/// must report the watermark as absent (a correct negative), never
/// crash. No randomness: the rewrite is a pure function of the input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NamespaceMangleAttack {
    /// The prefix to graft onto element names (without the colon).
    pub prefix: String,
}

impl NamespaceMangleAttack {
    /// Creates the attack with the given prefix.
    pub fn new(prefix: &str) -> Self {
        NamespaceMangleAttack {
            prefix: prefix.to_string(),
        }
    }

    /// Returns the mangled serialization. Operates on markup only: `<`
    /// inside values is escaped by the serializer, so every literal `<`
    /// starts a tag.
    pub fn apply(&self, xml: &str) -> String {
        let mut out = String::with_capacity(xml.len() + xml.len() / 8);
        let bytes = xml.as_bytes();
        let mut i = 0usize;
        let mut root_declared = false;
        while i < bytes.len() {
            let b = bytes[i];
            if b == b'<' {
                let next = bytes.get(i + 1).copied();
                match next {
                    // Opening tag of an element.
                    Some(c) if c.is_ascii_alphabetic() || c == b'_' => {
                        out.push('<');
                        out.push_str(&self.prefix);
                        out.push(':');
                        i += 1;
                        // Copy the element name.
                        let name_start = i;
                        while i < bytes.len()
                            && !(bytes[i] as char).is_whitespace()
                            && bytes[i] != b'>'
                            && bytes[i] != b'/'
                        {
                            i += 1;
                        }
                        out.push_str(&xml[name_start..i]);
                        if !root_declared {
                            out.push_str(" xmlns:");
                            out.push_str(&self.prefix);
                            out.push_str("=\"urn:wmx-mangle\"");
                            root_declared = true;
                        }
                        continue;
                    }
                    // Closing tag.
                    Some(b'/')
                        if bytes
                            .get(i + 2)
                            .is_some_and(|c| c.is_ascii_alphabetic() || *c == b'_') =>
                    {
                        out.push_str("</");
                        out.push_str(&self.prefix);
                        out.push(':');
                        i += 2;
                        continue;
                    }
                    // Comments, PIs, CDATA, doctype: copy verbatim.
                    _ => {}
                }
            }
            let ch = xml[i..].chars().next().expect("in-bounds char");
            out.push(ch);
            i += ch.len_utf8();
        }
        out
    }
}

/// Re-encodes character content using numeric character references:
/// every `e`/`o` in text content becomes `&#101;`/`&#111;`. The bytes
/// change substantially, but the *parsed values* are identical — a
/// correct decoder detects the watermark exactly as before (the gate's
/// re-encoded corpus asserts this). Markup, existing entity references,
/// and attribute delimiters are left alone. Deterministic: no RNG.
pub fn reencode_char_refs(xml: &str) -> String {
    let mut out = String::with_capacity(xml.len() * 2);
    let mut in_tag = false;
    let mut in_entity = false;
    for ch in xml.chars() {
        match ch {
            '<' => {
                in_tag = true;
                out.push(ch);
            }
            '>' => {
                in_tag = false;
                out.push(ch);
            }
            '&' if !in_tag => {
                in_entity = true;
                out.push(ch);
            }
            ';' if in_entity => {
                in_entity = false;
                out.push(ch);
            }
            'e' if !in_tag && !in_entity => out.push_str("&#101;"),
            'o' if !in_tag && !in_entity => out.push_str("&#111;"),
            _ => out.push(ch),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const DOC: &str = "<db><book publisher=\"pub0\"><title>Book 10</title>\
                       <year>1998</year></book><book publisher=\"pub1\">\
                       <title>Tome 11</title><year>2003</year></book></db>";

    #[test]
    fn truncation_keeps_a_prefix_on_char_boundaries() {
        let attack = TruncationAttack::new(0.5);
        let cut = attack.apply(DOC);
        assert!(DOC.starts_with(&cut));
        assert_eq!(cut.len(), DOC.len() / 2);
        // Multi-byte safety: cutting through a © backs off.
        let uni = "<db><t>©©©©©©©©</t></db>";
        for pct in [0.3, 0.5, 0.7, 0.9] {
            let _ = TruncationAttack::new(pct).apply(uni); // must not panic
        }
        assert_eq!(TruncationAttack::new(1.0).apply(DOC), DOC);
        assert_eq!(TruncationAttack::new(0.0).apply(DOC), "");
    }

    #[test]
    fn digit_scramble_stays_parseable_and_is_deterministic() {
        let attack = GarbleAttack::new(0.2, 60, GarbleMode::ScrambleDigits, 7);
        let a = attack.apply(DOC);
        let b = attack.apply(DOC);
        assert_eq!(a, b);
        let garbled = String::from_utf8(a).expect("digit rotation is UTF-8 safe");
        assert_ne!(garbled, DOC);
        wmx_xml::parse(&garbled).expect("scrambled digits still parse");
        // Rotation is never the identity.
        for seed in 0..20 {
            let g = GarbleAttack::new(0.0, DOC.len(), GarbleMode::ScrambleDigits, seed);
            let out = String::from_utf8(g.apply(DOC)).unwrap();
            assert_ne!(out, DOC, "seed {seed} must change digits");
        }
    }

    #[test]
    fn invalid_utf8_garble_is_not_a_string() {
        let attack = GarbleAttack::new(0.5, 10, GarbleMode::InvalidUtf8, 0);
        let bytes = attack.apply(DOC);
        assert!(String::from_utf8(bytes.clone()).is_err());
        assert_eq!(bytes.len(), DOC.len());
    }

    #[test]
    fn namespace_mangle_stays_well_formed() {
        let mangled = NamespaceMangleAttack::new("m").apply(DOC);
        let doc = wmx_xml::parse(&mangled).expect("mangled doc parses");
        let root = doc.root_element().unwrap();
        assert_eq!(doc.name(root), Some("m:db"));
        assert!(mangled.contains("xmlns:m=\"urn:wmx-mangle\""));
        assert!(mangled.contains("<m:book"));
        assert!(mangled.contains("</m:book>"));
        // Idempotent on comments/PIs.
        let with_misc = "<?xml version=\"1.0\"?><!-- c --><db><v>1</v></db>";
        let m = NamespaceMangleAttack::new("m").apply(with_misc);
        assert!(m.contains("<?xml version=\"1.0\"?>"));
        assert!(m.contains("<!-- c -->"));
        wmx_xml::parse(&m).unwrap();
    }

    #[test]
    fn reencode_preserves_parsed_values() {
        let encoded = reencode_char_refs(DOC);
        assert_ne!(encoded, DOC);
        assert!(encoded.contains("&#111;")); // Book -> B&#111;&#111;k
        let a = wmx_xml::parse(DOC).unwrap();
        let b = wmx_xml::parse(&encoded).unwrap();
        assert_eq!(
            wmx_xml::to_canonical_string(&a),
            wmx_xml::to_canonical_string(&b),
            "re-encoding must be value-preserving"
        );
        // Entity references survive untouched.
        let amp = "<db><t>Tom &amp; Joe</t></db>";
        let e = reencode_char_refs(amp);
        assert!(e.contains("&amp;"));
        assert_eq!(
            wmx_xml::to_canonical_string(&wmx_xml::parse(&e).unwrap()),
            wmx_xml::to_canonical_string(&wmx_xml::parse(amp).unwrap())
        );
    }
}
