//! Attack (B): data reduction — keep a subset, discard the rest.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use wmx_xml::Document;
use wmx_xpath::Query;

/// Keeps a random fraction of the elements selected by `record_path`
/// (typically the entity instances) and detaches the rest.
#[derive(Debug, Clone)]
pub struct ReductionAttack {
    /// Fraction of records kept (0.0–1.0).
    pub keep_fraction: f64,
    /// Query selecting the record elements (e.g. `/db/book`).
    pub record_path: String,
    /// RNG seed.
    pub seed: u64,
}

impl ReductionAttack {
    /// Creates the attack.
    pub fn new(keep_fraction: f64, record_path: &str, seed: u64) -> Self {
        ReductionAttack {
            keep_fraction,
            record_path: record_path.to_string(),
            seed,
        }
    }

    /// Applies in place; returns the number of records removed.
    pub fn apply(&self, doc: &mut Document) -> usize {
        let Ok(query) = Query::compile(&self.record_path) else {
            return 0;
        };
        let records = query.select(doc);
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut removed = 0usize;
        for node in records {
            if rng.random_range(0.0..1.0) < self.keep_fraction {
                continue;
            }
            if let wmx_xpath::NodeRef::Node(id) = node {
                doc.detach(id);
                removed += 1;
            }
        }
        removed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wmx_data::publications::{generate, PublicationsConfig};

    fn doc() -> Document {
        generate(&PublicationsConfig {
            records: 200,
            ..PublicationsConfig::default()
        })
        .doc
    }

    fn count_books(doc: &Document) -> usize {
        Query::compile("/db/book").unwrap().select(doc).len()
    }

    #[test]
    fn keep_all_removes_nothing() {
        let mut d = doc();
        assert_eq!(ReductionAttack::new(1.0, "/db/book", 1).apply(&mut d), 0);
        assert_eq!(count_books(&d), 200);
    }

    #[test]
    fn keep_none_removes_everything() {
        let mut d = doc();
        assert_eq!(ReductionAttack::new(0.0, "/db/book", 1).apply(&mut d), 200);
        assert_eq!(count_books(&d), 0);
    }

    #[test]
    fn keep_half_removes_roughly_half() {
        let mut d = doc();
        let removed = ReductionAttack::new(0.5, "/db/book", 42).apply(&mut d);
        assert!(removed > 60 && removed < 140, "removed {removed}");
        assert_eq!(count_books(&d), 200 - removed);
    }

    #[test]
    fn surviving_records_are_intact() {
        let mut d = doc();
        ReductionAttack::new(0.3, "/db/book", 5).apply(&mut d);
        for book in Query::compile("/db/book").unwrap().select(&d) {
            let title = Query::compile("title")
                .unwrap()
                .select_from(&d, book.clone());
            assert_eq!(title.len(), 1, "surviving book lost its title");
        }
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = doc();
        let mut b = doc();
        ReductionAttack::new(0.4, "/db/book", 9).apply(&mut a);
        ReductionAttack::new(0.4, "/db/book", 9).apply(&mut b);
        assert_eq!(
            wmx_xml::to_canonical_string(&a),
            wmx_xml::to_canonical_string(&b)
        );
    }
}
