//! Attack (A): data alteration.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use wmx_xml::{Document, NodeId, NodeKind};
use wmx_xpath::Query;

/// Randomized value/structure alteration.
///
/// With intensity α the attack touches a fraction α of the target value
/// nodes: numeric values are shifted by a random offset in
/// `[min_shift, max_shift]` (both directions), text values are rewritten
/// to a scrambled form, and (optionally) a fraction α of deletable child
/// elements is removed and decoy elements inserted. Higher α destroys
/// more of the watermark — and, with it, more of the data's usability,
/// which is exactly the trade-off the demo plots.
#[derive(Debug, Clone)]
pub struct AlterationAttack {
    /// Fraction of value nodes altered (0.0–1.0).
    pub fraction: f64,
    /// Queries selecting the value nodes under attack (e.g. `//year`).
    pub value_paths: Vec<String>,
    /// Minimum absolute numeric shift (≥ 1 recommended: beyond the
    /// owner's tolerance).
    pub min_shift: i64,
    /// Maximum absolute numeric shift.
    pub max_shift: i64,
    /// Also delete this fraction of the *elements* selected by
    /// `delete_paths`.
    pub delete_fraction: f64,
    /// Queries selecting deletable elements.
    pub delete_paths: Vec<String>,
    /// Insert this many decoy children under the root.
    pub insert_decoys: usize,
    /// RNG seed.
    pub seed: u64,
}

impl AlterationAttack {
    /// A pure value-perturbation attack of intensity `fraction` on the
    /// given paths.
    pub fn values(fraction: f64, value_paths: Vec<String>, seed: u64) -> Self {
        AlterationAttack {
            fraction,
            value_paths,
            min_shift: 2,
            max_shift: 20,
            delete_fraction: 0.0,
            delete_paths: Vec::new(),
            insert_decoys: 0,
            seed,
        }
    }

    /// Applies the attack in place. Returns the number of altered nodes
    /// (values changed + elements deleted + decoys inserted).
    pub fn apply(&self, doc: &mut Document) -> usize {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut touched = 0usize;

        for path in &self.value_paths {
            let Ok(query) = Query::compile(path) else {
                continue;
            };
            for node in query.select(doc) {
                if rng.random_range(0.0..1.0) >= self.fraction {
                    continue;
                }
                let value = node.string_value(doc);
                let new_value = self.alter_value(&value, &mut rng);
                if new_value != value {
                    let _ = write_back(doc, &node, &new_value);
                    touched += 1;
                }
            }
        }

        if self.delete_fraction > 0.0 {
            for path in &self.delete_paths {
                let Ok(query) = Query::compile(path) else {
                    continue;
                };
                for node in query.select(doc) {
                    if rng.random_range(0.0..1.0) >= self.delete_fraction {
                        continue;
                    }
                    if let wmx_xpath::NodeRef::Node(id) = node {
                        doc.detach(id);
                        touched += 1;
                    }
                }
            }
        }

        if self.insert_decoys > 0 {
            if let Some(root) = doc.root_element() {
                for i in 0..self.insert_decoys {
                    let decoy = doc.create_element("decoy").expect("attack doc fits arena");
                    let text = doc
                        .create_text(format!("noise-{}-{}", self.seed, i))
                        .expect("attack doc fits arena");
                    doc.append_child(decoy, text);
                    doc.append_child(root, decoy);
                    touched += 1;
                }
            }
        }
        touched
    }

    fn alter_value(&self, value: &str, rng: &mut StdRng) -> String {
        if let Ok(n) = value.trim().parse::<i64>() {
            let magnitude = rng.random_range(self.min_shift..=self.max_shift.max(self.min_shift));
            let sign = if rng.random_range(0..2) == 0 { 1 } else { -1 };
            return (n + sign * magnitude).to_string();
        }
        if let Ok(x) = value.trim().parse::<f64>() {
            let magnitude =
                rng.random_range(self.min_shift as f64..=self.max_shift.max(self.min_shift) as f64);
            let sign = if rng.random_range(0..2) == 0 {
                1.0
            } else {
                -1.0
            };
            return format!("{:.2}", x + sign * magnitude);
        }
        // Text: scramble by appending an adversarial suffix (normalized
        // comparison still differs → genuinely destroys the value).
        format!("{}-x{}", value.trim_end(), rng.random_range(0..100))
    }
}

fn write_back(doc: &mut Document, node: &wmx_xpath::NodeRef, value: &str) -> Result<(), ()> {
    match node {
        wmx_xpath::NodeRef::Node(id) => {
            if doc.is_element(*id) {
                doc.set_text_content(*id, value).map_err(|_| ())?;
                Ok(())
            } else if matches!(doc.kind(*id), NodeKind::Text(_) | NodeKind::CData(_)) {
                doc.set_text(*id, value);
                Ok(())
            } else {
                Err(())
            }
        }
        wmx_xpath::NodeRef::Attribute { element, name } => doc
            .set_attribute(*element, name.clone(), value)
            .map_err(|_| ()),
    }
}

/// Counts elements named `name` (test/report helper).
pub fn count_elements(doc: &Document, name: &str) -> usize {
    doc.descendant_elements(doc.document_node())
        .filter(|&n| doc.name(n) == Some(name))
        .count()
}

/// Reports nodes of `doc` reachable as `NodeId`s under `path`
/// (test/report helper).
pub fn select_ids(doc: &Document, path: &str) -> Vec<NodeId> {
    Query::compile(path)
        .map(|q| {
            q.select(doc)
                .into_iter()
                .filter_map(|n| match n {
                    wmx_xpath::NodeRef::Node(id) => Some(id),
                    _ => None,
                })
                .collect()
        })
        .unwrap_or_default()
}

#[cfg(test)]
mod tests {
    use super::*;
    use wmx_data::publications::{generate, PublicationsConfig};
    use wmx_xml::to_canonical_string;

    fn doc() -> Document {
        generate(&PublicationsConfig {
            records: 100,
            ..PublicationsConfig::default()
        })
        .doc
    }

    #[test]
    fn zero_fraction_changes_nothing() {
        let mut d = doc();
        let before = to_canonical_string(&d);
        let attack = AlterationAttack::values(0.0, vec!["//year".into()], 1);
        assert_eq!(attack.apply(&mut d), 0);
        assert_eq!(to_canonical_string(&d), before);
    }

    #[test]
    fn full_fraction_changes_all_numeric_values() {
        let mut d = doc();
        let before: Vec<String> = Query::compile("//year")
            .unwrap()
            .select(&d)
            .iter()
            .map(|n| n.string_value(&d))
            .collect();
        let attack = AlterationAttack::values(1.0, vec!["//year".into()], 1);
        let touched = attack.apply(&mut d);
        assert_eq!(touched, before.len());
        let after: Vec<String> = Query::compile("//year")
            .unwrap()
            .select(&d)
            .iter()
            .map(|n| n.string_value(&d))
            .collect();
        for (b, a) in before.iter().zip(&after) {
            let (b, a): (i64, i64) = (b.parse().unwrap(), a.parse().unwrap());
            assert!((b - a).abs() >= 2, "shift must exceed owner tolerance");
        }
    }

    #[test]
    fn partial_fraction_touches_roughly_that_share() {
        let mut d = doc();
        let total = Query::compile("//year").unwrap().select(&d).len();
        let attack = AlterationAttack::values(0.3, vec!["//year".into()], 7);
        let touched = attack.apply(&mut d);
        let expected = total as f64 * 0.3;
        assert!(
            (touched as f64 - expected).abs() < total as f64 * 0.15,
            "touched {touched} of {total}"
        );
    }

    #[test]
    fn attack_is_deterministic() {
        let mut a = doc();
        let mut b = doc();
        let attack = AlterationAttack::values(0.5, vec!["//year".into()], 99);
        attack.apply(&mut a);
        attack.apply(&mut b);
        assert_eq!(to_canonical_string(&a), to_canonical_string(&b));
    }

    #[test]
    fn deletion_and_decoys() {
        let mut d = doc();
        let before = count_elements(&d, "book");
        let attack = AlterationAttack {
            fraction: 0.0,
            value_paths: vec![],
            min_shift: 2,
            max_shift: 5,
            delete_fraction: 0.2,
            delete_paths: vec!["//book/editor".into()],
            insert_decoys: 5,
            seed: 3,
        };
        attack.apply(&mut d);
        assert_eq!(count_elements(&d, "book"), before);
        assert_eq!(count_elements(&d, "decoy"), 5);
        assert!(count_elements(&d, "editor") < before);
    }

    #[test]
    fn text_alteration_changes_normalized_value() {
        let mut d = doc();
        let attack = AlterationAttack::values(1.0, vec!["//book/author".into()], 11);
        attack.apply(&mut d);
        let authors = Query::compile("//book/author").unwrap().select(&d);
        assert!(authors.iter().all(|n| n.string_value(&d).contains("-x")));
    }
}

/// The rounding attack: snap every numeric value selected by
/// `value_paths` to the nearest multiple of `granularity`.
///
/// This is the classic anti-LSB maneuver: rounding to a multiple of 2
/// moves each value by at most 1 — *within* a ±1 owner tolerance, so
/// usability survives — while forcing every parity to zero, erasing
/// parity-embedded marks wholesale. It defeats numeric value marks at
/// zero usability cost; text, image, and sibling-order marks are
/// unaffected (see experiment E10 for the measured trade-off and the
/// mitigation discussion).
///
/// Deterministic: uses no randomness (rounding is a pure function of
/// the granularity), hence no seed field.
#[derive(Debug, Clone)]
pub struct RoundingAttack {
    /// Round to the nearest multiple of this.
    pub granularity: i64,
    /// Queries selecting numeric value nodes.
    pub value_paths: Vec<String>,
}

impl RoundingAttack {
    /// Creates the attack.
    pub fn new(granularity: i64, value_paths: Vec<String>) -> Self {
        assert!(granularity >= 1, "granularity must be positive");
        RoundingAttack {
            granularity,
            value_paths,
        }
    }

    /// Applies in place; returns the number of values changed.
    pub fn apply(&self, doc: &mut Document) -> usize {
        let mut changed = 0usize;
        for path in &self.value_paths {
            let Ok(query) = Query::compile(path) else {
                continue;
            };
            for node in query.select(doc) {
                let value = node.string_value(doc);
                let Ok(n) = value.trim().parse::<i64>() else {
                    continue;
                };
                let g = self.granularity;
                // Round half away from zero to the nearest multiple of g.
                let rounded = ((n as f64 / g as f64).round() as i64) * g;
                if rounded != n && write_back(doc, &node, &rounded.to_string()).is_ok() {
                    changed += 1;
                }
            }
        }
        changed
    }
}

#[cfg(test)]
mod rounding_tests {
    use super::*;
    use wmx_xml::parse;

    #[test]
    fn rounds_to_granularity() {
        let mut d = parse("<db><v>1997</v><v>1998</v><v>2001</v></db>").unwrap();
        let changed = RoundingAttack::new(2, vec!["//v".into()]).apply(&mut d);
        assert_eq!(changed, 2); // 1997 -> 1998 (wait: 1997/2=998.5 -> 999*2=1998), 2001 -> 2002 wait 2001/2=1000.5->1001*2=2002... hmm 1998 already even
        let values: Vec<String> = Query::compile("//v")
            .unwrap()
            .select(&d)
            .iter()
            .map(|n| n.string_value(&d))
            .collect();
        for v in &values {
            assert_eq!(v.parse::<i64>().unwrap() % 2, 0);
        }
    }

    #[test]
    fn movement_bounded_by_half_granularity() {
        let mut d = parse("<db><v>100</v><v>103</v><v>105</v><v>-7</v></db>").unwrap();
        let before: Vec<i64> = Query::compile("//v")
            .unwrap()
            .select(&d)
            .iter()
            .map(|n| n.string_value(&d).parse().unwrap())
            .collect();
        RoundingAttack::new(4, vec!["//v".into()]).apply(&mut d);
        let after: Vec<i64> = Query::compile("//v")
            .unwrap()
            .select(&d)
            .iter()
            .map(|n| n.string_value(&d).parse().unwrap())
            .collect();
        for (b, a) in before.iter().zip(&after) {
            assert!((b - a).abs() <= 2, "{b} moved to {a}");
            assert_eq!(a.rem_euclid(4), 0);
        }
    }

    #[test]
    fn non_numeric_values_untouched() {
        let mut d = parse("<db><v>hello</v></db>").unwrap();
        assert_eq!(RoundingAttack::new(2, vec!["//v".into()]).apply(&mut d), 0);
    }

    #[test]
    #[should_panic(expected = "granularity must be positive")]
    fn zero_granularity_rejected() {
        RoundingAttack::new(0, vec![]);
    }
}
