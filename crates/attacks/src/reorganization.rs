//! Attack (C): data re-organization — new schema, reordered elements,
//! renamed tags.

use rand::rngs::StdRng;
use rand::{seq::SliceRandom, SeedableRng};
use wmx_rewrite::transform::Layout;
use wmx_rewrite::{reorganize, RewriteError, SchemaBinding};
use wmx_xml::Document;

/// Restructures the document under a new schema via the logical-record
/// extraction/composition machinery of `wmx-rewrite` — the db1→db2
/// transformation of the paper's Fig. 1.
///
/// Deterministic: uses no randomness (the layout fully determines the
/// output), hence no seed field.
#[derive(Debug, Clone)]
pub struct ReorganizationAttack {
    /// The entity to restructure around.
    pub entity: String,
    /// The new root element name.
    pub root: String,
    /// The target layout.
    pub layout: Layout,
}

impl ReorganizationAttack {
    /// Creates the attack.
    pub fn new(entity: &str, root: &str, layout: Layout) -> Self {
        ReorganizationAttack {
            entity: entity.to_string(),
            root: root.to_string(),
            layout,
        }
    }

    /// Produces the reorganized document (the original is untouched —
    /// the adversary redistributes a copy).
    pub fn apply(
        &self,
        doc: &Document,
        source_binding: &SchemaBinding,
    ) -> Result<Document, RewriteError> {
        reorganize(doc, source_binding, &self.entity, &self.root, &self.layout)
    }
}

/// Randomly permutes the children of every element ("reorder the data
/// elements"). Key-based identification is order-independent, so WmXML
/// survives this; position-based schemes do not.
#[derive(Debug, Clone)]
pub struct ShuffleAttack {
    /// RNG seed.
    pub seed: u64,
}

impl ShuffleAttack {
    /// Creates the attack.
    pub fn new(seed: u64) -> Self {
        ShuffleAttack { seed }
    }

    /// Shuffles in place; returns the number of parents reordered.
    pub fn apply(&self, doc: &mut Document) -> usize {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let parents: Vec<_> = doc
            .descendant_elements(doc.document_node())
            .filter(|&n| doc.children(n).len() > 1)
            .collect();
        let mut shuffled = 0usize;
        for parent in parents {
            let len = doc.children(parent).len();
            let mut permutation: Vec<usize> = (0..len).collect();
            permutation.shuffle(&mut rng);
            doc.reorder_children(parent, &permutation);
            shuffled += 1;
        }
        shuffled
    }
}

/// Renames elements/attributes ("redesign the schema" in its mildest
/// form). Mappings: `(old element name, new element name)`.
///
/// Deterministic: uses no randomness (the rename table fully determines
/// the output), hence no seed field.
#[derive(Debug, Clone)]
pub struct RenameAttack {
    /// Element renames.
    pub element_renames: Vec<(String, String)>,
}

impl RenameAttack {
    /// Creates the attack.
    pub fn new(element_renames: Vec<(&str, &str)>) -> Self {
        RenameAttack {
            element_renames: element_renames
                .into_iter()
                .map(|(a, b)| (a.to_string(), b.to_string()))
                .collect(),
        }
    }

    /// Applies in place; returns the number of elements renamed.
    pub fn apply(&self, doc: &mut Document) -> usize {
        let mut renamed = 0usize;
        let nodes: Vec<_> = doc.descendant_elements(doc.document_node()).collect();
        for node in nodes {
            let Some(name) = doc.name(node).map(str::to_string) else {
                continue;
            };
            if let Some((_, to)) = self.element_renames.iter().find(|(from, _)| from == &name) {
                doc.set_name(node, to.clone()).expect("element rename");
                renamed += 1;
            }
        }
        renamed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wmx_data::publications::{binding, generate, PublicationsConfig};
    use wmx_rewrite::transform::FieldPlacement;
    use wmx_xpath::Query;

    fn dataset_doc() -> Document {
        generate(&PublicationsConfig {
            records: 50,
            editors: 5,
            ..PublicationsConfig::default()
        })
        .doc
    }

    fn grouped_layout() -> Layout {
        Layout::GroupBy {
            attr: "publisher".into(),
            element: "publisher".into(),
            label: FieldPlacement::Attribute("name".into()),
            inner: Box::new(Layout::GroupBy {
                attr: "author".into(),
                element: "author".into(),
                label: FieldPlacement::Attribute("name".into()),
                inner: Box::new(Layout::Flat {
                    record_element: "book".into(),
                    fields: vec![("title".into(), FieldPlacement::SelfText)],
                }),
            }),
        }
    }

    #[test]
    fn reorganization_changes_shape_but_keeps_information() {
        let doc = dataset_doc();
        let attack = ReorganizationAttack::new("book", "db", grouped_layout());
        let reorganized = attack.apply(&doc, &binding()).unwrap();
        // New shape.
        assert!(Query::compile("/db/book")
            .unwrap()
            .select(&reorganized)
            .is_empty());
        assert!(!Query::compile("/db/publisher/author/book")
            .unwrap()
            .select(&reorganized)
            .is_empty());
        // Every original title is still present as a book leaf.
        let titles_before = Query::compile("/db/book/title").unwrap().select(&doc).len();
        let distinct_titles_after: std::collections::BTreeSet<String> = Query::compile("//book")
            .unwrap()
            .select(&reorganized)
            .iter()
            .map(|n| n.string_value(&reorganized))
            .collect();
        assert_eq!(titles_before, distinct_titles_after.len());
    }

    #[test]
    fn shuffle_preserves_content_changes_order() {
        let mut d = dataset_doc();
        let before_titles: std::collections::BTreeSet<String> = Query::compile("//title")
            .unwrap()
            .select(&d)
            .iter()
            .map(|n| n.string_value(&d))
            .collect();
        let first_before = Query::compile("/db/book[1]/title")
            .unwrap()
            .select_string(&d)
            .unwrap();
        ShuffleAttack::new(1234).apply(&mut d);
        let after_titles: std::collections::BTreeSet<String> = Query::compile("//title")
            .unwrap()
            .select(&d)
            .iter()
            .map(|n| n.string_value(&d))
            .collect();
        assert_eq!(before_titles, after_titles);
        let first_after = Query::compile("/db/book[1]/title")
            .unwrap()
            .select_string(&d)
            .unwrap();
        // With 50 books the first one almost surely moved.
        assert_ne!(first_before, first_after);
    }

    #[test]
    fn rename_attack_renames_all_occurrences() {
        let mut d = dataset_doc();
        let renamed =
            RenameAttack::new(vec![("year", "published"), ("editor", "curator")]).apply(&mut d);
        assert_eq!(renamed, 100); // 50 years + 50 editors
        assert!(Query::compile("//year").unwrap().select(&d).is_empty());
        assert_eq!(Query::compile("//published").unwrap().select(&d).len(), 50);
        assert_eq!(Query::compile("//curator").unwrap().select(&d).len(), 50);
    }

    #[test]
    fn shuffle_is_deterministic() {
        let mut a = dataset_doc();
        let mut b = dataset_doc();
        ShuffleAttack::new(7).apply(&mut a);
        ShuffleAttack::new(7).apply(&mut b);
        assert_eq!(
            wmx_xml::to_canonical_string(&a),
            wmx_xml::to_canonical_string(&b)
        );
    }
}
