//! Oracle suite for the byte-scanning lexer substrate.
//!
//! The lexer scans raw bytes (SWAR word loops, span consumption, lazy
//! line/column accounting); this suite pins it against char-by-char
//! reference computations on adversarial UTF-8:
//!
//! * every token position the lexer reports must equal a naive
//!   character walk over the consumed prefix (columns count characters,
//!   not bytes — multibyte text must not skew them);
//! * the chunked pull parser, fed the same document split at arbitrary
//!   (char-boundary-snapped) points — entities, CDATA `]]>` edges, and
//!   CR/LF pairs landing across chunk seams — must produce exactly the
//!   batch lexer's token stream, positions, and terminal error.

use proptest::prelude::*;
use wmx_xml::error::{Position, XmlError};
use wmx_xml::lexer::Lexer;
use wmx_xml::pull::{PullParser, Pulled};
use wmx_xml::{Interner, Token};

/// Reference position of byte offset `at` in `input`, computed the slow
/// way: one character at a time from the start.
fn ref_position(input: &str, at: usize) -> (u32, u32) {
    let mut line = 1u32;
    let mut column = 1u32;
    for c in input[..at].chars() {
        if c == '\n' {
            line += 1;
            column = 1;
        } else {
            column += 1;
        }
    }
    (line, column)
}

/// A token with names resolved and text materialized — comparable
/// across lexers with different interners and span backings.
#[derive(Debug, Clone, PartialEq, Eq)]
enum RTok {
    Start {
        name: String,
        attrs: Vec<(String, String)>,
        self_closing: bool,
    },
    End {
        name: String,
    },
    Text(String),
    CData(String),
    Comment(String),
    Pi {
        target: String,
        data: String,
    },
    XmlDecl(String),
    Doctype(String),
}

fn resolve_tok(token: &Token, names: &Interner) -> RTok {
    match token {
        Token::StartTag {
            name,
            attributes,
            self_closing,
        } => RTok::Start {
            name: names.resolve(*name).to_string(),
            attrs: attributes
                .iter()
                .map(|a| {
                    (
                        names.resolve(a.name).to_string(),
                        a.value.as_str().to_string(),
                    )
                })
                .collect(),
            self_closing: *self_closing,
        },
        Token::EndTag { name } => RTok::End {
            name: names.resolve(*name).to_string(),
        },
        Token::Text { content } => RTok::Text(content.as_str().to_string()),
        Token::CData { content } => RTok::CData(content.as_str().to_string()),
        Token::Comment { content } => RTok::Comment(content.clone()),
        Token::ProcessingInstruction { target, data } => RTok::Pi {
            target: target.clone(),
            data: data.clone(),
        },
        Token::XmlDecl { content } => RTok::XmlDecl(content.clone()),
        Token::Doctype { content } => RTok::Doctype(content.clone()),
    }
}

/// Errors compared by kind and position (the message formatting is not
/// part of the equivalence contract).
fn err_key(e: &XmlError) -> (String, Option<Position>) {
    (format!("{:?}", e.kind), e.position)
}

type Stream = (Vec<(RTok, Position)>, Option<(String, Option<Position>)>);

/// Runs the batch lexer over `input`, checking every reported position
/// against the reference walk, and returns the resolved stream plus the
/// terminal error (if any).
fn batch_stream(input: &str) -> Stream {
    let mut lexer = Lexer::new(input);
    let mut out = Vec::new();
    loop {
        // Between tokens every consumed character belongs to some
        // token, so the lexer's own cursor position must equal the
        // reference walk at its byte offset.
        let (line, column) = ref_position(input, lexer.byte_offset());
        let here = lexer.position();
        assert_eq!(
            (here.line, here.column),
            (line, column),
            "lexer cursor drifted from the reference walk at byte {} of {input:?}",
            lexer.byte_offset()
        );
        match lexer.next_token() {
            Ok(Some(spanned)) => {
                out.push((
                    resolve_tok(&spanned.token, lexer.interner()),
                    spanned.position,
                ));
            }
            Ok(None) => return (out, None),
            Err(e) => return (out, Some(err_key(&e))),
        }
    }
}

/// Runs the pull parser over the same input split into chunks at the
/// given byte positions (snapped to char boundaries) and returns the
/// resolved stream plus the terminal error.
fn pulled_stream(input: &str, splits: &[usize]) -> Stream {
    let mut cuts: Vec<usize> = splits
        .iter()
        .map(|&p| {
            let mut at = p.min(input.len());
            while !input.is_char_boundary(at) {
                at -= 1;
            }
            at
        })
        .collect();
    cuts.push(0);
    cuts.push(input.len());
    cuts.sort_unstable();
    cuts.dedup();

    let mut pull = PullParser::new();
    let mut out = Vec::new();
    let mut err = None;
    'feed: for window in cuts.windows(2) {
        pull.push_str(&input[window[0]..window[1]]);
        if window[1] == input.len() {
            pull.finish();
        }
        loop {
            match pull.next() {
                Ok(Pulled::Token(spanned)) => {
                    out.push((
                        resolve_tok(&spanned.token, pull.interner()),
                        spanned.position,
                    ));
                }
                Ok(Pulled::NeedMore) => continue 'feed,
                Ok(Pulled::End) => break 'feed,
                Err(e) => {
                    err = Some(err_key(&e));
                    break 'feed;
                }
            }
        }
    }
    (out, err)
}

/// Exhaustive split check: the chunked stream must match the batch
/// stream for a single cut at every char boundary of `input`.
fn assert_all_single_splits_agree(input: &str) {
    let batch = batch_stream(input);
    for at in 0..=input.len() {
        if !input.is_char_boundary(at) {
            continue;
        }
        let pulled = pulled_stream(input, &[at]);
        assert_eq!(
            pulled, batch,
            "chunked parse at split {at} diverged for {input:?}"
        );
    }
}

#[test]
fn entity_split_across_chunks() {
    assert_all_single_splits_agree("<a t=\"x&amp;y\">R &amp; D &#228;</a>");
}

#[test]
fn cdata_close_edge_across_chunks() {
    assert_all_single_splits_agree("<a><![CDATA[x]] ]]>t]]>tail</a>");
}

#[test]
fn crlf_mixes_keep_positions_aligned() {
    assert_all_single_splits_agree("<a>\r\nline&#10;two\rthree\n</a><!--\r\n-->");
}

#[test]
fn multibyte_names_and_text() {
    assert_all_single_splits_agree("<Mün höhe=\"über\">中文 – text</Mün>");
}

#[test]
fn error_positions_agree_on_bad_entity() {
    assert_all_single_splits_agree("<a>ok &nope; tail</a>");
}

#[test]
fn error_positions_agree_on_unclosed_markup() {
    assert_all_single_splits_agree("<a><b att=\"v");
}

/// Fragments chosen to stress the byte scanner: multibyte names and
/// text, references (valid and invalid), CDATA `]]>` edges, CR/LF
/// mixes, comments, PIs, and plain markup.
fn arb_fragment() -> impl Strategy<Value = String> {
    prop::sample::select(vec![
        "<a>".to_string(),
        "</a>".to_string(),
        "<Mün x=\"ü&amp;ö\">".to_string(),
        "</Mün>".to_string(),
        "<r a='1' b=\"two\"/>".to_string(),
        "plain text ".to_string(),
        "中文 – naïve ".to_string(),
        "&amp;&lt;&gt;&#65;&#x42;".to_string(),
        "&broken;".to_string(),
        "\r\n \r \n".to_string(),
        "<![CDATA[x]]y ]]>".to_string(),
        "<![CDATA[]]>".to_string(),
        "<!-- co\r\nmment -->".to_string(),
        "<?pi some data?>".to_string(),
        "<bad att=\"unterminated".to_string(),
        "< misplaced".to_string(),
    ])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Random fragment concatenations, random chunk splits: resolved
    /// token streams, token positions, and terminal errors must agree
    /// exactly between batch lexing and chunked pull parsing — and
    /// every reported position must match the char-by-char walk (the
    /// assertion inside `batch_stream`).
    #[test]
    fn chunked_pull_matches_batch(
        parts in prop::collection::vec(arb_fragment(), 0..8),
        raw_splits in prop::collection::vec(0usize..512, 0..4),
    ) {
        let input: String = parts.concat();
        let batch = batch_stream(&input);
        let pulled = pulled_stream(&input, &raw_splits);
        prop_assert_eq!(pulled, batch);
    }
}
