//! Parser ↔ serializer round-trip conformance for `wmx-xml`.
//!
//! The watermark pipeline depends on `parse ∘ serialize` being a fixed
//! point: the encoder serializes a marked DOM, the detector re-parses
//! it, and any drift would read as bit errors. These tests pin the
//! escaping edge cases (`&`, `<`, quotes in attributes, CDATA, mixed
//! content) explicitly and then drive a property-style generator over
//! documents that combine all of them.

use proptest::prelude::*;
use wmx_xml::{parse, to_canonical_string, to_string};

/// `parse → serialize → parse → serialize` must stabilize after one
/// round, and both parses must agree canonically.
fn assert_fixpoint(input: &str) {
    let doc = parse(input).unwrap_or_else(|e| panic!("parse failed on {input:?}: {e}"));
    let once = to_string(&doc);
    let doc2 = parse(&once).unwrap_or_else(|e| panic!("reparse failed on {once:?}: {e}"));
    let twice = to_string(&doc2);
    assert_eq!(once, twice, "serializer not a fixed point for {input:?}");
    assert_eq!(
        to_canonical_string(&doc),
        to_canonical_string(&doc2),
        "canonical drift for {input:?}"
    );
}

#[test]
fn ampersand_and_angle_brackets_in_text() {
    assert_fixpoint("<a>R &amp; D &lt; C &gt; B</a>");
    // Serializer must emit escaped forms that survive re-parsing.
    let doc = parse("<a>x &amp;&lt;&gt; y</a>").unwrap();
    let root = doc.root_element().unwrap();
    assert_eq!(doc.text_content(root), "x &<> y");
}

#[test]
fn quotes_in_attribute_values() {
    assert_fixpoint("<a k=\"say &quot;hi&quot;\"/>");
    assert_fixpoint("<a k=\"it's fine\"/>");
    let doc = parse("<a k=\"a&quot;b'c\"/>").unwrap();
    let root = doc.root_element().unwrap();
    assert_eq!(doc.attribute(root, "k"), Some("a\"b'c"));
}

#[test]
fn single_quoted_attributes_normalize() {
    // Parsed from single quotes, serialized with double quotes — still a
    // fixed point after the first serialization.
    let doc = parse("<a k='v\"w'/>").unwrap();
    let once = to_string(&doc);
    assert!(
        once.contains("&quot;"),
        "double quote must be escaped: {once}"
    );
    assert_fixpoint(&once);
}

#[test]
fn whitespace_preserving_attribute_escapes() {
    let doc = parse("<a k=\"line&#10;tab&#9;cr&#13;end\"/>").unwrap();
    let root = doc.root_element().unwrap();
    assert_eq!(doc.attribute(root, "k"), Some("line\ntab\tcr\rend"));
    assert_fixpoint("<a k=\"line&#10;tab&#9;cr&#13;end\"/>");
}

#[test]
fn cdata_sections() {
    assert_fixpoint("<x><![CDATA[if (a<b && c>d) { e(\"&amp;\"); }]]></x>");
    assert_fixpoint("<x><![CDATA[]]></x>");
    // CDATA and escaped text with identical content are canonically equal.
    let a = parse("<x><![CDATA[1<2&3]]></x>").unwrap();
    let b = parse("<x>1&lt;2&amp;3</x>").unwrap();
    assert_eq!(to_canonical_string(&a), to_canonical_string(&b));
}

#[test]
fn mixed_content() {
    assert_fixpoint("<p>before <b>bold</b> middle <i>it</i> after</p>");
    assert_fixpoint("<p>a<b/>b<c/>c</p>");
    let doc = parse("<p>x <q>y</q> z</p>").unwrap();
    let root = doc.root_element().unwrap();
    assert_eq!(doc.text_content(root), "x y z");
}

#[test]
fn comments_and_processing_instructions() {
    assert_fixpoint("<x><!-- a < b & c --><?php echo 1; ?>t</x>");
}

#[test]
fn numeric_references_resolve_to_utf8() {
    let doc = parse("<x>&#x4e2d;&#25991;</x>").unwrap();
    let root = doc.root_element().unwrap();
    assert_eq!(doc.text_content(root), "中文");
    assert_fixpoint("<x>&#x4e2d;&#25991;</x>");
}

// --- property-style generation -------------------------------------------

/// Text content drawn from printable ASCII *including* the XML specials,
/// pre-escaped for embedding in a document string.
fn arb_text() -> impl Strategy<Value = String> {
    "[ -~]{0,16}".prop_map(|raw| {
        let mut out = String::new();
        for c in raw.chars() {
            match c {
                '<' => out.push_str("&lt;"),
                '>' => out.push_str("&gt;"),
                '&' => out.push_str("&amp;"),
                _ => out.push(c),
            }
        }
        out
    })
}

/// Attribute values with quotes and specials, pre-escaped.
fn arb_attr_value() -> impl Strategy<Value = String> {
    "[ -~]{0,10}".prop_map(|raw| {
        let mut out = String::new();
        for c in raw.chars() {
            match c {
                '<' => out.push_str("&lt;"),
                '>' => out.push_str("&gt;"),
                '&' => out.push_str("&amp;"),
                '"' => out.push_str("&quot;"),
                _ => out.push(c),
            }
        }
        out
    })
}

/// CDATA bodies: anything printable that does not contain the `]]>`
/// terminator.
fn arb_cdata() -> impl Strategy<Value = String> {
    "[ -~]{0,16}".prop_map(|raw| raw.replace("]]>", "]] >"))
}

/// A random document combining nested elements, attributes, mixed
/// content, and CDATA sections.
fn arb_document(depth: u32) -> BoxedStrategy<String> {
    let name = prop::sample::select(vec!["a", "b", "item", "rec", "ns-x", "_u"]);
    let leaf =
        (name.clone(), arb_text(), proptest::option::of(arb_cdata())).prop_map(|(n, t, cdata)| {
            match cdata {
                Some(c) => format!("<{n}>{t}<![CDATA[{c}]]></{n}>"),
                None if t.is_empty() => format!("<{n}/>"),
                None => format!("<{n}>{t}</{n}>"),
            }
        });
    if depth == 0 {
        return leaf.boxed();
    }
    (
        name,
        proptest::option::of(arb_attr_value()),
        arb_text(),
        prop::collection::vec(arb_document(depth - 1), 0..4),
        arb_text(),
    )
        .prop_map(|(n, attr, before, kids, after)| {
            let attrs = attr.map(|v| format!(" k=\"{v}\"")).unwrap_or_default();
            if kids.is_empty() && before.is_empty() && after.is_empty() {
                format!("<{n}{attrs}/>")
            } else {
                // Mixed content: text interleaved around child elements.
                format!("<{n}{attrs}>{before}{}{after}</{n}>", kids.join(""))
            }
        })
        .boxed()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn random_documents_are_serializer_fixpoints(doc_text in arb_document(3)) {
        assert_fixpoint(&doc_text);
    }

    #[test]
    fn canonical_form_is_parse_stable(doc_text in arb_document(2)) {
        let doc = parse(&doc_text).unwrap();
        let canon = to_canonical_string(&doc);
        let reparsed = parse(&canon).unwrap();
        prop_assert_eq!(canon, to_canonical_string(&reparsed));
    }
}
