//! NameIndex incremental-maintenance property suite.
//!
//! The index is built lazily, *patched* in place by sibling reorders
//! (`reorder_children` / `swap_children`), dropped by structural edits
//! (`set_name`, `insert_child`, `detach`), and deliberately untouched by
//! value edits. The invariant under test: after ANY interleaving of
//! those mutations with index reads — reads force the lazy build, so
//! the patch path actually runs — the maintained index must be
//! indistinguishable from an index rebuilt from scratch on the final
//! document, for every name bucket and every document-order rank.

use proptest::prelude::*;
use wmx_xml::{Document, NodeId};

const NAMES: [&str; 5] = ["alpha", "beta", "gamma", "delta", "epsilon"];

/// One step of a mutation script. Indices are free-ranging and reduced
/// modulo whatever is available when the step runs, so every script is
/// valid on every intermediate document shape.
#[derive(Debug, Clone)]
enum Op {
    /// Force the lazy build so later patches run against a live index.
    ReadIndex,
    /// Swap two children of some element (incremental patch path).
    Swap { parent: usize, i: usize, j: usize },
    /// Rotate an element's child list by `k` (incremental patch path).
    Rotate { parent: usize, k: usize },
    /// Rename an element (full invalidation path).
    Rename { element: usize, name: usize },
    /// Detach an element and re-insert it under the root (full
    /// invalidation path; exercises rank reassignment of whole subtrees).
    Relocate { element: usize, slot: usize },
    /// Attribute value edit — must NOT invalidate the index.
    SetAttr { element: usize, name: usize },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0usize..1).prop_map(|_| Op::ReadIndex),
        (0usize..64, 0usize..8, 0usize..8).prop_map(|(parent, i, j)| Op::Swap { parent, i, j }),
        (0usize..64, 1usize..8).prop_map(|(parent, k)| Op::Rotate { parent, k }),
        (0usize..64, 0usize..NAMES.len()).prop_map(|(element, name)| Op::Rename { element, name }),
        (0usize..64, 0usize..8).prop_map(|(element, slot)| Op::Relocate { element, slot }),
        (0usize..64, 0usize..NAMES.len()).prop_map(|(element, name)| Op::SetAttr { element, name }),
    ]
}

/// Builds a three-level document: root → `groups` children → `leaves`
/// grandchildren each, names cycling through the alphabet.
fn build_doc(groups: usize, leaves: usize) -> Document {
    let mut doc = Document::new();
    let root = doc.create_element("root").expect("arena fits");
    let doc_node = doc.document_node();
    doc.append_child(doc_node, root);
    for g in 0..groups {
        let group = doc
            .create_element(NAMES[g % NAMES.len()])
            .expect("arena fits");
        doc.append_child(root, group);
        for l in 0..leaves {
            let leaf = doc
                .create_element(NAMES[(g + l + 1) % NAMES.len()])
                .expect("arena fits");
            doc.append_child(group, leaf);
        }
    }
    doc
}

/// All attached elements, in document order.
fn attached_elements(doc: &Document) -> Vec<NodeId> {
    doc.descendants(doc.document_node())
        .filter(|&n| doc.is_element(n))
        .collect()
}

fn apply(doc: &mut Document, op: &Op) {
    let elements = attached_elements(doc);
    match op {
        Op::ReadIndex => {
            for name in NAMES {
                let _ = doc.elements_named(name).len();
            }
        }
        Op::Swap { parent, i, j } => {
            let parent = elements[parent % elements.len()];
            let n = doc.children(parent).len();
            if n >= 2 {
                doc.swap_children(parent, i % n, j % n);
            }
        }
        Op::Rotate { parent, k } => {
            let parent = elements[parent % elements.len()];
            let n = doc.children(parent).len();
            if n >= 2 {
                let k = k % n;
                let permutation: Vec<usize> = (0..n).map(|i| (i + k) % n).collect();
                doc.reorder_children(parent, &permutation);
            }
        }
        Op::Rename { element, name } => {
            let element = elements[element % elements.len()];
            doc.set_name(element, NAMES[*name]).expect("arena fits");
        }
        Op::Relocate { element, slot } => {
            // Never relocate the root itself: pick among its proper
            // descendants, falling back to a no-op when there are none.
            let root = doc.root_element().expect("doc has a root");
            let candidates: Vec<NodeId> = elements.iter().copied().filter(|&e| e != root).collect();
            if candidates.is_empty() {
                return;
            }
            let node = candidates[element % candidates.len()];
            doc.detach(node);
            let slots = doc.children(root).len() + 1;
            doc.insert_child(root, slot % slots, node);
        }
        Op::SetAttr { element, name } => {
            let element = elements[element % elements.len()];
            doc.set_attribute(element, NAMES[*name], "v")
                .expect("arena fits");
        }
    }
}

/// The maintained index equals a from-scratch rebuild: same bucket
/// contents per name and same rank for every attached node.
fn assert_index_fresh(doc: &Document) {
    // Cloning drops the cached index, so `fresh` rebuilds from scratch.
    let fresh = doc.clone();
    for name in NAMES {
        assert_eq!(
            doc.elements_named(name),
            fresh.elements_named(name),
            "bucket {name:?} diverged from rebuild"
        );
    }
    let maintained = doc.name_index();
    let rebuilt = fresh.name_index();
    for (expected_rank, node) in doc.descendants(doc.document_node()).enumerate() {
        assert_eq!(
            maintained.order_of(node),
            Some(expected_rank),
            "maintained rank wrong for {node:?}"
        );
        assert_eq!(
            rebuilt.order_of(node),
            Some(expected_rank),
            "rebuilt rank wrong for {node:?}"
        );
    }
}

#[test]
fn swap_and_rotate_patch_the_live_index() {
    let mut doc = build_doc(4, 3);
    // Force the build, then go through the patch path only.
    let _ = doc.elements_named("alpha").len();
    let root = doc.root_element().expect("root");
    doc.swap_children(root, 0, 3);
    assert_index_fresh(&doc);
    doc.reorder_children(root, &[2, 0, 3, 1]);
    assert_index_fresh(&doc);
    let group = doc.children(root)[1];
    doc.swap_children(group, 0, 2);
    assert_index_fresh(&doc);
}

#[test]
fn rename_invalidates_and_rebuild_matches() {
    let mut doc = build_doc(3, 2);
    let _ = doc.elements_named("beta").len();
    let root = doc.root_element().expect("root");
    let first = doc.children(root)[0];
    doc.set_name(first, "epsilon").expect("arena fits");
    assert_index_fresh(&doc);
    // Rename followed by a reorder: the patch must run against the
    // post-rename rebuild, not a stale bucket.
    doc.swap_children(root, 0, 2);
    assert_index_fresh(&doc);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any interleaving of reads, reorders, renames, relocations, and
    /// value edits leaves the maintained index equal to a rebuild.
    #[test]
    fn random_mutation_scripts_keep_index_fresh(
        groups in 2usize..5,
        leaves in 1usize..4,
        script in prop::collection::vec(op_strategy(), 1..40),
    ) {
        let mut doc = build_doc(groups, leaves);
        // Start with a live index so the very first reorder patches.
        let _ = doc.elements_named("alpha").len();
        for op in &script {
            apply(&mut doc, op);
        }
        assert_index_fresh(&doc);
    }

    /// Reorder-only scripts (the pure patch path, no invalidation in
    /// between) stay equal to a rebuild at EVERY step, not just at the
    /// end.
    #[test]
    fn reorder_only_scripts_stay_fresh_stepwise(
        groups in 2usize..5,
        leaves in 1usize..4,
        swaps in prop::collection::vec((0usize..64, 0usize..8, 0usize..8), 1..12),
    ) {
        let mut doc = build_doc(groups, leaves);
        let _ = doc.elements_named("alpha").len();
        for (parent, i, j) in swaps {
            apply(&mut doc, &Op::Swap { parent, i, j });
            assert_index_fresh(&doc);
        }
    }
}
