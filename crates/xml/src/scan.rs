//! Byte-slice scanning primitives for the zero-copy lexer.
//!
//! Everything here operates on raw `&[u8]` slices so the hot scan loops
//! in [`crate::lexer`] and [`crate::escape`] never decode UTF-8 just to
//! skip over it. The delimiter hunts ([`memchr`], [`memchr2`],
//! [`memchr3`]) are hand-rolled SWAR loops over `usize` words — no
//! external dependencies — using the carry-free zero-byte test
//! `!((x & !HI) + !HI | x) & HI`, which marks exactly the zero bytes of
//! `x` with no inter-byte borrow, so it is exact for both first-match
//! *and* popcount-style counting.
//!
//! UTF-8 only ever matters at validation boundaries: the lexer consumes
//! whole spans bytewise and then calls [`advance_position`] once per
//! span to restore the line/column bookkeeping the old char-at-a-time
//! loop maintained (columns count *characters*, so multibyte runs are
//! tallied by skipping continuation bytes). The `char`-level helpers at
//! the bottom ([`char_at`], [`prefix_chars`]) exist so the
//! lexer's rare non-ASCII paths can decode a single scalar without the
//! scan files themselves touching `str::chars` — CI denies char
//! iteration there.

const W: usize = std::mem::size_of::<usize>();
/// `0x7F` in every byte lane.
const LO7: usize = usize::from_ne_bytes([0x7F; W]);
/// `0x80` in every byte lane.
const HI: usize = usize::from_ne_bytes([0x80; W]);

#[inline]
fn broadcast(b: u8) -> usize {
    usize::from_ne_bytes([b; W])
}

/// Returns a word whose per-byte high bit is set exactly where the
/// corresponding byte of `x` is zero. Carry-free: each lane is decided
/// independently, so the result is exact everywhere in the word (unlike
/// the classic `(x - LO) & !x & HI`, whose borrows corrupt lanes above
/// the first zero).
#[inline]
fn zero_byte_mask(x: usize) -> usize {
    !(((x & LO7) + LO7) | x) & HI
}

#[inline]
fn load(chunk: &[u8]) -> usize {
    usize::from_le_bytes(chunk.try_into().expect("chunk is word-sized"))
}

/// Byte index of the first match inside a nonzero lane mask. Lane order
/// follows `from_le_bytes`, so the lowest set bit names the earliest
/// byte regardless of host endianness.
#[inline]
fn first_lane(mask: usize) -> usize {
    (mask.trailing_zeros() as usize) / 8
}

/// Finds the first occurrence of `needle` in `hay`.
#[inline]
pub fn memchr(needle: u8, hay: &[u8]) -> Option<usize> {
    let n = broadcast(needle);
    let mut chunks = hay.chunks_exact(W);
    let mut base = 0;
    for chunk in &mut chunks {
        let mask = zero_byte_mask(load(chunk) ^ n);
        if mask != 0 {
            return Some(base + first_lane(mask));
        }
        base += W;
    }
    chunks
        .remainder()
        .iter()
        .position(|&b| b == needle)
        .map(|p| base + p)
}

/// Finds the first occurrence of either needle in `hay`.
#[inline]
pub fn memchr2(n1: u8, n2: u8, hay: &[u8]) -> Option<usize> {
    let b1 = broadcast(n1);
    let b2 = broadcast(n2);
    let mut chunks = hay.chunks_exact(W);
    let mut base = 0;
    for chunk in &mut chunks {
        let w = load(chunk);
        let mask = zero_byte_mask(w ^ b1) | zero_byte_mask(w ^ b2);
        if mask != 0 {
            return Some(base + first_lane(mask));
        }
        base += W;
    }
    chunks
        .remainder()
        .iter()
        .position(|&b| b == n1 || b == n2)
        .map(|p| base + p)
}

/// Finds the first occurrence of any of three needles in `hay`.
#[inline]
pub fn memchr3(n1: u8, n2: u8, n3: u8, hay: &[u8]) -> Option<usize> {
    let b1 = broadcast(n1);
    let b2 = broadcast(n2);
    let b3 = broadcast(n3);
    let mut chunks = hay.chunks_exact(W);
    let mut base = 0;
    for chunk in &mut chunks {
        let w = load(chunk);
        let mask = zero_byte_mask(w ^ b1) | zero_byte_mask(w ^ b2) | zero_byte_mask(w ^ b3);
        if mask != 0 {
            return Some(base + first_lane(mask));
        }
        base += W;
    }
    chunks
        .remainder()
        .iter()
        .position(|&b| b == n1 || b == n2 || b == n3)
        .map(|p| base + p)
}

/// Counts occurrences of `needle` in `hay` — SWAR popcount over the
/// exact zero-byte mask, one `count_ones` per word.
#[inline]
pub fn count_byte(needle: u8, hay: &[u8]) -> usize {
    let n = broadcast(needle);
    let mut chunks = hay.chunks_exact(W);
    let mut count = 0usize;
    for chunk in &mut chunks {
        count += zero_byte_mask(load(chunk) ^ n).count_ones() as usize;
    }
    count + chunks.remainder().iter().filter(|&&b| b == needle).count()
}

/// Counts the UTF-8 scalar values in `bytes` (which must be valid
/// UTF-8): total bytes minus continuation bytes, the latter counted by
/// a SWAR test for the `10xxxxxx` bit pattern.
#[inline]
pub fn char_count(bytes: &[u8]) -> usize {
    // A byte is a continuation byte iff (b & 0xC0) == 0x80, i.e. the
    // masked byte XOR 0x80 is zero.
    const C0: usize = usize::from_ne_bytes([0xC0; W]);
    let mut chunks = bytes.chunks_exact(W);
    let mut cont = 0usize;
    for chunk in &mut chunks {
        cont += zero_byte_mask((load(chunk) & C0) ^ HI).count_ones() as usize;
    }
    cont += chunks
        .remainder()
        .iter()
        .filter(|&&b| (b & 0xC0) == 0x80)
        .count();
    bytes.len() - cont
}

/// Advances a 1-based `line`/`column` pair over a consumed span, in one
/// fused SWAR pass (newline count, last-newline tracking, and the
/// character count since it) instead of one update per character.
/// Columns count characters (not bytes), matching the per-`char`
/// bookkeeping the lexer historically did.
#[inline]
pub fn advance_position(bytes: &[u8], line: &mut u32, column: &mut u32) {
    const C0: usize = usize::from_ne_bytes([0xC0; W]);
    const NL: usize = usize::from_ne_bytes([b'\n'; W]);
    let mut chunks = bytes.chunks_exact(W);
    let mut lines = 0u32;
    // Characters seen since the last newline (the whole span if none).
    let mut col_chars = 0u32;
    let mut saw_nl = false;
    for chunk in &mut chunks {
        let w = load(chunk);
        let nl_mask = zero_byte_mask(w ^ NL);
        let cont_mask = zero_byte_mask((w & C0) ^ HI);
        if nl_mask == 0 {
            col_chars += W as u32 - cont_mask.count_ones();
        } else {
            lines += nl_mask.count_ones();
            saw_nl = true;
            // Restart the column count after this word's last newline.
            // Lane order follows `from_le_bytes`: higher lanes (later
            // bytes) sit at higher bit positions, so the highest set
            // bit names the last newline and a right shift isolates
            // the continuation markers of the bytes after it.
            let last = (usize::BITS - 1 - nl_mask.leading_zeros()) as usize / 8;
            let after = W - 1 - last;
            let after_cont = if after == 0 {
                0
            } else {
                (cont_mask >> (8 * (last + 1))).count_ones()
            };
            col_chars = after as u32 - after_cont;
        }
    }
    for &b in chunks.remainder() {
        if b == b'\n' {
            lines += 1;
            saw_nl = true;
            col_chars = 0;
        } else if (b & 0xC0) != 0x80 {
            col_chars += 1;
        }
    }
    *line += lines;
    if saw_nl {
        *column = 1 + col_chars;
    } else {
        *column += col_chars;
    }
}

/// Whether `s` consists entirely of whitespace. ASCII-only inputs (the
/// hot case: indentation between elements) are answered bytewise;
/// the first byte ≥ 0x80 falls back to the full Unicode
/// `char::is_whitespace` test so NBSP and friends keep their old
/// semantics.
#[inline]
pub fn is_all_whitespace(s: &str) -> bool {
    let bytes = s.as_bytes();
    for (i, &b) in bytes.iter().enumerate() {
        match b {
            0x09..=0x0D | b' ' => {}
            0x00..=0x7F => return false,
            // First non-ASCII byte is always a lead byte (we scan from
            // the start), so `i` is a char boundary.
            _ => return s[i..].chars().all(char::is_whitespace),
        }
    }
    true
}

/// Whether `b` is one of the ASCII whitespace bytes `char::is_whitespace`
/// accepts (TAB, LF, VT, FF, CR, SPACE).
#[inline]
pub fn is_ascii_whitespace_byte(b: u8) -> bool {
    matches!(b, 0x09..=0x0D | b' ')
}

/// Whether the ASCII byte `b` may start an XML name (`[A-Za-z_:]`).
/// Non-ASCII bytes return false — callers decode and use the `char`
/// predicate for those.
#[inline]
pub fn is_ascii_name_start_byte(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b == b':'
}

/// Whether the ASCII byte `b` may continue an XML name.
#[inline]
pub fn is_ascii_name_byte(b: u8) -> bool {
    is_ascii_name_start_byte(b) || b.is_ascii_digit() || b == b'-' || b == b'.'
}

/// Decodes the scalar starting at byte offset `i` of `s` (must be a
/// char boundary). Lives here so the lexer's non-ASCII fallbacks can
/// decode one scalar without char-iterating in a scan file.
#[inline]
pub fn char_at(s: &str, i: usize) -> Option<char> {
    s[i..].chars().next()
}

/// The longest prefix of `s` holding at most `n` characters — used for
/// truncating error payloads without char-indexing at the call site.
pub fn prefix_chars(s: &str, n: usize) -> &str {
    match s.char_indices().nth(n) {
        Some((end, _)) => &s[..end],
        None => s,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn memchr_matches_naive() {
        let hay = b"abcdefgh<ijklmnopq&rstuvwx\"yz'1234>5678";
        for needle in [b'<', b'&', b'"', b'\'', b'>', b'z', b'!'] {
            assert_eq!(
                memchr(needle, hay),
                hay.iter().position(|&b| b == needle),
                "needle {:?}",
                needle as char
            );
        }
    }

    #[test]
    fn memchr_finds_match_in_every_lane() {
        for len in 0..40 {
            for at in 0..len {
                let mut hay = vec![b'x'; len];
                hay[at] = b'<';
                assert_eq!(memchr(b'<', &hay), Some(at), "len {len} at {at}");
            }
        }
    }

    #[test]
    fn memchr_handles_high_bytes_without_false_positives() {
        // 0x80-adjacent lanes are where inexact SWAR formulas break.
        let hay = [0x80u8, 0xFF, 0x00, 0x7F, 0x81, b'<'];
        assert_eq!(memchr(b'<', &hay), Some(5));
        assert_eq!(memchr(0x00, &hay), Some(2));
        assert_eq!(memchr(0x80, &hay), Some(0));
    }

    #[test]
    fn memchr23_match_naive() {
        let hay = b"no specials here until a quote ' then \" and more text after";
        assert_eq!(
            memchr2(b'"', b'\'', hay),
            hay.iter().position(|&b| b == b'"' || b == b'\'')
        );
        assert_eq!(memchr3(b'<', b'>', b'&', b"plain"), None);
        assert_eq!(memchr3(b'<', b'>', b'&', b"01234567&plain"), Some(8));
    }

    #[test]
    fn count_byte_exact_after_first_match() {
        // Counting must stay exact past the first zero lane.
        let hay = b"\n\nabc\ndef\n\n";
        assert_eq!(count_byte(b'\n', hay), 5);
        assert_eq!(count_byte(b'\n', b""), 0);
        assert_eq!(count_byte(b'x', b"xxxxxxxxxxxxxxxxx"), 17);
    }

    #[test]
    fn char_count_multibyte() {
        for s in ["", "abc", "München", "中文字", "a\u{10348}b", "é"] {
            assert_eq!(char_count(s.as_bytes()), s.chars().count(), "{s:?}");
        }
    }

    #[test]
    fn advance_position_matches_per_char_walk() {
        for s in ["", "abc", "a\nb", "\n\n", "Mü\nnchen – x", "中\n文"] {
            let (mut line, mut column) = (3u32, 7u32);
            advance_position(s.as_bytes(), &mut line, &mut column);
            let (mut rl, mut rc) = (3u32, 7u32);
            for c in s.chars() {
                if c == '\n' {
                    rl += 1;
                    rc = 1;
                } else {
                    rc += 1;
                }
            }
            assert_eq!((line, column), (rl, rc), "{s:?}");
        }
    }

    #[test]
    fn whitespace_checks() {
        assert!(is_all_whitespace(""));
        assert!(is_all_whitespace(" \t\r\n"));
        assert!(is_all_whitespace("\u{a0}\u{2003} ")); // Unicode spaces
        assert!(!is_all_whitespace(" x "));
        assert!(!is_all_whitespace("中"));
    }

    #[test]
    fn prefix_chars_truncates_on_boundaries() {
        assert_eq!(prefix_chars("abcdef", 3), "abc");
        assert_eq!(prefix_chars("ab", 12), "ab");
        assert_eq!(prefix_chars("中文字", 2), "中文");
    }

    fn arb_bytes() -> impl Strategy<Value = Vec<u8>> {
        proptest::collection::vec(any::<u8>(), 0..64)
    }

    proptest! {
        #[test]
        fn memchr_equals_position(hay in arb_bytes(), needle in any::<u8>()) {
            prop_assert_eq!(memchr(needle, &hay), hay.iter().position(|&b| b == needle));
        }

        #[test]
        fn memchr3_equals_position(hay in arb_bytes()) {
            let (a, b, c) = (b'<', b'&', b'>');
            prop_assert_eq!(
                memchr3(a, b, c, &hay),
                hay.iter().position(|&x| x == a || x == b || x == c)
            );
        }

        #[test]
        fn count_byte_equals_filter(hay in arb_bytes(), needle in any::<u8>()) {
            prop_assert_eq!(count_byte(needle, &hay), hay.iter().filter(|&&b| b == needle).count());
        }

        #[test]
        fn char_count_equals_chars(s in "\\PC*") {
            prop_assert_eq!(char_count(s.as_bytes()), s.chars().count());
        }

        #[test]
        fn is_all_whitespace_equals_chars(s in "[ \\t\\r\\nxé中\\u{a0}]*") {
            prop_assert_eq!(is_all_whitespace(&s), s.chars().all(char::is_whitespace));
        }
    }
}
