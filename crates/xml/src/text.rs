//! Span-backed text values.
//!
//! [`XmlText`] is the payload type for text runs, CDATA sections, and
//! attribute values. When a document is parsed from an owned buffer
//! ([`crate::parse`] / [`crate::parse_owned`]), escape-free runs are
//! stored as `Shared` spans into one `Arc<String>` holding the whole
//! input — zero copies, one refcount bump per run. Materialization to
//! `Owned` happens only when the bytes actually change: unescaping a
//! run that contains `&`, mutation through the DOM (`set_text`,
//! `set_attribute`), or lexing from a transient buffer that cannot
//! outlive the token (the pull parser's compacting window).
//!
//! The variant is an implementation detail: equality, hashing, and
//! ordering all compare string contents, and `Deref<Target = str>`
//! makes every `&str` API available directly.

use std::borrow::Cow;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::Deref;
use std::sync::Arc;

/// Text content: either an owned string or a zero-copy span into a
/// shared parse buffer.
#[derive(Clone)]
pub enum XmlText {
    /// Owned, materialized text.
    Owned(String),
    /// A span into a shared input buffer (`buf[start..end]`).
    Shared {
        /// The backing buffer (typically the whole parse input).
        buf: Arc<String>,
        /// Span start, in bytes. Always a char boundary.
        start: usize,
        /// Span end, in bytes. Always a char boundary.
        end: usize,
    },
}

impl XmlText {
    /// Builds a zero-copy span over `buf[start..end]`.
    ///
    /// `start..end` must lie on char boundaries of `buf` — guaranteed by
    /// the lexer, which only splits at ASCII delimiters.
    pub fn shared(buf: Arc<String>, start: usize, end: usize) -> XmlText {
        debug_assert!(buf.is_char_boundary(start) && buf.is_char_boundary(end));
        XmlText::Shared { buf, start, end }
    }

    /// The text as a string slice.
    #[inline]
    pub fn as_str(&self) -> &str {
        match self {
            XmlText::Owned(s) => s,
            XmlText::Shared { buf, start, end } => &buf[*start..*end],
        }
    }

    /// Converts into an owned `String` (copies only if `Shared`).
    pub fn into_string(self) -> String {
        match self {
            XmlText::Owned(s) => s,
            XmlText::Shared { buf, start, end } => buf[start..end].to_string(),
        }
    }

    /// Whether this value is a zero-copy span (true) or materialized
    /// owned text (false).
    pub fn is_shared(&self) -> bool {
        matches!(self, XmlText::Shared { .. })
    }
}

impl Deref for XmlText {
    type Target = str;
    #[inline]
    fn deref(&self) -> &str {
        self.as_str()
    }
}

impl AsRef<str> for XmlText {
    #[inline]
    fn as_ref(&self) -> &str {
        self.as_str()
    }
}

impl From<String> for XmlText {
    fn from(s: String) -> XmlText {
        XmlText::Owned(s)
    }
}

impl From<&str> for XmlText {
    fn from(s: &str) -> XmlText {
        XmlText::Owned(s.to_string())
    }
}

impl From<Cow<'_, str>> for XmlText {
    fn from(c: Cow<'_, str>) -> XmlText {
        XmlText::Owned(c.into_owned())
    }
}

impl From<XmlText> for String {
    fn from(t: XmlText) -> String {
        t.into_string()
    }
}

// Equality is by content, never by representation: a Shared span and an
// Owned copy of the same text compare equal, so token/DOM comparisons
// (and the equivalence suites) are representation-blind.
impl PartialEq for XmlText {
    fn eq(&self, other: &XmlText) -> bool {
        self.as_str() == other.as_str()
    }
}

impl Eq for XmlText {}

impl PartialEq<str> for XmlText {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == other
    }
}

impl PartialEq<&str> for XmlText {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == *other
    }
}

impl PartialEq<String> for XmlText {
    fn eq(&self, other: &String) -> bool {
        self.as_str() == other.as_str()
    }
}

impl PartialEq<XmlText> for str {
    fn eq(&self, other: &XmlText) -> bool {
        self == other.as_str()
    }
}

impl PartialEq<XmlText> for &str {
    fn eq(&self, other: &XmlText) -> bool {
        *self == other.as_str()
    }
}

impl Hash for XmlText {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_str().hash(state);
    }
}

impl PartialOrd for XmlText {
    fn partial_cmp(&self, other: &XmlText) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for XmlText {
    fn cmp(&self, other: &XmlText) -> std::cmp::Ordering {
        self.as_str().cmp(other.as_str())
    }
}

impl fmt::Debug for XmlText {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self.as_str(), f)
    }
}

impl fmt::Display for XmlText {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self.as_str(), f)
    }
}

impl Default for XmlText {
    fn default() -> XmlText {
        XmlText::Owned(String::new())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shared_and_owned_compare_by_content() {
        let buf = Arc::new(String::from("<a>hello</a>"));
        let shared = XmlText::shared(Arc::clone(&buf), 3, 8);
        let owned = XmlText::from("hello");
        assert_eq!(shared, owned);
        assert_eq!(shared, "hello");
        assert_eq!("hello", shared);
        assert_eq!(shared.as_str(), "hello");
        assert!(shared.is_shared());
        assert!(!owned.is_shared());
        assert_eq!(shared.into_string(), "hello");
    }

    #[test]
    fn deref_gives_str_api() {
        let t = XmlText::from("  pad  ");
        assert_eq!(t.trim(), "pad");
        assert_eq!(t.len(), 7);
    }

    #[test]
    fn hash_matches_content() {
        use std::collections::HashSet;
        let buf = Arc::new(String::from("xyz"));
        let mut set = HashSet::new();
        set.insert(XmlText::shared(buf, 0, 3));
        assert!(set.contains(&XmlText::from("xyz")));
    }

    #[test]
    fn debug_is_transparent() {
        let buf = Arc::new(String::from("v"));
        assert_eq!(
            format!("{:?}", XmlText::shared(buf, 0, 1)),
            format!("{:?}", "v")
        );
    }
}
