//! Recursive-descent parser building a [`Document`] from the token stream.

use crate::dom::{Document, NodeId};
use crate::error::{XmlError, XmlErrorKind};
use crate::lexer::Lexer;
use crate::token::{SpannedToken, Token};

/// Options controlling how the tree is built.
#[derive(Debug, Clone, Copy)]
pub struct ParseOptions {
    /// Drop text nodes that consist solely of whitespace (indentation
    /// between elements). Defaults to `true`, which is what the data-
    /// centric XML the paper targets wants. Text inside mixed content is
    /// unaffected unless it is all-whitespace.
    pub skip_whitespace_text: bool,
    /// Keep comment nodes. Defaults to `true`.
    pub keep_comments: bool,
    /// Keep processing instructions. Defaults to `true`.
    pub keep_processing_instructions: bool,
}

impl Default for ParseOptions {
    fn default() -> Self {
        ParseOptions {
            skip_whitespace_text: true,
            keep_comments: true,
            keep_processing_instructions: true,
        }
    }
}

/// Parses `input` with default [`ParseOptions`].
///
/// The input is copied once into a shared buffer so escape-free text
/// runs and attribute values become zero-copy spans. Callers that
/// already own the input should prefer [`parse_owned`], which skips
/// even that one copy.
pub fn parse(input: &str) -> Result<Document, XmlError> {
    parse_owned(input.to_string())
}

/// Parses an owned input buffer with default [`ParseOptions`] — the
/// zero-copy entry point: the buffer becomes the document's shared text
/// backing, and escape-free text/CDATA/attribute runs are stored as
/// spans into it without copying.
pub fn parse_owned(input: String) -> Result<Document, XmlError> {
    parse_seeded_owned(
        input,
        ParseOptions::default(),
        crate::intern::Interner::new(),
    )
}

/// Parses `input` with explicit options.
///
/// Names are interned once at lex time; the finished document takes over
/// the lexer's symbol table, so tree construction never re-hashes a
/// name.
pub fn parse_with_options(input: &str, options: ParseOptions) -> Result<Document, XmlError> {
    parse_seeded(input, options, crate::intern::Interner::new())
}

/// Parses `input` starting from a pre-populated symbol table.
///
/// Every name already in `seed` keeps its symbol id in the resulting
/// document; new names extend the table in first-occurrence order. Two
/// documents parsed from clones of the same seed therefore agree on the
/// symbol ids of all seeded names (and of any further names they
/// introduce in the same order) — the property the `wmx-stream` engine
/// uses to keep record mini-document symbols stable across a whole
/// stream, so per-record work keyed by [`crate::Sym`] carries over from
/// record to record.
pub fn parse_seeded(
    input: &str,
    options: ParseOptions,
    seed: crate::intern::Interner,
) -> Result<Document, XmlError> {
    parse_seeded_owned(input.to_string(), options, seed)
}

/// [`parse_seeded`] over an owned buffer — the streaming engine's
/// per-record path: the assembled mini-document string is consumed
/// directly as the shared text backing, so record values reach the DOM
/// without a per-value copy.
pub fn parse_seeded_owned(
    input: String,
    options: ParseOptions,
    seed: crate::intern::Interner,
) -> Result<Document, XmlError> {
    let buf = std::sync::Arc::new(input);
    let mut lexer = Lexer::from_shared(&buf);
    lexer.set_interner(seed);
    let result = build_tree(&mut lexer, options);
    let (zero_copy, materialized) = lexer.span_stats();
    crate::lexer::record_span_stats(zero_copy, materialized);
    result
}

/// Drives the lexer to completion, building the tree.
fn build_tree(lexer: &mut Lexer<'_>, options: ParseOptions) -> Result<Document, XmlError> {
    let mut doc = Document::new();
    // Data-centric XML runs well under one node per 32 input bytes
    // (`<a>x</a>` is two nodes in nine bytes; real tags are longer), so
    // this reservation skips the arena's doubling copies without
    // overcommitting. Capped so a huge input cannot demand gigabytes up
    // front; past the cap the arena falls back to amortized growth.
    doc.reserve_nodes((lexer.remaining_len() / 32).min(1 << 20));
    // Stack of open elements; the document node is the base.
    let mut stack: Vec<NodeId> = vec![doc.document_node()];
    let mut open_names: Vec<crate::intern::Sym> = Vec::new();
    let mut saw_root = false;

    while let Some(SpannedToken { token, position }) = lexer.next_token()? {
        let in_root = stack.len() > 1;
        let parent = *stack.last().expect("stack never empty");
        match token {
            Token::XmlDecl { content } => {
                doc.xml_decl = Some(content);
            }
            Token::Doctype { content } => {
                doc.doctype = Some(content);
            }
            Token::StartTag {
                name,
                attributes,
                self_closing,
            } => {
                if !in_root && saw_root {
                    return Err(XmlError::at(
                        XmlErrorKind::MultipleRoots,
                        position.line,
                        position.column,
                    ));
                }
                if !in_root {
                    saw_root = true;
                }
                let element = doc.create_element_with_attributes(name, attributes)?;
                doc.attach_new_child(parent, element);
                if !self_closing {
                    stack.push(element);
                    open_names.push(name);
                }
            }
            Token::EndTag { name } => {
                if !in_root {
                    return Err(XmlError::at(
                        XmlErrorKind::UnmatchedClose {
                            close: lexer.interner().resolve(name).to_string(),
                        },
                        position.line,
                        position.column,
                    ));
                }
                let open = open_names.pop().expect("open_names tracks stack");
                if open != name {
                    return Err(XmlError::at(
                        XmlErrorKind::MismatchedTag {
                            open: lexer.interner().resolve(open).to_string(),
                            close: lexer.interner().resolve(name).to_string(),
                        },
                        position.line,
                        position.column,
                    ));
                }
                stack.pop();
            }
            Token::Text { content } => {
                let all_whitespace = crate::scan::is_all_whitespace(content.as_str());
                if !in_root {
                    if all_whitespace {
                        continue;
                    }
                    return Err(XmlError::at(
                        if saw_root {
                            XmlErrorKind::TrailingContent
                        } else {
                            XmlErrorKind::NoRootElement
                        },
                        position.line,
                        position.column,
                    ));
                }
                if all_whitespace && options.skip_whitespace_text {
                    continue;
                }
                // Merge with a preceding text node (split by references or
                // CDATA boundaries in the source).
                if let Some(&last) = doc.children(parent).last() {
                    if doc.text(last).is_some()
                        && !matches!(doc.kind(last), crate::dom::NodeKind::CData(_))
                    {
                        let existing = doc.text(last).expect("checked");
                        let mut merged = String::with_capacity(existing.len() + content.len());
                        merged.push_str(existing);
                        merged.push_str(content.as_str());
                        doc.set_text(last, merged);
                        continue;
                    }
                }
                let t = doc.create_text(content)?;
                doc.attach_new_child(parent, t);
            }
            Token::CData { content } => {
                if !in_root {
                    return Err(XmlError::at(
                        XmlErrorKind::NoRootElement,
                        position.line,
                        position.column,
                    ));
                }
                let t = doc.create_cdata(content)?;
                doc.attach_new_child(parent, t);
            }
            Token::Comment { content } => {
                if options.keep_comments {
                    let c = doc.create_comment(content)?;
                    doc.attach_new_child(parent, c);
                }
            }
            Token::ProcessingInstruction { target, data } => {
                if options.keep_processing_instructions {
                    // PI targets travel as plain strings in tokens (they
                    // are rare); intern into the table the document will
                    // take over below.
                    let sym = lexer.interner_mut().intern(&target);
                    let p = doc.create_pi_raw(sym, data)?;
                    doc.attach_new_child(parent, p);
                }
            }
        }
    }

    if stack.len() > 1 {
        let position = lexer.position();
        return Err(XmlError::at(
            XmlErrorKind::UnexpectedEof {
                while_parsing: "element content (unclosed element)",
            },
            position.line,
            position.column,
        ));
    }
    doc.install_interner(lexer.take_interner());
    if doc.root_element().is_none() {
        return Err(XmlError::dom(XmlErrorKind::NoRootElement));
    }
    Ok(doc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dom::NodeKind;

    #[test]
    fn parses_paper_figure_1a() {
        // db1.xml from the paper (abridged).
        let input = r#"
<db>
  <book publisher="mkp">
    <title>Readings in Database Systems</title>
    <author>Stonebraker</author>
    <author>Hellerstein</author>
    <editor>Harrypotter</editor>
    <year>1998</year>
  </book>
  <book publisher="acm">
    <title>Database Design</title>
    <writer>Berstein</writer>
    <writer>Newcomer</writer>
    <editor>Gamer</editor>
    <year>1998</year>
  </book>
</db>"#;
        let doc = parse(input).unwrap();
        let db = doc.root_element().unwrap();
        assert_eq!(doc.name(db), Some("db"));
        let books: Vec<_> = doc.child_elements_named(db, "book").collect();
        assert_eq!(books.len(), 2);
        assert_eq!(doc.attribute(books[0], "publisher"), Some("mkp"));
        let title = doc.first_child_element(books[1], "title").unwrap();
        assert_eq!(doc.text_content(title), "Database Design");
        assert_eq!(doc.child_elements_named(books[0], "author").count(), 2);
    }

    #[test]
    fn whitespace_skipping_configurable() {
        let input = "<a>\n  <b>x</b>\n</a>";
        let trimmed = parse(input).unwrap();
        let a = trimmed.root_element().unwrap();
        assert_eq!(trimmed.children(a).len(), 1);

        let kept = parse_with_options(
            input,
            ParseOptions {
                skip_whitespace_text: false,
                ..ParseOptions::default()
            },
        )
        .unwrap();
        let a = kept.root_element().unwrap();
        assert_eq!(kept.children(a).len(), 3);
    }

    #[test]
    fn mixed_content_preserved() {
        let doc = parse("<p>Hello <b>world</b>!</p>").unwrap();
        let p = doc.root_element().unwrap();
        assert_eq!(doc.children(p).len(), 3);
        assert_eq!(doc.text_content(p), "Hello world!");
    }

    #[test]
    fn adjacent_text_runs_merged() {
        let doc = parse("<a>one &amp; two</a>").unwrap();
        let a = doc.root_element().unwrap();
        assert_eq!(doc.children(a).len(), 1);
        assert_eq!(doc.text_content(a), "one & two");
    }

    #[test]
    fn cdata_not_merged_with_text() {
        let doc = parse("<a>x<![CDATA[<raw>]]>y</a>").unwrap();
        let a = doc.root_element().unwrap();
        assert_eq!(doc.children(a).len(), 3);
        assert_eq!(doc.text_content(a), "x<raw>y");
        assert!(matches!(doc.kind(doc.children(a)[1]), NodeKind::CData(_)));
    }

    #[test]
    fn prolog_captured() {
        let doc = parse("<?xml version=\"1.0\" encoding=\"UTF-8\"?><!DOCTYPE db><db/>").unwrap();
        assert_eq!(
            doc.xml_decl.as_deref(),
            Some("version=\"1.0\" encoding=\"UTF-8\"")
        );
        assert_eq!(doc.doctype.as_deref(), Some("db"));
    }

    #[test]
    fn comments_and_pis_kept_or_dropped() {
        let input = "<a><!-- c --><?pi data?><b/></a>";
        let kept = parse(input).unwrap();
        let a = kept.root_element().unwrap();
        assert_eq!(kept.children(a).len(), 3);

        let dropped = parse_with_options(
            input,
            ParseOptions {
                keep_comments: false,
                keep_processing_instructions: false,
                ..ParseOptions::default()
            },
        )
        .unwrap();
        let a = dropped.root_element().unwrap();
        assert_eq!(dropped.children(a).len(), 1);
    }

    #[test]
    fn error_mismatched_tag() {
        let err = parse("<a><b></a>").unwrap_err();
        assert!(matches!(
            err.kind,
            XmlErrorKind::MismatchedTag { ref open, ref close } if open == "b" && close == "a"
        ));
    }

    #[test]
    fn error_unclosed_element() {
        let err = parse("<a><b>").unwrap_err();
        assert!(matches!(err.kind, XmlErrorKind::UnexpectedEof { .. }));
    }

    #[test]
    fn error_multiple_roots() {
        let err = parse("<a/><b/>").unwrap_err();
        assert!(matches!(err.kind, XmlErrorKind::MultipleRoots));
    }

    #[test]
    fn error_stray_close() {
        let err = parse("</a>").unwrap_err();
        assert!(matches!(err.kind, XmlErrorKind::UnmatchedClose { .. }));
    }

    #[test]
    fn error_text_outside_root() {
        assert!(parse("hello<a/>").is_err());
        assert!(parse("<a/>trailing").is_err());
    }

    #[test]
    fn error_empty_input() {
        let err = parse("").unwrap_err();
        assert!(matches!(err.kind, XmlErrorKind::NoRootElement));
        assert!(parse("   \n ").is_err());
    }

    #[test]
    fn self_closing_tags() {
        let doc = parse("<db><item id=\"1\"/><item id=\"2\"/></db>").unwrap();
        let db = doc.root_element().unwrap();
        assert_eq!(doc.child_elements_named(db, "item").count(), 2);
    }

    #[test]
    fn deeply_nested() {
        let depth = 500;
        let mut input = String::new();
        for i in 0..depth {
            input.push_str(&format!("<n{i}>"));
        }
        input.push_str("leaf");
        for i in (0..depth).rev() {
            input.push_str(&format!("</n{i}>"));
        }
        let doc = parse(&input).unwrap();
        assert_eq!(doc.element_count(), depth);
        assert_eq!(doc.text_content(doc.root_element().unwrap()), "leaf");
    }

    #[test]
    fn seeded_parse_keeps_prototype_symbol_ids() {
        let mut seed = crate::intern::Interner::new();
        let db = seed.intern("db");
        let book = seed.intern("book");
        let title = seed.intern("title");
        for input in [
            "<db><book><title>A</title></book></db>",
            // Different document shape, same vocabulary: ids must agree.
            "<db><book><extra/><title>B</title></book></db>",
        ] {
            let doc = parse_seeded(input, ParseOptions::default(), seed.clone()).unwrap();
            assert_eq!(doc.lookup_sym("db"), Some(db));
            assert_eq!(doc.lookup_sym("book"), Some(book));
            assert_eq!(doc.lookup_sym("title"), Some(title));
        }
        // Unseeded names extend past the seed.
        let doc = parse_seeded("<db><new/></db>", ParseOptions::default(), seed.clone()).unwrap();
        assert!(doc.lookup_sym("new").unwrap().index() >= seed.len());
    }

    #[test]
    fn comments_between_root_siblings_allowed() {
        let doc = parse("<!-- head --><a/><!-- tail -->").unwrap();
        assert!(doc.root_element().is_some());
    }
}
