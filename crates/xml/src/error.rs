//! Error types for XML lexing and parsing.

use std::fmt;

/// Line/column position (1-based) of an error in the input text.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Position {
    /// 1-based line.
    pub line: u32,
    /// 1-based column (in characters).
    pub column: u32,
}

impl fmt::Display for Position {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.column)
    }
}

/// What went wrong while processing XML text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum XmlErrorKind {
    /// Input ended in the middle of a construct.
    UnexpectedEof {
        /// Human description of what was being read.
        while_parsing: &'static str,
    },
    /// A character that cannot start or continue the current construct.
    UnexpectedChar {
        /// The character found.
        found: char,
        /// What was expected instead.
        expected: &'static str,
    },
    /// An element name, attribute name, or PI target was malformed.
    InvalidName {
        /// The malformed name (possibly truncated).
        name: String,
    },
    /// A character/entity reference could not be resolved.
    InvalidReference {
        /// The reference text (without `&`/`;`).
        reference: String,
    },
    /// Close tag does not match the open element.
    MismatchedTag {
        /// Name of the currently open element.
        open: String,
        /// Name found in the close tag.
        close: String,
    },
    /// A close tag with no matching open tag.
    UnmatchedClose {
        /// Name found in the stray close tag.
        close: String,
    },
    /// The same attribute appears twice on one element.
    DuplicateAttribute {
        /// The repeated attribute name.
        name: String,
    },
    /// Document has no root element, or text outside the root.
    NoRootElement,
    /// More than one top-level element.
    MultipleRoots,
    /// Content after the document end that is not whitespace/comment/PI.
    TrailingContent,
    /// A `NodeId` was used with a document it does not belong to, or
    /// after the node was removed.
    StaleNode,
    /// An operation expected an element node.
    NotAnElement,
    /// The document arena reached the maximum addressable node count
    /// (`u32::MAX` slots); returned by the `create_*` constructors.
    ArenaOverflow,
}

impl fmt::Display for XmlErrorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            XmlErrorKind::UnexpectedEof { while_parsing } => {
                write!(f, "unexpected end of input while parsing {while_parsing}")
            }
            XmlErrorKind::UnexpectedChar { found, expected } => {
                write!(f, "unexpected character {found:?}, expected {expected}")
            }
            XmlErrorKind::InvalidName { name } => write!(f, "invalid XML name {name:?}"),
            XmlErrorKind::InvalidReference { reference } => {
                write!(f, "invalid character/entity reference &{reference};")
            }
            XmlErrorKind::MismatchedTag { open, close } => {
                write!(
                    f,
                    "mismatched close tag </{close}> for open element <{open}>"
                )
            }
            XmlErrorKind::UnmatchedClose { close } => {
                write!(f, "close tag </{close}> with no matching open tag")
            }
            XmlErrorKind::DuplicateAttribute { name } => {
                write!(f, "duplicate attribute {name:?}")
            }
            XmlErrorKind::NoRootElement => write!(f, "document has no root element"),
            XmlErrorKind::MultipleRoots => write!(f, "document has more than one root element"),
            XmlErrorKind::TrailingContent => write!(f, "non-whitespace content after document end"),
            XmlErrorKind::StaleNode => write!(f, "node id does not belong to this document"),
            XmlErrorKind::NotAnElement => write!(f, "operation requires an element node"),
            XmlErrorKind::ArenaOverflow => {
                write!(f, "document arena is full (u32::MAX nodes)")
            }
        }
    }
}

/// An XML processing error with its position in the source text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct XmlError {
    /// The error category and payload.
    pub kind: XmlErrorKind,
    /// Where in the input the error occurred (absent for DOM errors).
    pub position: Option<Position>,
}

impl XmlError {
    /// Creates an error at `position`.
    pub fn at(kind: XmlErrorKind, line: u32, column: u32) -> Self {
        XmlError {
            kind,
            position: Some(Position { line, column }),
        }
    }

    /// Creates a position-less (DOM) error.
    pub fn dom(kind: XmlErrorKind) -> Self {
        XmlError {
            kind,
            position: None,
        }
    }
}

impl fmt::Display for XmlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.position {
            Some(p) => write!(f, "{} at {p}", self.kind),
            None => write!(f, "{}", self.kind),
        }
    }
}

impl std::error::Error for XmlError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_position() {
        let e = XmlError::at(
            XmlErrorKind::UnexpectedChar {
                found: '<',
                expected: "attribute value",
            },
            3,
            14,
        );
        let text = e.to_string();
        assert!(text.contains("3:14"), "{text}");
        assert!(text.contains("'<'"), "{text}");
    }

    #[test]
    fn dom_errors_have_no_position() {
        let e = XmlError::dom(XmlErrorKind::StaleNode);
        assert_eq!(e.position, None);
        assert!(e.to_string().contains("node id"));
    }
}
