//! Per-document string interning.
//!
//! Element names, attribute names, and PI targets repeat massively in
//! data-centric XML (a million-record document has a handful of distinct
//! tag names). Interning maps each distinct name to a dense [`Sym`]
//! handle so the DOM stores four bytes per name instead of an owned
//! `String`, name comparisons become integer compares, and downstream
//! layers (the XPath evaluator's [`crate::dom::NameIndex`], unit
//! identifier hashing) can key work by symbol.
//!
//! Symbols are **scoped to one interner** (normally one [`crate::Document`]):
//! a `Sym` from one document must never be resolved against another.
//! [`crate::dom::Document::import_subtree`] re-interns names when copying
//! across documents for exactly this reason. Within one input, symbol
//! assignment is deterministic — first occurrence order — so two parses
//! of the same text produce identical symbol tables regardless of how
//! the input was chunked.

use std::collections::HashMap;
use std::fmt;
use std::hash::{BuildHasherDefault, Hasher};

/// A fast non-cryptographic hasher for the intern map (the same
/// multiply-rotate-xor scheme rustc uses for its symbol tables). The
/// interner hashes every element/attribute name occurrence on the parse
/// hot path, and the names are short ASCII identifiers — SipHash's
/// DoS-resistance buys nothing here (the map is scoped to one document
/// and bounded by the distinct-name vocabulary) while costing several
/// times the lookup.
#[derive(Default)]
pub(crate) struct FxHasher {
    hash: u64,
}

impl FxHasher {
    const K: u64 = 0x51_7c_c1_b7_27_22_0a_95;

    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(Self::K);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in chunks.by_ref() {
            self.add(u64::from_le_bytes(chunk.try_into().expect("8-byte chunk")));
        }
        let tail = chunks.remainder();
        if !tail.is_empty() {
            let mut word = [0u8; 8];
            word[..tail.len()].copy_from_slice(tail);
            self.add(u64::from_le_bytes(word));
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add(u64::from(n));
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add(n as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A handle to an interned name. Copy, 4 bytes, meaningful only
/// together with the [`Interner`] (or [`crate::Document`]) it came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Sym(u32);

impl Sym {
    /// The dense index of this symbol (0-based, in first-intern order).
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Sym {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sym#{}", self.0)
    }
}

/// Slots in the direct-mapped recent-name cache.
const CACHE_SIZE: usize = 16;

/// Sentinel for an empty cache slot (no symbol table holds 2^32 names:
/// [`Interner::intern`] panics long before).
const CACHE_EMPTY: u32 = u32::MAX;

/// Cache slot for `name` (which must be non-empty): first byte and
/// length spread the tiny, highly repetitive tag vocabularies apart.
#[inline]
fn cache_slot(name: &str) -> usize {
    (name.as_bytes()[0] as usize ^ (name.len() << 3)) & (CACHE_SIZE - 1)
}

/// A string interner handing out dense [`Sym`] handles.
#[derive(Debug, Clone)]
pub struct Interner {
    /// Resolution table: `names[sym.index()]` is the name text.
    names: Vec<Box<str>>,
    /// Reverse map for interning.
    map: HashMap<Box<str>, Sym, FxBuildHasher>,
    /// Direct-mapped cache of recently interned symbols. The lexer
    /// interns every element/attribute name *occurrence*, and documents
    /// cycle through a handful of names — most interns resolve here
    /// with one short memcmp instead of a hash plus map probe.
    cache: [u32; CACHE_SIZE],
}

impl Default for Interner {
    fn default() -> Self {
        Interner {
            names: Vec::new(),
            map: HashMap::default(),
            cache: [CACHE_EMPTY; CACHE_SIZE],
        }
    }
}

impl Interner {
    /// Creates an empty interner.
    pub fn new() -> Self {
        Interner::default()
    }

    /// Interns `name`, returning its symbol. Repeated calls with the
    /// same text return the same symbol.
    pub fn intern(&mut self, name: &str) -> Sym {
        if name.is_empty() {
            return self.intern_slow(name);
        }
        let slot = cache_slot(name);
        let cached = self.cache[slot];
        if let Some(text) = self.names.get(cached as usize) {
            if &**text == name {
                return Sym(cached);
            }
        }
        let sym = self.intern_slow(name);
        self.cache[slot] = sym.0;
        sym
    }

    fn intern_slow(&mut self, name: &str) -> Sym {
        if let Some(&sym) = self.map.get(name) {
            return sym;
        }
        let sym = Sym(u32::try_from(self.names.len()).expect("more than u32::MAX distinct names"));
        self.names.push(name.into());
        self.map.insert(name.into(), sym);
        sym
    }

    /// The symbol for `name`, if it has been interned. Never allocates —
    /// this is the read-only query used by name lookups on immutable
    /// documents (an un-interned name cannot occur in the document).
    pub fn lookup(&self, name: &str) -> Option<Sym> {
        self.map.get(name).copied()
    }

    /// The text of `sym`.
    ///
    /// # Panics
    /// Panics if `sym` did not come from this interner (out of range).
    pub fn resolve(&self, sym: Sym) -> &str {
        &self.names[sym.index()]
    }

    /// Number of distinct interned names.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether no names have been interned yet.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// All interned names, in symbol order.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.names.iter().map(AsRef::as_ref)
    }

    /// Rolls the table back to `len` entries, forgetting newer symbols.
    /// Used by the pull parser to discard names interned while lexing a
    /// token that turned out to be incomplete at a chunk boundary (a
    /// truncated tag name must not occupy a symbol, or chunked and batch
    /// lexing would assign different ids).
    pub(crate) fn truncate(&mut self, len: usize) {
        while self.names.len() > len {
            let name = self.names.pop().expect("length checked");
            self.map.remove(&*name);
        }
        // Discarded symbols may sit in the recent-name cache; a blanket
        // reset keeps every cached entry pointing at a live name.
        self.cache = [CACHE_EMPTY; CACHE_SIZE];
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_resolve_roundtrip() {
        let mut i = Interner::new();
        let book = i.intern("book");
        let year = i.intern("year");
        assert_eq!(i.resolve(book), "book");
        assert_eq!(i.resolve(year), "year");
        assert_ne!(book, year);
    }

    #[test]
    fn interning_deduplicates() {
        let mut i = Interner::new();
        let a = i.intern("title");
        let b = i.intern("title");
        assert_eq!(a, b);
        assert_eq!(i.len(), 1);
    }

    #[test]
    fn lookup_does_not_intern() {
        let mut i = Interner::new();
        assert_eq!(i.lookup("ghost"), None);
        assert!(i.is_empty());
        let s = i.intern("real");
        assert_eq!(i.lookup("real"), Some(s));
        assert_eq!(i.len(), 1);
    }

    #[test]
    fn symbols_are_dense_and_ordered() {
        let mut i = Interner::new();
        let syms: Vec<Sym> = ["a", "b", "c"].iter().map(|n| i.intern(n)).collect();
        for (k, s) in syms.iter().enumerate() {
            assert_eq!(s.index(), k);
        }
        let names: Vec<&str> = i.names().collect();
        assert_eq!(names, vec!["a", "b", "c"]);
    }

    #[test]
    fn display_form() {
        let mut i = Interner::new();
        let s = i.intern("x");
        assert_eq!(s.to_string(), "sym#0");
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// intern → resolve returns the original text for every name in
        /// an arbitrary (possibly repetitive) sequence.
        #[test]
        fn intern_resolve_roundtrip(names in prop::collection::vec("[a-zA-Z_][a-zA-Z0-9._-]{0,12}", 1..40)) {
            let mut interner = Interner::new();
            let syms: Vec<Sym> = names.iter().map(|n| interner.intern(n)).collect();
            for (name, sym) in names.iter().zip(&syms) {
                prop_assert_eq!(interner.resolve(*sym), name.as_str());
            }
        }

        /// Two names get the same symbol iff they are the same text, and
        /// the table size equals the number of distinct names.
        #[test]
        fn dedup_is_exact(names in prop::collection::vec("[a-z]{1,4}", 1..60)) {
            let mut interner = Interner::new();
            let syms: Vec<Sym> = names.iter().map(|n| interner.intern(n)).collect();
            for (i, a) in names.iter().enumerate() {
                for (j, b) in names.iter().enumerate() {
                    prop_assert_eq!(syms[i] == syms[j], a == b);
                }
            }
            let distinct: std::collections::HashSet<&String> = names.iter().collect();
            prop_assert_eq!(interner.len(), distinct.len());
        }

        /// Symbol assignment is deterministic (first-occurrence order):
        /// re-interning the same sequence into a fresh interner yields
        /// identical symbols, and lookup agrees with intern.
        #[test]
        fn deterministic_across_interners(names in prop::collection::vec("[a-z]{1,5}", 1..40)) {
            let mut a = Interner::new();
            let mut b = Interner::new();
            let sa: Vec<Sym> = names.iter().map(|n| a.intern(n)).collect();
            let sb: Vec<Sym> = names.iter().map(|n| b.intern(n)).collect();
            prop_assert_eq!(&sa, &sb);
            for (name, sym) in names.iter().zip(&sa) {
                prop_assert_eq!(a.lookup(name), Some(*sym));
            }
        }

        /// Cross-document isolation: documents intern independently, so
        /// the same name may map to different ids, but resolution through
        /// the owning interner always returns the right text.
        #[test]
        fn cross_interner_isolation(
            left in prop::collection::vec("[a-z]{1,4}", 1..20),
            right in prop::collection::vec("[a-z]{1,4}", 1..20),
        ) {
            let mut a = Interner::new();
            let mut b = Interner::new();
            let sa: Vec<Sym> = left.iter().map(|n| a.intern(n)).collect();
            let sb: Vec<Sym> = right.iter().map(|n| b.intern(n)).collect();
            for (name, sym) in left.iter().zip(&sa) {
                prop_assert_eq!(a.resolve(*sym), name.as_str());
            }
            for (name, sym) in right.iter().zip(&sb) {
                prop_assert_eq!(b.resolve(*sym), name.as_str());
            }
            // A symbol's meaning is per-interner: ids may collide across
            // interners while naming different strings.
            prop_assert!(a.names().all(|n| left.iter().any(|l| l == n)));
            prop_assert!(b.names().all(|n| right.iter().any(|r| r == n)));
        }
    }
}
