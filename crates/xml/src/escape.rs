//! Text escaping and character-reference resolution.
//!
//! Escaping is asymmetric in XML: text content must escape `<`, `&` (and
//! `>` after `]]`, which we always escape for simplicity), while attribute
//! values additionally escape the quote character. Unescaping resolves the
//! five predefined entities and decimal/hexadecimal character references.
//!
//! All three functions return [`Cow`]: the common case — no special
//! characters — borrows the input and allocates nothing. The scan loops
//! are byte-level ([`crate::scan`] SWAR skip loops for text, a jump
//! table for the larger attribute special set); every special is ASCII,
//! and UTF-8 continuation bytes are all ≥ 0x80, so whole multibyte runs
//! are copied with `push_str` without ever decoding a scalar.

use crate::error::{XmlError, XmlErrorKind};
use crate::scan;
use std::borrow::Cow;

/// Escapes `text` for use as element text content. Borrows when `text`
/// contains no specials.
pub fn escape_text(text: &str) -> Cow<'_, str> {
    let bytes = text.as_bytes();
    let Some(first) = scan::memchr3(b'<', b'>', b'&', bytes) else {
        return Cow::Borrowed(text);
    };
    let mut out = String::with_capacity(text.len() + 8);
    out.push_str(&text[..first]);
    let mut i = first;
    while i < bytes.len() {
        match bytes[i] {
            b'<' => out.push_str("&lt;"),
            b'>' => out.push_str("&gt;"),
            b'&' => out.push_str("&amp;"),
            _ => {
                // Copy the clean run up to the next special in one shot.
                let len = scan::memchr3(b'<', b'>', b'&', &bytes[i..]).unwrap_or(bytes.len() - i);
                out.push_str(&text[i..i + len]);
                i += len;
                continue;
            }
        }
        i += 1;
    }
    Cow::Owned(out)
}

/// Escapes `value` for use inside a double-quoted attribute value.
/// Borrows when `value` contains no specials.
pub fn escape_attribute(value: &str) -> Cow<'_, str> {
    let bytes = value.as_bytes();
    let first = match bytes.iter().position(|&b| attr_escape(b).is_some()) {
        Some(i) => i,
        None => return Cow::Borrowed(value),
    };
    let mut out = String::with_capacity(value.len() + 8);
    out.push_str(&value[..first]);
    let mut run = first;
    for i in first..bytes.len() {
        if let Some(rep) = attr_escape(bytes[i]) {
            out.push_str(&value[run..i]);
            out.push_str(rep);
            run = i + 1;
        }
    }
    out.push_str(&value[run..]);
    Cow::Owned(out)
}

/// The escape sequence for `b` inside an attribute value, if it needs
/// one. All specials are ASCII, so bytes ≥ 0x80 always pass through.
#[inline]
fn attr_escape(b: u8) -> Option<&'static str> {
    match b {
        b'<' => Some("&lt;"),
        b'>' => Some("&gt;"),
        b'&' => Some("&amp;"),
        b'"' => Some("&quot;"),
        b'\n' => Some("&#10;"),
        b'\t' => Some("&#9;"),
        b'\r' => Some("&#13;"),
        _ => None,
    }
}

/// Resolves one reference body (the text between `&` and `;`).
pub fn resolve_reference(body: &str) -> Option<char> {
    match body {
        "lt" => Some('<'),
        "gt" => Some('>'),
        "amp" => Some('&'),
        "apos" => Some('\''),
        "quot" => Some('"'),
        _ => {
            let code =
                if let Some(hex) = body.strip_prefix("#x").or_else(|| body.strip_prefix("#X")) {
                    u32::from_str_radix(hex, 16).ok()?
                } else if let Some(dec) = body.strip_prefix('#') {
                    dec.parse::<u32>().ok()?
                } else {
                    return None;
                };
            char::from_u32(code)
        }
    }
}

/// Unescapes text containing character and entity references. Borrows
/// the input when it contains no `&` at all — the zero-copy fast path
/// the lexer leans on.
///
/// `line`/`column` locate the start of `text` for error reporting.
pub fn unescape(text: &str, line: u32, column: u32) -> Result<Cow<'_, str>, XmlError> {
    let bytes = text.as_bytes();
    let Some(first_amp) = scan::memchr(b'&', bytes) else {
        return Ok(Cow::Borrowed(text));
    };
    let mut out = String::with_capacity(text.len());
    out.push_str(&text[..first_amp]);
    let mut i = first_amp;
    while i < bytes.len() {
        if bytes[i] == b'&' {
            let rest = &text[i + 1..];
            let Some(end) = scan::memchr(b';', rest.as_bytes()) else {
                return Err(XmlError::at(
                    XmlErrorKind::InvalidReference {
                        reference: scan::prefix_chars(rest, 12).to_string(),
                    },
                    line,
                    column,
                ));
            };
            let body = &rest[..end];
            match resolve_reference(body) {
                Some(resolved) => out.push(resolved),
                None => {
                    return Err(XmlError::at(
                        XmlErrorKind::InvalidReference {
                            reference: body.to_string(),
                        },
                        line,
                        column,
                    ))
                }
            }
            // Skip '&' + body + ';'.
            i += 1 + body.len() + 1;
        } else {
            // Copy the clean run up to the next '&' in one shot.
            let len = scan::memchr(b'&', &bytes[i..]).unwrap_or(bytes.len() - i);
            out.push_str(&text[i..i + len]);
            i += len;
        }
    }
    Ok(Cow::Owned(out))
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn escapes_text_specials() {
        assert_eq!(escape_text("a<b&c>d"), "a&lt;b&amp;c&gt;d");
        assert_eq!(escape_text("plain"), "plain");
    }

    #[test]
    fn clean_inputs_borrow() {
        assert!(matches!(escape_text("no specials"), Cow::Borrowed(_)));
        assert!(matches!(escape_attribute("value-1"), Cow::Borrowed(_)));
        assert!(matches!(escape_text("a&b"), Cow::Owned(_)));
        assert!(matches!(escape_attribute("say \"hi\""), Cow::Owned(_)));
    }

    #[test]
    fn escapes_attribute_specials() {
        assert_eq!(escape_attribute("say \"hi\""), "say &quot;hi&quot;");
        assert_eq!(escape_attribute("tab\there"), "tab&#9;here");
    }

    #[test]
    fn unescapes_predefined_entities() {
        assert_eq!(
            unescape("&lt;&gt;&amp;&apos;&quot;", 1, 1).unwrap(),
            "<>&'\""
        );
    }

    #[test]
    fn unescapes_numeric_references() {
        assert_eq!(unescape("&#65;&#x42;&#x63;", 1, 1).unwrap(), "ABc");
        assert_eq!(unescape("&#x4e2d;", 1, 1).unwrap(), "中");
    }

    #[test]
    fn unescape_borrows_without_references() {
        assert!(matches!(
            unescape("plain ü text", 1, 1).unwrap(),
            Cow::Borrowed(_)
        ));
        assert!(matches!(unescape("a&amp;b", 1, 1).unwrap(), Cow::Owned(_)));
    }

    #[test]
    fn rejects_unknown_entity() {
        let err = unescape("&nbsp;", 1, 1).unwrap_err();
        assert!(matches!(err.kind, XmlErrorKind::InvalidReference { .. }));
    }

    #[test]
    fn rejects_unterminated_reference() {
        let err = unescape("a &amp b", 1, 1).unwrap_err();
        assert!(matches!(err.kind, XmlErrorKind::InvalidReference { .. }));
    }

    #[test]
    fn rejects_invalid_codepoint() {
        assert!(unescape("&#xd800;", 1, 1).is_err());
        assert!(unescape("&#99999999;", 1, 1).is_err());
    }

    #[test]
    fn multibyte_text_around_references() {
        assert_eq!(
            unescape("héllo &amp; wörld", 1, 1).unwrap(),
            "héllo & wörld"
        );
    }

    proptest! {
        #[test]
        fn text_roundtrip(s in "\\PC*") {
            let escaped = escape_text(&s);
            prop_assert_eq!(unescape(&escaped, 1, 1).unwrap(), s);
        }

        #[test]
        fn attribute_roundtrip(s in "\\PC*") {
            let escaped = escape_attribute(&s);
            prop_assert_eq!(unescape(&escaped, 1, 1).unwrap(), s);
        }

        #[test]
        fn escaped_text_has_no_raw_specials(s in "\\PC*") {
            let escaped = escape_text(&s);
            prop_assert!(!escaped.contains('<'));
            // '&' only as part of a reference.
            for (i, c) in escaped.char_indices() {
                if c == '&' {
                    prop_assert!(escaped[i..].contains(';'));
                }
            }
        }

        #[test]
        fn borrowing_is_exact(s in "\\PC*") {
            // Borrowed ⇔ escaping is the identity.
            let escaped = escape_text(&s);
            prop_assert_eq!(matches!(&escaped, Cow::Borrowed(_)), escaped == s.as_str());
            let escaped = escape_attribute(&s);
            prop_assert_eq!(matches!(&escaped, Cow::Borrowed(_)), escaped == s.as_str());
        }
    }
}
