//! Text escaping and character-reference resolution.
//!
//! Escaping is asymmetric in XML: text content must escape `<`, `&` (and
//! `>` after `]]`, which we always escape for simplicity), while attribute
//! values additionally escape the quote character. Unescaping resolves the
//! five predefined entities and decimal/hexadecimal character references.
//!
//! Both escape functions return [`Cow`]: the common case — no special
//! characters — borrows the input and allocates nothing, which is what
//! keeps serialization allocation-free per clean text run.

use crate::error::{XmlError, XmlErrorKind};
use std::borrow::Cow;

/// Characters that force text content to be escaped.
const TEXT_SPECIALS: [char; 3] = ['<', '>', '&'];

/// Characters that force an attribute value to be escaped.
const ATTR_SPECIALS: [char; 7] = ['<', '>', '&', '"', '\n', '\t', '\r'];

/// Escapes `text` for use as element text content. Borrows when `text`
/// contains no specials.
pub fn escape_text(text: &str) -> Cow<'_, str> {
    let Some(first) = text.find(TEXT_SPECIALS) else {
        return Cow::Borrowed(text);
    };
    let mut out = String::with_capacity(text.len() + 8);
    out.push_str(&text[..first]);
    for c in text[first..].chars() {
        match c {
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '&' => out.push_str("&amp;"),
            _ => out.push(c),
        }
    }
    Cow::Owned(out)
}

/// Escapes `value` for use inside a double-quoted attribute value.
/// Borrows when `value` contains no specials.
pub fn escape_attribute(value: &str) -> Cow<'_, str> {
    let Some(first) = value.find(ATTR_SPECIALS) else {
        return Cow::Borrowed(value);
    };
    let mut out = String::with_capacity(value.len() + 8);
    out.push_str(&value[..first]);
    for c in value[first..].chars() {
        match c {
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '&' => out.push_str("&amp;"),
            '"' => out.push_str("&quot;"),
            '\n' => out.push_str("&#10;"),
            '\t' => out.push_str("&#9;"),
            '\r' => out.push_str("&#13;"),
            _ => out.push(c),
        }
    }
    Cow::Owned(out)
}

/// Resolves one reference body (the text between `&` and `;`).
pub fn resolve_reference(body: &str) -> Option<char> {
    match body {
        "lt" => Some('<'),
        "gt" => Some('>'),
        "amp" => Some('&'),
        "apos" => Some('\''),
        "quot" => Some('"'),
        _ => {
            let code =
                if let Some(hex) = body.strip_prefix("#x").or_else(|| body.strip_prefix("#X")) {
                    u32::from_str_radix(hex, 16).ok()?
                } else if let Some(dec) = body.strip_prefix('#') {
                    dec.parse::<u32>().ok()?
                } else {
                    return None;
                };
            char::from_u32(code)
        }
    }
}

/// Unescapes text containing character and entity references.
///
/// `line`/`column` locate the start of `text` for error reporting.
pub fn unescape(text: &str, line: u32, column: u32) -> Result<String, XmlError> {
    if !text.contains('&') {
        return Ok(text.to_string());
    }
    let mut out = String::with_capacity(text.len());
    let mut chars = text.char_indices();
    while let Some((start, c)) = chars.next() {
        if c != '&' {
            out.push(c);
            continue;
        }
        let rest = &text[start + 1..];
        let Some(end) = rest.find(';') else {
            return Err(XmlError::at(
                XmlErrorKind::InvalidReference {
                    reference: rest.chars().take(12).collect(),
                },
                line,
                column,
            ));
        };
        let body = &rest[..end];
        match resolve_reference(body) {
            Some(resolved) => out.push(resolved),
            None => {
                return Err(XmlError::at(
                    XmlErrorKind::InvalidReference {
                        reference: body.to_string(),
                    },
                    line,
                    column,
                ))
            }
        }
        // Skip over the reference body and the ';'.
        for _ in 0..body.len() + 1 {
            chars.next();
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn escapes_text_specials() {
        assert_eq!(escape_text("a<b&c>d"), "a&lt;b&amp;c&gt;d");
        assert_eq!(escape_text("plain"), "plain");
    }

    #[test]
    fn clean_inputs_borrow() {
        assert!(matches!(escape_text("no specials"), Cow::Borrowed(_)));
        assert!(matches!(escape_attribute("value-1"), Cow::Borrowed(_)));
        assert!(matches!(escape_text("a&b"), Cow::Owned(_)));
        assert!(matches!(escape_attribute("say \"hi\""), Cow::Owned(_)));
    }

    #[test]
    fn escapes_attribute_specials() {
        assert_eq!(escape_attribute("say \"hi\""), "say &quot;hi&quot;");
        assert_eq!(escape_attribute("tab\there"), "tab&#9;here");
    }

    #[test]
    fn unescapes_predefined_entities() {
        assert_eq!(
            unescape("&lt;&gt;&amp;&apos;&quot;", 1, 1).unwrap(),
            "<>&'\""
        );
    }

    #[test]
    fn unescapes_numeric_references() {
        assert_eq!(unescape("&#65;&#x42;&#x63;", 1, 1).unwrap(), "ABc");
        assert_eq!(unescape("&#x4e2d;", 1, 1).unwrap(), "中");
    }

    #[test]
    fn rejects_unknown_entity() {
        let err = unescape("&nbsp;", 1, 1).unwrap_err();
        assert!(matches!(err.kind, XmlErrorKind::InvalidReference { .. }));
    }

    #[test]
    fn rejects_unterminated_reference() {
        let err = unescape("a &amp b", 1, 1).unwrap_err();
        assert!(matches!(err.kind, XmlErrorKind::InvalidReference { .. }));
    }

    #[test]
    fn rejects_invalid_codepoint() {
        assert!(unescape("&#xd800;", 1, 1).is_err());
        assert!(unescape("&#99999999;", 1, 1).is_err());
    }

    #[test]
    fn multibyte_text_around_references() {
        assert_eq!(
            unescape("héllo &amp; wörld", 1, 1).unwrap(),
            "héllo & wörld"
        );
    }

    proptest! {
        #[test]
        fn text_roundtrip(s in "\\PC*") {
            let escaped = escape_text(&s);
            prop_assert_eq!(unescape(&escaped, 1, 1).unwrap(), s);
        }

        #[test]
        fn attribute_roundtrip(s in "\\PC*") {
            let escaped = escape_attribute(&s);
            prop_assert_eq!(unescape(&escaped, 1, 1).unwrap(), s);
        }

        #[test]
        fn escaped_text_has_no_raw_specials(s in "\\PC*") {
            let escaped = escape_text(&s);
            prop_assert!(!escaped.contains('<'));
            // '&' only as part of a reference.
            for (i, c) in escaped.char_indices() {
                if c == '&' {
                    prop_assert!(escaped[i..].contains(';'));
                }
            }
        }

        #[test]
        fn borrowing_is_exact(s in "\\PC*") {
            // Borrowed ⇔ escaping is the identity.
            let escaped = escape_text(&s);
            prop_assert_eq!(matches!(&escaped, Cow::Borrowed(_)), escaped == s.as_str());
            let escaped = escape_attribute(&s);
            prop_assert_eq!(matches!(&escaped, Cow::Borrowed(_)), escaped == s.as_str());
        }
    }
}
