//! Arena-based mutable document object model with interned names.
//!
//! A [`Document`] owns all nodes in a flat arena; nodes are addressed by
//! copyable [`NodeId`]s. A virtual *document node* (always id 0) holds the
//! prolog (comments/PIs), the single root element, and any epilog nodes,
//! which keeps tree navigation uniform.
//!
//! Element names, attribute names, and PI targets are interned into a
//! per-document [`Interner`]: [`NodeKind`] and [`Attribute`] store a
//! 4-byte [`Sym`] instead of an owned `String`, so name comparisons are
//! integer compares and repeated tag names cost one allocation per
//! document instead of one per node. The string-taking accessors
//! ([`Document::name`], [`Document::attribute`],
//! [`Document::child_elements_named`], …) are unchanged — they resolve
//! through the interner — so callers that think in `&str` keep working.
//!
//! On top of the symbols the document maintains a lazily built
//! [`NameIndex`]: symbol → attached elements in document order, plus the
//! document-order rank of every attached node. The XPath evaluator
//! answers descendant name steps and document-order sorting from this
//! index instead of re-traversing the tree per query. The index is
//! invalidated by any mutation that adds/removes structure or changes
//! an element name and rebuilt on next use; sibling reorders *patch*
//! it in place (only the reordered subtree's ranks and name buckets are
//! touched), and value edits — text and attribute writes — keep it
//! valid untouched.
//!
//! Mutation is index-based: children are stored as ordered `Vec<NodeId>`
//! per parent, which makes the operations the watermark encoder needs —
//! value rewrites, sibling reordering, subtree insertion/removal — cheap
//! and simple. Detached subtrees stay in the arena until
//! [`Document::compact`] is called; all navigation starts from the
//! document node, so detached nodes are simply unreachable.

use crate::error::{XmlError, XmlErrorKind};
use crate::intern::{Interner, Sym};
use crate::text::XmlText;
use std::cell::OnceCell;
use std::collections::{HashMap, HashSet};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

/// Global source of symbol-binding generations. Every value is handed
/// out exactly once, so two documents share a generation only when one
/// is a clone of the other *and* neither has grown its symbol table
/// since — exactly the condition under which a cached name→[`Sym`]
/// resolution is valid for both.
static NEXT_GENERATION: AtomicU64 = AtomicU64::new(1);

fn next_generation() -> u64 {
    NEXT_GENERATION.fetch_add(1, Ordering::Relaxed)
}

/// Index of a node within its [`Document`] arena.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(u32);

impl NodeId {
    /// The arena index.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    fn try_from_index(index: usize) -> Result<Self, XmlError> {
        u32::try_from(index)
            .map(NodeId)
            .map_err(|_| XmlError::dom(XmlErrorKind::ArenaOverflow))
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

/// A named attribute with an unescaped value. The name is a [`Sym`] in
/// the owning document's interner; resolve it with
/// [`Document::attr_name`] (or [`Document::resolve`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Attribute {
    /// Attribute name (interned in the owning document).
    pub name: Sym,
    /// Unescaped value — a zero-copy span into the parse buffer until
    /// the first mutation materializes it.
    pub value: XmlText,
}

/// The payload of a node. Names are [`Sym`]s in the owning document's
/// interner.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NodeKind {
    /// The virtual document node (arena id 0, exactly one per document).
    Document,
    /// An element with a name and ordered attributes.
    Element {
        /// Element (tag) name, interned.
        name: Sym,
        /// Attributes in document order.
        attributes: Vec<Attribute>,
    },
    /// A run of character data.
    Text(XmlText),
    /// A CDATA section (serialized back as CDATA).
    CData(XmlText),
    /// A comment.
    Comment(String),
    /// A processing instruction.
    Pi {
        /// PI target, interned.
        target: Sym,
        /// PI data.
        data: String,
    },
}

/// Inline capacity of a node's child list. Data-centric XML is shallow
/// and narrow at the leaves: text holders have one child, records a
/// handful, and only hub nodes (the root over all records) overflow to
/// the heap.
const INLINE_CHILDREN: usize = 4;

/// A node's ordered child list with small-size inline storage, so the
/// overwhelmingly common few-children node costs the arena no heap
/// allocation (a measurable share of parse time was child-`Vec`
/// mallocs).
#[derive(Debug, Clone)]
enum Children {
    Inline {
        len: u8,
        buf: [NodeId; INLINE_CHILDREN],
    },
    Heap(Vec<NodeId>),
}

impl Children {
    fn new() -> Self {
        Children::Inline {
            len: 0,
            buf: [NodeId(0); INLINE_CHILDREN],
        }
    }

    /// Moves inline storage to the heap (no-op when already there) and
    /// returns the heap vector.
    fn spill(&mut self) -> &mut Vec<NodeId> {
        if let Children::Inline { len, buf } = self {
            let mut v = Vec::with_capacity(INLINE_CHILDREN * 2);
            v.extend_from_slice(&buf[..*len as usize]);
            *self = Children::Heap(v);
        }
        match self {
            Children::Heap(v) => v,
            Children::Inline { .. } => unreachable!("just spilled"),
        }
    }

    fn push(&mut self, id: NodeId) {
        match self {
            Children::Inline { len, buf } if (*len as usize) < INLINE_CHILDREN => {
                buf[*len as usize] = id;
                *len += 1;
            }
            Children::Inline { .. } => self.spill().push(id),
            Children::Heap(v) => v.push(id),
        }
    }

    fn insert(&mut self, index: usize, id: NodeId) {
        match self {
            Children::Inline { len, buf } if (*len as usize) < INLINE_CHILDREN => {
                let n = *len as usize;
                assert!(index <= n, "insert index {index} out of bounds (len {n})");
                buf.copy_within(index..n, index + 1);
                buf[index] = id;
                *len += 1;
            }
            Children::Inline { .. } => self.spill().insert(index, id),
            Children::Heap(v) => v.insert(index, id),
        }
    }

    fn retain(&mut self, mut keep: impl FnMut(&NodeId) -> bool) {
        match self {
            Children::Inline { len, buf } => {
                let mut kept = 0usize;
                for read in 0..*len as usize {
                    if keep(&buf[read]) {
                        buf[kept] = buf[read];
                        kept += 1;
                    }
                }
                *len = kept as u8;
            }
            Children::Heap(v) => v.retain(keep),
        }
    }
}

impl std::ops::Deref for Children {
    type Target = [NodeId];
    fn deref(&self) -> &[NodeId] {
        match self {
            Children::Inline { len, buf } => &buf[..*len as usize],
            Children::Heap(v) => v,
        }
    }
}

impl std::ops::DerefMut for Children {
    fn deref_mut(&mut self) -> &mut [NodeId] {
        match self {
            Children::Inline { len, buf } => &mut buf[..*len as usize],
            Children::Heap(v) => v,
        }
    }
}

impl From<Vec<NodeId>> for Children {
    fn from(v: Vec<NodeId>) -> Self {
        Children::Heap(v)
    }
}

#[derive(Debug, Clone)]
struct Node {
    parent: Option<NodeId>,
    children: Children,
    kind: NodeKind,
}

/// Symbol → attached elements (document order) plus document-order ranks.
///
/// Built lazily by [`Document::name_index`] in one traversal; dropped by
/// mutations that add/remove structure or rename elements, *patched* in
/// place by sibling reorders (see [`NameIndex::patch_reorder`]). Value
/// edits (text content, attribute values) do not invalidate it, which is
/// what keeps detection — many query evaluations over an immutable
/// document — at one build total.
#[derive(Debug, Clone, Default)]
pub struct NameIndex {
    by_name: HashMap<Sym, Vec<NodeId>>,
    order: HashMap<NodeId, usize>,
}

impl NameIndex {
    fn build(doc: &Document) -> NameIndex {
        let mut by_name: HashMap<Sym, Vec<NodeId>> = HashMap::new();
        let mut order = HashMap::with_capacity(doc.arena_len());
        for (rank, node) in doc.descendants(doc.document_node()).enumerate() {
            order.insert(node, rank);
            if let NodeKind::Element { name, .. } = doc.kind(node) {
                by_name.entry(*name).or_default().push(node);
            }
        }
        NameIndex { by_name, order }
    }

    /// All attached elements named `sym`, in document order.
    pub fn elements_named(&self, sym: Sym) -> &[NodeId] {
        self.by_name.get(&sym).map_or(&[], Vec::as_slice)
    }

    /// Document-order rank of an attached node (`None` for detached).
    pub fn order_of(&self, node: NodeId) -> Option<usize> {
        self.order.get(&node).copied()
    }

    /// Incrementally repairs the index after a sibling reorder under
    /// `parent`. A reorder permutes `parent`'s children without adding
    /// or removing nodes, so the subtree below `parent` keeps its
    /// contiguous rank interval `(rank(parent), rank(parent) + size]` —
    /// only the assignment of ranks *within* the interval changes, and
    /// only name buckets with members inside the subtree need
    /// re-sorting. Everything outside the subtree keeps its cached
    /// entries. No-op when `parent` is detached (the index never
    /// covered it).
    fn patch_reorder(&mut self, doc: &Document, parent: NodeId) {
        let Some(parent_rank) = self.order_of(parent) else {
            return;
        };
        let mut rank = parent_rank;
        let mut dirty_names: HashSet<Sym> = HashSet::new();
        for node in doc.descendants(parent) {
            if node == parent {
                continue;
            }
            rank += 1;
            self.order.insert(node, rank);
            if let NodeKind::Element { name, .. } = doc.kind(node) {
                dirty_names.insert(*name);
            }
        }
        let subtree_end = rank; // inclusive end of the patched interval
        let order = &self.order;
        for sym in dirty_names {
            if let Some(bucket) = self.by_name.get_mut(&sym) {
                // Membership is unchanged by a reorder, and every moved
                // member keeps a rank inside `(parent_rank, subtree_end]`
                // — so members of the patched subtree still occupy one
                // contiguous run of the rank-sorted bucket, and only
                // that run can be out of order. Binary search stays
                // valid on the run boundaries (the predicates are
                // monotone even while the run itself is unsorted), so a
                // document-wide bucket costs two partition points plus
                // a sort of the run, not a full re-sort per swap.
                let rank_of = |n: &NodeId| order.get(n).copied().unwrap_or(usize::MAX);
                let start = bucket.partition_point(|n| rank_of(n) <= parent_rank);
                let end = bucket.partition_point(|n| rank_of(n) <= subtree_end);
                bucket[start..end].sort_by_key(rank_of);
            }
        }
    }

    /// Number of attached nodes the index covers.
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// Whether the index covers no nodes.
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }
}

/// A mutable XML document.
#[derive(Debug)]
pub struct Document {
    nodes: Vec<Node>,
    interner: Interner,
    /// Symbol-binding generation: changes whenever a name→[`Sym`]
    /// resolution against this document could change (interner growth,
    /// table installation). See [`Document::generation`].
    generation: u64,
    /// Lazily built name/order index; dropped on structural mutation.
    index: OnceCell<NameIndex>,
    /// Content of the `<?xml ...?>` declaration, if present.
    pub xml_decl: Option<String>,
    /// Content of the `<!DOCTYPE ...>` declaration, if present.
    pub doctype: Option<String>,
}

impl Clone for Document {
    fn clone(&self) -> Self {
        Document {
            nodes: self.nodes.clone(),
            interner: self.interner.clone(),
            // The clone's symbol table is identical, so cached
            // resolutions stay valid for both until either grows.
            generation: self.generation,
            // The clone rebuilds its index on first use; copying two
            // arena-sized maps for it would be pure waste.
            index: OnceCell::new(),
            xml_decl: self.xml_decl.clone(),
            doctype: self.doctype.clone(),
        }
    }
}

impl Default for Document {
    fn default() -> Self {
        Self::new()
    }
}

impl Document {
    /// Creates an empty document containing only the document node.
    pub fn new() -> Self {
        Document {
            nodes: vec![Node {
                parent: None,
                children: Children::new(),
                kind: NodeKind::Document,
            }],
            interner: Interner::new(),
            generation: next_generation(),
            index: OnceCell::new(),
            xml_decl: None,
            doctype: None,
        }
    }

    /// The virtual document node.
    pub fn document_node(&self) -> NodeId {
        NodeId(0)
    }

    /// The root element, if the document has one.
    pub fn root_element(&self) -> Option<NodeId> {
        self.nodes[0]
            .children
            .iter()
            .copied()
            .find(|&id| self.is_element(id))
    }

    fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.index()]
    }

    fn node_mut(&mut self, id: NodeId) -> &mut Node {
        &mut self.nodes[id.index()]
    }

    /// Whether `id` indexes a live slot of this document's arena.
    pub fn contains(&self, id: NodeId) -> bool {
        id.index() < self.nodes.len()
    }

    /// Total number of arena slots (including detached nodes).
    pub fn arena_len(&self) -> usize {
        self.nodes.len()
    }

    /// Drops the cached [`NameIndex`]; called by every mutation that
    /// changes tree shape or a name. Sibling reorders take the cheaper
    /// [`Document::touch_reorder`] path instead.
    fn touch(&mut self) {
        self.index.take();
    }

    /// Patches the cached [`NameIndex`] (when built) after a sibling
    /// reorder under `parent` instead of dropping it: only the ranks of
    /// `parent`'s proper descendants change, and only name buckets with
    /// members inside that subtree need re-sorting — the rest of the
    /// document keeps its cached entries. This is what keeps embed-side
    /// order marks (sibling swaps) from paying a whole-document rebuild
    /// on the next query.
    fn touch_reorder(&mut self, parent: NodeId) {
        let Some(mut index) = self.index.take() else {
            return; // nothing built yet; next read builds fresh
        };
        index.patch_reorder(self, parent);
        let _ = self.index.set(index);
    }

    // ------------------------------------------------------------------
    // Interning
    // ------------------------------------------------------------------

    /// Interns `name` into this document's symbol table.
    pub fn intern(&mut self, name: &str) -> Sym {
        let before = self.interner.len();
        let sym = self.interner.intern(name);
        if self.interner.len() != before {
            // A fresh name can turn a cached lookup miss into a hit:
            // invalidate downstream symbol caches.
            self.generation = next_generation();
        }
        sym
    }

    /// The document's symbol-binding generation. Two calls return the
    /// same value iff no name has been interned in between, and a
    /// cloned document shares its source's generation until either
    /// grows its table — so `(generation, name)` is a sound cache key
    /// for `lookup_sym` results held outside the document (compiled
    /// queries, evaluators). Structural edits do *not* change the
    /// generation; they cannot change what a name resolves to.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// The symbol for `name`, if any node of this document ever used it.
    /// Never allocates: on an immutable document, `None` means no
    /// element/attribute/PI carries this name.
    pub fn lookup_sym(&self, name: &str) -> Option<Sym> {
        self.interner.lookup(name)
    }

    /// The text of `sym`.
    ///
    /// # Panics
    /// Panics if `sym` belongs to a different document's interner.
    pub fn resolve(&self, sym: Sym) -> &str {
        self.interner.resolve(sym)
    }

    /// The document's symbol table.
    pub fn interner(&self) -> &Interner {
        &self.interner
    }

    /// Replaces the document's (empty) symbol table with one whose
    /// symbols the arena already references. Used by the parser, which
    /// interns names at lex time and installs the table once the tree is
    /// built — node construction never re-hashes a name.
    pub(crate) fn install_interner(&mut self, interner: Interner) {
        debug_assert!(
            self.interner.is_empty(),
            "install_interner would invalidate existing symbols"
        );
        self.interner = interner;
        self.generation = next_generation();
    }

    /// Resolved name of `attr` (which must belong to this document).
    pub fn attr_name<'a>(&'a self, attr: &Attribute) -> &'a str {
        self.interner.resolve(attr.name)
    }

    // ------------------------------------------------------------------
    // Name index
    // ------------------------------------------------------------------

    /// The lazily built name/order index. Building is one traversal; the
    /// result is cached until the next structural or name mutation.
    pub fn name_index(&self) -> &NameIndex {
        self.index.get_or_init(|| NameIndex::build(self))
    }

    /// All attached elements named `name`, in document order (empty when
    /// the name was never interned). Convenience over
    /// [`Document::name_index`].
    pub fn elements_named(&self, name: &str) -> &[NodeId] {
        match self.lookup_sym(name) {
            Some(sym) => self.name_index().elements_named(sym),
            None => &[],
        }
    }

    // ------------------------------------------------------------------
    // Node creation
    // ------------------------------------------------------------------

    /// Reserves arena room for about `additional` more nodes. A hint:
    /// the arena still grows on demand, this just skips the doubling
    /// copies when the caller can estimate the final size up front.
    pub(crate) fn reserve_nodes(&mut self, additional: usize) {
        self.nodes.reserve(additional);
    }

    fn push_node(&mut self, kind: NodeKind) -> Result<NodeId, XmlError> {
        let id = NodeId::try_from_index(self.nodes.len())?;
        self.nodes.push(Node {
            parent: None,
            children: Children::new(),
            kind,
        });
        Ok(id)
    }

    /// Creates a detached element node.
    ///
    /// # Errors
    /// Returns [`XmlErrorKind::ArenaOverflow`] when the arena is full.
    pub fn create_element(&mut self, name: impl AsRef<str>) -> Result<NodeId, XmlError> {
        let name = self.intern(name.as_ref());
        self.create_element_raw(name)
    }

    /// Creates a detached element from an already-interned name.
    pub(crate) fn create_element_raw(&mut self, name: Sym) -> Result<NodeId, XmlError> {
        self.push_node(NodeKind::Element {
            name,
            attributes: Vec::new(),
        })
    }

    /// Parser fast path: creates an element taking over the lexer's
    /// already-validated attribute list (the lexer rejects duplicate
    /// names, so no per-attribute dedup pass is repeated here). The
    /// token and DOM attribute structs have identical `{Sym, XmlText}`
    /// shape, so the conversion reuses the allocation.
    pub(crate) fn create_element_with_attributes(
        &mut self,
        name: Sym,
        attributes: Vec<crate::token::SymAttribute>,
    ) -> Result<NodeId, XmlError> {
        let attributes = attributes
            .into_iter()
            .map(|a| Attribute {
                name: a.name,
                value: a.value,
            })
            .collect();
        self.push_node(NodeKind::Element { name, attributes })
    }

    /// Creates a detached text node.
    ///
    /// # Errors
    /// Returns [`XmlErrorKind::ArenaOverflow`] when the arena is full.
    pub fn create_text(&mut self, text: impl Into<XmlText>) -> Result<NodeId, XmlError> {
        self.push_node(NodeKind::Text(text.into()))
    }

    /// Creates a detached CDATA node.
    ///
    /// # Errors
    /// Returns [`XmlErrorKind::ArenaOverflow`] when the arena is full.
    pub fn create_cdata(&mut self, text: impl Into<XmlText>) -> Result<NodeId, XmlError> {
        self.push_node(NodeKind::CData(text.into()))
    }

    /// Creates a detached comment node.
    ///
    /// # Errors
    /// Returns [`XmlErrorKind::ArenaOverflow`] when the arena is full.
    pub fn create_comment(&mut self, text: impl Into<String>) -> Result<NodeId, XmlError> {
        self.push_node(NodeKind::Comment(text.into()))
    }

    /// Creates a detached processing-instruction node.
    ///
    /// # Errors
    /// Returns [`XmlErrorKind::ArenaOverflow`] when the arena is full.
    pub fn create_pi(
        &mut self,
        target: impl AsRef<str>,
        data: impl Into<String>,
    ) -> Result<NodeId, XmlError> {
        let target = self.intern(target.as_ref());
        self.push_node(NodeKind::Pi {
            target,
            data: data.into(),
        })
    }

    /// Creates a detached PI from an already-interned target.
    pub(crate) fn create_pi_raw(
        &mut self,
        target: Sym,
        data: impl Into<String>,
    ) -> Result<NodeId, XmlError> {
        self.push_node(NodeKind::Pi {
            target,
            data: data.into(),
        })
    }

    // ------------------------------------------------------------------
    // Structure
    // ------------------------------------------------------------------

    /// Appends `child` (which must be detached) to `parent`'s children.
    pub fn append_child(&mut self, parent: NodeId, child: NodeId) {
        self.insert_child(parent, self.node(parent).children.len(), child);
    }

    /// Inserts `child` (which must be detached) at `index` within
    /// `parent`'s children.
    ///
    /// # Panics
    /// Panics if `child` already has a parent, if `index` is out of
    /// bounds, or if the operation would create a cycle.
    pub fn insert_child(&mut self, parent: NodeId, index: usize, child: NodeId) {
        assert!(
            self.node(child).parent.is_none(),
            "node {child} is already attached; detach it first"
        );
        assert!(child != parent, "cannot attach a node to itself");
        // Cycle check: parent must not be a descendant of child.
        let mut cursor = Some(parent);
        while let Some(c) = cursor {
            assert!(
                c != child,
                "attaching {child} under {parent} would create a cycle"
            );
            cursor = self.node(c).parent;
        }
        self.node_mut(parent).children.insert(index, child);
        self.node_mut(child).parent = Some(parent);
        self.touch();
    }

    /// Parser fast path: appends a node that was created this instant
    /// and never attached. Detachedness and childlessness hold by
    /// construction, so the cycle walk and public-API asserts of
    /// [`Document::insert_child`] reduce to debug assertions.
    pub(crate) fn attach_new_child(&mut self, parent: NodeId, child: NodeId) {
        debug_assert!(self.node(child).parent.is_none());
        debug_assert!(self.node(child).children.is_empty());
        debug_assert!(child != parent);
        self.node_mut(child).parent = Some(parent);
        self.node_mut(parent).children.push(child);
        self.touch();
    }

    /// Detaches `node` from its parent (no-op if already detached). The
    /// subtree below `node` stays intact.
    pub fn detach(&mut self, node: NodeId) {
        if let Some(parent) = self.node(node).parent {
            self.node_mut(parent).children.retain(|&c| c != node);
            self.node_mut(node).parent = None;
            self.touch();
        }
    }

    /// Parent of `node`, if attached (the document node has no parent).
    pub fn parent(&self, node: NodeId) -> Option<NodeId> {
        self.node(node).parent
    }

    /// Ordered children of `node`.
    pub fn children(&self, node: NodeId) -> &[NodeId] {
        &self.node(node).children
    }

    /// Position of `node` among its parent's children.
    pub fn child_index(&self, node: NodeId) -> Option<usize> {
        let parent = self.node(node).parent?;
        self.node(parent).children.iter().position(|&c| c == node)
    }

    /// Reorders `parent`'s children according to `permutation`, where
    /// `permutation[i]` is the *old* index of the child to place at `i`.
    ///
    /// # Panics
    /// Panics if `permutation` is not a permutation of `0..len`.
    pub fn reorder_children(&mut self, parent: NodeId, permutation: &[usize]) {
        let old = self.node(parent).children.clone();
        assert_eq!(permutation.len(), old.len(), "permutation length mismatch");
        let mut seen = vec![false; old.len()];
        let mut new_children = Vec::with_capacity(old.len());
        for &from in permutation {
            assert!(!seen[from], "index {from} repeated in permutation");
            seen[from] = true;
            new_children.push(old[from]);
        }
        self.node_mut(parent).children = new_children.into();
        self.touch_reorder(parent);
    }

    /// Swaps children at positions `i` and `j` under `parent`.
    pub fn swap_children(&mut self, parent: NodeId, i: usize, j: usize) {
        self.node_mut(parent).children.swap(i, j);
        self.touch_reorder(parent);
    }

    /// Whether `node` is reachable from the document node.
    pub fn is_attached(&self, node: NodeId) -> bool {
        let mut cursor = node;
        loop {
            if cursor == self.document_node() {
                return true;
            }
            match self.node(cursor).parent {
                Some(p) => cursor = p,
                None => return false,
            }
        }
    }

    // ------------------------------------------------------------------
    // Kind accessors
    // ------------------------------------------------------------------

    /// The node's kind.
    pub fn kind(&self, node: NodeId) -> &NodeKind {
        &self.node(node).kind
    }

    /// Whether `node` is an element.
    pub fn is_element(&self, node: NodeId) -> bool {
        matches!(self.node(node).kind, NodeKind::Element { .. })
    }

    /// Whether `node` is a text or CDATA node.
    pub fn is_text(&self, node: NodeId) -> bool {
        matches!(self.node(node).kind, NodeKind::Text(_) | NodeKind::CData(_))
    }

    /// The element name, if `node` is an element.
    pub fn name(&self, node: NodeId) -> Option<&str> {
        self.name_sym(node).map(|sym| self.interner.resolve(sym))
    }

    /// The element name symbol, if `node` is an element. The fast path
    /// for name comparisons: equal symbols ⇔ equal names.
    pub fn name_sym(&self, node: NodeId) -> Option<Sym> {
        match &self.node(node).kind {
            NodeKind::Element { name, .. } => Some(*name),
            _ => None,
        }
    }

    /// Renames an element.
    ///
    /// # Errors
    /// Returns [`XmlErrorKind::NotAnElement`] if `node` is not an element.
    pub fn set_name(&mut self, node: NodeId, name: impl AsRef<str>) -> Result<(), XmlError> {
        // Validate before interning so error paths never grow the
        // symbol table (lookup_sym must stay a proof of presence).
        if !self.is_element(node) {
            return Err(XmlError::dom(XmlErrorKind::NotAnElement));
        }
        let sym = self.intern(name.as_ref());
        match &mut self.node_mut(node).kind {
            NodeKind::Element { name: n, .. } => {
                *n = sym;
                self.touch();
                Ok(())
            }
            _ => unreachable!("is_element checked above"),
        }
    }

    /// The text of a text/CDATA node.
    pub fn text(&self, node: NodeId) -> Option<&str> {
        match &self.node(node).kind {
            NodeKind::Text(t) | NodeKind::CData(t) => Some(t.as_str()),
            _ => None,
        }
    }

    /// Replaces the text of a text/CDATA node. A value edit: the name
    /// index stays valid.
    pub fn set_text(&mut self, node: NodeId, text: impl Into<XmlText>) {
        match &mut self.node_mut(node).kind {
            NodeKind::Text(t) | NodeKind::CData(t) => *t = text.into(),
            _ => panic!("set_text on non-text node {node}"),
        }
    }

    // ------------------------------------------------------------------
    // Attributes
    // ------------------------------------------------------------------

    /// The attributes of an element (empty slice for non-elements).
    /// Attribute names are symbols; resolve with [`Document::attr_name`].
    pub fn attributes(&self, node: NodeId) -> &[Attribute] {
        match &self.node(node).kind {
            NodeKind::Element { attributes, .. } => attributes,
            _ => &[],
        }
    }

    /// Value of attribute `name` on `node`.
    pub fn attribute(&self, node: NodeId, name: &str) -> Option<&str> {
        let sym = self.interner.lookup(name)?;
        self.attributes(node)
            .iter()
            .find(|a| a.name == sym)
            .map(|a| a.value.as_str())
    }

    /// Sets (or adds) attribute `name` to `value`. A value edit: the
    /// name index stays valid.
    ///
    /// # Errors
    /// Returns [`XmlErrorKind::NotAnElement`] if `node` is not an element.
    pub fn set_attribute(
        &mut self,
        node: NodeId,
        name: impl AsRef<str>,
        value: impl Into<XmlText>,
    ) -> Result<(), XmlError> {
        // Validate before interning so error paths never grow the
        // symbol table (lookup_sym must stay a proof of presence).
        if !self.is_element(node) {
            return Err(XmlError::dom(XmlErrorKind::NotAnElement));
        }
        let sym = self.intern(name.as_ref());
        self.set_attribute_raw(node, sym, value.into())
    }

    /// Sets (or adds) an attribute from an already-interned name.
    pub(crate) fn set_attribute_raw(
        &mut self,
        node: NodeId,
        name: Sym,
        value: XmlText,
    ) -> Result<(), XmlError> {
        match &mut self.node_mut(node).kind {
            NodeKind::Element { attributes, .. } => {
                if let Some(attr) = attributes.iter_mut().find(|a| a.name == name) {
                    attr.value = value;
                } else {
                    attributes.push(Attribute { name, value });
                }
                Ok(())
            }
            _ => Err(XmlError::dom(XmlErrorKind::NotAnElement)),
        }
    }

    /// Removes attribute `name`; returns its previous value if present.
    pub fn remove_attribute(&mut self, node: NodeId, name: &str) -> Option<String> {
        let sym = self.interner.lookup(name)?;
        match &mut self.node_mut(node).kind {
            NodeKind::Element { attributes, .. } => {
                let idx = attributes.iter().position(|a| a.name == sym)?;
                Some(attributes.remove(idx).value.into_string())
            }
            _ => None,
        }
    }

    // ------------------------------------------------------------------
    // Convenience navigation
    // ------------------------------------------------------------------

    /// Child elements of `node`, in order.
    pub fn child_elements<'a>(&'a self, node: NodeId) -> impl Iterator<Item = NodeId> + 'a {
        self.children(node)
            .iter()
            .copied()
            .filter(move |&c| self.is_element(c))
    }

    /// Child elements of `node` named `name`. The name is looked up
    /// once; matching is by symbol.
    pub fn child_elements_named<'a>(
        &'a self,
        node: NodeId,
        name: &str,
    ) -> impl Iterator<Item = NodeId> + 'a {
        let sym = self.lookup_sym(name);
        self.children(node)
            .iter()
            .copied()
            .filter(move |&c| sym.is_some() && self.name_sym(c) == sym)
    }

    /// First child element of `node` named `name`.
    pub fn first_child_element(&self, node: NodeId, name: &str) -> Option<NodeId> {
        self.child_elements_named(node, name).next()
    }

    /// All nodes of the subtree rooted at `node`, in document order
    /// (including `node` itself).
    pub fn descendants(&self, node: NodeId) -> Descendants<'_> {
        Descendants {
            doc: self,
            stack: vec![node],
        }
    }

    /// All element descendants of `node` (including `node` if it is one).
    pub fn descendant_elements<'a>(&'a self, node: NodeId) -> impl Iterator<Item = NodeId> + 'a {
        self.descendants(node).filter(move |&n| self.is_element(n))
    }

    /// Concatenated text content of the subtree rooted at `node`.
    pub fn text_content(&self, node: NodeId) -> String {
        let mut out = String::new();
        for n in self.descendants(node) {
            if let NodeKind::Text(t) | NodeKind::CData(t) = &self.node(n).kind {
                out.push_str(t);
            }
        }
        out
    }

    /// Replaces all children of `node` with a single text node `text`.
    ///
    /// # Errors
    /// Returns [`XmlErrorKind::ArenaOverflow`] when the arena is full.
    pub fn set_text_content(
        &mut self,
        node: NodeId,
        text: impl Into<XmlText>,
    ) -> Result<(), XmlError> {
        let children: Vec<NodeId> = self.node(node).children.to_vec();
        for child in children {
            self.detach(child);
        }
        let t = self.create_text(text)?;
        self.append_child(node, t);
        Ok(())
    }

    /// Number of element nodes reachable from the document node.
    pub fn element_count(&self) -> usize {
        self.descendant_elements(self.document_node()).count()
    }

    /// The path of element names from the root to `node`, e.g.
    /// `"/db/book/title"`. Returns `None` for detached nodes.
    pub fn path_of(&self, node: NodeId) -> Option<String> {
        if !self.is_attached(node) {
            return None;
        }
        let mut names = Vec::new();
        let mut cursor = node;
        while cursor != self.document_node() {
            if let Some(name) = self.name(cursor) {
                names.push(name.to_string());
            }
            cursor = self.parent(cursor)?;
        }
        names.reverse();
        Some(format!("/{}", names.join("/")))
    }

    // ------------------------------------------------------------------
    // Cloning and compaction
    // ------------------------------------------------------------------

    /// Deep-copies the subtree rooted at `node` of `source` into `self`,
    /// returning the new (detached) subtree root. Names are re-interned
    /// into this document's symbol table — symbols never cross
    /// documents.
    ///
    /// # Errors
    /// Returns [`XmlErrorKind::ArenaOverflow`] when the arena is full.
    pub fn import_subtree(&mut self, source: &Document, node: NodeId) -> Result<NodeId, XmlError> {
        let kind = match source.kind(node) {
            // Importing a whole document grafts its children under a
            // fresh element-less subtree root; callers normally import
            // the source's root element instead.
            NodeKind::Document => NodeKind::Document,
            NodeKind::Element { name, attributes } => {
                let name = self.intern(source.resolve(*name));
                let attributes = attributes
                    .iter()
                    .map(|a| Attribute {
                        name: self.intern(source.resolve(a.name)),
                        value: a.value.clone(),
                    })
                    .collect();
                NodeKind::Element { name, attributes }
            }
            NodeKind::Pi { target, data } => NodeKind::Pi {
                target: self.intern(source.resolve(*target)),
                data: data.clone(),
            },
            other => other.clone(),
        };
        let new_id = self.push_node(kind)?;
        for &child in source.children(node) {
            let imported = self.import_subtree(source, child)?;
            self.node_mut(new_id).children.push(imported);
            self.node_mut(imported).parent = Some(new_id);
        }
        Ok(new_id)
    }

    /// Deep-copies the subtree rooted at `node` within this document,
    /// returning the detached copy.
    ///
    /// # Errors
    /// Returns [`XmlErrorKind::ArenaOverflow`] when the arena is full.
    pub fn clone_subtree(&mut self, node: NodeId) -> Result<NodeId, XmlError> {
        let source = self.clone();
        self.import_subtree(&source, node)
    }

    /// Rebuilds the arena keeping only nodes reachable from the document
    /// node. Returns a new document (with a freshly built symbol table —
    /// names only used by detached nodes are dropped too); all old
    /// `NodeId`s are invalidated.
    pub fn compact(&self) -> Document {
        let mut out = Document::new();
        out.xml_decl = self.xml_decl.clone();
        out.doctype = self.doctype.clone();
        let doc_children: Vec<NodeId> = self.children(self.document_node()).to_vec();
        for child in doc_children {
            let imported = out
                .import_subtree(self, child)
                .expect("compacted arena is no larger than the source arena");
            let doc_node = out.document_node();
            out.node_mut(imported).parent = Some(doc_node);
            let imported_id = imported;
            out.node_mut(doc_node).children.push(imported_id);
        }
        out
    }
}

/// Document-order iterator over a subtree. See [`Document::descendants`].
pub struct Descendants<'a> {
    doc: &'a Document,
    stack: Vec<NodeId>,
}

impl Iterator for Descendants<'_> {
    type Item = NodeId;

    fn next(&mut self) -> Option<NodeId> {
        let next = self.stack.pop()?;
        // Push children in reverse so the leftmost child pops first.
        for &child in self.doc.children(next).iter().rev() {
            self.stack.push(child);
        }
        Some(next)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds `<db><book><title>T</title></book><book/></db>`.
    fn sample() -> (Document, NodeId, NodeId, NodeId) {
        let mut doc = Document::new();
        let db = doc.create_element("db").unwrap();
        let doc_node = doc.document_node();
        doc.append_child(doc_node, db);
        let book1 = doc.create_element("book").unwrap();
        doc.append_child(db, book1);
        let title = doc.create_element("title").unwrap();
        doc.append_child(book1, title);
        let text = doc.create_text("T").unwrap();
        doc.append_child(title, text);
        let book2 = doc.create_element("book").unwrap();
        doc.append_child(db, book2);
        (doc, db, book1, book2)
    }

    #[test]
    fn build_and_navigate() {
        let (doc, db, book1, book2) = sample();
        assert_eq!(doc.root_element(), Some(db));
        assert_eq!(
            doc.child_elements(db).collect::<Vec<_>>(),
            vec![book1, book2]
        );
        assert!(doc.first_child_element(book1, "title").is_some());
        assert_eq!(doc.text_content(book1), "T");
        assert_eq!(doc.parent(book1), Some(db));
        assert_eq!(doc.child_index(book2), Some(1));
    }

    #[test]
    fn names_are_interned_and_shared() {
        let (doc, _, book1, book2) = sample();
        // Both <book> elements share one symbol.
        assert_eq!(doc.name_sym(book1), doc.name_sym(book2));
        assert_eq!(doc.name(book1), Some("book"));
        assert_eq!(doc.lookup_sym("book"), doc.name_sym(book1));
        assert_eq!(doc.lookup_sym("nope"), None);
    }

    #[test]
    fn name_index_answers_descendant_name_queries() {
        let (doc, db, book1, book2) = sample();
        assert_eq!(doc.elements_named("book"), &[book1, book2]);
        assert_eq!(doc.elements_named("db"), &[db]);
        assert_eq!(doc.elements_named("missing"), &[] as &[NodeId]);
        // Document-order ranks are cached too.
        let idx = doc.name_index();
        assert_eq!(idx.order_of(doc.document_node()), Some(0));
        assert!(idx.order_of(book1) < idx.order_of(book2));
    }

    #[test]
    fn name_index_invalidated_by_structural_mutation() {
        let (mut doc, db, book1, book2) = sample();
        assert_eq!(doc.elements_named("book"), &[book1, book2]);
        doc.detach(book1);
        assert_eq!(doc.elements_named("book"), &[book2]);
        doc.insert_child(db, 0, book1);
        assert_eq!(doc.elements_named("book"), &[book1, book2]);
        doc.swap_children(db, 0, 1);
        assert_eq!(doc.elements_named("book"), &[book2, book1]);
        doc.set_name(book1, "tome").unwrap();
        assert_eq!(doc.elements_named("book"), &[book2]);
        assert_eq!(doc.elements_named("tome"), &[book1]);
    }

    /// Rebuilds a fresh index and checks the patched one agrees with it.
    fn assert_index_matches_rebuild(doc: &Document) {
        let rebuilt = NameIndex::build(doc);
        let patched = doc.name_index();
        assert_eq!(patched.len(), rebuilt.len());
        for (node, rank) in &rebuilt.order {
            assert_eq!(
                patched.order_of(*node),
                Some(*rank),
                "rank mismatch for {node}"
            );
        }
        for (sym, bucket) in &rebuilt.by_name {
            assert_eq!(
                patched.elements_named(*sym),
                bucket.as_slice(),
                "bucket mismatch for {sym}"
            );
        }
    }

    #[test]
    fn sibling_reorder_patches_index_incrementally() {
        let (mut doc, db, book1, book2) = sample();
        // Build the index, then swap: the patched index must equal a
        // fresh rebuild (ranks and every name bucket).
        assert_eq!(doc.elements_named("book"), &[book1, book2]);
        doc.swap_children(db, 0, 1);
        assert_index_matches_rebuild(&doc);
        assert_eq!(doc.elements_named("book"), &[book2, book1]);
        // Permute back via reorder_children; still consistent.
        doc.reorder_children(db, &[1, 0]);
        assert_index_matches_rebuild(&doc);
        assert_eq!(doc.elements_named("book"), &[book1, book2]);
    }

    #[test]
    fn reorder_on_detached_subtree_keeps_index() {
        let (mut doc, _db, book1, _) = sample();
        let before: Vec<NodeId> = doc.elements_named("book").to_vec();
        doc.detach(book1);
        let _ = doc.name_index(); // build with book1 detached
                                  // A reorder inside the detached subtree must not disturb the
                                  // attached index.
        doc.swap_children(book1, 0, 0);
        assert_index_matches_rebuild(&doc);
        assert_ne!(doc.elements_named("book"), before.as_slice());
    }

    #[test]
    fn generation_tracks_symbol_table_growth_only() {
        let (mut doc, db, book1, _) = sample();
        let g0 = doc.generation();
        // Structural edits and value edits keep the generation.
        doc.swap_children(db, 0, 1);
        doc.set_attribute(book1, "book", "reuses-existing-name")
            .unwrap();
        assert_eq!(doc.generation(), g0);
        // A new name bumps it.
        doc.set_attribute(book1, "brand-new-attr", "v").unwrap();
        let g1 = doc.generation();
        assert_ne!(g1, g0);
        // Re-interning the same name does not.
        doc.set_attribute(book1, "brand-new-attr", "w").unwrap();
        assert_eq!(doc.generation(), g1);
        // A clone shares the generation until either side grows.
        let mut clone = doc.clone();
        assert_eq!(clone.generation(), g1);
        clone.create_element("clone-only").unwrap();
        assert_ne!(clone.generation(), g1);
        assert_eq!(doc.generation(), g1);
    }

    #[test]
    fn value_edits_keep_the_name_index() {
        let (mut doc, _, book1, _) = sample();
        // Build the index, then edit values only.
        let before: Vec<NodeId> = doc.elements_named("book").to_vec();
        doc.set_attribute(book1, "publisher", "mkp").unwrap();
        let title = doc.first_child_element(book1, "title").unwrap();
        let text = doc.children(title)[0];
        doc.set_text(text, "T2");
        assert_eq!(doc.elements_named("book"), before.as_slice());
        assert_eq!(doc.text_content(book1), "T2");
    }

    #[test]
    fn attributes_roundtrip() {
        let (mut doc, _, book1, _) = sample();
        doc.set_attribute(book1, "publisher", "mkp").unwrap();
        doc.set_attribute(book1, "year", "1998").unwrap();
        assert_eq!(doc.attribute(book1, "publisher"), Some("mkp"));
        doc.set_attribute(book1, "publisher", "acm").unwrap();
        assert_eq!(doc.attribute(book1, "publisher"), Some("acm"));
        assert_eq!(doc.attributes(book1).len(), 2);
        let names: Vec<&str> = doc
            .attributes(book1)
            .iter()
            .map(|a| doc.attr_name(a))
            .collect();
        assert_eq!(names, vec!["publisher", "year"]);
        assert_eq!(doc.remove_attribute(book1, "year"), Some("1998".into()));
        assert_eq!(doc.attribute(book1, "year"), None);
        assert_eq!(doc.remove_attribute(book1, "never-interned"), None);
    }

    #[test]
    fn attribute_on_text_node_errors() {
        let mut doc = Document::new();
        let t = doc.create_text("x").unwrap();
        assert!(doc.set_attribute(t, "a", "b").is_err());
    }

    #[test]
    fn failed_writes_do_not_pollute_the_interner() {
        let mut doc = Document::new();
        let t = doc.create_text("x").unwrap();
        assert!(doc.set_attribute(t, "ghost", "v").is_err());
        assert!(doc.set_name(t, "phantom").is_err());
        // lookup_sym stays a proof of presence in the document.
        assert_eq!(doc.lookup_sym("ghost"), None);
        assert_eq!(doc.lookup_sym("phantom"), None);
    }

    #[test]
    fn detach_and_reattach() {
        let (mut doc, db, book1, book2) = sample();
        doc.detach(book1);
        assert_eq!(doc.child_elements(db).collect::<Vec<_>>(), vec![book2]);
        assert!(!doc.is_attached(book1));
        // Subtree intact while detached.
        assert_eq!(doc.text_content(book1), "T");
        doc.insert_child(db, 1, book1);
        assert_eq!(
            doc.child_elements(db).collect::<Vec<_>>(),
            vec![book2, book1]
        );
    }

    #[test]
    #[should_panic(expected = "already attached")]
    fn double_attach_panics() {
        let (mut doc, db, book1, _) = sample();
        doc.append_child(db, book1);
    }

    #[test]
    #[should_panic(expected = "cycle")]
    fn cycle_panics() {
        let (mut doc, db, book1, _) = sample();
        doc.detach(db);
        doc.append_child(book1, db);
    }

    #[test]
    fn descendants_in_document_order() {
        let (doc, db, book1, book2) = sample();
        let order: Vec<NodeId> = doc.descendants(db).collect();
        assert_eq!(order[0], db);
        assert_eq!(order[1], book1);
        // title, text, then book2
        assert_eq!(*order.last().unwrap(), book2);
        assert_eq!(order.len(), 5);
    }

    #[test]
    fn reorder_children_permutes() {
        let (mut doc, db, book1, book2) = sample();
        doc.reorder_children(db, &[1, 0]);
        assert_eq!(
            doc.child_elements(db).collect::<Vec<_>>(),
            vec![book2, book1]
        );
        doc.swap_children(db, 0, 1);
        assert_eq!(
            doc.child_elements(db).collect::<Vec<_>>(),
            vec![book1, book2]
        );
    }

    #[test]
    #[should_panic(expected = "permutation")]
    fn bad_permutation_panics() {
        let (mut doc, db, ..) = sample();
        doc.reorder_children(db, &[0, 0]);
    }

    #[test]
    fn set_text_content_replaces_children() {
        let (mut doc, _, book1, _) = sample();
        doc.set_text_content(book1, "replaced").unwrap();
        assert_eq!(doc.text_content(book1), "replaced");
        assert_eq!(doc.children(book1).len(), 1);
    }

    #[test]
    fn path_of_reports_root_path() {
        let (doc, db, book1, _) = sample();
        assert_eq!(doc.path_of(db).unwrap(), "/db");
        let title = doc.first_child_element(book1, "title").unwrap();
        assert_eq!(doc.path_of(title).unwrap(), "/db/book/title");
    }

    #[test]
    fn import_subtree_copies_across_documents() {
        let (doc_a, _, book1, _) = sample();
        let mut doc_b = Document::new();
        let root = doc_b.create_element("shelf").unwrap();
        let doc_node = doc_b.document_node();
        doc_b.append_child(doc_node, root);
        let copied = doc_b.import_subtree(&doc_a, book1).unwrap();
        doc_b.append_child(root, copied);
        assert_eq!(doc_b.text_content(root), "T");
        assert_eq!(doc_b.name(copied), Some("book"));
        // Source untouched.
        assert_eq!(doc_a.text_content(book1), "T");
        // Symbols were re-interned: names resolve in the destination
        // even though the two documents assign different ids.
        assert_ne!(doc_a.name_sym(book1), None);
        assert_eq!(doc_b.resolve(doc_b.name_sym(copied).unwrap()), "book");
    }

    #[test]
    fn clone_subtree_within_document() {
        let (mut doc, db, book1, _) = sample();
        let copy = doc.clone_subtree(book1).unwrap();
        doc.append_child(db, copy);
        assert_eq!(doc.child_elements_named(db, "book").count(), 3);
        assert_eq!(doc.text_content(copy), "T");
    }

    #[test]
    fn compact_drops_detached_nodes() {
        let (mut doc, _, book1, _) = sample();
        let before = doc.arena_len();
        doc.detach(book1);
        let compacted = doc.compact();
        assert!(compacted.arena_len() < before);
        assert_eq!(compacted.element_count(), 2); // db + book2
    }

    #[test]
    fn rename_element() {
        let (mut doc, _, book1, _) = sample();
        doc.set_name(book1, "publication").unwrap();
        assert_eq!(doc.name(book1), Some("publication"));
        let text_node = doc.create_text("t").unwrap();
        assert!(doc.set_name(text_node, "x").is_err());
    }

    #[test]
    fn element_count_counts_elements_only() {
        let (mut doc, db, ..) = sample();
        assert_eq!(doc.element_count(), 4);
        let c = doc.create_comment("note").unwrap();
        doc.append_child(db, c);
        assert_eq!(doc.element_count(), 4);
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use proptest::prelude::*;

    /// A random structural edit.
    #[derive(Debug, Clone)]
    enum Op {
        AddChild {
            parent_pick: usize,
            name: u8,
        },
        AddText {
            parent_pick: usize,
            text: String,
        },
        Detach {
            node_pick: usize,
        },
        Reattach {
            node_pick: usize,
            parent_pick: usize,
        },
        SetAttr {
            node_pick: usize,
            value: String,
        },
    }

    fn arb_op() -> impl Strategy<Value = Op> {
        prop_oneof![
            (any::<usize>(), any::<u8>())
                .prop_map(|(parent_pick, name)| Op::AddChild { parent_pick, name }),
            (any::<usize>(), "[a-z ]{0,6}")
                .prop_map(|(parent_pick, text)| Op::AddText { parent_pick, text }),
            any::<usize>().prop_map(|node_pick| Op::Detach { node_pick }),
            (any::<usize>(), any::<usize>()).prop_map(|(node_pick, parent_pick)| {
                Op::Reattach {
                    node_pick,
                    parent_pick,
                }
            }),
            (any::<usize>(), "[a-z]{0,4}")
                .prop_map(|(node_pick, value)| Op::SetAttr { node_pick, value }),
        ]
    }

    /// All invariants the watermarking pipeline relies on.
    fn check_invariants(doc: &Document) {
        let doc_node = doc.document_node();
        // 1. Parent/child pointers are mutually consistent.
        for i in 0..doc.arena_len() {
            let id = NodeId(i as u32);
            for &child in doc.children(id) {
                assert_eq!(doc.parent(child), Some(id), "child {child} parent mismatch");
            }
            if let Some(parent) = doc.parent(id) {
                assert!(
                    doc.children(parent).contains(&id),
                    "{id} missing from its parent's children"
                );
            }
        }
        // 2. Reachability agrees with is_attached.
        let reachable: std::collections::HashSet<NodeId> = doc.descendants(doc_node).collect();
        for i in 0..doc.arena_len() {
            let id = NodeId(i as u32);
            assert_eq!(
                reachable.contains(&id),
                doc.is_attached(id),
                "attachment mismatch for {id}"
            );
        }
        // 3. No node appears twice in the tree.
        let walked: Vec<NodeId> = doc.descendants(doc_node).collect();
        let unique: std::collections::HashSet<&NodeId> = walked.iter().collect();
        assert_eq!(walked.len(), unique.len(), "node visited twice");
        // 4. The name index agrees with a fresh traversal: same element
        //    sets per name, ranks consistent with document order.
        let index = doc.name_index();
        for i in 0..doc.arena_len() {
            let id = NodeId(i as u32);
            assert_eq!(
                index.order_of(id).is_some(),
                doc.is_attached(id),
                "index coverage mismatch for {id}"
            );
        }
        for (rank, node) in doc.descendants(doc_node).enumerate() {
            assert_eq!(index.order_of(node), Some(rank), "rank mismatch for {node}");
            if let Some(sym) = doc.name_sym(node) {
                assert!(
                    index.elements_named(sym).contains(&node),
                    "element {node} missing from its name bucket"
                );
            }
        }
        // 5. compact() preserves the canonical serialization when a root
        //    element exists.
        if doc.root_element().is_some() {
            let compacted = doc.compact();
            assert_eq!(
                crate::serialize::to_canonical_string(doc),
                crate::serialize::to_canonical_string(&compacted)
            );
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]
        #[test]
        fn random_edit_sequences_preserve_invariants(ops in prop::collection::vec(arb_op(), 1..40)) {
            let mut doc = Document::new();
            let root = doc.create_element("root").unwrap();
            let doc_node = doc.document_node();
            doc.append_child(doc_node, root);
            // Track elements we created (attached or not).
            let mut elements = vec![root];

            for op in ops {
                match op {
                    Op::AddChild { parent_pick, name } => {
                        let parent = elements[parent_pick % elements.len()];
                        if doc.is_attached(parent) || doc.parent(parent).is_none() {
                            let child = doc.create_element(format!("e{}", name % 8)).unwrap();
                            doc.append_child(parent, child);
                            elements.push(child);
                        }
                    }
                    Op::AddText { parent_pick, text } => {
                        let parent = elements[parent_pick % elements.len()];
                        let t = doc.create_text(text).unwrap();
                        doc.append_child(parent, t);
                    }
                    Op::Detach { node_pick } => {
                        let node = elements[node_pick % elements.len()];
                        if node != root {
                            doc.detach(node);
                        }
                    }
                    Op::Reattach { node_pick, parent_pick } => {
                        let node = elements[node_pick % elements.len()];
                        let parent = elements[parent_pick % elements.len()];
                        if node != root
                            && doc.parent(node).is_none()
                            && node != parent
                            // Avoid cycles: parent must not live under node.
                            && !doc.descendants(node).any(|d| d == parent)
                        {
                            doc.append_child(parent, node);
                        }
                    }
                    Op::SetAttr { node_pick, value } => {
                        let node = elements[node_pick % elements.len()];
                        doc.set_attribute(node, "k", value).unwrap();
                    }
                }
            }
            check_invariants(&doc);
        }
    }
}
