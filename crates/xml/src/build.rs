//! Fluent builder for constructing documents programmatically.
//!
//! Used heavily by the dataset generators in `wmx-data` and by tests:
//!
//! ```
//! use wmx_xml::build::ElementBuilder;
//!
//! let doc = ElementBuilder::new("db")
//!     .child(
//!         ElementBuilder::new("book")
//!             .attr("publisher", "mkp")
//!             .child(ElementBuilder::new("title").text("Readings in Database Systems"))
//!             .child(ElementBuilder::new("year").text("1998")),
//!     )
//!     .into_document();
//! assert_eq!(doc.element_count(), 4);
//! ```

use crate::dom::{Document, NodeId};

/// A pending element and its subtree, assembled before being committed
/// into a [`Document`].
#[derive(Debug, Clone)]
pub struct ElementBuilder {
    name: String,
    attributes: Vec<(String, String)>,
    children: Vec<BuildNode>,
}

#[derive(Debug, Clone)]
enum BuildNode {
    Element(ElementBuilder),
    Text(String),
    CData(String),
    Comment(String),
}

impl ElementBuilder {
    /// Starts building an element named `name`.
    pub fn new(name: impl Into<String>) -> Self {
        ElementBuilder {
            name: name.into(),
            attributes: Vec::new(),
            children: Vec::new(),
        }
    }

    /// Adds an attribute.
    pub fn attr(mut self, name: impl Into<String>, value: impl Into<String>) -> Self {
        self.attributes.push((name.into(), value.into()));
        self
    }

    /// Adds a child element.
    pub fn child(mut self, child: ElementBuilder) -> Self {
        self.children.push(BuildNode::Element(child));
        self
    }

    /// Adds child elements from an iterator.
    pub fn children(mut self, children: impl IntoIterator<Item = ElementBuilder>) -> Self {
        self.children
            .extend(children.into_iter().map(BuildNode::Element));
        self
    }

    /// Adds a text child.
    pub fn text(mut self, text: impl Into<String>) -> Self {
        self.children.push(BuildNode::Text(text.into()));
        self
    }

    /// Adds a CDATA child.
    pub fn cdata(mut self, text: impl Into<String>) -> Self {
        self.children.push(BuildNode::CData(text.into()));
        self
    }

    /// Adds a comment child.
    pub fn comment(mut self, text: impl Into<String>) -> Self {
        self.children.push(BuildNode::Comment(text.into()));
        self
    }

    /// Shorthand: adds `<name>text</name>` as a child.
    pub fn leaf(self, name: impl Into<String>, text: impl Into<String>) -> Self {
        self.child(ElementBuilder::new(name).text(text))
    }

    /// Commits this builder into `doc`, returning the new detached
    /// element's id.
    ///
    /// # Panics
    /// Panics on arena overflow (more than `u32::MAX` nodes) — builders
    /// assemble generated datasets, where this cannot occur; use the
    /// fallible `Document::create_*` constructors directly for inputs of
    /// unbounded size.
    pub fn build(self, doc: &mut Document) -> NodeId {
        let element = doc
            .create_element(self.name)
            .expect("builder document fits the arena");
        for (name, value) in self.attributes {
            doc.set_attribute(element, name, value)
                .expect("fresh element accepts attributes");
        }
        for child in self.children {
            let id = match child {
                BuildNode::Element(builder) => Ok(builder.build(doc)),
                BuildNode::Text(t) => doc.create_text(t),
                BuildNode::CData(t) => doc.create_cdata(t),
                BuildNode::Comment(t) => doc.create_comment(t),
            };
            let id = id.expect("builder document fits the arena");
            doc.append_child(element, id);
        }
        element
    }

    /// Builds a whole document with this element as the root.
    pub fn into_document(self) -> Document {
        let mut doc = Document::new();
        let root = self.build(&mut doc);
        let doc_node = doc.document_node();
        doc.append_child(doc_node, root);
        doc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::serialize::to_string;

    #[test]
    fn builds_nested_structure() {
        let doc = ElementBuilder::new("db")
            .child(
                ElementBuilder::new("book")
                    .attr("publisher", "mkp")
                    .leaf("title", "DB Design")
                    .leaf("year", "1998"),
            )
            .into_document();
        assert_eq!(
            to_string(&doc),
            "<db><book publisher=\"mkp\"><title>DB Design</title><year>1998</year></book></db>"
        );
    }

    #[test]
    fn children_from_iterator() {
        let doc = ElementBuilder::new("db")
            .children((0..3).map(|i| ElementBuilder::new("item").attr("id", i.to_string())))
            .into_document();
        let db = doc.root_element().unwrap();
        assert_eq!(doc.child_elements_named(db, "item").count(), 3);
    }

    #[test]
    fn mixed_children() {
        let doc = ElementBuilder::new("p")
            .text("Hello ")
            .child(ElementBuilder::new("b").text("world"))
            .text("!")
            .comment("nb")
            .into_document();
        let p = doc.root_element().unwrap();
        assert_eq!(doc.text_content(p), "Hello world!");
        assert_eq!(doc.children(p).len(), 4);
    }

    #[test]
    fn build_into_existing_document() {
        let mut doc = ElementBuilder::new("db").into_document();
        let root = doc.root_element().unwrap();
        let extra = ElementBuilder::new("book")
            .leaf("title", "New")
            .build(&mut doc);
        doc.append_child(root, extra);
        assert_eq!(doc.element_count(), 3);
    }
}
