//! Serializers: compact, pretty-printed, and canonical.
//!
//! The canonical form sorts attributes by name and normalizes text
//! (CDATA flattened into text, comments/PIs dropped); two documents with
//! the same canonical string carry the same information for the purposes
//! of the watermarking experiments. It is *not* W3C C14N — it is the
//! comparison form used by tests and the usability metric.

use crate::dom::{Document, NodeId, NodeKind};
use crate::escape::{escape_attribute, escape_text};
use std::fmt::Write;

/// Serializes the document compactly (no added whitespace).
pub fn to_string(doc: &Document) -> String {
    let mut out = String::new();
    write_prolog(doc, &mut out, false);
    for &child in doc.children(doc.document_node()) {
        write_node(doc, child, &mut out, WriteMode::Compact, 0);
    }
    out
}

/// Serializes with two-space indentation, one element per line where the
/// content model allows it (elements with text content stay on one line).
pub fn to_pretty_string(doc: &Document) -> String {
    let mut out = String::new();
    write_prolog(doc, &mut out, true);
    for &child in doc.children(doc.document_node()) {
        write_node(doc, child, &mut out, WriteMode::Pretty, 0);
        out.push('\n');
    }
    out
}

/// Serializes a single subtree compactly — exactly the bytes
/// [`to_string`] would emit for this node as part of the whole document.
/// The `wmx-stream` engine uses this to emit records one at a time while
/// guaranteeing byte-identical output with the DOM pipeline.
pub fn node_to_string(doc: &Document, node: NodeId) -> String {
    let mut out = String::new();
    write_node(doc, node, &mut out, WriteMode::Compact, 0);
    out
}

/// Serializes the canonical comparison form: attributes sorted by name,
/// CDATA flattened to text, comments and PIs omitted, no prolog.
pub fn to_canonical_string(doc: &Document) -> String {
    let mut out = String::new();
    if let Some(root) = doc.root_element() {
        write_node(doc, root, &mut out, WriteMode::Canonical, 0);
    }
    out
}

fn write_prolog(doc: &Document, out: &mut String, pretty: bool) {
    if let Some(decl) = &doc.xml_decl {
        let _ = write!(out, "<?xml {decl}?>");
        if pretty {
            out.push('\n');
        }
    }
    if let Some(doctype) = &doc.doctype {
        let _ = write!(out, "<!DOCTYPE {doctype}>");
        if pretty {
            out.push('\n');
        }
    }
}

/// The compact form of one attribute, leading space included:
/// ` name="escaped value"`. Exposed so the streaming engine emits
/// attributes with exactly the serializer's formatting.
pub fn attribute_text(name: &str, value: &str) -> String {
    let mut out = String::new();
    write_attribute(&mut out, name, value);
    out
}

/// Writes one attribute (leading space included) straight into `out`,
/// avoiding the per-attribute `String` the old `format!` path allocated.
/// The escaped value borrows when it contains no specials.
fn write_attribute(out: &mut String, name: &str, value: &str) {
    out.push(' ');
    out.push_str(name);
    out.push_str("=\"");
    out.push_str(&escape_attribute(value));
    out.push('"');
}

/// The compact form of a comment: `<!--content-->`.
pub fn comment_text(content: &str) -> String {
    format!("<!--{content}-->")
}

/// The compact form of a CDATA section: `<![CDATA[content]]>`.
pub fn cdata_text(content: &str) -> String {
    format!("<![CDATA[{content}]]>")
}

/// The compact form of a processing instruction: `<?target data?>`
/// (no space when `data` is empty).
pub fn pi_text(target: &str, data: &str) -> String {
    if data.is_empty() {
        format!("<?{target}?>")
    } else {
        format!("<?{target} {data}?>")
    }
}

#[derive(Clone, Copy, PartialEq)]
enum WriteMode {
    Compact,
    Pretty,
    Canonical,
}

fn write_node(doc: &Document, node: NodeId, out: &mut String, mode: WriteMode, depth: usize) {
    match doc.kind(node) {
        NodeKind::Document => {
            for &child in doc.children(node) {
                write_node(doc, child, out, mode, depth);
            }
        }
        NodeKind::Element { name, attributes } => {
            let name = doc.resolve(*name);
            if mode == WriteMode::Pretty && depth > 0 {
                indent(out, depth);
            }
            out.push('<');
            out.push_str(name);
            if mode == WriteMode::Canonical {
                let mut sorted: Vec<_> = attributes.iter().collect();
                sorted.sort_by(|a, b| doc.attr_name(a).cmp(doc.attr_name(b)));
                for attr in sorted {
                    write_attribute(out, doc.attr_name(attr), &attr.value);
                }
            } else {
                for attr in attributes {
                    write_attribute(out, doc.attr_name(attr), &attr.value);
                }
            }
            let children = doc.children(node);
            // Empty text nodes serialize to nothing; treating them as
            // invisible keeps `<a></a>` and `<a/>` interchangeable.
            let not_empty_text = |&c: &NodeId| match doc.kind(c) {
                NodeKind::Text(t) | NodeKind::CData(t) => !t.is_empty(),
                _ => true,
            };
            // The canonical comparison form additionally drops text nodes
            // that are *all* whitespace: the default parse convention
            // (`skip_whitespace_text`) treats them as non-information, so
            // canonical(doc) must equal canonical(parse(serialize(doc))).
            let not_whitespace_text = |&c: &NodeId| match doc.kind(c) {
                NodeKind::Text(t) | NodeKind::CData(t) => !t.chars().all(char::is_whitespace),
                _ => true,
            };
            let visible_children: Vec<NodeId> = match mode {
                WriteMode::Canonical => children
                    .iter()
                    .copied()
                    .filter(|&c| {
                        matches!(
                            doc.kind(c),
                            NodeKind::Element { .. } | NodeKind::Text(_) | NodeKind::CData(_)
                        )
                    })
                    .filter(not_whitespace_text)
                    .collect(),
                _ => children.iter().copied().filter(not_empty_text).collect(),
            };
            if visible_children.is_empty() {
                out.push_str("/>");
                if mode == WriteMode::Pretty && depth == 0 {
                    // Root element closed; caller appends the newline.
                }
                return;
            }
            out.push('>');
            let element_only = visible_children.iter().all(|&c| doc.is_element(c))
                || visible_children.iter().all(|&c| {
                    matches!(
                        doc.kind(c),
                        NodeKind::Comment(_) | NodeKind::Pi { .. } | NodeKind::Element { .. }
                    )
                });
            if mode == WriteMode::Pretty && element_only {
                out.push('\n');
                for &child in &visible_children {
                    write_node(doc, child, out, mode, depth + 1);
                    out.push('\n');
                }
                indent(out, depth);
            } else {
                for &child in &visible_children {
                    write_node(doc, child, out, mode, depth + 1);
                }
            }
            out.push_str("</");
            out.push_str(name);
            out.push('>');
        }
        NodeKind::Text(text) => {
            out.push_str(&escape_text(text));
        }
        NodeKind::CData(text) => {
            if mode == WriteMode::Canonical {
                out.push_str(&escape_text(text));
            } else {
                out.push_str(&cdata_text(text));
            }
        }
        NodeKind::Comment(text) => {
            if mode == WriteMode::Pretty && depth > 0 {
                indent(out, depth);
            }
            out.push_str(&comment_text(text));
        }
        NodeKind::Pi { target, data } => {
            if mode == WriteMode::Pretty && depth > 0 {
                indent(out, depth);
            }
            out.push_str(&pi_text(doc.resolve(*target), data));
        }
    }
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use proptest::prelude::*;

    #[test]
    fn compact_roundtrip() {
        let input = "<db><book publisher=\"mkp\"><title>R &amp; D</title></book></db>";
        let doc = parse(input).unwrap();
        assert_eq!(to_string(&doc), input);
    }

    #[test]
    fn self_closing_for_empty_elements() {
        let doc = parse("<a><b></b></a>").unwrap();
        assert_eq!(to_string(&doc), "<a><b/></a>");
    }

    #[test]
    fn prolog_preserved() {
        let input = "<?xml version=\"1.0\"?><!DOCTYPE db><db/>";
        let doc = parse(input).unwrap();
        assert_eq!(to_string(&doc), input);
    }

    #[test]
    fn pretty_print_shape() {
        let doc = parse("<db><book><title>T</title><year>1998</year></book></db>").unwrap();
        let pretty = to_pretty_string(&doc);
        assert_eq!(
            pretty,
            "<db>\n  <book>\n    <title>T</title>\n    <year>1998</year>\n  </book>\n</db>\n"
        );
    }

    #[test]
    fn pretty_print_reparses_identically() {
        let input = "<db><book publisher=\"mkp\"><title>A &lt; B</title><year>1998</year></book><book/></db>";
        let doc = parse(input).unwrap();
        let pretty = to_pretty_string(&doc);
        let reparsed = parse(&pretty).unwrap();
        assert_eq!(to_canonical_string(&doc), to_canonical_string(&reparsed));
    }

    #[test]
    fn canonical_sorts_attributes() {
        let a = parse("<x b=\"2\" a=\"1\"/>").unwrap();
        let b = parse("<x a=\"1\" b=\"2\"/>").unwrap();
        assert_eq!(to_canonical_string(&a), to_canonical_string(&b));
    }

    #[test]
    fn canonical_flattens_cdata_and_drops_comments() {
        let a = parse("<x><![CDATA[1<2]]><!-- note --></x>").unwrap();
        let b = parse("<x>1&lt;2</x>").unwrap();
        assert_eq!(to_canonical_string(&a), to_canonical_string(&b));
    }

    #[test]
    fn canonical_detects_value_differences() {
        let a = parse("<x><y>1</y></x>").unwrap();
        let b = parse("<x><y>2</y></x>").unwrap();
        assert_ne!(to_canonical_string(&a), to_canonical_string(&b));
    }

    #[test]
    fn cdata_roundtrips_in_compact_form() {
        let input = "<x><![CDATA[if (a<b && c>d) {}]]></x>";
        let doc = parse(input).unwrap();
        assert_eq!(to_string(&doc), input);
    }

    #[test]
    fn special_characters_roundtrip() {
        let input = "<x attr=\"a&amp;b&quot;c\">&lt;tag&gt; &amp; text</x>";
        let doc = parse(input).unwrap();
        let reparsed = parse(&to_string(&doc)).unwrap();
        assert_eq!(to_canonical_string(&doc), to_canonical_string(&reparsed));
    }

    /// Strategy producing small random documents as strings via a random
    /// tree we then serialize, to test parse∘serialize = id on the DOM.
    fn arb_tree(depth: u32) -> BoxedStrategy<String> {
        let name = prop::sample::select(vec!["a", "b", "item", "rec", "x-y", "_n"]);
        let text = "[ -~&&[^<&>\"']]{0,12}"; // printable ASCII minus XML specials
        let leaf = (name.clone(), text).prop_map(|(n, t)| {
            if t.is_empty() {
                format!("<{n}/>")
            } else {
                format!("<{n}>{t}</{n}>")
            }
        });
        if depth == 0 {
            return leaf.boxed();
        }
        let attr_val = "[ -~&&[^<&>\"']]{0,8}";
        (
            name,
            proptest::option::of(attr_val),
            prop::collection::vec(arb_tree(depth - 1), 0..4),
        )
            .prop_map(|(n, attr, kids)| {
                let attrs = attr.map(|v| format!(" k=\"{v}\"")).unwrap_or_default();
                if kids.is_empty() {
                    format!("<{n}{attrs}/>")
                } else {
                    format!("<{n}{attrs}>{}</{n}>", kids.join(""))
                }
            })
            .boxed()
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn parse_serialize_fixpoint(tree in arb_tree(3)) {
            let doc = parse(&tree).unwrap();
            let once = to_string(&doc);
            let doc2 = parse(&once).unwrap();
            let twice = to_string(&doc2);
            prop_assert_eq!(once, twice);
            prop_assert_eq!(to_canonical_string(&doc), to_canonical_string(&doc2));
        }
    }
}
