//! Serializers: compact, pretty-printed, and canonical.
//!
//! The canonical form sorts attributes by name and normalizes text
//! (CDATA flattened into text, comments/PIs dropped); two documents with
//! the same canonical string carry the same information for the purposes
//! of the watermarking experiments. It is *not* W3C C14N — it is the
//! comparison form used by tests and the usability metric.
//!
//! All serializers walk the tree once through a small [`Emit`] sink
//! abstraction. The `String` sink appends in place (no per-node
//! allocation: markup punctuation is emitted as static literals, names
//! and clean text borrow straight from the document, and escaping only
//! allocates when a special character is actually present). The segment
//! sink collects borrowed/owned spans and hands them to
//! [`write_document`] for vectored `writev`-style output.

use crate::dom::{Document, NodeId, NodeKind};
use crate::escape::{escape_attribute, escape_text};
use std::borrow::Cow;
use std::io;

/// Serializes the document compactly (no added whitespace).
pub fn to_string(doc: &Document) -> String {
    let mut out = String::new();
    to_string_into(doc, &mut out);
    out
}

/// Appends the compact serialization of `doc` to `out` without clearing
/// it. Streaming drivers call this with a reused buffer (cleared between
/// records) to avoid re-allocating output storage per document.
pub fn to_string_into(doc: &Document, out: &mut String) {
    write_prolog(doc, out, false);
    for &child in doc.children(doc.document_node()) {
        write_node(doc, child, out, WriteMode::Compact, 0);
    }
}

/// Serializes with two-space indentation, one element per line where the
/// content model allows it (elements with text content stay on one line).
pub fn to_pretty_string(doc: &Document) -> String {
    let mut out = String::new();
    write_prolog(doc, &mut out, true);
    for &child in doc.children(doc.document_node()) {
        write_node(doc, child, &mut out, WriteMode::Pretty, 0);
        out.push('\n');
    }
    out
}

/// Serializes a single subtree compactly — exactly the bytes
/// [`to_string`] would emit for this node as part of the whole document.
/// The `wmx-stream` engine uses this to emit records one at a time while
/// guaranteeing byte-identical output with the DOM pipeline.
pub fn node_to_string(doc: &Document, node: NodeId) -> String {
    let mut out = String::new();
    node_to_string_into(doc, node, &mut out);
    out
}

/// Appends the compact serialization of one subtree to `out`; the
/// buffer-reuse twin of [`node_to_string`].
pub fn node_to_string_into(doc: &Document, node: NodeId, out: &mut String) {
    write_node(doc, node, out, WriteMode::Compact, 0);
}

/// Serializes the canonical comparison form: attributes sorted by name,
/// CDATA flattened to text, comments and PIs omitted, no prolog.
pub fn to_canonical_string(doc: &Document) -> String {
    let mut out = String::new();
    if let Some(root) = doc.root_element() {
        write_node(doc, root, &mut out, WriteMode::Canonical, 0);
    }
    out
}

/// Writes the compact serialization of `doc` to `writer` using vectored
/// I/O: the tree is walked once into a list of borrowed spans (names,
/// clean text, static punctuation all point into the document or into
/// the binary's rodata) and flushed in [`io::IoSlice`] batches, so large
/// documents reach the writer without first being concatenated into one
/// contiguous allocation.
pub fn write_document<W: io::Write>(doc: &Document, writer: &mut W) -> io::Result<()> {
    let mut segs = Segments {
        segs: Vec::with_capacity(128),
    };
    write_prolog(doc, &mut segs, false);
    for &child in doc.children(doc.document_node()) {
        write_node(doc, child, &mut segs, WriteMode::Compact, 0);
    }
    write_segments(writer, &segs.segs)
}

/// Vectored twin of [`to_pretty_string`]: identical bytes, streamed to
/// `writer` in [`io::IoSlice`] batches.
pub fn write_document_pretty<W: io::Write>(doc: &Document, writer: &mut W) -> io::Result<()> {
    let mut segs = Segments {
        segs: Vec::with_capacity(128),
    };
    write_prolog(doc, &mut segs, true);
    for &child in doc.children(doc.document_node()) {
        write_node(doc, child, &mut segs, WriteMode::Pretty, 0);
        segs.lit("\n");
    }
    write_segments(writer, &segs.segs)
}

/// How many segments go into one `write_vectored` call. Linux caps a
/// single `writev` at 1024 iovecs; staying well under that keeps the
/// batch array small while still amortizing the syscall.
const VECTOR_BATCH: usize = 64;

/// Flushes `segs` to `writer` via `write_vectored`, hand-rolling the
/// partial-write advance (`write_all_vectored` is not stable): after a
/// short write the cursor moves `n` bytes forward across segment
/// boundaries and the next batch resumes mid-segment.
fn write_segments<W: io::Write>(writer: &mut W, segs: &[Cow<'_, str>]) -> io::Result<()> {
    let mut batch: Vec<io::IoSlice<'_>> = Vec::with_capacity(VECTOR_BATCH);
    let mut idx = 0; // first segment not fully written
    let mut skip = 0; // bytes of segs[idx] already written
    while idx < segs.len() {
        if segs[idx].len() <= skip {
            idx += 1;
            skip = 0;
            continue;
        }
        batch.clear();
        for seg in &segs[idx..] {
            if batch.len() == VECTOR_BATCH {
                break;
            }
            let bytes = seg.as_bytes();
            let bytes = if batch.is_empty() {
                &bytes[skip..]
            } else {
                bytes
            };
            if !bytes.is_empty() {
                batch.push(io::IoSlice::new(bytes));
            }
        }
        let mut n = match writer.write_vectored(&batch) {
            Ok(0) => {
                return Err(io::Error::new(
                    io::ErrorKind::WriteZero,
                    "failed to write whole document",
                ))
            }
            Ok(n) => n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        };
        while n > 0 && idx < segs.len() {
            let remaining = segs[idx].len() - skip;
            if n >= remaining {
                n -= remaining;
                idx += 1;
                skip = 0;
            } else {
                skip += n;
                n = 0;
            }
        }
    }
    Ok(())
}

/// A small stack of reusable `String` output buffers. The sequential
/// stream driver serializes one record at a time; recycling the buffer
/// through the pool keeps its capacity warm instead of re-growing a
/// fresh allocation per record.
#[derive(Default)]
pub struct BufferPool {
    free: Vec<String>,
}

/// Upper bound on pooled buffers; beyond this, released buffers are
/// simply dropped so a burst of users can't pin memory forever.
const POOL_CAP: usize = 8;

impl BufferPool {
    /// Creates an empty pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Hands out a cleared buffer, reusing a pooled allocation when one
    /// is available.
    pub fn acquire(&mut self) -> String {
        match self.free.pop() {
            Some(mut buf) => {
                buf.clear();
                buf
            }
            None => String::new(),
        }
    }

    /// Returns a buffer to the pool for reuse (dropped if the pool is
    /// already at capacity).
    pub fn release(&mut self, buf: String) {
        if self.free.len() < POOL_CAP {
            self.free.push(buf);
        }
    }
}

/// Output sink for the single tree walk shared by every serializer.
///
/// `lit` takes markup punctuation (static, borrowed forever), `text`
/// takes spans that borrow from the document, and `cow` takes escaping
/// results that borrow when the input had no specials. The `String`
/// implementation appends immediately; [`Segments`] defers the copy to
/// the vectored writer.
trait Emit<'d> {
    fn lit(&mut self, s: &'static str);
    fn text(&mut self, s: &'d str);
    fn cow(&mut self, s: Cow<'d, str>);
}

impl<'d> Emit<'d> for String {
    fn lit(&mut self, s: &'static str) {
        self.push_str(s);
    }
    fn text(&mut self, s: &'d str) {
        self.push_str(s);
    }
    fn cow(&mut self, s: Cow<'d, str>) {
        self.push_str(&s);
    }
}

/// Segment collector for [`write_document`]: the document is rendered as
/// a sequence of borrowed/owned spans instead of one concatenated
/// buffer.
struct Segments<'d> {
    segs: Vec<Cow<'d, str>>,
}

impl<'d> Emit<'d> for Segments<'d> {
    fn lit(&mut self, s: &'static str) {
        self.segs.push(Cow::Borrowed(s));
    }
    fn text(&mut self, s: &'d str) {
        self.segs.push(Cow::Borrowed(s));
    }
    fn cow(&mut self, s: Cow<'d, str>) {
        self.segs.push(s);
    }
}

fn write_prolog<'d, E: Emit<'d>>(doc: &'d Document, out: &mut E, pretty: bool) {
    if let Some(decl) = &doc.xml_decl {
        out.lit("<?xml ");
        out.text(decl);
        out.lit("?>");
        if pretty {
            out.lit("\n");
        }
    }
    if let Some(doctype) = &doc.doctype {
        out.lit("<!DOCTYPE ");
        out.text(doctype);
        out.lit(">");
        if pretty {
            out.lit("\n");
        }
    }
}

/// The compact form of one attribute, leading space included:
/// ` name="escaped value"`. Exposed so the streaming engine emits
/// attributes with exactly the serializer's formatting.
pub fn attribute_text(name: &str, value: &str) -> String {
    let mut out = String::new();
    write_attribute(&mut out, name, value);
    out
}

/// Writes one attribute (leading space included) straight into the
/// sink. The escaped value borrows when it contains no specials.
fn write_attribute<'d, E: Emit<'d>>(out: &mut E, name: &'d str, value: &'d str) {
    out.lit(" ");
    out.text(name);
    out.lit("=\"");
    out.cow(escape_attribute(value));
    out.lit("\"");
}

/// The compact form of a comment: `<!--content-->`.
pub fn comment_text(content: &str) -> String {
    let mut out = String::with_capacity(content.len() + 7);
    out.push_str("<!--");
    out.push_str(content);
    out.push_str("-->");
    out
}

/// The compact form of a CDATA section: `<![CDATA[content]]>`.
pub fn cdata_text(content: &str) -> String {
    let mut out = String::with_capacity(content.len() + 12);
    out.push_str("<![CDATA[");
    out.push_str(content);
    out.push_str("]]>");
    out
}

/// The compact form of a processing instruction: `<?target data?>`
/// (no space when `data` is empty).
pub fn pi_text(target: &str, data: &str) -> String {
    let mut out = String::with_capacity(target.len() + data.len() + 5);
    out.push_str("<?");
    out.push_str(target);
    if !data.is_empty() {
        out.push(' ');
        out.push_str(data);
    }
    out.push_str("?>");
    out
}

#[derive(Clone, Copy, PartialEq)]
enum WriteMode {
    Compact,
    Pretty,
    Canonical,
}

fn write_node<'d, E: Emit<'d>>(
    doc: &'d Document,
    node: NodeId,
    out: &mut E,
    mode: WriteMode,
    depth: usize,
) {
    match doc.kind(node) {
        NodeKind::Document => {
            for &child in doc.children(node) {
                write_node(doc, child, out, mode, depth);
            }
        }
        NodeKind::Element { name, attributes } => {
            let name = doc.resolve(*name);
            if mode == WriteMode::Pretty && depth > 0 {
                indent(out, depth);
            }
            out.lit("<");
            out.text(name);
            if mode == WriteMode::Canonical {
                let mut sorted: Vec<_> = attributes.iter().collect();
                sorted.sort_by(|a, b| doc.attr_name(a).cmp(doc.attr_name(b)));
                for attr in sorted {
                    write_attribute(out, doc.attr_name(attr), attr.value.as_str());
                }
            } else {
                for attr in attributes {
                    write_attribute(out, doc.attr_name(attr), attr.value.as_str());
                }
            }
            let children = doc.children(node);
            // Empty text nodes serialize to nothing; treating them as
            // invisible keeps `<a></a>` and `<a/>` interchangeable. The
            // canonical comparison form additionally drops text nodes
            // that are *all* whitespace: the default parse convention
            // (`skip_whitespace_text`) treats them as non-information, so
            // canonical(doc) must equal canonical(parse(serialize(doc))).
            let visible = |c: NodeId| match (mode, doc.kind(c)) {
                (WriteMode::Canonical, NodeKind::Text(t) | NodeKind::CData(t)) => {
                    !crate::scan::is_all_whitespace(t)
                }
                (WriteMode::Canonical, NodeKind::Element { .. }) => true,
                (WriteMode::Canonical, _) => false,
                (_, NodeKind::Text(t) | NodeKind::CData(t)) => !t.is_empty(),
                _ => true,
            };
            if !children.iter().any(|&c| visible(c)) {
                out.lit("/>");
                return;
            }
            out.lit(">");
            let element_only = children.iter().copied().filter(|&c| visible(c)).all(|c| {
                matches!(
                    doc.kind(c),
                    NodeKind::Comment(_) | NodeKind::Pi { .. } | NodeKind::Element { .. }
                )
            });
            if mode == WriteMode::Pretty && element_only {
                out.lit("\n");
                for &child in children.iter().filter(|&&c| visible(c)) {
                    write_node(doc, child, out, mode, depth + 1);
                    out.lit("\n");
                }
                indent(out, depth);
            } else {
                for &child in children.iter().filter(|&&c| visible(c)) {
                    write_node(doc, child, out, mode, depth + 1);
                }
            }
            out.lit("</");
            out.text(name);
            out.lit(">");
        }
        NodeKind::Text(text) => {
            out.cow(escape_text(text));
        }
        NodeKind::CData(text) => {
            if mode == WriteMode::Canonical {
                out.cow(escape_text(text));
            } else {
                out.lit("<![CDATA[");
                out.text(text);
                out.lit("]]>");
            }
        }
        NodeKind::Comment(text) => {
            if mode == WriteMode::Pretty && depth > 0 {
                indent(out, depth);
            }
            out.lit("<!--");
            out.text(text);
            out.lit("-->");
        }
        NodeKind::Pi { target, data } => {
            if mode == WriteMode::Pretty && depth > 0 {
                indent(out, depth);
            }
            let target = doc.resolve(*target);
            out.lit("<?");
            out.text(target);
            if !data.is_empty() {
                out.lit(" ");
                out.text(data);
            }
            out.lit("?>");
        }
    }
}

/// Two spaces per depth level, emitted as static slices so the segment
/// sink never allocates for indentation.
fn indent<'d, E: Emit<'d>>(out: &mut E, depth: usize) {
    const PAD: &str = "                                "; // 16 levels
    let mut n = depth * 2;
    while n > 0 {
        let take = n.min(PAD.len());
        out.lit(&PAD[..take]);
        n -= take;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use proptest::prelude::*;

    #[test]
    fn compact_roundtrip() {
        let input = "<db><book publisher=\"mkp\"><title>R &amp; D</title></book></db>";
        let doc = parse(input).unwrap();
        assert_eq!(to_string(&doc), input);
    }

    #[test]
    fn self_closing_for_empty_elements() {
        let doc = parse("<a><b></b></a>").unwrap();
        assert_eq!(to_string(&doc), "<a><b/></a>");
    }

    #[test]
    fn prolog_preserved() {
        let input = "<?xml version=\"1.0\"?><!DOCTYPE db><db/>";
        let doc = parse(input).unwrap();
        assert_eq!(to_string(&doc), input);
    }

    #[test]
    fn pretty_print_shape() {
        let doc = parse("<db><book><title>T</title><year>1998</year></book></db>").unwrap();
        let pretty = to_pretty_string(&doc);
        assert_eq!(
            pretty,
            "<db>\n  <book>\n    <title>T</title>\n    <year>1998</year>\n  </book>\n</db>\n"
        );
    }

    #[test]
    fn pretty_print_reparses_identically() {
        let input = "<db><book publisher=\"mkp\"><title>A &lt; B</title><year>1998</year></book><book/></db>";
        let doc = parse(input).unwrap();
        let pretty = to_pretty_string(&doc);
        let reparsed = parse(&pretty).unwrap();
        assert_eq!(to_canonical_string(&doc), to_canonical_string(&reparsed));
    }

    #[test]
    fn canonical_sorts_attributes() {
        let a = parse("<x b=\"2\" a=\"1\"/>").unwrap();
        let b = parse("<x a=\"1\" b=\"2\"/>").unwrap();
        assert_eq!(to_canonical_string(&a), to_canonical_string(&b));
    }

    #[test]
    fn canonical_flattens_cdata_and_drops_comments() {
        let a = parse("<x><![CDATA[1<2]]><!-- note --></x>").unwrap();
        let b = parse("<x>1&lt;2</x>").unwrap();
        assert_eq!(to_canonical_string(&a), to_canonical_string(&b));
    }

    #[test]
    fn canonical_detects_value_differences() {
        let a = parse("<x><y>1</y></x>").unwrap();
        let b = parse("<x><y>2</y></x>").unwrap();
        assert_ne!(to_canonical_string(&a), to_canonical_string(&b));
    }

    #[test]
    fn cdata_roundtrips_in_compact_form() {
        let input = "<x><![CDATA[if (a<b && c>d) {}]]></x>";
        let doc = parse(input).unwrap();
        assert_eq!(to_string(&doc), input);
    }

    #[test]
    fn special_characters_roundtrip() {
        let input = "<x attr=\"a&amp;b&quot;c\">&lt;tag&gt; &amp; text</x>";
        let doc = parse(input).unwrap();
        let reparsed = parse(&to_string(&doc)).unwrap();
        assert_eq!(to_canonical_string(&doc), to_canonical_string(&reparsed));
    }

    #[test]
    fn to_string_into_reuses_buffer() {
        let doc = parse("<a x=\"1\">t</a>").unwrap();
        let mut buf = String::from("junk");
        buf.clear();
        to_string_into(&doc, &mut buf);
        assert_eq!(buf, to_string(&doc));
        let cap = buf.capacity();
        buf.clear();
        to_string_into(&doc, &mut buf);
        assert_eq!(buf, to_string(&doc));
        assert!(buf.capacity() >= cap);
    }

    #[test]
    fn write_document_matches_to_string() {
        let input = "<?xml version=\"1.0\"?><db><book publisher=\"mkp\"><title>R &amp; D</title><!--n--><![CDATA[x<y]]></book><?pi data?></db>";
        let doc = parse(input).unwrap();
        let mut out = Vec::new();
        write_document(&doc, &mut out).unwrap();
        assert_eq!(String::from_utf8(out).unwrap(), to_string(&doc));
    }

    #[test]
    fn write_document_pretty_matches_to_pretty_string() {
        let doc = parse("<db><book><title>T</title><year>1998</year></book><note/></db>").unwrap();
        let mut out = Vec::new();
        write_document_pretty(&doc, &mut out).unwrap();
        assert_eq!(String::from_utf8(out).unwrap(), to_pretty_string(&doc));
    }

    /// Writer that accepts at most `cap` bytes per call and only ever
    /// consumes from the first buffer of a vectored batch, exercising
    /// the partial-write advance in `write_segments`.
    struct Trickle {
        out: Vec<u8>,
        cap: usize,
    }

    impl io::Write for Trickle {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            let n = buf.len().min(self.cap);
            self.out.extend_from_slice(&buf[..n]);
            Ok(n)
        }
        fn write_vectored(&mut self, bufs: &[io::IoSlice<'_>]) -> io::Result<usize> {
            match bufs.iter().find(|b| !b.is_empty()) {
                Some(first) => self.write(first),
                None => Ok(0),
            }
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn write_document_survives_partial_writes() {
        let input = "<db><book publisher=\"mkp\"><title>R &amp; D</title></book><book/></db>";
        let doc = parse(input).unwrap();
        for cap in [1, 2, 3, 7] {
            let mut w = Trickle {
                out: Vec::new(),
                cap,
            };
            write_document(&doc, &mut w).unwrap();
            assert_eq!(String::from_utf8(w.out).unwrap(), to_string(&doc));
        }
    }

    #[test]
    fn buffer_pool_recycles_capacity() {
        let mut pool = BufferPool::new();
        let mut buf = pool.acquire();
        buf.push_str("0123456789abcdef");
        let cap = buf.capacity();
        pool.release(buf);
        let recycled = pool.acquire();
        assert!(recycled.is_empty());
        assert!(recycled.capacity() >= cap);
    }

    /// Strategy producing small random documents as strings via a random
    /// tree we then serialize, to test parse∘serialize = id on the DOM.
    fn arb_tree(depth: u32) -> BoxedStrategy<String> {
        let name = prop::sample::select(vec!["a", "b", "item", "rec", "x-y", "_n"]);
        let text = "[ -~&&[^<&>\"']]{0,12}"; // printable ASCII minus XML specials
        let leaf = (name.clone(), text).prop_map(|(n, t)| {
            if t.is_empty() {
                format!("<{n}/>")
            } else {
                format!("<{n}>{t}</{n}>")
            }
        });
        if depth == 0 {
            return leaf.boxed();
        }
        let attr_val = "[ -~&&[^<&>\"']]{0,8}";
        (
            name,
            proptest::option::of(attr_val),
            prop::collection::vec(arb_tree(depth - 1), 0..4),
        )
            .prop_map(|(n, attr, kids)| {
                let attrs = attr.map(|v| format!(" k=\"{v}\"")).unwrap_or_default();
                if kids.is_empty() {
                    format!("<{n}{attrs}/>")
                } else {
                    format!("<{n}{attrs}>{}</{n}>", kids.join(""))
                }
            })
            .boxed()
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn parse_serialize_fixpoint(tree in arb_tree(3)) {
            let doc = parse(&tree).unwrap();
            let once = to_string(&doc);
            let doc2 = parse(&once).unwrap();
            let twice = to_string(&doc2);
            prop_assert_eq!(once, twice);
            prop_assert_eq!(to_canonical_string(&doc), to_canonical_string(&doc2));
        }

        #[test]
        fn write_document_matches_to_string_prop(tree in arb_tree(3)) {
            let doc = parse(&tree).unwrap();
            let mut out = Vec::new();
            write_document(&doc, &mut out).unwrap();
            prop_assert_eq!(String::from_utf8(out).unwrap(), to_string(&doc));
        }
    }
}
