//! Resumable pull-based token stream.
//!
//! [`PullParser`] wraps the [lexer](crate::lexer) behind a push/pull
//! interface: callers *push* input chunks of any size (`push_str`) and
//! *pull* complete tokens (`next`). When the buffered input ends in the
//! middle of a token the parser answers [`Pulled::NeedMore`] instead of
//! failing, and lexing resumes exactly where it stopped once more input
//! arrives — no token is ever split or re-ordered relative to lexing the
//! whole document at once. This is the substrate of the `wmx-stream`
//! single-pass engine, which must tokenize documents larger than memory.
//!
//! Consumed input is discarded incrementally (amortized compaction), so
//! memory use is bounded by the largest *held* span (see
//! [`PullParser::hold_from`]) plus one compaction window — not by the
//! document size.
//!
//! # Example
//!
//! ```
//! use wmx_xml::pull::{PullParser, Pulled};
//! use wmx_xml::token::Token;
//!
//! let mut pull = PullParser::new();
//! pull.push_str("<a>hel");
//! let tok = match pull.next().unwrap() {
//!     Pulled::Token(t) => t.token,
//!     other => panic!("expected a token, got {other:?}"),
//! };
//! assert!(matches!(tok, Token::StartTag { .. }));
//! // "hel" may continue in the next chunk: the parser waits.
//! assert!(matches!(pull.next().unwrap(), Pulled::NeedMore));
//! pull.push_str("lo</a>");
//! pull.finish();
//! assert!(matches!(
//!     pull.next().unwrap(),
//!     Pulled::Token(t) if t.token == Token::Text { content: "hello".into() }
//! ));
//! ```

use crate::error::{XmlError, XmlErrorKind};
use crate::intern::Interner;
use crate::lexer::Lexer;
use crate::token::{SpannedToken, Token};

/// Consumed bytes are dropped from the front of the buffer once at least
/// this many are reclaimable (amortizes the memmove).
const COMPACT_THRESHOLD: usize = 64 * 1024;

/// Markup openers long enough that a buffer ending mid-opener would
/// otherwise mislex (e.g. `"<!-"` is not yet distinguishable from a
/// comment or a DOCTYPE).
const MARKUP_OPENERS: &[&str] = &["<!--", "<![CDATA[", "<!DOCTYPE", "<!doctype"];

/// The fixed closing delimiter of a construct whose content cannot
/// contain it (so "delimiter present" ⇔ "token complete"). Tags and
/// DOCTYPEs are excluded: their `>` may legally occur earlier (inside a
/// quoted attribute value or an internal subset).
fn unambiguous_closer(rest: &str) -> Option<&'static str> {
    if rest.starts_with("<!--") {
        Some("-->")
    } else if rest.starts_with("<![CDATA[") {
        Some("]]>")
    } else if rest.starts_with("<?") {
        Some("?>")
    } else {
        None
    }
}

/// One pull outcome.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Pulled {
    /// A complete token (with its stream position).
    Token(SpannedToken),
    /// The buffered input ends mid-token; push more input (or call
    /// [`PullParser::finish`]) and pull again.
    NeedMore,
    /// All input was consumed and [`PullParser::finish`] was called.
    End,
}

/// A resumable, incrementally-fed XML tokenizer.
#[derive(Debug)]
pub struct PullParser {
    /// Unconsumed tail of the stream (plus any held prefix).
    buf: String,
    /// Stream offset of `buf[0]`.
    base: u64,
    /// Consumed offset within `buf`.
    pos: usize,
    line: u32,
    column: u32,
    finished: bool,
    /// Stream offset before which bytes must be retained for
    /// [`PullParser::raw_range`] (set by [`PullParser::hold_from`]).
    hold: Option<u64>,
    /// Bytes past `pos` already probed for the current incomplete
    /// token's terminator. Makes repeated NeedMore→push→retry cycles on
    /// one large token scan only the newly pushed bytes (linear total)
    /// instead of re-scanning the whole run each time.
    probed: usize,
    /// Name table shared by every resumed lexing step, so the symbols in
    /// pulled tokens stay stable across chunk boundaries.
    interner: Interner,
    /// Accumulated lexer span counters for *accepted* tokens (rolled-back
    /// NeedMore attempts are excluded); flushed to telemetry on drop.
    spans_zero_copy: u64,
    spans_materialized: u64,
}

impl Drop for PullParser {
    fn drop(&mut self) {
        crate::lexer::record_span_stats(self.spans_zero_copy, self.spans_materialized);
    }
}

impl Default for PullParser {
    fn default() -> Self {
        PullParser::new()
    }
}

impl PullParser {
    /// Creates an empty parser; push input with [`PullParser::push_str`].
    pub fn new() -> Self {
        PullParser {
            buf: String::new(),
            base: 0,
            pos: 0,
            line: 1,
            column: 1,
            finished: false,
            hold: None,
            probed: 0,
            interner: Interner::new(),
            spans_zero_copy: 0,
            spans_materialized: 0,
        }
    }

    /// The name table the pulled tokens' symbols point into.
    pub fn interner(&self) -> &Interner {
        &self.interner
    }

    /// Creates a parser over a complete input (pushed and finished).
    /// Offsets reported by [`PullParser::stream_offset`] then index
    /// directly into `input`, and [`PullParser::raw_range`] can recover
    /// any span (one-shot parsers never compact).
    pub fn from_complete(input: &str) -> Self {
        let mut pull = PullParser::new();
        pull.hold = Some(0); // retain everything: offsets stay stable
        pull.buf.push_str(input);
        pull.finish();
        pull
    }

    /// Appends the next input chunk. Chunks may split tokens anywhere —
    /// only UTF-8 character boundaries must be respected (which `&str`
    /// guarantees by construction).
    ///
    /// # Panics
    /// Panics if called after [`PullParser::finish`].
    pub fn push_str(&mut self, chunk: &str) {
        assert!(!self.finished, "push_str after finish");
        self.compact();
        self.buf.push_str(chunk);
    }

    /// Declares end of input: pending `NeedMore` states become either
    /// final tokens or real errors on the next pull.
    pub fn finish(&mut self) {
        self.finished = true;
    }

    /// Stream offset (bytes since the start of input) of the next
    /// unconsumed character — i.e. where the next token will start.
    pub fn stream_offset(&self) -> u64 {
        self.base + self.pos as u64
    }

    /// Keeps all bytes from stream offset `from` onwards in memory so
    /// that [`PullParser::raw_range`] can return them later. Memory use
    /// grows with the held span until [`PullParser::release_hold`].
    pub fn hold_from(&mut self, from: u64) {
        debug_assert!(from >= self.base, "cannot hold already-discarded bytes");
        self.hold = Some(from);
    }

    /// Releases the hold; consumed bytes may be discarded again.
    pub fn release_hold(&mut self) {
        self.hold = None;
    }

    /// The raw input bytes between stream offsets `start` and `end`, if
    /// still buffered (guaranteed while a [`PullParser::hold_from`] at or
    /// before `start` is in place).
    pub fn raw_range(&self, start: u64, end: u64) -> Option<&str> {
        if start < self.base || end < start {
            return None;
        }
        let s = (start - self.base) as usize;
        let e = (end - self.base) as usize;
        self.buf.get(s..e)
    }

    fn compact(&mut self) {
        let hold_idx = self
            .hold
            .map(|h| h.saturating_sub(self.base) as usize)
            .unwrap_or(self.pos);
        let keep_from = self.pos.min(hold_idx);
        if keep_from >= COMPACT_THRESHOLD {
            self.buf.drain(..keep_from);
            self.base += keep_from as u64;
            self.pos -= keep_from;
        }
    }

    /// Pulls the next token.
    ///
    /// Returns [`Pulled::NeedMore`] when the remaining buffer could be a
    /// prefix of a longer token (text that may continue, markup whose
    /// closing delimiter has not arrived). After [`PullParser::finish`],
    /// the same states resolve to tokens, [`Pulled::End`], or the same
    /// errors batch lexing would report.
    // Not `Iterator::next`: pulling is fallible and three-valued
    // (token / need-more / end), which `Option<Item>` cannot express.
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> Result<Pulled, XmlError> {
        let rest = &self.buf[self.pos..];
        if rest.is_empty() {
            return Ok(if self.finished {
                Pulled::End
            } else {
                Pulled::NeedMore
            });
        }
        if !self.finished {
            if !rest.starts_with('<') {
                // A text run is only complete once the next '<' arrives:
                // both its extent and any trailing `&...;` reference may
                // continue in the next chunk. Only bytes that arrived
                // since the last probe need scanning.
                if !rest[self.probed..].contains('<') {
                    self.probed = rest.len();
                    return Ok(Pulled::NeedMore);
                }
                self.probed = 0;
            } else if MARKUP_OPENERS
                .iter()
                .any(|opener| opener.len() > rest.len() && opener.starts_with(rest))
            {
                // E.g. "<!-" — not yet distinguishable from "<!--" vs
                // "<!DOCTYPE"; lexing now would misparse.
                return Ok(Pulled::NeedMore);
            } else if let Some(delim) = unambiguous_closer(rest) {
                // Comments/CDATA/PIs end at a fixed delimiter that
                // cannot occur earlier in their content: don't re-lex
                // (and re-scan) the whole construct on every chunk —
                // probe only the newly arrived bytes for the closer.
                let mut from = self.probed.saturating_sub(delim.len() - 1);
                while !rest.is_char_boundary(from) {
                    from -= 1;
                }
                if !rest[from..].contains(delim) {
                    self.probed = rest.len();
                    return Ok(Pulled::NeedMore);
                }
                self.probed = 0;
            }
        }
        // Names interned while lexing a token that turns out to be
        // incomplete must be rolled back, or a truncated tag name would
        // occupy a symbol and chunked/batch lexing would diverge.
        let checkpoint = self.interner.len();
        let mut lexer = Lexer::with_position(rest, self.line, self.column);
        lexer.set_interner(std::mem::take(&mut self.interner));
        let outcome = lexer.next_token();
        self.interner = lexer.take_interner();
        match outcome {
            Ok(Some(spanned)) => {
                let consumed = lexer.byte_offset();
                if !self.finished
                    && consumed == rest.len()
                    && matches!(spanned.token, Token::Text { .. })
                {
                    // The text ran to the end of the buffer; it may
                    // continue in the next chunk.
                    return Ok(Pulled::NeedMore);
                }
                let (zero_copy, materialized) = lexer.span_stats();
                self.spans_zero_copy += zero_copy;
                self.spans_materialized += materialized;
                self.pos += consumed;
                self.probed = 0;
                let after = lexer.position();
                self.line = after.line;
                self.column = after.column;
                Ok(Pulled::Token(spanned))
            }
            Ok(None) => Ok(if self.finished {
                Pulled::End
            } else {
                Pulled::NeedMore
            }),
            Err(e) if !self.finished && matches!(e.kind, XmlErrorKind::UnexpectedEof { .. }) => {
                self.interner.truncate(checkpoint);
                Ok(Pulled::NeedMore)
            }
            Err(e) => Err(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::tokenize;

    /// Pulls every token, pushing `input` in `chunk`-byte pieces
    /// (respecting UTF-8 boundaries) as NeedMore demands.
    fn pull_chunked(input: &str, chunk: usize) -> Result<Vec<Token>, XmlError> {
        let mut pull = PullParser::new();
        let mut out = Vec::new();
        let mut fed = 0usize;
        loop {
            match pull.next()? {
                Pulled::Token(t) => out.push(t.token),
                Pulled::End => return Ok(out),
                Pulled::NeedMore => {
                    if fed >= input.len() {
                        pull.finish();
                        continue;
                    }
                    let mut end = (fed + chunk).min(input.len());
                    while !input.is_char_boundary(end) {
                        end += 1;
                    }
                    pull.push_str(&input[fed..end]);
                    fed = end;
                }
            }
        }
    }

    const TRICKY: &str = "<?xml version=\"1.0\"?><!DOCTYPE db [<!ELEMENT db (#PCDATA)>]>\
         <!-- head --><db owner=\"a&amp;b\"><item id='1'>x &lt; y</item>\
         <![CDATA[1<2 && 3>2]]><?app run fast?><empty/>tail \u{4e2d}\u{6587}</db>";

    #[test]
    fn chunked_pulls_equal_batch_tokenize() {
        let batch = tokenize(TRICKY).unwrap();
        for chunk in [1, 2, 3, 5, 7, 16, 64, TRICKY.len()] {
            let pulled = pull_chunked(TRICKY, chunk).unwrap();
            assert_eq!(pulled, batch, "chunk size {chunk}");
        }
    }

    #[test]
    fn multibyte_content_in_probed_constructs() {
        // The incremental terminator probe must back off to char
        // boundaries when comment/CDATA content is multibyte.
        let input = "<a><!--\u{4e2d}\u{6587}--><![CDATA[\u{65e5}\u{672c}]]>\u{d55c}\u{ad6d}</a>";
        let batch = tokenize(input).unwrap();
        for chunk in [1, 2, 3, 4, 5] {
            assert_eq!(pull_chunked(input, chunk).unwrap(), batch, "chunk {chunk}");
        }
    }

    #[test]
    fn text_waits_for_the_next_tag() {
        let mut pull = PullParser::new();
        pull.push_str("<a>part");
        assert!(matches!(pull.next().unwrap(), Pulled::Token(_))); // <a>
        assert_eq!(pull.next().unwrap(), Pulled::NeedMore);
        pull.push_str("ial</a>");
        match pull.next().unwrap() {
            Pulled::Token(t) => assert_eq!(
                t.token,
                Token::Text {
                    content: "partial".into()
                }
            ),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn entity_split_across_chunks() {
        let tokens = pull_chunked("<a>x &am", 8); // incomplete entity at EOF
        assert!(tokens.is_err(), "unterminated entity must error at finish");
        let ok = pull_chunked("<a>x &amp; y</a>", 4).unwrap();
        assert_eq!(
            ok[1],
            Token::Text {
                content: "x & y".into()
            }
        );
    }

    #[test]
    fn comment_opener_split_is_not_misparsed() {
        // "<!-" alone must not be lexed as a bad start tag.
        let mut pull = PullParser::new();
        pull.push_str("<a/><!-");
        assert!(matches!(pull.next().unwrap(), Pulled::Token(_)));
        assert_eq!(pull.next().unwrap(), Pulled::NeedMore);
        pull.push_str("- c --><b/>");
        pull.finish();
        match pull.next().unwrap() {
            Pulled::Token(t) => assert_eq!(
                t.token,
                Token::Comment {
                    content: " c ".into()
                }
            ),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn positions_continue_across_chunks() {
        let mut pull = PullParser::new();
        pull.push_str("<a>\n");
        pull.push_str("  <b>");
        pull.finish();
        pull.next().unwrap(); // <a>
        pull.next().unwrap(); // "\n  "
        match pull.next().unwrap() {
            Pulled::Token(t) => {
                assert_eq!(t.position.line, 2);
                assert_eq!(t.position.column, 3);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn errors_match_batch_lexing_after_finish() {
        let err = pull_chunked("<a><!-- oops", 3).unwrap_err();
        assert!(matches!(err.kind, XmlErrorKind::UnexpectedEof { .. }));
        let err = pull_chunked("<a x=\"1\" x=\"2\"/>", 2).unwrap_err();
        assert!(matches!(err.kind, XmlErrorKind::DuplicateAttribute { .. }));
    }

    #[test]
    fn stream_offsets_and_raw_range() {
        let input = "<db><book>x</book></db>";
        let mut pull = PullParser::from_complete(input);
        pull.next().unwrap(); // <db>
        let start = pull.stream_offset();
        assert_eq!(start, 4);
        pull.next().unwrap(); // <book>
        pull.next().unwrap(); // x
        pull.next().unwrap(); // </book>
        let end = pull.stream_offset();
        assert_eq!(pull.raw_range(start, end), Some("<book>x</book>"));
    }

    #[test]
    fn hold_preserves_bytes_across_compaction() {
        let mut pull = PullParser::new();
        let filler = format!("<filler>{}</filler>", "y".repeat(2 * COMPACT_THRESHOLD));
        pull.push_str("<db>");
        pull.push_str(&filler);
        // Consume <db>, <filler>, text, </filler> so the filler bytes
        // become reclaimable.
        for _ in 0..4 {
            assert!(matches!(pull.next().unwrap(), Pulled::Token(_)));
        }
        let start = pull.stream_offset();
        pull.hold_from(start);
        pull.push_str("<a>kept</a>"); // would compact without the hold
        pull.push_str("</db>");
        pull.finish();
        for _ in 0..3 {
            assert!(matches!(pull.next().unwrap(), Pulled::Token(_))); // <a>, kept, </a>
        }
        let end = pull.stream_offset();
        assert_eq!(pull.raw_range(start, end), Some("<a>kept</a>"));
        pull.release_hold();
    }

    #[test]
    fn compaction_bounds_memory() {
        let mut pull = PullParser::new();
        let record = "<r>0123456789</r>";
        for _ in 0..20_000 {
            pull.push_str(record);
            loop {
                match pull.next().unwrap() {
                    Pulled::Token(_) => {}
                    Pulled::NeedMore => break,
                    Pulled::End => unreachable!(),
                }
            }
        }
        assert!(
            pull.buf.capacity() < 4 * COMPACT_THRESHOLD,
            "buffer grew unbounded: {}",
            pull.buf.capacity()
        );
    }

    #[test]
    fn end_is_sticky() {
        let mut pull = PullParser::from_complete("<a/>");
        assert!(matches!(pull.next().unwrap(), Pulled::Token(_)));
        assert_eq!(pull.next().unwrap(), Pulled::End);
        assert_eq!(pull.next().unwrap(), Pulled::End);
    }
}
