//! XML substrate for WmXML.
//!
//! The WmXML paper's architecture (its Fig. 4) sits on top of an "XML
//! query engine" with full read/write access to documents. This crate is
//! the storage half of that engine: a from-scratch, dependency-free XML
//! processor with
//!
//! * a streaming [tokenizer](lexer) and recursive-descent [parser](mod@parser)
//!   for the XML 1.0 subset the system needs (elements, attributes, text,
//!   CDATA, comments, processing instructions, numeric/named character
//!   references, doctype skipping);
//! * a resumable [pull-token interface](pull) over the tokenizer
//!   ([`PullParser`]) that accepts input in arbitrary chunks with bounded
//!   memory — the foundation of the `wmx-stream` single-pass engine;
//! * a per-document [string interner](intern) ([`Sym`], [`Interner`]):
//!   element/attribute/PI names are interned once at lex time, name
//!   comparisons are integer compares, and the DOM stores 4-byte symbols
//!   instead of owned strings;
//! * an arena-based mutable [DOM](dom) ([`Document`], [`NodeId`]) with
//!   ordered children, attribute access, structural editing, and a
//!   lazily built, mutation-invalidated [`NameIndex`] (symbol → elements
//!   in document order) that the XPath engine queries instead of
//!   re-traversing the tree — the watermark encoder rewrites values and
//!   reorders siblings in place;
//! * [serializers](serialize) (compact, pretty, canonical) — the
//!   canonical form gives a stable byte representation used for document
//!   comparison in tests and experiments;
//! * a fluent [builder](build) used by the dataset generators.
//!
//! # Example
//!
//! ```
//! use wmx_xml::{parse, serialize::to_string};
//!
//! let doc = parse("<db><book year='1998'><title>DB Design</title></book></db>").unwrap();
//! let root = doc.root_element().unwrap();
//! let book = doc.first_child_element(root, "book").unwrap();
//! assert_eq!(doc.attribute(book, "year"), Some("1998"));
//! assert_eq!(to_string(&doc), "<db><book year=\"1998\"><title>DB Design</title></book></db>");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod build;
pub mod dom;
pub mod error;
pub mod escape;
pub mod intern;
pub mod lexer;
pub mod parser;
pub mod pull;
pub mod scan;
pub mod serialize;
pub mod text;
pub mod token;

pub use build::ElementBuilder;
pub use dom::{Attribute, Document, NameIndex, NodeId, NodeKind};
pub use error::{XmlError, XmlErrorKind};
pub use intern::{Interner, Sym};
pub use parser::{
    parse, parse_owned, parse_seeded, parse_seeded_owned, parse_with_options, ParseOptions,
};
pub use pull::{PullParser, Pulled};
pub use serialize::{
    node_to_string, to_canonical_string, to_pretty_string, to_string, write_document,
    write_document_pretty,
};
pub use text::XmlText;
pub use token::{SpannedToken, SymAttribute, Token, TokenAttribute};
