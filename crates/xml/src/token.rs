//! Token model produced by the [lexer](crate::lexer).
//!
//! Tag and attribute names are interned at lex time: [`Token::StartTag`],
//! [`Token::EndTag`], and [`SymAttribute`] carry [`Sym`] handles into the
//! lexer's [`Interner`](crate::intern::Interner) (which the tree parser
//! later installs into the built [`Document`](crate::Document), so DOM
//! construction never re-hashes a name). Symbol assignment is
//! deterministic in first-occurrence order, so tokenizing the same input
//! — batched or chunked through the pull parser — yields identical
//! tokens. Consumers that need owned name strings resolve through the
//! producing lexer/pull-parser's interner ([`SymAttribute::resolve`]).
//!
//! Text runs, CDATA content, and attribute values are [`XmlText`]:
//! zero-copy spans into the parse buffer when lexing from an owned
//! input and the run needs no unescaping, owned strings otherwise.
//! `XmlText` compares by content, so token equality is
//! representation-blind.

use crate::error::Position;
use crate::intern::{Interner, Sym};
use crate::text::XmlText;

/// An attribute as it appears in a start tag: interned name, value
/// already unescaped. The wire form inside [`Token::StartTag`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SymAttribute {
    /// Attribute name, interned in the producing lexer's table.
    pub name: Sym,
    /// Unescaped attribute value.
    pub value: XmlText,
}

impl SymAttribute {
    /// Resolves into the owned-name compat form.
    pub fn resolve(&self, interner: &Interner) -> TokenAttribute {
        TokenAttribute {
            name: interner.resolve(self.name).to_string(),
            value: self.value.as_str().to_string(),
        }
    }
}

/// An attribute with an owned (resolved) name — the compat form used at
/// API boundaries that outlive the producing interner (e.g. the
/// streaming reader's root-start event).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TokenAttribute {
    /// Attribute name.
    pub name: String,
    /// Unescaped attribute value.
    pub value: String,
}

/// One lexical event in the document stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Token {
    /// `<?xml version="1.0" ...?>`
    XmlDecl {
        /// Raw content between `<?xml` and `?>`.
        content: String,
    },
    /// `<!DOCTYPE ...>` — content is kept verbatim but not interpreted.
    Doctype {
        /// Raw content between `<!DOCTYPE` and the matching `>`.
        content: String,
    },
    /// `<name attr="v" ...>` or `<name ... />`.
    StartTag {
        /// Element name, interned.
        name: Sym,
        /// Attributes in document order.
        attributes: Vec<SymAttribute>,
        /// Whether the tag was self-closing (`/>`).
        self_closing: bool,
    },
    /// `</name>`.
    EndTag {
        /// Element name, interned.
        name: Sym,
    },
    /// Character data between tags, unescaped. Adjacent text/CDATA runs
    /// are *not* merged by the lexer; the parser merges them.
    Text {
        /// Unescaped text — a zero-copy span when no reference appeared.
        content: XmlText,
    },
    /// `<![CDATA[...]]>` content (never contains `]]>`).
    CData {
        /// Verbatim CDATA content — a zero-copy span when possible.
        content: XmlText,
    },
    /// `<!-- ... -->`.
    Comment {
        /// Verbatim comment body.
        content: String,
    },
    /// `<?target data?>`.
    ProcessingInstruction {
        /// PI target.
        target: String,
        /// PI data (may be empty).
        data: String,
    },
}

/// A token plus the source position where it started.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpannedToken {
    /// The token.
    pub token: Token,
    /// Position of the token's first character.
    pub position: Position,
}
