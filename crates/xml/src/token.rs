//! Token model produced by the [lexer](crate::lexer).

use crate::error::Position;

/// An attribute as it appears in a start tag, value already unescaped.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TokenAttribute {
    /// Attribute name.
    pub name: String,
    /// Unescaped attribute value.
    pub value: String,
}

/// One lexical event in the document stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Token {
    /// `<?xml version="1.0" ...?>`
    XmlDecl {
        /// Raw content between `<?xml` and `?>`.
        content: String,
    },
    /// `<!DOCTYPE ...>` — content is kept verbatim but not interpreted.
    Doctype {
        /// Raw content between `<!DOCTYPE` and the matching `>`.
        content: String,
    },
    /// `<name attr="v" ...>` or `<name ... />`.
    StartTag {
        /// Element name.
        name: String,
        /// Attributes in document order.
        attributes: Vec<TokenAttribute>,
        /// Whether the tag was self-closing (`/>`).
        self_closing: bool,
    },
    /// `</name>`.
    EndTag {
        /// Element name.
        name: String,
    },
    /// Character data between tags, unescaped. Adjacent text/CDATA runs
    /// are *not* merged by the lexer; the parser merges them.
    Text {
        /// Unescaped text.
        content: String,
    },
    /// `<![CDATA[...]]>` content (never contains `]]>`).
    CData {
        /// Verbatim CDATA content.
        content: String,
    },
    /// `<!-- ... -->`.
    Comment {
        /// Verbatim comment body.
        content: String,
    },
    /// `<?target data?>`.
    ProcessingInstruction {
        /// PI target.
        target: String,
        /// PI data (may be empty).
        data: String,
    },
}

/// A token plus the source position where it started.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpannedToken {
    /// The token.
    pub token: Token,
    /// Position of the token's first character.
    pub position: Position,
}
