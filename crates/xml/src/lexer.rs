//! Streaming XML tokenizer.
//!
//! Converts input text into a stream of [`Token`]s, tracking line/column
//! positions for error reporting. The lexer performs attribute-value and
//! text unescaping so downstream stages see logical strings.
//!
//! Tag and attribute names are interned into the lexer's [`Interner`] as
//! they are read — one hash per occurrence, no per-name `String`
//! allocation — and tokens carry [`crate::intern::Sym`] handles. The
//! tree parser moves the lexer's table into the finished
//! [`Document`](crate::Document); the pull parser threads one table
//! across resumed lexing so symbols stay stable over chunk boundaries.

use crate::error::{Position, XmlError, XmlErrorKind};
use crate::escape::unescape;
use crate::intern::{Interner, Sym};
use crate::token::{SpannedToken, SymAttribute, Token};

/// Returns whether `c` may start an XML name.
pub fn is_name_start(c: char) -> bool {
    c.is_alphabetic() || c == '_' || c == ':'
}

/// Returns whether `c` may continue an XML name.
pub fn is_name_char(c: char) -> bool {
    is_name_start(c) || c.is_ascii_digit() || c == '-' || c == '.'
}

/// Validates a complete XML name.
pub fn is_valid_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if is_name_start(c) => {}
        _ => return false,
    }
    chars.all(is_name_char)
}

/// The streaming tokenizer. Iterate with [`Lexer::next_token`].
pub struct Lexer<'a> {
    input: &'a str,
    /// Byte offset of the next unread character.
    offset: usize,
    line: u32,
    column: u32,
    /// Name table the produced tokens' symbols point into.
    interner: Interner,
}

impl<'a> Lexer<'a> {
    /// Creates a lexer over `input` with a fresh name table.
    pub fn new(input: &'a str) -> Self {
        Lexer::with_position(input, 1, 1)
    }

    /// Creates a lexer over `input` that reports positions as if the
    /// first character of `input` were at `line`:`column`. This is what
    /// lets [`crate::pull::PullParser`] resume lexing mid-stream while
    /// keeping error positions accurate.
    pub fn with_position(input: &'a str, line: u32, column: u32) -> Self {
        Lexer {
            input,
            offset: 0,
            line,
            column,
            interner: Interner::new(),
        }
    }

    /// The name table behind the tokens produced so far.
    pub fn interner(&self) -> &Interner {
        &self.interner
    }

    /// Mutable access to the name table (the tree parser interns PI
    /// targets through this before taking the table over).
    pub fn interner_mut(&mut self) -> &mut Interner {
        &mut self.interner
    }

    /// Replaces the lexer's name table (resumed lexing: the pull parser
    /// hands the accumulated table to each transient lexer so symbols
    /// stay stable across chunks).
    pub fn set_interner(&mut self, interner: Interner) {
        self.interner = interner;
    }

    /// Takes the name table out of the lexer, leaving an empty one. The
    /// tree parser installs the taken table into the built document.
    pub fn take_interner(&mut self) -> Interner {
        std::mem::take(&mut self.interner)
    }

    /// Current position (of the next unread character).
    pub fn position(&self) -> Position {
        Position {
            line: self.line,
            column: self.column,
        }
    }

    /// Byte offset (into the input slice) of the next unread character.
    /// Everything before this offset has been consumed by tokens already
    /// returned from [`Lexer::next_token`].
    pub fn byte_offset(&self) -> usize {
        self.offset
    }

    fn rest(&self) -> &'a str {
        &self.input[self.offset..]
    }

    fn peek(&self) -> Option<char> {
        self.rest().chars().next()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek()?;
        self.offset += c.len_utf8();
        if c == '\n' {
            self.line += 1;
            self.column = 1;
        } else {
            self.column += 1;
        }
        Some(c)
    }

    fn bump_n(&mut self, n: usize) {
        for _ in 0..n {
            self.bump();
        }
    }

    fn starts_with(&self, s: &str) -> bool {
        self.rest().starts_with(s)
    }

    fn error(&self, kind: XmlErrorKind) -> XmlError {
        XmlError::at(kind, self.line, self.column)
    }

    fn eof_error(&self, while_parsing: &'static str) -> XmlError {
        self.error(XmlErrorKind::UnexpectedEof { while_parsing })
    }

    fn skip_whitespace(&mut self) {
        while matches!(self.peek(), Some(c) if c.is_whitespace()) {
            self.bump();
        }
    }

    /// Scans one XML name, returning its byte span in the input.
    fn name_span(&mut self) -> Result<(usize, usize), XmlError> {
        let start = self.offset;
        match self.peek() {
            Some(c) if is_name_start(c) => {
                self.bump();
            }
            Some(c) => {
                return Err(self.error(XmlErrorKind::UnexpectedChar {
                    found: c,
                    expected: "a name start character",
                }))
            }
            None => return Err(self.eof_error("a name")),
        }
        while matches!(self.peek(), Some(c) if is_name_char(c)) {
            self.bump();
        }
        Ok((start, self.offset))
    }

    fn read_name(&mut self) -> Result<String, XmlError> {
        let (start, end) = self.name_span()?;
        Ok(self.input[start..end].to_string())
    }

    /// Reads a name and interns it — no allocation for repeated names.
    fn read_name_sym(&mut self) -> Result<Sym, XmlError> {
        let (start, end) = self.name_span()?;
        Ok(self.interner.intern(&self.input[start..end]))
    }

    /// Reads text up to (not including) `delim`, consuming the delimiter.
    /// Returns the raw slice before the delimiter.
    fn read_until(&mut self, delim: &str, context: &'static str) -> Result<&'a str, XmlError> {
        match self.rest().find(delim) {
            Some(idx) => {
                let raw = &self.rest()[..idx];
                self.bump_n(raw.chars().count() + delim.chars().count());
                Ok(raw)
            }
            None => Err(self.eof_error(context)),
        }
    }

    /// Produces the next token, or `None` at end of input.
    pub fn next_token(&mut self) -> Result<Option<SpannedToken>, XmlError> {
        if self.rest().is_empty() {
            return Ok(None);
        }
        let position = self.position();
        let token = if self.starts_with("<") {
            self.lex_markup()?
        } else {
            self.lex_text()?
        };
        Ok(Some(SpannedToken { token, position }))
    }

    fn lex_text(&mut self) -> Result<Token, XmlError> {
        let (line, column) = (self.line, self.column);
        let raw = match self.rest().find('<') {
            Some(idx) => {
                let raw = &self.rest()[..idx];
                self.bump_n(raw.chars().count());
                raw
            }
            None => {
                let raw = self.rest();
                self.bump_n(raw.chars().count());
                raw
            }
        };
        Ok(Token::Text {
            content: unescape(raw, line, column)?,
        })
    }

    fn lex_markup(&mut self) -> Result<Token, XmlError> {
        debug_assert!(self.starts_with("<"));
        if self.starts_with("<!--") {
            self.bump_n(4);
            let content = self.read_until("-->", "a comment")?;
            return Ok(Token::Comment {
                content: content.to_string(),
            });
        }
        if self.starts_with("<![CDATA[") {
            self.bump_n(9);
            let content = self.read_until("]]>", "a CDATA section")?;
            return Ok(Token::CData {
                content: content.to_string(),
            });
        }
        if self.starts_with("<!DOCTYPE") || self.starts_with("<!doctype") {
            self.bump_n(9);
            return self.lex_doctype();
        }
        if self.starts_with("<?") {
            self.bump_n(2);
            return self.lex_pi();
        }
        if self.starts_with("</") {
            self.bump_n(2);
            let name = self.read_name_sym()?;
            self.skip_whitespace();
            match self.bump() {
                Some('>') => return Ok(Token::EndTag { name }),
                Some(c) => {
                    return Err(self.error(XmlErrorKind::UnexpectedChar {
                        found: c,
                        expected: "'>' closing an end tag",
                    }))
                }
                None => return Err(self.eof_error("an end tag")),
            }
        }
        // Plain start tag.
        self.bump();
        self.lex_start_tag()
    }

    fn lex_doctype(&mut self) -> Result<Token, XmlError> {
        // Content may contain an internal subset in [...]; track nesting
        // of '<'/'>' and bracket state.
        let start = self.offset;
        let mut depth = 1usize;
        let mut in_bracket = false;
        loop {
            match self.bump() {
                Some('[') => in_bracket = true,
                Some(']') => in_bracket = false,
                Some('<') if !in_bracket => depth += 1,
                Some('>') if !in_bracket => {
                    depth -= 1;
                    if depth == 0 {
                        let end = self.offset - 1;
                        return Ok(Token::Doctype {
                            content: self.input[start..end].trim().to_string(),
                        });
                    }
                }
                Some(_) => {}
                None => return Err(self.eof_error("a DOCTYPE declaration")),
            }
        }
    }

    fn lex_pi(&mut self) -> Result<Token, XmlError> {
        let target = self.read_name()?;
        let data = if matches!(self.peek(), Some(c) if c.is_whitespace()) {
            self.skip_whitespace();
            self.read_until("?>", "a processing instruction")?
                .trim_end()
                .to_string()
        } else {
            if !self.starts_with("?>") {
                return Err(match self.peek() {
                    Some(c) => self.error(XmlErrorKind::UnexpectedChar {
                        found: c,
                        expected: "whitespace or '?>' in a processing instruction",
                    }),
                    None => self.eof_error("a processing instruction"),
                });
            }
            self.bump_n(2);
            String::new()
        };
        if target.eq_ignore_ascii_case("xml") {
            return Ok(Token::XmlDecl { content: data });
        }
        Ok(Token::ProcessingInstruction { target, data })
    }

    fn lex_start_tag(&mut self) -> Result<Token, XmlError> {
        let name = self.read_name_sym()?;
        let mut attributes = Vec::new();
        loop {
            let had_space = matches!(self.peek(), Some(c) if c.is_whitespace());
            self.skip_whitespace();
            match self.peek() {
                Some('>') => {
                    self.bump();
                    return Ok(Token::StartTag {
                        name,
                        attributes,
                        self_closing: false,
                    });
                }
                Some('/') => {
                    self.bump();
                    match self.bump() {
                        Some('>') => {
                            return Ok(Token::StartTag {
                                name,
                                attributes,
                                self_closing: true,
                            })
                        }
                        Some(c) => {
                            return Err(self.error(XmlErrorKind::UnexpectedChar {
                                found: c,
                                expected: "'>' after '/' in a self-closing tag",
                            }))
                        }
                        None => return Err(self.eof_error("a self-closing tag")),
                    }
                }
                Some(c) if is_name_start(c) => {
                    if !had_space {
                        return Err(self.error(XmlErrorKind::UnexpectedChar {
                            found: c,
                            expected: "whitespace before an attribute",
                        }));
                    }
                    let attr = self.lex_attribute()?;
                    if attributes
                        .iter()
                        .any(|a: &SymAttribute| a.name == attr.name)
                    {
                        return Err(self.error(XmlErrorKind::DuplicateAttribute {
                            name: self.interner.resolve(attr.name).to_string(),
                        }));
                    }
                    attributes.push(attr);
                }
                Some(c) => {
                    return Err(self.error(XmlErrorKind::UnexpectedChar {
                        found: c,
                        expected: "an attribute, '>', or '/>'",
                    }))
                }
                None => return Err(self.eof_error("a start tag")),
            }
        }
    }

    fn lex_attribute(&mut self) -> Result<SymAttribute, XmlError> {
        let name = self.read_name_sym()?;
        self.skip_whitespace();
        match self.bump() {
            Some('=') => {}
            Some(c) => {
                return Err(self.error(XmlErrorKind::UnexpectedChar {
                    found: c,
                    expected: "'=' after an attribute name",
                }))
            }
            None => return Err(self.eof_error("an attribute")),
        }
        self.skip_whitespace();
        let quote = match self.bump() {
            Some(q @ ('"' | '\'')) => q,
            Some(c) => {
                return Err(self.error(XmlErrorKind::UnexpectedChar {
                    found: c,
                    expected: "a quoted attribute value",
                }))
            }
            None => return Err(self.eof_error("an attribute value")),
        };
        let (line, column) = (self.line, self.column);
        let raw = match quote {
            '"' => self.read_until("\"", "an attribute value")?,
            _ => self.read_until("'", "an attribute value")?,
        };
        if raw.contains('<') {
            return Err(XmlError::at(
                XmlErrorKind::UnexpectedChar {
                    found: '<',
                    expected: "no raw '<' inside an attribute value",
                },
                line,
                column,
            ));
        }
        Ok(SymAttribute {
            name,
            value: unescape(raw, line, column)?,
        })
    }
}

/// Tokenizes the whole input eagerly. Convenience for tests — symbol
/// assignment is deterministic, so token sequences from the same input
/// compare equal across lexers.
pub fn tokenize(input: &str) -> Result<Vec<Token>, XmlError> {
    Ok(tokenize_with_interner(input)?.0)
}

/// Tokenizes the whole input and returns the name table the tokens'
/// symbols point into.
pub fn tokenize_with_interner(input: &str) -> Result<(Vec<Token>, Interner), XmlError> {
    let mut lexer = Lexer::new(input);
    let mut out = Vec::new();
    while let Some(spanned) = lexer.next_token()? {
        out.push(spanned.token);
    }
    Ok((out, lexer.take_interner()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_element() {
        let (tokens, names) = tokenize_with_interner("<a>hi</a>").unwrap();
        let a = names.lookup("a").unwrap();
        assert_eq!(
            tokens,
            vec![
                Token::StartTag {
                    name: a,
                    attributes: vec![],
                    self_closing: false
                },
                Token::Text {
                    content: "hi".into()
                },
                Token::EndTag { name: a },
            ]
        );
    }

    #[test]
    fn attributes_both_quote_styles() {
        let (tokens, names) =
            tokenize_with_interner(r#"<book publisher="mkp" year='1998'/>"#).unwrap();
        match &tokens[0] {
            Token::StartTag {
                name,
                attributes,
                self_closing,
            } => {
                assert_eq!(names.resolve(*name), "book");
                assert!(*self_closing);
                assert_eq!(attributes.len(), 2);
                assert_eq!(names.resolve(attributes[0].name), "publisher");
                assert_eq!(attributes[0].value, "mkp");
                assert_eq!(names.resolve(attributes[1].name), "year");
                assert_eq!(attributes[1].value, "1998");
                // Resolution into the owned compat form.
                let resolved = attributes[0].resolve(&names);
                assert_eq!(resolved.name, "publisher");
                assert_eq!(resolved.value, "mkp");
            }
            other => panic!("unexpected token {other:?}"),
        }
    }

    #[test]
    fn repeated_names_share_symbols() {
        let (tokens, names) = tokenize_with_interner("<r><r/><r></r></r>").unwrap();
        let r = names.lookup("r").unwrap();
        let mut tags = 0;
        for t in &tokens {
            match t {
                Token::StartTag { name, .. } | Token::EndTag { name } => {
                    assert_eq!(*name, r);
                    tags += 1;
                }
                other => panic!("unexpected token {other:?}"),
            }
        }
        assert_eq!(tags, 5);
        assert_eq!(names.len(), 1);
    }

    #[test]
    fn attribute_values_unescaped() {
        let tokens = tokenize(r#"<a t="a&amp;b &#65;"/>"#).unwrap();
        match &tokens[0] {
            Token::StartTag { attributes, .. } => assert_eq!(attributes[0].value, "a&b A"),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn duplicate_attribute_rejected() {
        let err = tokenize(r#"<a x="1" x="2"/>"#).unwrap_err();
        assert!(matches!(err.kind, XmlErrorKind::DuplicateAttribute { .. }));
    }

    #[test]
    fn comment_cdata_pi_doctype() {
        let (tokens, names) = tokenize_with_interner(
            "<?xml version=\"1.0\"?><!DOCTYPE db SYSTEM \"x.dtd\"><!-- note --><db><![CDATA[1<2]]><?app run?></db>",
        )
        .unwrap();
        let db = names.lookup("db").unwrap();
        assert_eq!(
            tokens,
            vec![
                Token::XmlDecl {
                    content: "version=\"1.0\"".into()
                },
                Token::Doctype {
                    content: "db SYSTEM \"x.dtd\"".into()
                },
                Token::Comment {
                    content: " note ".into()
                },
                Token::StartTag {
                    name: db,
                    attributes: vec![],
                    self_closing: false
                },
                Token::CData {
                    content: "1<2".into()
                },
                Token::ProcessingInstruction {
                    target: "app".into(),
                    data: "run".into()
                },
                Token::EndTag { name: db },
            ]
        );
    }

    #[test]
    fn doctype_with_internal_subset() {
        let tokens = tokenize("<!DOCTYPE db [<!ELEMENT db (#PCDATA)>]><db/>").unwrap();
        assert!(matches!(&tokens[0], Token::Doctype { content } if content.contains("ELEMENT")));
    }

    #[test]
    fn text_entities_resolved() {
        let tokens = tokenize("<a>1 &lt; 2 &amp;&amp; 3 &gt; 2</a>").unwrap();
        assert_eq!(
            tokens[1],
            Token::Text {
                content: "1 < 2 && 3 > 2".into()
            }
        );
    }

    #[test]
    fn unterminated_comment_errors_with_position() {
        let err = tokenize("<a><!-- oops").unwrap_err();
        assert!(matches!(err.kind, XmlErrorKind::UnexpectedEof { .. }));
        assert!(err.position.is_some());
    }

    #[test]
    fn position_tracking_across_lines() {
        let mut lexer = Lexer::new("<a>\n  <b>");
        lexer.next_token().unwrap(); // <a>
        lexer.next_token().unwrap(); // text "\n  "
        let spanned = lexer.next_token().unwrap().unwrap();
        assert_eq!(spanned.position.line, 2);
        assert_eq!(spanned.position.column, 3);
    }

    #[test]
    fn raw_lt_in_attribute_rejected() {
        assert!(tokenize("<a x=\"a<b\"/>").is_err());
    }

    #[test]
    fn missing_attribute_space_rejected() {
        assert!(tokenize("<a x=\"1\"y=\"2\"/>").is_err());
    }

    #[test]
    fn invalid_name_start_rejected() {
        assert!(tokenize("<1a/>").is_err());
        assert!(tokenize("</ a>").is_err());
    }

    #[test]
    fn pi_without_data() {
        let tokens = tokenize("<?flush?><a/>").unwrap();
        assert_eq!(
            tokens[0],
            Token::ProcessingInstruction {
                target: "flush".into(),
                data: String::new()
            }
        );
    }

    #[test]
    fn name_validation() {
        assert!(is_valid_name("book"));
        assert!(is_valid_name("_private"));
        assert!(is_valid_name("ns:tag"));
        assert!(is_valid_name("a-b.c2"));
        assert!(!is_valid_name(""));
        assert!(!is_valid_name("2fast"));
        assert!(!is_valid_name("has space"));
    }

    #[test]
    fn multibyte_content() {
        let tokens = tokenize("<a>München – résumé 中文</a>").unwrap();
        assert_eq!(
            tokens[1],
            Token::Text {
                content: "München – résumé 中文".into()
            }
        );
    }
}
