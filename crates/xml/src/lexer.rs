//! Streaming XML tokenizer.
//!
//! Converts input text into a stream of [`Token`]s, tracking line/column
//! positions for error reporting. The lexer performs attribute-value and
//! text unescaping so downstream stages see logical strings.
//!
//! The scan loop is byte-level: structural delimiters (`<`, `&`, quotes,
//! `>`) are hunted with the SWAR skip loops in [`crate::scan`], whole
//! text/attr-value/name runs are consumed as `&[u8]` spans, and UTF-8 is
//! decoded only at validation boundaries (non-ASCII name characters,
//! non-ASCII whitespace). Line/column bookkeeping is restored lazily —
//! one [`scan::advance_position`] call per consumed span instead of one
//! update per character.
//!
//! Tag and attribute names are interned into the lexer's [`Interner`] as
//! they are read — one hash per occurrence, no per-name `String`
//! allocation — and tokens carry [`crate::intern::Sym`] handles. The
//! tree parser moves the lexer's table into the finished
//! [`Document`](crate::Document); the pull parser threads one table
//! across resumed lexing so symbols stay stable over chunk boundaries.
//!
//! When constructed over a shared input buffer ([`Lexer::from_shared`]),
//! escape-free text runs, CDATA sections, and attribute values come out
//! as zero-copy [`XmlText::Shared`] spans into that buffer; the
//! `lexer.text_spans_zero_copy` / `lexer.text_spans_materialized`
//! telemetry counters record the hit rate.

use crate::error::{Position, XmlError, XmlErrorKind};
use crate::escape::unescape;
use crate::intern::{Interner, Sym};
use crate::scan;
use crate::text::XmlText;
use crate::token::{SpannedToken, SymAttribute, Token};
use std::sync::Arc;

/// Returns whether `c` may start an XML name.
pub fn is_name_start(c: char) -> bool {
    c.is_alphabetic() || c == '_' || c == ':'
}

/// Returns whether `c` may continue an XML name.
pub fn is_name_char(c: char) -> bool {
    is_name_start(c) || c.is_ascii_digit() || c == '-' || c == '.'
}

/// Validates a complete XML name. Bytewise over the ASCII name set,
/// decoding only non-ASCII scalars.
pub fn is_valid_name(name: &str) -> bool {
    let bytes = name.as_bytes();
    if bytes.is_empty() {
        return false;
    }
    let mut i = 0;
    let mut first = true;
    while i < bytes.len() {
        let b = bytes[i];
        if b < 0x80 {
            let ok = if first {
                scan::is_ascii_name_start_byte(b)
            } else {
                scan::is_ascii_name_byte(b)
            };
            if !ok {
                return false;
            }
            i += 1;
        } else {
            let Some(c) = scan::char_at(name, i) else {
                return false;
            };
            let ok = if first {
                is_name_start(c)
            } else {
                is_name_char(c)
            };
            if !ok {
                return false;
            }
            i += c.len_utf8();
        }
        first = false;
    }
    true
}

/// Flushes accumulated span counters onto the process-wide telemetry
/// registry. Called once per completed parse (and on pull-parser drop),
/// never per token.
pub(crate) fn record_span_stats(zero_copy: u64, materialized: u64) {
    use std::sync::OnceLock;
    static ZERO_COPY: OnceLock<Arc<wmx_telemetry::Counter>> = OnceLock::new();
    static MATERIALIZED: OnceLock<Arc<wmx_telemetry::Counter>> = OnceLock::new();
    if zero_copy > 0 {
        ZERO_COPY
            .get_or_init(|| wmx_telemetry::global().counter("lexer.text_spans_zero_copy"))
            .add(zero_copy);
    }
    if materialized > 0 {
        MATERIALIZED
            .get_or_init(|| wmx_telemetry::global().counter("lexer.text_spans_materialized"))
            .add(materialized);
    }
}

/// The streaming tokenizer. Iterate with [`Lexer::next_token`].
pub struct Lexer<'a> {
    input: &'a str,
    /// Byte offset of the next unread byte.
    offset: usize,
    line: u32,
    column: u32,
    /// Name table the produced tokens' symbols point into.
    interner: Interner,
    /// When lexing from an owned shared buffer (`input` is exactly
    /// `&backing[..]`), escape-free runs become zero-copy spans.
    backing: Option<Arc<String>>,
    /// Text-ish spans (text, CDATA, attr values) emitted zero-copy.
    spans_zero_copy: u64,
    /// Text-ish spans that had to be copied or unescaped.
    spans_materialized: u64,
}

impl<'a> Lexer<'a> {
    /// Creates a lexer over `input` with a fresh name table.
    pub fn new(input: &'a str) -> Self {
        Lexer::with_position(input, 1, 1)
    }

    /// Creates a lexer over a shared input buffer. Escape-free text
    /// runs, CDATA sections, and attribute values are produced as
    /// zero-copy [`XmlText::Shared`] spans into `buf`.
    pub fn from_shared(buf: &'a Arc<String>) -> Self {
        let mut lexer = Lexer::with_position(buf.as_str(), 1, 1);
        lexer.backing = Some(Arc::clone(buf));
        lexer
    }

    /// Creates a lexer over `input` that reports positions as if the
    /// first character of `input` were at `line`:`column`. This is what
    /// lets [`crate::pull::PullParser`] resume lexing mid-stream while
    /// keeping error positions accurate.
    pub fn with_position(input: &'a str, line: u32, column: u32) -> Self {
        Lexer {
            input,
            offset: 0,
            line,
            column,
            interner: Interner::new(),
            backing: None,
            spans_zero_copy: 0,
            spans_materialized: 0,
        }
    }

    /// The name table behind the tokens produced so far.
    pub fn interner(&self) -> &Interner {
        &self.interner
    }

    /// Mutable access to the name table (the tree parser interns PI
    /// targets through this before taking the table over).
    pub fn interner_mut(&mut self) -> &mut Interner {
        &mut self.interner
    }

    /// Replaces the lexer's name table (resumed lexing: the pull parser
    /// hands the accumulated table to each transient lexer so symbols
    /// stay stable across chunks).
    pub fn set_interner(&mut self, interner: Interner) {
        self.interner = interner;
    }

    /// Takes the name table out of the lexer, leaving an empty one. The
    /// tree parser installs the taken table into the built document.
    pub fn take_interner(&mut self) -> Interner {
        std::mem::take(&mut self.interner)
    }

    /// Current position (of the next unread character).
    pub fn position(&self) -> Position {
        Position {
            line: self.line,
            column: self.column,
        }
    }

    /// Byte offset (into the input slice) of the next unread character.
    /// Everything before this offset has been consumed by tokens already
    /// returned from [`Lexer::next_token`].
    pub fn byte_offset(&self) -> usize {
        self.offset
    }

    /// `(zero_copy, materialized)` span counts accumulated so far.
    /// Unread bytes left in the input. The tree builder uses this to
    /// pre-size the node arena before the first token.
    pub(crate) fn remaining_len(&self) -> usize {
        self.input.len() - self.offset
    }

    pub(crate) fn span_stats(&self) -> (u64, u64) {
        (self.spans_zero_copy, self.spans_materialized)
    }

    fn rest(&self) -> &'a str {
        &self.input[self.offset..]
    }

    #[inline]
    fn peek_byte(&self) -> Option<u8> {
        self.input.as_bytes().get(self.offset).copied()
    }

    fn peek_char(&self) -> Option<char> {
        scan::char_at(self.input, self.offset)
    }

    /// Consumes one scalar, maintaining line/column. Used on cold paths
    /// (single structural characters); spans go through
    /// [`Lexer::advance_over`].
    fn bump(&mut self) -> Option<char> {
        let c = self.peek_char()?;
        self.offset += c.len_utf8();
        if c == '\n' {
            self.line += 1;
            self.column = 1;
        } else {
            self.column += 1;
        }
        Some(c)
    }

    /// Consumes `len` bytes in one step, updating line/column from the
    /// span contents lazily (one pass, not one update per char).
    fn advance_over(&mut self, len: usize) {
        let span = &self.input.as_bytes()[self.offset..self.offset + len];
        scan::advance_position(span, &mut self.line, &mut self.column);
        self.offset += len;
    }

    /// Consumes `len` bytes known to be newline-free ASCII (structural
    /// markers like `<`, `</`, `<!--`). Column math is inline — no span
    /// re-scan for bytes whose width and line effect are fixed.
    #[inline]
    fn advance_ascii(&mut self, len: usize) {
        self.offset += len;
        self.column += len as u32;
    }

    fn starts_with(&self, s: &str) -> bool {
        self.rest().starts_with(s)
    }

    fn error(&self, kind: XmlErrorKind) -> XmlError {
        XmlError::at(kind, self.line, self.column)
    }

    fn eof_error(&self, while_parsing: &'static str) -> XmlError {
        self.error(XmlErrorKind::UnexpectedEof { while_parsing })
    }

    /// Whether the next scalar is whitespace (Unicode semantics, ASCII
    /// answered bytewise).
    fn peek_is_whitespace(&self) -> bool {
        match self.peek_byte() {
            Some(b) if b < 0x80 => scan::is_ascii_whitespace_byte(b),
            Some(_) => self.peek_char().is_some_and(char::is_whitespace),
            None => false,
        }
    }

    fn skip_whitespace(&mut self) {
        while let Some(b) = self.peek_byte() {
            if b < 0x80 {
                if !scan::is_ascii_whitespace_byte(b) {
                    return;
                }
                self.offset += 1;
                if b == b'\n' {
                    self.line += 1;
                    self.column = 1;
                } else {
                    self.column += 1;
                }
            } else {
                // Non-ASCII whitespace (NBSP etc.) is rare but legal.
                let c = self.peek_char().expect("input is valid UTF-8");
                if !c.is_whitespace() {
                    return;
                }
                self.offset += c.len_utf8();
                self.column += 1;
            }
        }
    }

    /// Scans one XML name, returning its byte span in the input. The
    /// ASCII run is consumed bytewise; non-ASCII name characters decode
    /// one scalar at the validation boundary.
    fn name_span(&mut self) -> Result<(usize, usize), XmlError> {
        let start = self.offset;
        match self.peek_byte() {
            Some(b) if b < 0x80 => {
                if scan::is_ascii_name_start_byte(b) {
                    self.offset += 1;
                } else {
                    return Err(self.error(XmlErrorKind::UnexpectedChar {
                        found: b as char,
                        expected: "a name start character",
                    }));
                }
            }
            Some(_) => {
                let c = self.peek_char().expect("input is valid UTF-8");
                if is_name_start(c) {
                    self.offset += c.len_utf8();
                } else {
                    return Err(self.error(XmlErrorKind::UnexpectedChar {
                        found: c,
                        expected: "a name start character",
                    }));
                }
            }
            None => return Err(self.eof_error("a name")),
        }
        let mut ascii_only = start + 1 == self.offset;
        loop {
            match self.peek_byte() {
                Some(b) if b < 0x80 => {
                    if scan::is_ascii_name_byte(b) {
                        self.offset += 1;
                    } else {
                        break;
                    }
                }
                Some(_) => {
                    let c = self.peek_char().expect("input is valid UTF-8");
                    if is_name_char(c) {
                        self.offset += c.len_utf8();
                        ascii_only = false;
                    } else {
                        break;
                    }
                }
                None => break,
            }
        }
        // Names never contain newlines, so only the column moves; the
        // (overwhelmingly common) all-ASCII name needs no char count.
        self.column += if ascii_only {
            (self.offset - start) as u32
        } else {
            scan::char_count(&self.input.as_bytes()[start..self.offset]) as u32
        };
        Ok((start, self.offset))
    }

    fn read_name(&mut self) -> Result<String, XmlError> {
        let (start, end) = self.name_span()?;
        Ok(self.input[start..end].to_string())
    }

    /// Reads a name and interns it — no allocation for repeated names.
    fn read_name_sym(&mut self) -> Result<Sym, XmlError> {
        let (start, end) = self.name_span()?;
        Ok(self.interner.intern(&self.input[start..end]))
    }

    /// Reads up to (not including) `delim`, consuming the delimiter.
    /// Returns the byte span of the content before the delimiter.
    fn read_until_span(
        &mut self,
        delim: &str,
        context: &'static str,
    ) -> Result<(usize, usize), XmlError> {
        match self.rest().find(delim) {
            Some(idx) => {
                let start = self.offset;
                self.advance_over(idx + delim.len());
                Ok((start, start + idx))
            }
            None => Err(self.eof_error(context)),
        }
    }

    /// Wraps `input[start..end]` as an [`XmlText`]: a zero-copy span
    /// when a shared backing buffer exists, an owned copy otherwise.
    fn share_span(&mut self, start: usize, end: usize) -> XmlText {
        match &self.backing {
            Some(buf) => {
                self.spans_zero_copy += 1;
                XmlText::shared(Arc::clone(buf), start, end)
            }
            None => {
                self.spans_materialized += 1;
                XmlText::Owned(self.input[start..end].to_string())
            }
        }
    }

    /// Produces the next token, or `None` at end of input.
    pub fn next_token(&mut self) -> Result<Option<SpannedToken>, XmlError> {
        if self.offset >= self.input.len() {
            return Ok(None);
        }
        let position = self.position();
        let token = if self.peek_byte() == Some(b'<') {
            self.lex_markup()?
        } else {
            self.lex_text()?
        };
        Ok(Some(SpannedToken { token, position }))
    }

    fn lex_text(&mut self) -> Result<Token, XmlError> {
        let (line, column) = (self.line, self.column);
        let start = self.offset;
        let rest = self.rest().as_bytes();
        // One fused hunt: the first '<' ends the run, and any earlier
        // '&' means the run materializes through unescaping. The common
        // escape-free run is scanned once, not twice.
        let (len, has_ref) = match scan::memchr2(b'<', b'&', rest) {
            Some(i) if rest[i] == b'<' => (i, false),
            Some(i) => (
                scan::memchr(b'<', &rest[i..]).map_or(rest.len(), |j| i + j),
                true,
            ),
            None => (rest.len(), false),
        };
        self.advance_over(len);
        let end = start + len;
        let content = if has_ref {
            self.spans_materialized += 1;
            XmlText::Owned(unescape(&self.input[start..end], line, column)?.into_owned())
        } else {
            self.share_span(start, end)
        };
        Ok(Token::Text { content })
    }

    fn lex_markup(&mut self) -> Result<Token, XmlError> {
        debug_assert!(self.peek_byte() == Some(b'<'));
        // Dispatch on the byte after '<': start tags (the common case)
        // take one byte compare instead of a gauntlet of prefix tests.
        match self.input.as_bytes().get(self.offset + 1) {
            Some(b'!') => {
                if self.starts_with("<!--") {
                    self.advance_ascii(4);
                    let (start, end) = self.read_until_span("-->", "a comment")?;
                    return Ok(Token::Comment {
                        content: self.input[start..end].to_string(),
                    });
                }
                if self.starts_with("<![CDATA[") {
                    self.advance_ascii(9);
                    let (start, end) = self.read_until_span("]]>", "a CDATA section")?;
                    return Ok(Token::CData {
                        content: self.share_span(start, end),
                    });
                }
                if self.starts_with("<!DOCTYPE") || self.starts_with("<!doctype") {
                    self.advance_ascii(9);
                    return self.lex_doctype();
                }
                // "<!" followed by none of the known markers: report the
                // character after '<' as unexpected, as before.
                self.advance_ascii(1);
                Err(self.error(XmlErrorKind::UnexpectedChar {
                    found: '!',
                    expected: "'--', '[CDATA[', or 'DOCTYPE' after '<!'",
                }))
            }
            Some(b'?') => {
                self.advance_ascii(2);
                self.lex_pi()
            }
            Some(b'/') => {
                self.advance_ascii(2);
                let name = self.read_name_sym()?;
                self.skip_whitespace();
                match self.peek_byte() {
                    Some(b'>') => {
                        self.advance_ascii(1);
                        Ok(Token::EndTag { name })
                    }
                    Some(_) => {
                        let c = self.peek_char().expect("input is valid UTF-8");
                        Err(self.error(XmlErrorKind::UnexpectedChar {
                            found: c,
                            expected: "'>' closing an end tag",
                        }))
                    }
                    None => Err(self.eof_error("an end tag")),
                }
            }
            _ => {
                // Plain start tag.
                self.advance_ascii(1);
                self.lex_start_tag()
            }
        }
    }

    fn lex_doctype(&mut self) -> Result<Token, XmlError> {
        // Content may contain an internal subset in [...]; track nesting
        // of '<'/'>' and bracket state. All structural bytes are ASCII,
        // so the scan is bytewise; positions catch up once at the end.
        let start = self.offset;
        let bytes = self.input.as_bytes();
        let mut depth = 1usize;
        let mut in_bracket = false;
        let mut i = start;
        while i < bytes.len() {
            match bytes[i] {
                b'[' => in_bracket = true,
                b']' => in_bracket = false,
                b'<' if !in_bracket => depth += 1,
                b'>' if !in_bracket => {
                    depth -= 1;
                    if depth == 0 {
                        self.advance_over(i + 1 - start);
                        return Ok(Token::Doctype {
                            content: self.input[start..i].trim().to_string(),
                        });
                    }
                }
                _ => {}
            }
            i += 1;
        }
        self.advance_over(bytes.len() - start);
        Err(self.eof_error("a DOCTYPE declaration"))
    }

    fn lex_pi(&mut self) -> Result<Token, XmlError> {
        let target = self.read_name()?;
        let data = if self.peek_is_whitespace() {
            self.skip_whitespace();
            let (start, end) = self.read_until_span("?>", "a processing instruction")?;
            self.input[start..end].trim_end().to_string()
        } else {
            if !self.starts_with("?>") {
                return Err(match self.peek_char() {
                    Some(c) => self.error(XmlErrorKind::UnexpectedChar {
                        found: c,
                        expected: "whitespace or '?>' in a processing instruction",
                    }),
                    None => self.eof_error("a processing instruction"),
                });
            }
            self.advance_ascii(2);
            String::new()
        };
        if target.eq_ignore_ascii_case("xml") {
            return Ok(Token::XmlDecl { content: data });
        }
        Ok(Token::ProcessingInstruction { target, data })
    }

    fn lex_start_tag(&mut self) -> Result<Token, XmlError> {
        let name = self.read_name_sym()?;
        let mut attributes = Vec::new();
        loop {
            let had_space = self.peek_is_whitespace();
            self.skip_whitespace();
            match self.peek_byte() {
                Some(b'>') => {
                    self.advance_ascii(1);
                    return Ok(Token::StartTag {
                        name,
                        attributes,
                        self_closing: false,
                    });
                }
                Some(b'/') => {
                    self.advance_ascii(1);
                    match self.bump() {
                        Some('>') => {
                            return Ok(Token::StartTag {
                                name,
                                attributes,
                                self_closing: true,
                            })
                        }
                        Some(c) => {
                            return Err(self.error(XmlErrorKind::UnexpectedChar {
                                found: c,
                                expected: "'>' after '/' in a self-closing tag",
                            }))
                        }
                        None => return Err(self.eof_error("a self-closing tag")),
                    }
                }
                Some(b) => {
                    let c = if b < 0x80 {
                        b as char
                    } else {
                        self.peek_char().expect("input is valid UTF-8")
                    };
                    if is_name_start(c) {
                        if !had_space {
                            return Err(self.error(XmlErrorKind::UnexpectedChar {
                                found: c,
                                expected: "whitespace before an attribute",
                            }));
                        }
                        let attr = self.lex_attribute()?;
                        if attributes
                            .iter()
                            .any(|a: &SymAttribute| a.name == attr.name)
                        {
                            return Err(self.error(XmlErrorKind::DuplicateAttribute {
                                name: self.interner.resolve(attr.name).to_string(),
                            }));
                        }
                        attributes.push(attr);
                    } else {
                        return Err(self.error(XmlErrorKind::UnexpectedChar {
                            found: c,
                            expected: "an attribute, '>', or '/>'",
                        }));
                    }
                }
                None => return Err(self.eof_error("a start tag")),
            }
        }
    }

    fn lex_attribute(&mut self) -> Result<SymAttribute, XmlError> {
        let name = self.read_name_sym()?;
        self.skip_whitespace();
        match self.peek_byte() {
            Some(b'=') => self.advance_ascii(1),
            Some(_) => {
                let c = self.peek_char().expect("input is valid UTF-8");
                return Err(self.error(XmlErrorKind::UnexpectedChar {
                    found: c,
                    expected: "'=' after an attribute name",
                }));
            }
            None => return Err(self.eof_error("an attribute")),
        }
        self.skip_whitespace();
        let quote = match self.peek_byte() {
            Some(q @ (b'"' | b'\'')) => {
                self.advance_ascii(1);
                q
            }
            Some(_) => {
                let c = self.peek_char().expect("input is valid UTF-8");
                return Err(self.error(XmlErrorKind::UnexpectedChar {
                    found: c,
                    expected: "a quoted attribute value",
                }));
            }
            None => return Err(self.eof_error("an attribute value")),
        };
        let (line, column) = (self.line, self.column);
        // One fused hunt for the closing quote, a (forbidden) raw '<',
        // and any '&' that forces unescaping: the common clean value is
        // scanned once, not three times.
        let rest = self.rest().as_bytes();
        let mut has_ref = false;
        let mut i = 0;
        let val_len = loop {
            match scan::memchr3(quote, b'<', b'&', &rest[i..]) {
                Some(j) => match rest[i + j] {
                    b'<' => {
                        return Err(XmlError::at(
                            XmlErrorKind::UnexpectedChar {
                                found: '<',
                                expected: "no raw '<' inside an attribute value",
                            },
                            line,
                            column,
                        ))
                    }
                    b'&' => {
                        has_ref = true;
                        i += j + 1;
                    }
                    _ => break i + j,
                },
                None => return Err(self.eof_error("an attribute value")),
            }
        };
        let start = self.offset;
        self.advance_over(val_len + 1);
        let end = start + val_len;
        let value = if has_ref {
            self.spans_materialized += 1;
            XmlText::Owned(unescape(&self.input[start..end], line, column)?.into_owned())
        } else {
            self.share_span(start, end)
        };
        Ok(SymAttribute { name, value })
    }
}

/// Tokenizes the whole input eagerly. Convenience for tests — symbol
/// assignment is deterministic, so token sequences from the same input
/// compare equal across lexers.
pub fn tokenize(input: &str) -> Result<Vec<Token>, XmlError> {
    Ok(tokenize_with_interner(input)?.0)
}

/// Tokenizes the whole input and returns the name table the tokens'
/// symbols point into.
pub fn tokenize_with_interner(input: &str) -> Result<(Vec<Token>, Interner), XmlError> {
    let mut lexer = Lexer::new(input);
    let mut out = Vec::new();
    while let Some(spanned) = lexer.next_token()? {
        out.push(spanned.token);
    }
    Ok((out, lexer.take_interner()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_element() {
        let (tokens, names) = tokenize_with_interner("<a>hi</a>").unwrap();
        let a = names.lookup("a").unwrap();
        assert_eq!(
            tokens,
            vec![
                Token::StartTag {
                    name: a,
                    attributes: vec![],
                    self_closing: false
                },
                Token::Text {
                    content: "hi".into()
                },
                Token::EndTag { name: a },
            ]
        );
    }

    #[test]
    fn attributes_both_quote_styles() {
        let (tokens, names) =
            tokenize_with_interner(r#"<book publisher="mkp" year='1998'/>"#).unwrap();
        match &tokens[0] {
            Token::StartTag {
                name,
                attributes,
                self_closing,
            } => {
                assert_eq!(names.resolve(*name), "book");
                assert!(*self_closing);
                assert_eq!(attributes.len(), 2);
                assert_eq!(names.resolve(attributes[0].name), "publisher");
                assert_eq!(attributes[0].value, "mkp");
                assert_eq!(names.resolve(attributes[1].name), "year");
                assert_eq!(attributes[1].value, "1998");
                // Resolution into the owned compat form.
                let resolved = attributes[0].resolve(&names);
                assert_eq!(resolved.name, "publisher");
                assert_eq!(resolved.value, "mkp");
            }
            other => panic!("unexpected token {other:?}"),
        }
    }

    #[test]
    fn repeated_names_share_symbols() {
        let (tokens, names) = tokenize_with_interner("<r><r/><r></r></r>").unwrap();
        let r = names.lookup("r").unwrap();
        let mut tags = 0;
        for t in &tokens {
            match t {
                Token::StartTag { name, .. } | Token::EndTag { name } => {
                    assert_eq!(*name, r);
                    tags += 1;
                }
                other => panic!("unexpected token {other:?}"),
            }
        }
        assert_eq!(tags, 5);
        assert_eq!(names.len(), 1);
    }

    #[test]
    fn attribute_values_unescaped() {
        let tokens = tokenize(r#"<a t="a&amp;b &#65;"/>"#).unwrap();
        match &tokens[0] {
            Token::StartTag { attributes, .. } => assert_eq!(attributes[0].value, "a&b A"),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn duplicate_attribute_rejected() {
        let err = tokenize(r#"<a x="1" x="2"/>"#).unwrap_err();
        assert!(matches!(err.kind, XmlErrorKind::DuplicateAttribute { .. }));
    }

    #[test]
    fn comment_cdata_pi_doctype() {
        let (tokens, names) = tokenize_with_interner(
            "<?xml version=\"1.0\"?><!DOCTYPE db SYSTEM \"x.dtd\"><!-- note --><db><![CDATA[1<2]]><?app run?></db>",
        )
        .unwrap();
        let db = names.lookup("db").unwrap();
        assert_eq!(
            tokens,
            vec![
                Token::XmlDecl {
                    content: "version=\"1.0\"".into()
                },
                Token::Doctype {
                    content: "db SYSTEM \"x.dtd\"".into()
                },
                Token::Comment {
                    content: " note ".into()
                },
                Token::StartTag {
                    name: db,
                    attributes: vec![],
                    self_closing: false
                },
                Token::CData {
                    content: "1<2".into()
                },
                Token::ProcessingInstruction {
                    target: "app".into(),
                    data: "run".into()
                },
                Token::EndTag { name: db },
            ]
        );
    }

    #[test]
    fn doctype_with_internal_subset() {
        let tokens = tokenize("<!DOCTYPE db [<!ELEMENT db (#PCDATA)>]><db/>").unwrap();
        assert!(matches!(&tokens[0], Token::Doctype { content } if content.contains("ELEMENT")));
    }

    #[test]
    fn text_entities_resolved() {
        let tokens = tokenize("<a>1 &lt; 2 &amp;&amp; 3 &gt; 2</a>").unwrap();
        assert_eq!(
            tokens[1],
            Token::Text {
                content: "1 < 2 && 3 > 2".into()
            }
        );
    }

    #[test]
    fn unterminated_comment_errors_with_position() {
        let err = tokenize("<a><!-- oops").unwrap_err();
        assert!(matches!(err.kind, XmlErrorKind::UnexpectedEof { .. }));
        assert!(err.position.is_some());
    }

    #[test]
    fn position_tracking_across_lines() {
        let mut lexer = Lexer::new("<a>\n  <b>");
        lexer.next_token().unwrap(); // <a>
        lexer.next_token().unwrap(); // text "\n  "
        let spanned = lexer.next_token().unwrap().unwrap();
        assert_eq!(spanned.position.line, 2);
        assert_eq!(spanned.position.column, 3);
    }

    #[test]
    fn raw_lt_in_attribute_rejected() {
        assert!(tokenize("<a x=\"a<b\"/>").is_err());
    }

    #[test]
    fn missing_attribute_space_rejected() {
        assert!(tokenize("<a x=\"1\"y=\"2\"/>").is_err());
    }

    #[test]
    fn invalid_name_start_rejected() {
        assert!(tokenize("<1a/>").is_err());
        assert!(tokenize("</ a>").is_err());
    }

    #[test]
    fn pi_without_data() {
        let tokens = tokenize("<?flush?><a/>").unwrap();
        assert_eq!(
            tokens[0],
            Token::ProcessingInstruction {
                target: "flush".into(),
                data: String::new()
            }
        );
    }

    #[test]
    fn name_validation() {
        assert!(is_valid_name("book"));
        assert!(is_valid_name("_private"));
        assert!(is_valid_name("ns:tag"));
        assert!(is_valid_name("a-b.c2"));
        assert!(is_valid_name("Mün"));
        assert!(!is_valid_name(""));
        assert!(!is_valid_name("2fast"));
        assert!(!is_valid_name("has space"));
        assert!(!is_valid_name("–dash"));
    }

    #[test]
    fn multibyte_content() {
        let tokens = tokenize("<a>München – résumé 中文</a>").unwrap();
        assert_eq!(
            tokens[1],
            Token::Text {
                content: "München – résumé 中文".into()
            }
        );
    }

    #[test]
    fn shared_backing_yields_zero_copy_spans() {
        let buf = Arc::new(String::from(r#"<a t="v">text<![CDATA[cd]]></a>"#));
        let mut lexer = Lexer::from_shared(&buf);
        let mut shared = 0;
        while let Some(spanned) = lexer.next_token().unwrap() {
            match spanned.token {
                Token::Text { content } | Token::CData { content } => {
                    assert!(content.is_shared());
                    shared += 1;
                }
                Token::StartTag { attributes, .. } => {
                    for a in &attributes {
                        assert!(a.value.is_shared());
                        shared += 1;
                    }
                }
                _ => {}
            }
        }
        assert_eq!(shared, 3);
        assert_eq!(lexer.span_stats(), (3, 0));
    }

    #[test]
    fn escapes_materialize_even_with_backing() {
        let buf = Arc::new(String::from(r#"<a t="x&amp;y">a&lt;b</a>"#));
        let mut lexer = Lexer::from_shared(&buf);
        while let Some(spanned) = lexer.next_token().unwrap() {
            match spanned.token {
                Token::Text { content } => {
                    assert!(!content.is_shared());
                    assert_eq!(content, "a<b");
                }
                Token::StartTag { attributes, .. } => {
                    assert!(!attributes[0].value.is_shared());
                    assert_eq!(attributes[0].value, "x&y");
                }
                _ => {}
            }
        }
        assert_eq!(lexer.span_stats(), (0, 2));
    }
}
