//! The digital-library dataset — the paper's second §1 example: "a
//! commercial digital library also would need to safeguard its copyright
//! over its collection."
//!
//! Structure per record:
//!
//! ```xml
//! <item id="IT0042">
//!   <title>Foundations of Query Processing 42</title>
//!   <pages>412</pages>
//!   <price>59.90</price>
//!   <abstract>novel approach to ...</abstract>
//!   <cover>WMIMG base64 payload</cover>
//! </item>
//! ```
//!
//! This dataset exercises every embedding plug-in at once: integer
//! (`pages`), decimal (`price`), text (`abstract`), and image (`cover`).

use crate::image::GrayImage;
use crate::text::{pick, sentence, TITLE_NOUNS, TITLE_WORDS};
use crate::Dataset;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use wmx_core::{EncoderConfig, MarkableAttr, QueryTemplate};
use wmx_rewrite::{AttrBinding, EntityBinding, SchemaBinding};
use wmx_schema::{child, DataType, ElementDecl, Key, Occurs, Schema};
use wmx_xml::ElementBuilder;

/// Generator parameters.
#[derive(Debug, Clone)]
pub struct LibraryConfig {
    /// Number of items.
    pub records: usize,
    /// Cover image edge length in pixels.
    pub image_size: u32,
    /// RNG seed.
    pub seed: u64,
    /// Selection density γ.
    pub gamma: u32,
}

impl Default for LibraryConfig {
    fn default() -> Self {
        LibraryConfig {
            records: 120,
            image_size: 16,
            seed: 590,
            gamma: 2,
        }
    }
}

/// Generates the digital-library dataset.
pub fn generate(config: &LibraryConfig) -> Dataset {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut library = ElementBuilder::new("library");
    for i in 0..config.records {
        let title = format!(
            "{} of {} {i}",
            pick(&mut rng, TITLE_WORDS),
            pick(&mut rng, TITLE_NOUNS)
        );
        let pages = rng.random_range(80..900);
        let price = format!(
            "{}.{:02}",
            rng.random_range(9..120),
            rng.random_range(0..100)
        );
        let cover = GrayImage::synthetic(
            config.image_size,
            config.image_size,
            config.seed.wrapping_add(i as u64),
        );
        let item = ElementBuilder::new("item")
            .attr("id", format!("IT{i:04}"))
            .leaf("title", title)
            .leaf("pages", pages.to_string())
            .leaf("price", price)
            .leaf("abstract", sentence(&mut rng, 14))
            .leaf("cover", cover.to_payload());
        library = library.child(item);
    }

    Dataset {
        name: "library".to_string(),
        doc: library.into_document(),
        schema: schema(),
        binding: binding(),
        keys: vec![Key::new("item-id", "/library/item", &["@id"]).expect("static key")],
        fds: Vec::new(),
        templates: templates(),
        config: EncoderConfig::new(
            config.gamma,
            vec![
                MarkableAttr::integer("item", "pages", 1),
                MarkableAttr::decimal("item", "price", 0.02),
                MarkableAttr::text("item", "abstract"),
                MarkableAttr::image("item", "cover"),
            ],
        ),
    }
}

/// The structural schema of library documents.
pub fn schema() -> Schema {
    Schema::new("library-v1", "library")
        .declare(ElementDecl::parent(
            "library",
            vec![child("item", Occurs::ZeroOrMore)],
        ))
        .declare(
            ElementDecl::parent(
                "item",
                vec![
                    child("title", Occurs::One),
                    child("pages", Occurs::One),
                    child("price", Occurs::One),
                    child("abstract", Occurs::One),
                    child("cover", Occurs::One),
                ],
            )
            .with_attr("id", true, DataType::Text),
        )
        .declare(ElementDecl::leaf("title", DataType::Text))
        .declare(ElementDecl::leaf("pages", DataType::Integer))
        .declare(ElementDecl::leaf("price", DataType::Decimal))
        .declare(ElementDecl::leaf("abstract", DataType::Text))
        .declare(ElementDecl::leaf("cover", DataType::Base64Image))
}

/// The binding of the logical item entity.
pub fn binding() -> SchemaBinding {
    SchemaBinding::new(
        "library-flat",
        vec![EntityBinding::new(
            "item",
            "/library/item",
            "id",
            vec![
                ("id", AttrBinding::Attribute("id".into())),
                ("title", AttrBinding::ChildText("title".into())),
                ("pages", AttrBinding::ChildText("pages".into())),
                ("price", AttrBinding::ChildText("price".into())),
                ("abstract", AttrBinding::ChildText("abstract".into())),
                ("cover", AttrBinding::ChildText("cover".into())),
            ],
        )
        .expect("static binding")],
    )
}

/// Usability templates.
pub fn templates() -> Vec<QueryTemplate> {
    vec![
        QueryTemplate::new("title-of", "item", "title"),
        QueryTemplate::new("pages-of", "item", "pages"),
        QueryTemplate::new("price-of", "item", "price"),
        QueryTemplate::new("cover-of", "item", "cover"),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use wmx_schema::validate;

    #[test]
    fn generated_document_is_schema_valid() {
        let ds = generate(&LibraryConfig::default());
        assert_eq!(validate(&ds.doc, &ds.schema), vec![]);
    }

    #[test]
    fn covers_decode_as_images() {
        let ds = generate(&LibraryConfig {
            records: 5,
            ..LibraryConfig::default()
        });
        let item = ds.binding.entity("item").unwrap();
        for instance in item.instances(&ds.doc) {
            let payload = item.attr_value(&ds.doc, &instance, "cover").unwrap();
            let img = GrayImage::from_payload(&payload).unwrap();
            assert_eq!(img.width, 16);
        }
    }

    #[test]
    fn keys_hold() {
        let ds = generate(&LibraryConfig::default());
        for key in &ds.keys {
            assert!(key.verify(&ds.doc).is_empty());
        }
    }

    #[test]
    fn all_four_plugin_types_are_markable() {
        let ds = generate(&LibraryConfig::default());
        let types: std::collections::BTreeSet<_> = ds
            .config
            .markable
            .iter()
            .map(|m| format!("{}", m.data_type))
            .collect();
        assert_eq!(types.len(), 4);
    }
}
