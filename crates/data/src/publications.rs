//! The publications database — the paper's own db1.xml (Fig. 1a), scaled.
//!
//! Structure per record:
//!
//! ```xml
//! <book publisher="mkp">
//!   <title>Readings in Database Systems 17</title>
//!   <author>Stonebraker</author>
//!   <author>Hellerstein</author>
//!   <editor>Gray</editor>
//!   <year>1998</year>
//! </book>
//! ```
//!
//! Semantics: `title` is the key of `book`; each editor works for exactly
//! one publisher (`editor → publisher`), which generates the redundancy
//! the redundancy-removal attack targets. Markable capacity: `year`
//! (integer, ±1) and `publisher` (text, via the FD group).

use crate::text::{pick, SURNAMES, TITLE_NOUNS, TITLE_WORDS};
use crate::Dataset;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use wmx_core::{EncoderConfig, MarkableAttr, QueryTemplate};
use wmx_rewrite::{AttrBinding, EntityBinding, SchemaBinding};
use wmx_schema::{child, DataType, ElementDecl, Fd, Key, Occurs, Schema};
use wmx_xml::ElementBuilder;

/// Generator parameters.
#[derive(Debug, Clone)]
pub struct PublicationsConfig {
    /// Number of book records.
    pub records: usize,
    /// Number of distinct editors (each bound to one publisher). Smaller
    /// values create larger FD-redundancy groups.
    pub editors: usize,
    /// RNG seed.
    pub seed: u64,
    /// Selection density γ for the default encoder config.
    pub gamma: u32,
}

impl Default for PublicationsConfig {
    fn default() -> Self {
        PublicationsConfig {
            records: 200,
            editors: 12,
            seed: 2005,
            gamma: 3,
        }
    }
}

/// Generates the publications dataset.
pub fn generate(config: &PublicationsConfig) -> Dataset {
    let mut rng = StdRng::seed_from_u64(config.seed);

    // Editors are assigned a publisher once; books inherit it through
    // their editor (guaranteeing the FD holds by construction).
    let editors: Vec<(String, String)> = (0..config.editors.max(1))
        .map(|i| {
            let editor = format!("{}-{i}", pick(&mut rng, SURNAMES));
            let publisher = crate::text::PUBLISHERS[i % crate::text::PUBLISHERS.len()].to_string();
            (editor, publisher)
        })
        .collect();

    let mut db = ElementBuilder::new("db");
    for i in 0..config.records {
        let title = format!(
            "{} {} {i}",
            pick(&mut rng, TITLE_WORDS),
            pick(&mut rng, TITLE_NOUNS)
        );
        let (editor, publisher) = editors[rng.random_range(0..editors.len())].clone();
        let year = rng.random_range(1970..=2004);
        let author_count = rng.random_range(1..=3);
        let mut book = ElementBuilder::new("book")
            .attr("publisher", publisher)
            .leaf("title", title);
        for _ in 0..author_count {
            book = book.leaf("author", pick(&mut rng, SURNAMES));
        }
        book = book.leaf("editor", editor).leaf("year", year.to_string());
        db = db.child(book);
    }

    Dataset {
        name: "publications".to_string(),
        doc: db.into_document(),
        schema: schema(),
        binding: binding(),
        keys: vec![Key::new("book-title", "/db/book", &["title"]).expect("static key")],
        fds: vec![editor_publisher_fd()],
        templates: templates(),
        config: EncoderConfig::new(
            config.gamma,
            vec![
                MarkableAttr::integer("book", "year", 1),
                MarkableAttr::text("book", "publisher"),
            ],
        ),
    }
}

/// The structural schema of db1-style documents.
pub fn schema() -> Schema {
    Schema::new("publications-v1", "db")
        .declare(ElementDecl::parent(
            "db",
            vec![child("book", Occurs::ZeroOrMore)],
        ))
        .declare(
            ElementDecl::parent(
                "book",
                vec![
                    child("title", Occurs::One),
                    child("author", Occurs::OneOrMore),
                    child("editor", Occurs::One),
                    child("year", Occurs::One),
                ],
            )
            .with_attr("publisher", true, DataType::Text),
        )
        .declare(ElementDecl::leaf("title", DataType::Text))
        .declare(ElementDecl::leaf("author", DataType::Text))
        .declare(ElementDecl::leaf("editor", DataType::Text))
        .declare(ElementDecl::leaf("year", DataType::Integer))
}

/// The binding of the logical book entity onto db1-style documents.
pub fn binding() -> SchemaBinding {
    SchemaBinding::new(
        "publications-db1",
        vec![EntityBinding::new(
            "book",
            "/db/book",
            "title",
            vec![
                ("title", AttrBinding::ChildText("title".into())),
                ("author", AttrBinding::ChildText("author".into())),
                ("editor", AttrBinding::ChildText("editor".into())),
                ("year", AttrBinding::ChildText("year".into())),
                ("publisher", AttrBinding::Attribute("publisher".into())),
            ],
        )
        .expect("static binding")],
    )
}

/// `editor → publisher` (the paper's §2.3 example).
pub fn editor_publisher_fd() -> Fd {
    Fd::new("editor-publisher", "/db/book", &["editor"], &["@publisher"]).expect("static fd")
}

/// The binding for db2-style reorganized documents (the paper's Fig. 1b
/// shape with renamed tags: titles as `@name`, year as `<published>`).
pub fn db2_binding() -> SchemaBinding {
    SchemaBinding::new(
        "publications-db2",
        vec![EntityBinding::new(
            "book",
            "/db/publisher/author/book",
            "title",
            vec![
                ("title", AttrBinding::Attribute("name".into())),
                ("year", AttrBinding::ChildText("published".into())),
                ("author", AttrBinding::Path("../@name".into())),
                ("publisher", AttrBinding::Path("../../@name".into())),
            ],
        )
        .expect("static binding")],
    )
}

/// The adversary's db2 target layout matching [`db2_binding`].
pub fn db2_layout() -> wmx_rewrite::transform::Layout {
    use wmx_rewrite::transform::{FieldPlacement, Layout};
    Layout::GroupBy {
        attr: "publisher".into(),
        element: "publisher".into(),
        label: FieldPlacement::Attribute("name".into()),
        inner: Box::new(Layout::GroupBy {
            attr: "author".into(),
            element: "author".into(),
            label: FieldPlacement::Attribute("name".into()),
            inner: Box::new(Layout::Flat {
                record_element: "book".into(),
                fields: vec![
                    ("title".into(), FieldPlacement::Attribute("name".into())),
                    ("year".into(), FieldPlacement::ChildText("published".into())),
                ],
            }),
        }),
    }
}

/// The usability templates of the demo: who wrote X, when was X
/// published, who published X, who edited X.
pub fn templates() -> Vec<QueryTemplate> {
    vec![
        QueryTemplate::new("who-wrote", "book", "author"),
        QueryTemplate::new("published-when", "book", "year"),
        QueryTemplate::new("published-by", "book", "publisher"),
        QueryTemplate::new("edited-by", "book", "editor"),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use wmx_schema::validate;
    use wmx_xml::to_canonical_string;

    #[test]
    fn generated_document_is_schema_valid() {
        let ds = generate(&PublicationsConfig::default());
        assert_eq!(validate(&ds.doc, &ds.schema), vec![]);
    }

    #[test]
    fn generation_is_deterministic() {
        let a = generate(&PublicationsConfig::default());
        let b = generate(&PublicationsConfig::default());
        assert_eq!(to_canonical_string(&a.doc), to_canonical_string(&b.doc));
        let c = generate(&PublicationsConfig {
            seed: 1,
            ..PublicationsConfig::default()
        });
        assert_ne!(to_canonical_string(&a.doc), to_canonical_string(&c.doc));
    }

    #[test]
    fn keys_hold_by_construction() {
        let ds = generate(&PublicationsConfig::default());
        for key in &ds.keys {
            assert!(key.verify(&ds.doc).is_empty());
        }
    }

    #[test]
    fn fd_holds_by_construction() {
        let ds = generate(&PublicationsConfig {
            records: 400,
            editors: 8,
            ..PublicationsConfig::default()
        });
        for fd in &ds.fds {
            assert!(fd.verify(&ds.doc).is_empty());
        }
    }

    #[test]
    fn record_count_matches() {
        let ds = generate(&PublicationsConfig {
            records: 57,
            ..PublicationsConfig::default()
        });
        let book = ds.binding.entity("book").unwrap();
        assert_eq!(book.instances(&ds.doc).len(), 57);
    }

    #[test]
    fn redundancy_groups_exist() {
        let ds = generate(&PublicationsConfig {
            records: 100,
            editors: 5,
            ..PublicationsConfig::default()
        });
        let groups = wmx_schema::discover_groups(&ds.doc, &ds.fds);
        assert!(groups.iter().any(|g| g.is_redundant()));
    }

    #[test]
    fn templates_have_ground_truth() {
        let ds = generate(&PublicationsConfig {
            records: 30,
            ..PublicationsConfig::default()
        });
        for t in &ds.templates {
            let truth = t.ground_truth(&ds.doc, &ds.binding).unwrap();
            assert_eq!(truth.len(), 30, "template {} missing keys", t.name);
        }
    }
}
