//! Word pools and deterministic pickers for the generators.

use rand::rngs::StdRng;
use rand::Rng;

/// Surnames used for authors, editors, and contacts.
pub const SURNAMES: &[&str] = &[
    "Stonebraker",
    "Hellerstein",
    "Bernstein",
    "Newcomer",
    "Gray",
    "Codd",
    "Date",
    "Ullman",
    "Widom",
    "DeWitt",
    "Selinger",
    "Chamberlin",
    "Astrahan",
    "Bachman",
    "Chen",
    "Abiteboul",
    "Buneman",
    "Suciu",
    "Tan",
    "Pang",
    "Zhou",
    "Mangla",
    "Agrawal",
    "Kiernan",
    "Sion",
    "Atallah",
    "Prabhakar",
    "Naughton",
    "Carey",
    "Franklin",
    "Ioannidis",
    "Ramakrishnan",
];

/// Title words for generated publications.
pub const TITLE_WORDS: &[&str] = &[
    "Readings",
    "Principles",
    "Foundations",
    "Advanced",
    "Practical",
    "Distributed",
    "Parallel",
    "Relational",
    "Semistructured",
    "Temporal",
    "Spatial",
    "Secure",
    "Adaptive",
    "Scalable",
    "Streaming",
    "Probabilistic",
];

/// Title nouns for generated publications.
pub const TITLE_NOUNS: &[&str] = &[
    "Database Systems",
    "Query Processing",
    "Data Integration",
    "Transaction Management",
    "Information Retrieval",
    "XML Processing",
    "Data Mining",
    "Storage Engines",
    "Concurrency Control",
    "Access Methods",
    "Data Warehousing",
    "Schema Design",
];

/// Publisher codes.
pub const PUBLISHERS: &[&str] = &[
    "mkp",
    "acm",
    "ieee",
    "springer",
    "elsevier",
    "vldb-press",
    "usenix",
    "siam",
];

/// Company names for the job-agent dataset.
pub const COMPANIES: &[&str] = &[
    "Acme Analytics",
    "Initech",
    "Globex",
    "Umbrella Data",
    "Stark Databases",
    "Wayne Systems",
    "Tyrell Info",
    "Hooli",
    "Aperture Query",
    "Vandelay Imports",
    "Wonka Storage",
    "Cyberdyne DB",
];

/// Cities (company headquarters, job locations).
pub const CITIES: &[&str] = &[
    "Singapore",
    "Trondheim",
    "Hanover",
    "San Francisco",
    "New York",
    "London",
    "Tokyo",
    "Sydney",
    "Berlin",
    "Toronto",
    "Zurich",
    "Seoul",
];

/// Job titles.
pub const JOB_TITLES: &[&str] = &[
    "Database Administrator",
    "Data Engineer",
    "Backend Developer",
    "Systems Analyst",
    "Storage Engineer",
    "Query Optimizer Engineer",
    "Data Architect",
    "Site Reliability Engineer",
];

/// Abstract/description filler words.
pub const FILLER: &[&str] = &[
    "system",
    "design",
    "robust",
    "efficient",
    "novel",
    "approach",
    "evaluation",
    "framework",
    "semantics",
    "structure",
    "index",
    "performance",
    "scalable",
    "secure",
    "watermark",
    "protection",
    "copyright",
    "publish",
    "exchange",
    "integrate",
];

/// Picks a deterministic element of `pool`.
pub fn pick<'a>(rng: &mut StdRng, pool: &[&'a str]) -> &'a str {
    pool[rng.random_range(0..pool.len())]
}

/// Builds a short deterministic sentence of `words` filler words.
pub fn sentence(rng: &mut StdRng, words: usize) -> String {
    let mut out = String::new();
    for i in 0..words {
        if i > 0 {
            out.push(' ');
        }
        out.push_str(pick(rng, FILLER));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn picks_are_deterministic() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..50 {
            assert_eq!(pick(&mut a, SURNAMES), pick(&mut b, SURNAMES));
        }
    }

    #[test]
    fn sentences_have_requested_length() {
        let mut rng = StdRng::seed_from_u64(1);
        let s = sentence(&mut rng, 8);
        assert_eq!(s.split_whitespace().count(), 8);
    }
}
