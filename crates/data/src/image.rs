//! The `WMIMG` raster payload: a minimal grayscale image format for the
//! image watermarking plug-in.
//!
//! Layout (before base64): `WMIMG;<width>;<height>;` followed by
//! `width × height` raw gray bytes, row-major. The header is ASCII so a
//! schema validator can recognize payloads, and the pixel region is
//! byte-addressable for LSB embedding.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use wmx_crypto::base64;

/// A decoded grayscale raster.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GrayImage {
    /// Width in pixels.
    pub width: u32,
    /// Height in pixels.
    pub height: u32,
    /// Row-major gray bytes (`width * height` of them).
    pub pixels: Vec<u8>,
}

impl GrayImage {
    /// Synthesizes a deterministic cover image: a diagonal gradient with
    /// seeded speckle noise (so LSBs start out varied, like photographs).
    pub fn synthetic(width: u32, height: u32, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut pixels = Vec::with_capacity((width * height) as usize);
        for y in 0..height {
            for x in 0..width {
                let base = ((x + y) * 255 / (width + height).max(1)) as u8;
                let noise: i16 = rng.random_range(-12..=12);
                pixels.push((i16::from(base) + noise).clamp(0, 255) as u8);
            }
        }
        GrayImage {
            width,
            height,
            pixels,
        }
    }

    /// Encodes to the base64 `WMIMG` payload.
    pub fn to_payload(&self) -> String {
        let mut data = format!("WMIMG;{};{};", self.width, self.height).into_bytes();
        data.extend_from_slice(&self.pixels);
        base64::encode(&data)
    }

    /// Decodes a base64 `WMIMG` payload.
    pub fn from_payload(payload: &str) -> Option<Self> {
        let data = base64::decode(payload).ok()?;
        let text = &data;
        if !text.starts_with(b"WMIMG;") {
            return None;
        }
        // Parse WMIMG;<w>;<h>;
        let mut parts = text.splitn(4, |&b| b == b';');
        parts.next()?; // magic
        let width: u32 = std::str::from_utf8(parts.next()?).ok()?.parse().ok()?;
        let height: u32 = std::str::from_utf8(parts.next()?).ok()?.parse().ok()?;
        let pixels = parts.next()?.to_vec();
        if pixels.len() != (width as usize) * (height as usize) {
            return None;
        }
        Some(GrayImage {
            width,
            height,
            pixels,
        })
    }

    /// Peak signal-to-noise ratio against another image of the same
    /// dimensions (∞ for identical images). Used by experiments to show
    /// image marks are imperceptible.
    pub fn psnr(&self, other: &GrayImage) -> Option<f64> {
        if self.width != other.width || self.height != other.height {
            return None;
        }
        let mse: f64 = self
            .pixels
            .iter()
            .zip(&other.pixels)
            .map(|(a, b)| {
                let d = f64::from(*a) - f64::from(*b);
                d * d
            })
            .sum::<f64>()
            / self.pixels.len() as f64;
        if mse == 0.0 {
            return Some(f64::INFINITY);
        }
        Some(10.0 * (255.0f64 * 255.0 / mse).log10())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn payload_roundtrip() {
        let img = GrayImage::synthetic(16, 12, 42);
        let payload = img.to_payload();
        let back = GrayImage::from_payload(&payload).unwrap();
        assert_eq!(img, back);
    }

    #[test]
    fn synthesis_is_deterministic() {
        assert_eq!(
            GrayImage::synthetic(8, 8, 1).pixels,
            GrayImage::synthetic(8, 8, 1).pixels
        );
        assert_ne!(
            GrayImage::synthetic(8, 8, 1).pixels,
            GrayImage::synthetic(8, 8, 2).pixels
        );
    }

    #[test]
    fn malformed_payloads_rejected() {
        assert!(GrayImage::from_payload("!!!").is_none());
        assert!(GrayImage::from_payload(&base64::encode(b"PNG...")).is_none());
        // Wrong pixel count.
        assert!(GrayImage::from_payload(&base64::encode(b"WMIMG;4;4;abc")).is_none());
    }

    #[test]
    fn psnr_behaviour() {
        let a = GrayImage::synthetic(16, 16, 7);
        assert_eq!(a.psnr(&a), Some(f64::INFINITY));
        let mut b = a.clone();
        for p in b.pixels.iter_mut() {
            *p ^= 1; // flip every LSB: worst-case LSB damage
        }
        let psnr = a.psnr(&b).unwrap();
        assert!(
            psnr > 45.0,
            "LSB-only damage should keep PSNR high, got {psnr}"
        );
        let c = GrayImage::synthetic(8, 8, 7);
        assert_eq!(a.psnr(&c), None);
    }

    #[test]
    fn image_plugin_compatibility() {
        // The payload format must be accepted by the core image plug-in.
        use wmx_core::embed::{EmbedAlgorithm, ImagePlugin};
        let img = GrayImage::synthetic(24, 24, 3);
        let plugin = ImagePlugin::default();
        let marked = plugin.embed(&img.to_payload(), true, 99).unwrap();
        assert_eq!(plugin.extract(&marked, 99), Some(true));
        let decoded = GrayImage::from_payload(&marked).unwrap();
        assert_eq!(decoded.width, 24);
        let psnr = img.psnr(&decoded).unwrap();
        assert!(psnr > 45.0);
    }
}
