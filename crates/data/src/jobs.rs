//! The job-agent dataset — the paper's §1 motivating example: "a job
//! agent's web site, who would like to prevent his job advertisements
//! from being stolen and posted on other web sites."
//!
//! Structure per record:
//!
//! ```xml
//! <listing ref="J01234">
//!   <company>Acme Analytics</company>
//!   <role>Data Engineer</role>
//!   <location>Singapore</location>
//!   <hq>San Francisco</hq>
//!   <salary>84000</salary>
//!   <posted>38215</posted>
//! </listing>
//! ```
//!
//! Semantics: the `ref` code is the key; `company → hq` is the FD (a
//! company's headquarters is the same in every listing). Markable
//! capacity: `salary` (integer ±50), `posted` (day number, ±1), and `hq`
//! (text through the FD group).

use crate::text::{pick, sentence, CITIES, COMPANIES, JOB_TITLES};
use crate::Dataset;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use wmx_core::{EncoderConfig, MarkableAttr, QueryTemplate};
use wmx_rewrite::{AttrBinding, EntityBinding, SchemaBinding};
use wmx_schema::{child, DataType, ElementDecl, Fd, Key, Occurs, Schema};
use wmx_xml::ElementBuilder;

/// Generator parameters.
#[derive(Debug, Clone)]
pub struct JobsConfig {
    /// Number of listings.
    pub records: usize,
    /// Number of distinct companies (FD group count).
    pub companies: usize,
    /// RNG seed.
    pub seed: u64,
    /// Selection density γ.
    pub gamma: u32,
}

impl Default for JobsConfig {
    fn default() -> Self {
        JobsConfig {
            records: 300,
            companies: 10,
            seed: 1318,
            gamma: 3,
        }
    }
}

/// Generates the job-listings dataset.
pub fn generate(config: &JobsConfig) -> Dataset {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let companies: Vec<(String, String)> = (0..config.companies.max(1))
        .map(|i| {
            (
                format!("{} {i}", pick(&mut rng, COMPANIES)),
                pick(&mut rng, CITIES).to_string(),
            )
        })
        .collect();

    let mut jobs = ElementBuilder::new("jobs");
    for i in 0..config.records {
        let (company, hq) = companies[rng.random_range(0..companies.len())].clone();
        let salary = rng.random_range(40..180) * 1000 + rng.random_range(0..1000);
        let posted = rng.random_range(38000..38400); // day numbers around 2004/2005
        let listing = ElementBuilder::new("listing")
            .attr("ref", format!("J{i:05}"))
            .leaf("company", company)
            .leaf("role", pick(&mut rng, JOB_TITLES))
            .leaf("location", pick(&mut rng, CITIES))
            .leaf("hq", hq)
            .leaf("salary", salary.to_string())
            .leaf("posted", posted.to_string())
            .leaf("summary", sentence(&mut rng, 10));
        jobs = jobs.child(listing);
    }

    Dataset {
        name: "jobs".to_string(),
        doc: jobs.into_document(),
        schema: schema(),
        binding: binding(),
        keys: vec![Key::new("listing-ref", "/jobs/listing", &["@ref"]).expect("static key")],
        fds: vec![company_hq_fd()],
        templates: templates(),
        config: EncoderConfig::new(
            config.gamma,
            vec![
                MarkableAttr::integer("listing", "salary", 50),
                MarkableAttr::integer("listing", "posted", 1),
                MarkableAttr::text("listing", "hq"),
                MarkableAttr::text("listing", "summary"),
            ],
        ),
    }
}

/// The structural schema of the jobs documents.
pub fn schema() -> Schema {
    Schema::new("jobs-v1", "jobs")
        .declare(ElementDecl::parent(
            "jobs",
            vec![child("listing", Occurs::ZeroOrMore)],
        ))
        .declare(
            ElementDecl::parent(
                "listing",
                vec![
                    child("company", Occurs::One),
                    child("role", Occurs::One),
                    child("location", Occurs::One),
                    child("hq", Occurs::One),
                    child("salary", Occurs::One),
                    child("posted", Occurs::One),
                    child("summary", Occurs::One),
                ],
            )
            .with_attr("ref", true, DataType::Text),
        )
        .declare(ElementDecl::leaf("company", DataType::Text))
        .declare(ElementDecl::leaf("role", DataType::Text))
        .declare(ElementDecl::leaf("location", DataType::Text))
        .declare(ElementDecl::leaf("hq", DataType::Text))
        .declare(ElementDecl::leaf("salary", DataType::Integer))
        .declare(ElementDecl::leaf("posted", DataType::Integer))
        .declare(ElementDecl::leaf("summary", DataType::Text))
}

/// The binding of the logical listing entity.
pub fn binding() -> SchemaBinding {
    SchemaBinding::new(
        "jobs-flat",
        vec![EntityBinding::new(
            "listing",
            "/jobs/listing",
            "ref",
            vec![
                ("ref", AttrBinding::Attribute("ref".into())),
                ("company", AttrBinding::ChildText("company".into())),
                ("role", AttrBinding::ChildText("role".into())),
                ("location", AttrBinding::ChildText("location".into())),
                ("hq", AttrBinding::ChildText("hq".into())),
                ("salary", AttrBinding::ChildText("salary".into())),
                ("posted", AttrBinding::ChildText("posted".into())),
                ("summary", AttrBinding::ChildText("summary".into())),
            ],
        )
        .expect("static binding")],
    )
}

/// `company → hq`.
pub fn company_hq_fd() -> Fd {
    Fd::new("company-hq", "/jobs/listing", &["company"], &["hq"]).expect("static fd")
}

/// Usability templates: what does listing X pay, where is it, who posts
/// it, and when was it posted.
pub fn templates() -> Vec<QueryTemplate> {
    vec![
        QueryTemplate::new("salary-of", "listing", "salary"),
        QueryTemplate::new("location-of", "listing", "location"),
        QueryTemplate::new("company-of", "listing", "company"),
        QueryTemplate::new("posted-on", "listing", "posted"),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use wmx_schema::validate;

    #[test]
    fn generated_document_is_schema_valid() {
        let ds = generate(&JobsConfig::default());
        assert_eq!(validate(&ds.doc, &ds.schema), vec![]);
    }

    #[test]
    fn keys_and_fds_hold() {
        let ds = generate(&JobsConfig {
            records: 250,
            companies: 6,
            ..JobsConfig::default()
        });
        for key in &ds.keys {
            assert!(key.verify(&ds.doc).is_empty());
        }
        for fd in &ds.fds {
            assert!(fd.verify(&ds.doc).is_empty());
        }
    }

    #[test]
    fn salaries_are_integers() {
        let ds = generate(&JobsConfig::default());
        let listing = ds.binding.entity("listing").unwrap();
        for instance in listing.instances(&ds.doc).iter().take(20) {
            let salary = listing.attr_value(&ds.doc, instance, "salary").unwrap();
            assert!(salary.parse::<u64>().is_ok(), "bad salary {salary}");
        }
    }

    #[test]
    fn company_groups_are_redundant() {
        let ds = generate(&JobsConfig {
            records: 120,
            companies: 4,
            ..JobsConfig::default()
        });
        let groups = wmx_schema::discover_groups(&ds.doc, &ds.fds);
        assert_eq!(groups.len(), 4);
        assert!(groups.iter().all(|g| g.is_redundant()));
    }
}
