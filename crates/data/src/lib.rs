//! Deterministic synthetic datasets for the WmXML demonstration.
//!
//! The demo applies the system to "a few sets of real world
//! semi-structured data"; these generators produce structurally
//! equivalent data, seeded and reproducible:
//!
//! * [`publications`] — the paper's own db1.xml publications database
//!   (Fig. 1a), with the `editor → publisher` FD that drives the
//!   redundancy experiments;
//! * [`jobs`] — the §1 motivating example: a job agent's listings, with a
//!   `company → hq` FD and salary/posted-date numeric capacity;
//! * [`library`] — a commercial digital library: records with page
//!   counts, prices, text abstracts, and base64 cover images (one markable
//!   attribute per plug-in type);
//! * [`image`] — the tiny `WMIMG` raster payload format used for image
//!   capacity.
//!
//! Every generator returns a [`Dataset`]: the document plus the semantic
//! package a WmXML user supplies (binding, keys, FDs, usability
//! templates, encoder config).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod image;
pub mod jobs;
pub mod library;
pub mod publications;
pub mod text;

use wmx_core::{EncoderConfig, QueryTemplate};
use wmx_rewrite::SchemaBinding;
use wmx_schema::{Fd, Key, Schema};
use wmx_xml::Document;

/// A generated document together with its semantic package.
#[derive(Debug, Clone)]
pub struct Dataset {
    /// Short dataset name.
    pub name: String,
    /// The document.
    pub doc: Document,
    /// Structural schema.
    pub schema: Schema,
    /// Binding of logical entities onto the document's schema.
    pub binding: SchemaBinding,
    /// Declared keys.
    pub keys: Vec<Key>,
    /// Declared functional dependencies.
    pub fds: Vec<Fd>,
    /// Usability query templates.
    pub templates: Vec<QueryTemplate>,
    /// Default encoder configuration (γ, markable attributes).
    pub config: EncoderConfig,
}
