//! Schema semantics for WmXML.
//!
//! The paper's identifier construction (§2.3) is driven by *essential
//! semantics*: the structural schema the data is validated against, the
//! **keys** that differentiate entity instances, and the **functional
//! dependencies** that generate redundancy. This crate makes those three
//! notions first-class:
//!
//! * [`model`] / [`validate`](mod@validate) — a structural schema (element content
//!   models, typed leaves, attribute declarations) and instance
//!   validation, corresponding to the paper's "specify a schema and
//!   validate the XML data according to the schema";
//! * [`infer`] — schema inference from an instance document, for the demo
//!   flow where the user starts from data rather than a schema;
//! * [`key`] — XML keys: an entity selector plus key paths whose values
//!   uniquely identify each instance (e.g. `title` is the key of `book`);
//! * [`fd`] — functional dependencies `X → Y` scoped to an entity (e.g.
//!   `editor → publisher` among books);
//! * [`redundancy`] — FD-induced duplicate groups: the sets of value
//!   nodes that must carry one consistent watermark mark, WmXML's answer
//!   to the paper's challenge (C).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fd;
pub mod infer;
pub mod key;
pub mod model;
pub mod redundancy;
pub mod validate;

pub use fd::{Fd, FdViolation};
pub use infer::infer_schema;
pub use key::{Key, KeyViolation};
pub use model::{child, AttrDecl, ChildDecl, ContentModel, DataType, ElementDecl, Occurs, Schema};
pub use redundancy::{discover_groups, discover_groups_with, RedundancyGroup};
pub use validate::{validate, ValidationIssue};

/// Errors raised while constructing schema artifacts (bad selector
/// queries and the like).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SchemaError {
    /// Human-readable description.
    pub message: String,
}

impl SchemaError {
    /// Creates an error.
    pub fn new(message: impl Into<String>) -> Self {
        SchemaError {
            message: message.into(),
        }
    }
}

impl std::fmt::Display for SchemaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for SchemaError {}

impl From<wmx_xpath::XPathError> for SchemaError {
    fn from(e: wmx_xpath::XPathError) -> Self {
        SchemaError::new(format!("selector query error: {e}"))
    }
}
