//! Instance validation against a [`Schema`].
//!
//! Validation is the first step of the watermarking pipeline (§2.2 step
//! 1: "Specify a schema and validate the XML data according to the
//! schema"). It returns *all* issues rather than failing fast, because
//! the demo UI reports them as a list.

use crate::model::{ContentModel, DataType, Schema};
use std::collections::BTreeMap;
use wmx_xml::{Document, NodeId, NodeKind};

/// One validation finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ValidationIssue {
    /// Path of the offending element (e.g. `/db/book`).
    pub path: String,
    /// Description of the problem.
    pub message: String,
}

impl std::fmt::Display for ValidationIssue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.path, self.message)
    }
}

/// Validates `doc` against `schema`, returning all issues found (empty
/// means valid).
pub fn validate(doc: &Document, schema: &Schema) -> Vec<ValidationIssue> {
    let mut issues = Vec::new();
    let Some(root) = doc.root_element() else {
        issues.push(ValidationIssue {
            path: "/".into(),
            message: "document has no root element".into(),
        });
        return issues;
    };
    let root_name = doc.name(root).unwrap_or_default();
    if root_name != schema.root {
        issues.push(ValidationIssue {
            path: format!("/{root_name}"),
            message: format!(
                "root element is <{root_name}>, schema {} expects <{}>",
                schema.name, schema.root
            ),
        });
        return issues;
    }
    validate_element(doc, root, schema, &mut issues);
    issues
}

fn validate_element(
    doc: &Document,
    element: NodeId,
    schema: &Schema,
    issues: &mut Vec<ValidationIssue>,
) {
    let name = doc.name(element).unwrap_or_default().to_string();
    let path = doc.path_of(element).unwrap_or_else(|| format!("<{name}>"));
    let Some(decl) = schema.element(&name) else {
        issues.push(ValidationIssue {
            path,
            message: format!("element <{name}> is not declared in schema {}", schema.name),
        });
        return;
    };

    // Attributes: required present, declared types respected. Undeclared
    // attributes are reported (data-centric schemas are closed).
    for attr in decl.attributes.iter().filter(|a| a.required) {
        if doc.attribute(element, &attr.name).is_none() {
            issues.push(ValidationIssue {
                path: path.clone(),
                message: format!("missing required attribute \"{}\"", attr.name),
            });
        }
    }
    for present in doc.attributes(element) {
        let present_name = doc.attr_name(present);
        match decl.attr(present_name) {
            None => issues.push(ValidationIssue {
                path: path.clone(),
                message: format!("undeclared attribute \"{present_name}\""),
            }),
            Some(d) if !d.data_type.accepts(&present.value) => issues.push(ValidationIssue {
                path: path.clone(),
                message: format!(
                    "attribute \"{present_name}\" value {:?} is not a valid {}",
                    present.value, d.data_type
                ),
            }),
            Some(_) => {}
        }
    }

    match &decl.content {
        ContentModel::Empty => {
            if doc.children(element).iter().any(|&c| match doc.kind(c) {
                NodeKind::Element { .. } => true,
                NodeKind::Text(t) | NodeKind::CData(t) => !t.chars().all(char::is_whitespace),
                _ => false,
            }) {
                issues.push(ValidationIssue {
                    path,
                    message: format!("element <{name}> must be empty"),
                });
            }
        }
        ContentModel::Leaf(data_type) => {
            if doc.child_elements(element).next().is_some() {
                issues.push(ValidationIssue {
                    path: path.clone(),
                    message: format!("leaf element <{name}> contains child elements"),
                });
            }
            let text = doc.text_content(element);
            if !data_type.accepts(&text) {
                let shown: String = text.chars().take(24).collect();
                issues.push(ValidationIssue {
                    path,
                    message: format!("text {shown:?} is not a valid {data_type}"),
                });
            }
        }
        ContentModel::Children(children) => {
            // Count child elements by name; text is not allowed here.
            let mut counts: BTreeMap<&str, usize> = BTreeMap::new();
            for &c in doc.children(element) {
                match doc.kind(c) {
                    NodeKind::Element { name, .. } => {
                        *counts.entry(doc.resolve(*name)).or_default() += 1;
                    }
                    NodeKind::Text(t) | NodeKind::CData(t)
                        if !t.chars().all(char::is_whitespace) =>
                    {
                        issues.push(ValidationIssue {
                            path: path.clone(),
                            message: format!("unexpected text content in element-only <{name}>"),
                        });
                    }
                    _ => {}
                }
            }
            for slot in children {
                let count = counts.remove(slot.name.as_str()).unwrap_or(0);
                if !slot.occurs.admits(count) {
                    issues.push(ValidationIssue {
                        path: path.clone(),
                        message: format!(
                            "child <{}> occurs {count} times, multiplicity is {}",
                            slot.name, slot.occurs
                        ),
                    });
                }
            }
            for (unexpected, count) in counts {
                issues.push(ValidationIssue {
                    path: path.clone(),
                    message: format!("unexpected child <{unexpected}> ({count}x)"),
                });
            }
            for c in doc.child_elements(element) {
                validate_element(doc, c, schema, issues);
            }
        }
    }
    // Leaf datatype Base64Image exercises the same path as text leaves.
    let _ = DataType::Text;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{child, ElementDecl, Occurs, Schema};
    use wmx_xml::parse;

    fn pubs_schema() -> Schema {
        Schema::new("pubs", "db")
            .declare(ElementDecl::parent(
                "db",
                vec![child("book", Occurs::ZeroOrMore)],
            ))
            .declare(
                ElementDecl::parent(
                    "book",
                    vec![
                        child("title", Occurs::One),
                        child("author", Occurs::OneOrMore),
                        child("editor", Occurs::Optional),
                        child("year", Occurs::One),
                    ],
                )
                .with_attr("publisher", true, DataType::Text),
            )
            .declare(ElementDecl::leaf("title", DataType::Text))
            .declare(ElementDecl::leaf("author", DataType::Text))
            .declare(ElementDecl::leaf("editor", DataType::Text))
            .declare(ElementDecl::leaf("year", DataType::Integer))
    }

    #[test]
    fn valid_document_passes() {
        let doc = parse(
            r#"<db><book publisher="mkp"><title>T</title><author>A</author><year>1998</year></book></db>"#,
        )
        .unwrap();
        assert_eq!(validate(&doc, &pubs_schema()), vec![]);
    }

    #[test]
    fn wrong_root_reported() {
        let doc = parse("<catalog/>").unwrap();
        let issues = validate(&doc, &pubs_schema());
        assert_eq!(issues.len(), 1);
        assert!(issues[0].message.contains("expects <db>"));
    }

    #[test]
    fn missing_required_attribute() {
        let doc =
            parse("<db><book><title>T</title><author>A</author><year>1998</year></book></db>")
                .unwrap();
        let issues = validate(&doc, &pubs_schema());
        assert!(issues
            .iter()
            .any(|i| i.message.contains("missing required attribute")));
    }

    #[test]
    fn undeclared_attribute_and_element() {
        let doc = parse(
            r#"<db><book publisher="mkp" isbn="1"><title>T</title><author>A</author><year>1998</year><price>9</price></book></db>"#,
        )
        .unwrap();
        let issues = validate(&doc, &pubs_schema());
        assert!(issues
            .iter()
            .any(|i| i.message.contains("undeclared attribute")));
        assert!(issues
            .iter()
            .any(|i| i.message.contains("unexpected child <price>")));
    }

    #[test]
    fn multiplicity_violations() {
        let doc = parse(
            r#"<db><book publisher="mkp"><title>T</title><title>T2</title><year>1998</year></book></db>"#,
        )
        .unwrap();
        let issues = validate(&doc, &pubs_schema());
        assert!(issues
            .iter()
            .any(|i| i.message.contains("<title> occurs 2")));
        assert!(issues
            .iter()
            .any(|i| i.message.contains("<author> occurs 0")));
    }

    #[test]
    fn leaf_type_violation() {
        let doc = parse(
            r#"<db><book publisher="mkp"><title>T</title><author>A</author><year>next year</year></book></db>"#,
        )
        .unwrap();
        let issues = validate(&doc, &pubs_schema());
        assert!(issues
            .iter()
            .any(|i| i.message.contains("not a valid integer")));
    }

    #[test]
    fn leaf_with_children_reported() {
        let doc = parse(
            r#"<db><book publisher="mkp"><title><b>T</b></title><author>A</author><year>1998</year></book></db>"#,
        )
        .unwrap();
        let issues = validate(&doc, &pubs_schema());
        assert!(issues
            .iter()
            .any(|i| i.message.contains("contains child elements")));
    }

    #[test]
    fn text_in_element_only_content() {
        let doc = parse(
            r#"<db>stray<book publisher="mkp"><title>T</title><author>A</author><year>1998</year></book></db>"#,
        )
        .unwrap();
        let issues = validate(&doc, &pubs_schema());
        assert!(issues.iter().any(|i| i.message.contains("unexpected text")));
    }

    #[test]
    fn issue_paths_point_at_elements() {
        let doc =
            parse("<db><book><title>T</title><author>A</author><year>1998</year></book></db>")
                .unwrap();
        let issues = validate(&doc, &pubs_schema());
        assert!(issues.iter().all(|i| i.path.starts_with("/db")));
    }
}
