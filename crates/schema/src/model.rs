//! Structural schema model: element declarations, content models, typed
//! leaves, and attribute declarations.
//!
//! This is deliberately a *Rust-native* schema representation (built with
//! a fluent API or inferred from instances) rather than a DTD/XSD parser:
//! WmXML consumes the schema as a data structure, and the demo's schemas
//! are small. The model captures exactly what validation and watermark
//! capacity analysis need: which elements exist where, how often they may
//! repeat, and what type of data each leaf/attribute carries.

use std::collections::BTreeMap;
use std::fmt;

/// How many times a child element may occur within its parent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Occurs {
    /// Exactly once.
    One,
    /// Zero or one.
    Optional,
    /// One or more.
    OneOrMore,
    /// Zero or more.
    ZeroOrMore,
}

impl Occurs {
    /// Whether `count` occurrences satisfy this multiplicity.
    pub fn admits(self, count: usize) -> bool {
        match self {
            Occurs::One => count == 1,
            Occurs::Optional => count <= 1,
            Occurs::OneOrMore => count >= 1,
            Occurs::ZeroOrMore => true,
        }
    }

    /// Whether more than one occurrence is allowed.
    pub fn repeatable(self) -> bool {
        matches!(self, Occurs::OneOrMore | Occurs::ZeroOrMore)
    }
}

impl fmt::Display for Occurs {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Occurs::One => "1",
            Occurs::Optional => "?",
            Occurs::OneOrMore => "+",
            Occurs::ZeroOrMore => "*",
        };
        write!(f, "{s}")
    }
}

/// The data type of a leaf element's text or an attribute value.
///
/// Types matter to WmXML because each type is served by a different
/// watermark embedding plug-in (the `WA_i` boxes of the paper's Fig. 4).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DataType {
    /// Free text.
    Text,
    /// An integer (embedding perturbs low-order digits within tolerance).
    Integer,
    /// A decimal number.
    Decimal,
    /// A base64-encoded grayscale raster image (see `wmx-data::image`).
    Base64Image,
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DataType::Text => "text",
            DataType::Integer => "integer",
            DataType::Decimal => "decimal",
            DataType::Base64Image => "base64-image",
        };
        write!(f, "{s}")
    }
}

impl DataType {
    /// Whether `value` conforms to the type.
    pub fn accepts(self, value: &str) -> bool {
        match self {
            DataType::Text => true,
            DataType::Integer => value.trim().parse::<i64>().is_ok(),
            DataType::Decimal => value.trim().parse::<f64>().is_ok(),
            DataType::Base64Image => wmx_crypto_free_base64_check(value),
        }
    }
}

/// Validates base64 text without pulling `wmx-crypto` into this crate:
/// the alphabet check is enough for schema validation (payload decoding
/// happens in the image plug-in).
fn wmx_crypto_free_base64_check(value: &str) -> bool {
    let stripped: Vec<u8> = value.bytes().filter(|b| !b.is_ascii_whitespace()).collect();
    if !stripped.len().is_multiple_of(4) {
        return false;
    }
    stripped
        .iter()
        .all(|&b| b.is_ascii_alphanumeric() || b == b'+' || b == b'/' || b == b'=')
}

/// An attribute declaration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AttrDecl {
    /// Attribute name.
    pub name: String,
    /// Whether the attribute must be present.
    pub required: bool,
    /// Value type.
    pub data_type: DataType,
}

/// What an element may contain.
#[derive(Debug, Clone, PartialEq)]
pub enum ContentModel {
    /// No content.
    Empty,
    /// Text content of the given type.
    Leaf(DataType),
    /// Element-only content: the listed children, in any order.
    Children(Vec<ChildDecl>),
}

/// A child slot in an element-only content model.
#[derive(Debug, Clone, PartialEq)]
pub struct ChildDecl {
    /// Name of the child element (declared in [`Schema::elements`]).
    pub name: String,
    /// Allowed multiplicity.
    pub occurs: Occurs,
}

/// Declaration of one element type.
#[derive(Debug, Clone, PartialEq)]
pub struct ElementDecl {
    /// Element name.
    pub name: String,
    /// Declared attributes.
    pub attributes: Vec<AttrDecl>,
    /// Content model.
    pub content: ContentModel,
}

impl ElementDecl {
    /// Creates a leaf element declaration.
    pub fn leaf(name: impl Into<String>, data_type: DataType) -> Self {
        ElementDecl {
            name: name.into(),
            attributes: Vec::new(),
            content: ContentModel::Leaf(data_type),
        }
    }

    /// Creates an element-only declaration.
    pub fn parent(name: impl Into<String>, children: Vec<ChildDecl>) -> Self {
        ElementDecl {
            name: name.into(),
            attributes: Vec::new(),
            content: ContentModel::Children(children),
        }
    }

    /// Adds an attribute declaration.
    pub fn with_attr(
        mut self,
        name: impl Into<String>,
        required: bool,
        data_type: DataType,
    ) -> Self {
        self.attributes.push(AttrDecl {
            name: name.into(),
            required,
            data_type,
        });
        self
    }

    /// Looks up a declared attribute.
    pub fn attr(&self, name: &str) -> Option<&AttrDecl> {
        self.attributes.iter().find(|a| a.name == name)
    }

    /// Looks up a declared child slot (for element-only content).
    pub fn child(&self, name: &str) -> Option<&ChildDecl> {
        match &self.content {
            ContentModel::Children(children) => children.iter().find(|c| c.name == name),
            _ => None,
        }
    }
}

/// A child slot shorthand constructor.
pub fn child(name: impl Into<String>, occurs: Occurs) -> ChildDecl {
    ChildDecl {
        name: name.into(),
        occurs,
    }
}

/// A named structural schema: a root element name plus one declaration
/// per element name.
///
/// Element names are global (no local types): the demo schemas — and the
/// vast majority of data-centric XML — use one meaning per tag name.
#[derive(Debug, Clone, PartialEq)]
pub struct Schema {
    /// Schema identifier, e.g. `"publications-v1"`.
    pub name: String,
    /// Name of the root element.
    pub root: String,
    /// Declarations keyed by element name.
    pub elements: BTreeMap<String, ElementDecl>,
}

impl Schema {
    /// Creates a schema with the given root; declarations are added with
    /// [`Schema::declare`].
    pub fn new(name: impl Into<String>, root: impl Into<String>) -> Self {
        Schema {
            name: name.into(),
            root: root.into(),
            elements: BTreeMap::new(),
        }
    }

    /// Adds (or replaces) an element declaration.
    pub fn declare(mut self, decl: ElementDecl) -> Self {
        self.elements.insert(decl.name.clone(), decl);
        self
    }

    /// Looks up an element declaration.
    pub fn element(&self, name: &str) -> Option<&ElementDecl> {
        self.elements.get(name)
    }

    /// The root element declaration, if declared.
    pub fn root_element(&self) -> Option<&ElementDecl> {
        self.elements.get(&self.root)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn occurs_admits() {
        assert!(Occurs::One.admits(1));
        assert!(!Occurs::One.admits(0));
        assert!(!Occurs::One.admits(2));
        assert!(Occurs::Optional.admits(0));
        assert!(!Occurs::Optional.admits(2));
        assert!(Occurs::OneOrMore.admits(3));
        assert!(!Occurs::OneOrMore.admits(0));
        assert!(Occurs::ZeroOrMore.admits(0));
        assert!(Occurs::ZeroOrMore.admits(100));
    }

    #[test]
    fn data_type_accepts() {
        assert!(DataType::Integer.accepts("1998"));
        assert!(DataType::Integer.accepts(" -5 "));
        assert!(!DataType::Integer.accepts("19.98"));
        assert!(DataType::Decimal.accepts("19.98"));
        assert!(!DataType::Decimal.accepts("abc"));
        assert!(DataType::Text.accepts("anything"));
        assert!(DataType::Base64Image.accepts("Zm9vYmFy"));
        assert!(DataType::Base64Image.accepts("Zm9v\nYmFy"));
        assert!(!DataType::Base64Image.accepts("not base64!"));
        assert!(!DataType::Base64Image.accepts("abc"));
    }

    #[test]
    fn schema_building_and_lookup() {
        let schema = Schema::new("pubs", "db")
            .declare(ElementDecl::parent(
                "db",
                vec![child("book", Occurs::ZeroOrMore)],
            ))
            .declare(
                ElementDecl::parent(
                    "book",
                    vec![
                        child("title", Occurs::One),
                        child("author", Occurs::OneOrMore),
                        child("year", Occurs::One),
                    ],
                )
                .with_attr("publisher", true, DataType::Text),
            )
            .declare(ElementDecl::leaf("title", DataType::Text))
            .declare(ElementDecl::leaf("author", DataType::Text))
            .declare(ElementDecl::leaf("year", DataType::Integer));

        let book = schema.element("book").unwrap();
        assert!(book.attr("publisher").unwrap().required);
        assert_eq!(book.child("author").unwrap().occurs, Occurs::OneOrMore);
        assert!(book.child("missing").is_none());
        assert_eq!(schema.root_element().unwrap().name, "db");
    }

    #[test]
    fn display_impls() {
        assert_eq!(Occurs::OneOrMore.to_string(), "+");
        assert_eq!(DataType::Integer.to_string(), "integer");
    }
}
