//! FD-induced redundancy groups.
//!
//! For an FD `X → Y`, all entity instances sharing a determinant tuple
//! hold *copies of the same logical `Y` value*. The paper's challenge (C)
//! observes that if those copies were watermarked independently, "the
//! watermark can be erased easily by making all the duplicates identical".
//! A [`RedundancyGroup`] materializes one such duplicate set so the
//! encoder can (a) treat it as a *single* watermark unit identified by
//! the FD name and determinant tuple (not by any entity key), and (b)
//! write the *same* mark into every member.

use crate::fd::Fd;
use std::collections::BTreeMap;
use wmx_xml::Document;
use wmx_xpath::{Evaluator, NodeRef};

/// One group of FD-duplicated value nodes.
#[derive(Debug, Clone)]
pub struct RedundancyGroup {
    /// Name of the FD that generates the duplication.
    pub fd_name: String,
    /// The shared determinant tuple.
    pub lhs: Vec<String>,
    /// The logical dependent tuple (from the first instance).
    pub rhs_value: Vec<String>,
    /// All value nodes holding copies of the dependent tuple, across all
    /// instances in the group (instance-major order).
    pub members: Vec<NodeRef>,
    /// Number of entity instances contributing to the group.
    pub instance_count: usize,
}

impl RedundancyGroup {
    /// A stable identity for the group, independent of which or how many
    /// duplicates survive an attack: the FD name plus determinant tuple.
    pub fn unit_id(&self) -> String {
        format!("fd:{}|lhs={}", self.fd_name, self.lhs.join("\u{1f}"))
    }

    /// Whether the group actually contains duplicates (≥ 2 members).
    pub fn is_redundant(&self) -> bool {
        self.members.len() >= 2
    }
}

/// Discovers all redundancy groups induced by `fds` over `doc`.
///
/// Instances missing the determinant or dependent are skipped (they are
/// outside the FD's scope). Groups are returned in deterministic order
/// (by FD, then determinant tuple).
pub fn discover_groups(doc: &Document, fds: &[Fd]) -> Vec<RedundancyGroup> {
    discover_groups_with(&Evaluator::new(doc), fds)
}

/// [`discover_groups`] through a shared [`Evaluator`], so the caller's
/// memoized symbol resolutions carry across the per-instance
/// determinant/dependent tuple evaluations.
pub fn discover_groups_with(evaluator: &Evaluator<'_>, fds: &[Fd]) -> Vec<RedundancyGroup> {
    let mut out = Vec::new();
    for fd in fds {
        let mut groups: BTreeMap<Vec<String>, RedundancyGroup> = BTreeMap::new();
        for instance in fd.entity.select_with(evaluator) {
            let (Some(lhs), Some(rhs)) = (
                fd.lhs_of_with(evaluator, &instance),
                fd.rhs_of_with(evaluator, &instance),
            ) else {
                continue;
            };
            let members = fd.rhs_nodes_with(evaluator, &instance);
            let group = groups
                .entry(lhs.clone())
                .or_insert_with(|| RedundancyGroup {
                    fd_name: fd.name.clone(),
                    lhs,
                    rhs_value: rhs,
                    members: Vec::new(),
                    instance_count: 0,
                });
            group.members.extend(members);
            group.instance_count += 1;
        }
        out.extend(groups.into_values());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use wmx_xml::parse;

    fn doc() -> Document {
        parse(
            r#"<db>
                <book publisher="mkp"><title>A</title><editor>Potter</editor></book>
                <book publisher="mkp"><title>B</title><editor>Potter</editor></book>
                <book publisher="mkp"><title>C</title><editor>Potter</editor></book>
                <book publisher="acm"><title>D</title><editor>Gamer</editor></book>
            </db>"#,
        )
        .unwrap()
    }

    fn fd() -> Fd {
        Fd::new("editor-publisher", "//book", &["editor"], &["@publisher"]).unwrap()
    }

    #[test]
    fn groups_by_determinant() {
        let doc = doc();
        let groups = discover_groups(&doc, &[fd()]);
        assert_eq!(groups.len(), 2);
        let potter = groups.iter().find(|g| g.lhs == vec!["Potter"]).unwrap();
        assert_eq!(potter.members.len(), 3);
        assert_eq!(potter.instance_count, 3);
        assert_eq!(potter.rhs_value, vec!["mkp"]);
        assert!(potter.is_redundant());

        let gamer = groups.iter().find(|g| g.lhs == vec!["Gamer"]).unwrap();
        assert_eq!(gamer.members.len(), 1);
        assert!(!gamer.is_redundant());
    }

    #[test]
    fn unit_id_is_entity_independent() {
        let doc = doc();
        let groups = discover_groups(&doc, &[fd()]);
        let potter = groups.iter().find(|g| g.lhs == vec!["Potter"]).unwrap();
        let id = potter.unit_id();
        assert!(id.contains("editor-publisher"));
        assert!(id.contains("Potter"));
        // Removing one duplicate must not change the unit id.
        let smaller = parse(
            r#"<db>
                <book publisher="mkp"><title>A</title><editor>Potter</editor></book>
            </db>"#,
        )
        .unwrap();
        let groups2 = discover_groups(&smaller, &[fd()]);
        assert_eq!(groups2[0].unit_id(), id);
    }

    #[test]
    fn group_members_are_value_nodes() {
        let doc = doc();
        let groups = discover_groups(&doc, &[fd()]);
        for g in &groups {
            for m in &g.members {
                assert_eq!(m.string_value(&doc), g.rhs_value[0]);
            }
        }
    }

    #[test]
    fn multiple_fds_yield_separate_groups() {
        let doc = parse(
            r#"<db>
                <book publisher="mkp" country="us"><title>A</title><editor>P</editor></book>
                <book publisher="mkp" country="us"><title>B</title><editor>P</editor></book>
            </db>"#,
        )
        .unwrap();
        let fd1 = Fd::new("ed-pub", "//book", &["editor"], &["@publisher"]).unwrap();
        let fd2 = Fd::new("pub-country", "//book", &["@publisher"], &["@country"]).unwrap();
        let groups = discover_groups(&doc, &[fd1, fd2]);
        assert_eq!(groups.len(), 2);
        assert!(groups.iter().any(|g| g.fd_name == "ed-pub"));
        assert!(groups.iter().any(|g| g.fd_name == "pub-country"));
    }

    #[test]
    fn empty_without_fds() {
        assert!(discover_groups(&doc(), &[]).is_empty());
    }
}
