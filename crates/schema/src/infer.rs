//! Schema inference from an instance document.
//!
//! The demo lets a user point WmXML at "a few sets of real world
//! semi-structured data"; inference bootstraps a structural schema from
//! such data so keys/FDs can be declared against it. The inferred schema
//! is intentionally conservative: multiplicities are the loosest observed
//! (`?`/`*` when absent somewhere, `+`/`*` when repeated somewhere), and
//! leaf types are the narrowest type accepted by *all* observed values
//! (integer ⊂ decimal ⊂ text).

use crate::model::{AttrDecl, ChildDecl, ContentModel, DataType, ElementDecl, Occurs, Schema};
use std::collections::{BTreeMap, BTreeSet};
use wmx_xml::{Document, NodeId};

#[derive(Default)]
struct ElementStats {
    /// Child name → (min occurrences across instances, max occurrences).
    child_counts: BTreeMap<String, (usize, usize)>,
    /// Orders in which children were first seen, to keep declaration
    /// order stable and human-readable.
    child_order: Vec<String>,
    /// Attribute name → seen-on-every-instance?
    attrs: BTreeMap<String, bool>,
    attr_order: Vec<String>,
    attr_values: BTreeMap<String, Vec<String>>,
    /// Number of instances seen.
    instances: usize,
    /// Text values observed (leaf candidates).
    text_values: Vec<String>,
    /// Did any instance have element children?
    has_element_children: bool,
    /// Did any instance have non-whitespace text?
    has_text: bool,
}

/// Infers a structural schema from `doc`.
pub fn infer_schema(doc: &Document, schema_name: &str) -> Schema {
    let Some(root) = doc.root_element() else {
        return Schema::new(schema_name, "empty");
    };
    let mut stats: BTreeMap<String, ElementStats> = BTreeMap::new();
    collect(doc, root, &mut stats);

    let root_name = doc.name(root).unwrap_or("root").to_string();
    let mut schema = Schema::new(schema_name, root_name);
    for (name, stat) in &stats {
        schema = schema.declare(build_decl(name, stat));
    }
    schema
}

fn collect(doc: &Document, element: NodeId, stats: &mut BTreeMap<String, ElementStats>) {
    let name = doc.name(element).unwrap_or_default().to_string();

    // Per-instance child counts.
    let mut counts: BTreeMap<String, usize> = BTreeMap::new();
    let mut order: Vec<String> = Vec::new();
    for c in doc.child_elements(element) {
        let child_name = doc.name(c).unwrap_or_default().to_string();
        if !counts.contains_key(&child_name) {
            order.push(child_name.clone());
        }
        *counts.entry(child_name).or_default() += 1;
    }
    let has_element_children = !counts.is_empty();
    let text = doc.text_content(element);
    let has_text = !text.chars().all(char::is_whitespace);

    let stat = stats.entry(name).or_default();
    stat.instances += 1;
    stat.has_element_children |= has_element_children;
    if has_text && !has_element_children {
        stat.has_text = true;
        stat.text_values.push(text);
    }
    for child_name in order {
        if !stat.child_counts.contains_key(&child_name) {
            stat.child_order.push(child_name.clone());
        }
    }
    // Merge child counts: children absent in this instance get min 0.
    let all_names: BTreeSet<String> = stat
        .child_counts
        .keys()
        .cloned()
        .chain(counts.keys().cloned())
        .collect();
    let first_instance = stat.instances == 1;
    for child_name in all_names {
        let here = counts.get(&child_name).copied().unwrap_or(0);
        // A child first observed on a later instance was absent before,
        // so its minimum is 0 regardless of this instance's count.
        let fresh_min = if first_instance { usize::MAX } else { 0 };
        let entry = stat
            .child_counts
            .entry(child_name)
            .or_insert((fresh_min, 0));
        entry.0 = entry.0.min(here);
        entry.1 = entry.1.max(here);
    }

    // Attributes.
    let present: BTreeSet<String> = doc
        .attributes(element)
        .iter()
        .map(|a| doc.attr_name(a).to_string())
        .collect();
    for attr in doc.attributes(element) {
        let attr_name = doc.attr_name(attr);
        if !stat.attrs.contains_key(attr_name) {
            stat.attr_order.push(attr_name.to_string());
            // Required so far only if this is the first instance.
            stat.attrs
                .insert(attr_name.to_string(), stat.instances == 1);
        }
        stat.attr_values
            .entry(attr_name.to_string())
            .or_default()
            .push(attr.value.as_str().to_string());
    }
    // Attributes previously thought required but absent here: demote.
    let known: Vec<String> = stat.attrs.keys().cloned().collect();
    for name in known {
        if !present.contains(&name) {
            stat.attrs.insert(name, false);
        }
    }

    for c in doc.child_elements(element) {
        collect(doc, c, stats);
    }
}

fn narrowest_type(values: &[String]) -> DataType {
    if !values.is_empty() && values.iter().all(|v| DataType::Integer.accepts(v)) {
        DataType::Integer
    } else if !values.is_empty() && values.iter().all(|v| DataType::Decimal.accepts(v)) {
        DataType::Decimal
    } else {
        DataType::Text
    }
}

fn build_decl(name: &str, stat: &ElementStats) -> ElementDecl {
    let attributes: Vec<AttrDecl> = stat
        .attr_order
        .iter()
        .map(|attr_name| AttrDecl {
            name: attr_name.clone(),
            required: stat.attrs.get(attr_name).copied().unwrap_or(false),
            data_type: narrowest_type(
                stat.attr_values
                    .get(attr_name)
                    .map(Vec::as_slice)
                    .unwrap_or(&[]),
            ),
        })
        .collect();

    let content = if stat.has_element_children {
        let children = stat
            .child_order
            .iter()
            .map(|child_name| {
                let (min, max) = stat.child_counts[child_name];
                let occurs = match (min, max) {
                    (0, 0 | 1) => Occurs::Optional,
                    (0, _) => Occurs::ZeroOrMore,
                    (_, 1) => Occurs::One,
                    _ => Occurs::OneOrMore,
                };
                ChildDecl {
                    name: child_name.clone(),
                    occurs,
                }
            })
            .collect();
        ContentModel::Children(children)
    } else if stat.has_text {
        ContentModel::Leaf(narrowest_type(&stat.text_values))
    } else {
        ContentModel::Empty
    };

    ElementDecl {
        name: name.to_string(),
        attributes,
        content,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validate::validate;
    use wmx_xml::parse;

    #[test]
    fn infers_paper_db1_shape() {
        let doc = parse(
            r#"<db>
                <book publisher="mkp">
                    <title>Readings</title>
                    <author>Stonebraker</author>
                    <author>Hellerstein</author>
                    <editor>Harrypotter</editor>
                    <year>1998</year>
                </book>
                <book publisher="acm">
                    <title>Database Design</title>
                    <editor>Gamer</editor>
                    <year>1998</year>
                </book>
            </db>"#,
        )
        .unwrap();
        let schema = infer_schema(&doc, "inferred");
        assert_eq!(schema.root, "db");

        let db = schema.element("db").unwrap();
        assert_eq!(db.child("book").unwrap().occurs, Occurs::OneOrMore);

        let book = schema.element("book").unwrap();
        assert_eq!(book.child("title").unwrap().occurs, Occurs::One);
        // author: absent in book 2 but repeated in book 1 → ZeroOrMore.
        assert_eq!(book.child("author").unwrap().occurs, Occurs::ZeroOrMore);
        assert_eq!(book.child("editor").unwrap().occurs, Occurs::One);
        assert!(book.attr("publisher").unwrap().required);

        let year = schema.element("year").unwrap();
        assert_eq!(year.content, ContentModel::Leaf(DataType::Integer));
        let title = schema.element("title").unwrap();
        assert_eq!(title.content, ContentModel::Leaf(DataType::Text));
    }

    #[test]
    fn inferred_schema_validates_source_document() {
        let doc = parse(
            r#"<catalog><item sku="a1"><price>9.99</price></item><item sku="b2"><price>12.00</price><note/></item></catalog>"#,
        )
        .unwrap();
        let schema = infer_schema(&doc, "cat");
        assert_eq!(validate(&doc, &schema), vec![]);
    }

    #[test]
    fn numeric_type_narrowing() {
        let doc = parse("<r><v>1</v><v>2.5</v></r>").unwrap();
        let schema = infer_schema(&doc, "s");
        assert_eq!(
            schema.element("v").unwrap().content,
            ContentModel::Leaf(DataType::Decimal)
        );

        let doc = parse("<r><v>1</v><v>x</v></r>").unwrap();
        let schema = infer_schema(&doc, "s");
        assert_eq!(
            schema.element("v").unwrap().content,
            ContentModel::Leaf(DataType::Text)
        );
    }

    #[test]
    fn optional_attribute_detected() {
        let doc = parse(r#"<r><i a="1"/><i/></r>"#).unwrap();
        let schema = infer_schema(&doc, "s");
        assert!(!schema.element("i").unwrap().attr("a").unwrap().required);
    }

    #[test]
    fn empty_elements_inferred_empty() {
        let doc = parse("<r><sep/><sep/></r>").unwrap();
        let schema = infer_schema(&doc, "s");
        assert_eq!(schema.element("sep").unwrap().content, ContentModel::Empty);
    }
}
