//! XML keys.
//!
//! A key pairs an *entity selector* (an absolute query choosing the
//! entity instances, e.g. `//book`) with one or more *key parts*
//! (relative queries whose string-values identify an instance, e.g.
//! `title` or `@id`). The paper's running example: "attribute title could
//! work as the key of element book, as the title of each publication is
//! usually unique" (§2.3).
//!
//! Keys are what let WmXML's identity queries *differentiate* data
//! elements — challenge (A) — without relying on physical position.

use crate::SchemaError;
use std::fmt;
use wmx_xml::Document;
use wmx_xpath::{NodeRef, Query};

/// An XML key declaration.
#[derive(Debug, Clone)]
pub struct Key {
    /// Human-readable name, e.g. `"book-title"`.
    pub name: String,
    /// Absolute query selecting entity instances.
    pub entity: Query,
    /// Relative queries (from an instance) whose combined string-values
    /// form the key tuple.
    pub parts: Vec<Query>,
}

impl Key {
    /// Builds a key from query strings.
    pub fn new(name: &str, entity: &str, parts: &[&str]) -> Result<Self, SchemaError> {
        if parts.is_empty() {
            return Err(SchemaError::new(format!(
                "key {name} needs at least one part"
            )));
        }
        Ok(Key {
            name: name.to_string(),
            entity: Query::compile(entity)?,
            parts: parts
                .iter()
                .map(|p| Query::compile(p))
                .collect::<Result<_, _>>()?,
        })
    }

    /// All entity instances in `doc`.
    pub fn instances(&self, doc: &Document) -> Vec<NodeRef> {
        self.entity.select(doc)
    }

    /// The key tuple of one instance, or `None` when a part is missing.
    pub fn key_of(&self, doc: &Document, instance: &NodeRef) -> Option<Vec<String>> {
        let mut tuple = Vec::with_capacity(self.parts.len());
        for part in &self.parts {
            let hits = part.select_from(doc, instance.clone());
            let first = hits.first()?;
            tuple.push(first.string_value(doc));
        }
        Some(tuple)
    }

    /// Verifies the key over `doc`: every instance has a key tuple and no
    /// two instances share one.
    pub fn verify(&self, doc: &Document) -> Vec<KeyViolation> {
        let mut violations = Vec::new();
        let mut seen: std::collections::HashMap<Vec<String>, usize> =
            std::collections::HashMap::new();
        for (i, instance) in self.instances(doc).iter().enumerate() {
            match self.key_of(doc, instance) {
                None => violations.push(KeyViolation::MissingKey {
                    key: self.name.clone(),
                    instance_index: i,
                }),
                Some(tuple) => {
                    if let Some(&first) = seen.get(&tuple) {
                        violations.push(KeyViolation::Duplicate {
                            key: self.name.clone(),
                            tuple: tuple.clone(),
                            first_index: first,
                            duplicate_index: i,
                        });
                    } else {
                        seen.insert(tuple, i);
                    }
                }
            }
        }
        violations
    }
}

impl fmt::Display for Key {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "key {}: {} ⟨", self.name, self.entity)?;
        for (i, p) in self.parts.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{p}")?;
        }
        write!(f, "⟩")
    }
}

/// A key constraint violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KeyViolation {
    /// An instance is missing one of the key parts.
    MissingKey {
        /// Key name.
        key: String,
        /// Index of the offending instance in entity-selector order.
        instance_index: usize,
    },
    /// Two instances share the same key tuple.
    Duplicate {
        /// Key name.
        key: String,
        /// The shared tuple.
        tuple: Vec<String>,
        /// Index of the first instance with this tuple.
        first_index: usize,
        /// Index of the duplicate.
        duplicate_index: usize,
    },
}

impl fmt::Display for KeyViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KeyViolation::MissingKey {
                key,
                instance_index,
            } => {
                write!(f, "key {key}: instance #{instance_index} has no key value")
            }
            KeyViolation::Duplicate {
                key,
                tuple,
                first_index,
                duplicate_index,
            } => write!(
                f,
                "key {key}: instances #{first_index} and #{duplicate_index} share key {tuple:?}"
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wmx_xml::parse;

    fn db1() -> Document {
        parse(
            r#"<db>
                <book publisher="mkp"><title>Readings</title><year>1998</year></book>
                <book publisher="acm"><title>Database Design</title><year>1998</year></book>
            </db>"#,
        )
        .unwrap()
    }

    #[test]
    fn title_is_key_of_book() {
        let key = Key::new("book-title", "//book", &["title"]).unwrap();
        let doc = db1();
        assert_eq!(key.instances(&doc).len(), 2);
        assert!(key.verify(&doc).is_empty());
        let first = &key.instances(&doc)[0];
        assert_eq!(key.key_of(&doc, first).unwrap(), vec!["Readings"]);
    }

    #[test]
    fn duplicate_keys_detected() {
        let doc =
            parse(r#"<db><book><title>Same</title></book><book><title>Same</title></book></db>"#)
                .unwrap();
        let key = Key::new("book-title", "//book", &["title"]).unwrap();
        let violations = key.verify(&doc);
        assert_eq!(violations.len(), 1);
        assert!(
            matches!(&violations[0], KeyViolation::Duplicate { tuple, .. } if tuple == &vec!["Same".to_string()])
        );
    }

    #[test]
    fn missing_key_detected() {
        let doc = parse("<db><book><title>A</title></book><book/></db>").unwrap();
        let key = Key::new("book-title", "//book", &["title"]).unwrap();
        let violations = key.verify(&doc);
        assert_eq!(
            violations,
            vec![KeyViolation::MissingKey {
                key: "book-title".into(),
                instance_index: 1
            }]
        );
    }

    #[test]
    fn composite_key() {
        let doc = parse(
            r#"<db>
                <listing><company>Acme</company><role>DBA</role></listing>
                <listing><company>Acme</company><role>Dev</role></listing>
                <listing><company>Initech</company><role>DBA</role></listing>
            </db>"#,
        )
        .unwrap();
        let key = Key::new("listing", "//listing", &["company", "role"]).unwrap();
        assert!(key.verify(&doc).is_empty());
        let tuple = key.key_of(&doc, &key.instances(&doc)[1]).unwrap();
        assert_eq!(tuple, vec!["Acme", "Dev"]);
    }

    #[test]
    fn attribute_key_part() {
        let doc = parse(r#"<db><item sku="a"/><item sku="b"/></db>"#).unwrap();
        let key = Key::new("item-sku", "//item", &["@sku"]).unwrap();
        assert!(key.verify(&doc).is_empty());
    }

    #[test]
    fn empty_parts_rejected() {
        assert!(Key::new("bad", "//x", &[]).is_err());
        assert!(Key::new("bad", "//x[", &["y"]).is_err());
    }

    #[test]
    fn display_form() {
        let key = Key::new("book-title", "//book", &["title"]).unwrap();
        assert_eq!(key.to_string(), "key book-title: //book ⟨title⟩");
    }
}
