//! Functional dependencies over XML entities.
//!
//! The paper's example (§2.3, challenge (C)): "If each editor only works
//! for one publisher, there also exists functional dependency
//! `editor → publisher`." Such FDs create *redundancy* — the same
//! publisher value repeated across many books sharing an editor — which
//! an adversary can exploit by unifying the duplicates. WmXML therefore
//! treats each FD-determined value group as one logical unit (see
//! [`crate::redundancy`]).

use crate::SchemaError;
use std::collections::HashMap;
use std::fmt;
use wmx_xml::Document;
use wmx_xpath::{Evaluator, NodeRef, Query};

/// A functional dependency `lhs → rhs` scoped to an entity.
#[derive(Debug, Clone)]
pub struct Fd {
    /// Human-readable name, e.g. `"editor-publisher"`.
    pub name: String,
    /// Absolute query selecting the entity instances in scope.
    pub entity: Query,
    /// Determinant paths, relative to an instance.
    pub lhs: Vec<Query>,
    /// Dependent paths, relative to an instance.
    pub rhs: Vec<Query>,
}

impl Fd {
    /// Builds an FD from query strings.
    pub fn new(name: &str, entity: &str, lhs: &[&str], rhs: &[&str]) -> Result<Self, SchemaError> {
        if lhs.is_empty() || rhs.is_empty() {
            return Err(SchemaError::new(format!(
                "fd {name} needs at least one determinant and one dependent path"
            )));
        }
        Ok(Fd {
            name: name.to_string(),
            entity: Query::compile(entity)?,
            lhs: lhs
                .iter()
                .map(|p| Query::compile(p))
                .collect::<Result<_, _>>()?,
            rhs: rhs
                .iter()
                .map(|p| Query::compile(p))
                .collect::<Result<_, _>>()?,
        })
    }

    /// The determinant tuple of an instance (`None` if any part missing).
    pub fn lhs_of(&self, doc: &Document, instance: &NodeRef) -> Option<Vec<String>> {
        self.lhs_of_with(&Evaluator::new(doc), instance)
    }

    /// The determinant tuple, evaluated through a shared [`Evaluator`].
    pub fn lhs_of_with(
        &self,
        evaluator: &Evaluator<'_>,
        instance: &NodeRef,
    ) -> Option<Vec<String>> {
        tuple_of(evaluator, instance, &self.lhs)
    }

    /// The dependent tuple of an instance (`None` if any part missing).
    pub fn rhs_of(&self, doc: &Document, instance: &NodeRef) -> Option<Vec<String>> {
        self.rhs_of_with(&Evaluator::new(doc), instance)
    }

    /// The dependent tuple, evaluated through a shared [`Evaluator`].
    pub fn rhs_of_with(
        &self,
        evaluator: &Evaluator<'_>,
        instance: &NodeRef,
    ) -> Option<Vec<String>> {
        tuple_of(evaluator, instance, &self.rhs)
    }

    /// The dependent *value nodes* of an instance (the nodes a watermark
    /// mark would be written into).
    pub fn rhs_nodes(&self, doc: &Document, instance: &NodeRef) -> Vec<NodeRef> {
        self.rhs_nodes_with(&Evaluator::new(doc), instance)
    }

    /// The dependent value nodes, evaluated through a shared
    /// [`Evaluator`].
    pub fn rhs_nodes_with(&self, evaluator: &Evaluator<'_>, instance: &NodeRef) -> Vec<NodeRef> {
        self.rhs
            .iter()
            .flat_map(|q| q.select_from_with(evaluator, instance.clone()))
            .collect()
    }

    /// Verifies the FD: instances sharing a determinant tuple must share
    /// the dependent tuple.
    pub fn verify(&self, doc: &Document) -> Vec<FdViolation> {
        let mut violations = Vec::new();
        let mut groups: HashMap<Vec<String>, (usize, Vec<String>)> = HashMap::new();
        for (i, instance) in self.entity.select(doc).iter().enumerate() {
            let (Some(lhs), Some(rhs)) = (self.lhs_of(doc, instance), self.rhs_of(doc, instance))
            else {
                continue; // instances missing either side are out of scope
            };
            match groups.get(&lhs) {
                None => {
                    groups.insert(lhs, (i, rhs));
                }
                Some((first, expected)) if *expected != rhs => {
                    violations.push(FdViolation {
                        fd: self.name.clone(),
                        lhs,
                        first_index: *first,
                        conflicting_index: i,
                        expected: expected.clone(),
                        found: rhs,
                    });
                }
                Some(_) => {}
            }
        }
        violations
    }
}

fn tuple_of(evaluator: &Evaluator<'_>, instance: &NodeRef, parts: &[Query]) -> Option<Vec<String>> {
    let mut tuple = Vec::with_capacity(parts.len());
    for part in parts {
        let hits = part.select_from_with(evaluator, instance.clone());
        let first = hits.first()?;
        tuple.push(first.string_value(evaluator.document()));
    }
    Some(tuple)
}

impl fmt::Display for Fd {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let join = |qs: &[Query]| {
            qs.iter()
                .map(|q| q.to_string())
                .collect::<Vec<_>>()
                .join(", ")
        };
        write!(
            f,
            "fd {}: {} ⟨{} → {}⟩",
            self.name,
            self.entity,
            join(&self.lhs),
            join(&self.rhs)
        )
    }
}

/// An FD violation: two instances agree on the determinant but differ on
/// the dependent.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FdViolation {
    /// FD name.
    pub fd: String,
    /// Shared determinant tuple.
    pub lhs: Vec<String>,
    /// Index of the first instance in the group.
    pub first_index: usize,
    /// Index of the conflicting instance.
    pub conflicting_index: usize,
    /// Dependent tuple of the first instance.
    pub expected: Vec<String>,
    /// Dependent tuple of the conflicting instance.
    pub found: Vec<String>,
}

impl fmt::Display for FdViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "fd {}: instances #{} and #{} share {:?} but map to {:?} vs {:?}",
            self.fd, self.first_index, self.conflicting_index, self.lhs, self.expected, self.found
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wmx_xml::parse;

    /// db1-style data where editor → publisher holds.
    fn consistent() -> Document {
        parse(
            r#"<db>
                <book publisher="mkp"><title>A</title><editor>Potter</editor></book>
                <book publisher="mkp"><title>B</title><editor>Potter</editor></book>
                <book publisher="acm"><title>C</title><editor>Gamer</editor></book>
            </db>"#,
        )
        .unwrap()
    }

    fn editor_publisher() -> Fd {
        Fd::new("editor-publisher", "//book", &["editor"], &["@publisher"]).unwrap()
    }

    #[test]
    fn holds_on_consistent_data() {
        assert!(editor_publisher().verify(&consistent()).is_empty());
    }

    #[test]
    fn violation_detected() {
        let doc = parse(
            r#"<db>
                <book publisher="mkp"><title>A</title><editor>Potter</editor></book>
                <book publisher="acm"><title>B</title><editor>Potter</editor></book>
            </db>"#,
        )
        .unwrap();
        let violations = editor_publisher().verify(&doc);
        assert_eq!(violations.len(), 1);
        assert_eq!(violations[0].lhs, vec!["Potter"]);
        assert_eq!(violations[0].expected, vec!["mkp"]);
        assert_eq!(violations[0].found, vec!["acm"]);
    }

    #[test]
    fn rhs_nodes_point_at_value_nodes() {
        let doc = consistent();
        let fd = editor_publisher();
        let instances = fd.entity.select(&doc);
        let nodes = fd.rhs_nodes(&doc, &instances[0]);
        assert_eq!(nodes.len(), 1);
        assert_eq!(nodes[0].string_value(&doc), "mkp");
        assert!(matches!(nodes[0], NodeRef::Attribute { .. }));
    }

    #[test]
    fn instances_missing_either_side_skipped() {
        let doc = parse(
            r#"<db>
                <book publisher="mkp"><title>A</title></book>
                <book><title>B</title><editor>Potter</editor></book>
            </db>"#,
        )
        .unwrap();
        assert!(editor_publisher().verify(&doc).is_empty());
    }

    #[test]
    fn composite_determinant() {
        let doc = parse(
            r#"<db>
                <job><company>Acme</company><city>SF</city><office>101 Main</office></job>
                <job><company>Acme</company><city>SF</city><office>101 Main</office></job>
                <job><company>Acme</company><city>NY</city><office>5th Ave</office></job>
            </db>"#,
        )
        .unwrap();
        let fd = Fd::new("office", "//job", &["company", "city"], &["office"]).unwrap();
        assert!(fd.verify(&doc).is_empty());
    }

    #[test]
    fn construction_errors() {
        assert!(Fd::new("x", "//a", &[], &["b"]).is_err());
        assert!(Fd::new("x", "//a", &["b"], &[]).is_err());
        assert!(Fd::new("x", "//a[", &["b"], &["c"]).is_err());
    }

    #[test]
    fn display_form() {
        let fd = editor_publisher();
        assert_eq!(
            fd.to_string(),
            "fd editor-publisher: //book ⟨editor → @publisher⟩"
        );
    }
}
