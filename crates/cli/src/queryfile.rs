//! On-disk format for the safeguarded query set (`.wmxq`).
//!
//! §2.2: the user must "safeguard the set of queries (denoted by Q)
//! along with the secret key". This module gives that artifact a stable,
//! human-auditable representation: a versioned header followed by one
//! tab-separated record per query:
//!
//! ```text
//! #wmxq v1
//! int<TAB>key:book|DB Design|attr=year<TAB>/db/book[title = 'DB Design']/year
//! ```
//!
//! Unit ids and query texts are escaped (`\t`, `\n`, `\\`) so arbitrary
//! key values survive the round trip.

use wmx_core::{MarkKind, StoredQuery};
use wmx_schema::DataType;

/// Errors raised while reading a query file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryFileError {
    /// 1-based line number (0 for file-level errors).
    pub line: usize,
    /// Description.
    pub message: String,
}

impl std::fmt::Display for QueryFileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.line == 0 {
            write!(f, "{}", self.message)
        } else {
            write!(f, "line {}: {}", self.line, self.message)
        }
    }
}

impl std::error::Error for QueryFileError {}

const HEADER: &str = "#wmxq v1";

fn mark_tag(mark: MarkKind) -> &'static str {
    match mark {
        MarkKind::Value(DataType::Integer) => "int",
        MarkKind::Value(DataType::Decimal) => "dec",
        MarkKind::Value(DataType::Text) => "text",
        MarkKind::Value(DataType::Base64Image) => "img",
        MarkKind::SiblingOrder => "ord",
    }
}

fn parse_mark(tag: &str) -> Option<MarkKind> {
    Some(match tag {
        "int" => MarkKind::Value(DataType::Integer),
        "dec" => MarkKind::Value(DataType::Decimal),
        "text" => MarkKind::Value(DataType::Text),
        "img" => MarkKind::Value(DataType::Base64Image),
        "ord" => MarkKind::SiblingOrder,
        _ => return None,
    })
}

fn escape(field: &str) -> String {
    let mut out = String::with_capacity(field.len());
    for c in field.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\t' => out.push_str("\\t"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            other => out.push(other),
        }
    }
    out
}

fn unescape(field: &str) -> String {
    let mut out = String::with_capacity(field.len());
    let mut chars = field.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('t') => out.push('\t'),
            Some('n') => out.push('\n'),
            Some('r') => out.push('\r'),
            Some('\\') => out.push('\\'),
            Some(other) => {
                out.push('\\');
                out.push(other);
            }
            None => out.push('\\'),
        }
    }
    out
}

/// Serializes a query set.
pub fn to_string(queries: &[StoredQuery]) -> String {
    let mut out = String::from(HEADER);
    out.push('\n');
    for q in queries {
        out.push_str(mark_tag(q.mark));
        out.push('\t');
        out.push_str(&escape(&q.unit_id));
        out.push('\t');
        out.push_str(&escape(&q.xpath));
        out.push('\n');
    }
    out
}

/// Parses a query set. The logical form is not persisted; detection on a
/// reorganized schema must recover it via `wmx-rewrite` with the
/// original binding.
pub fn from_string(text: &str) -> Result<Vec<StoredQuery>, QueryFileError> {
    let mut lines = text.lines().enumerate();
    match lines.next() {
        Some((_, first)) if first.trim() == HEADER => {}
        Some((_, first)) => {
            return Err(QueryFileError {
                line: 1,
                message: format!("expected header {HEADER:?}, found {first:?}"),
            })
        }
        None => {
            return Err(QueryFileError {
                line: 0,
                message: "empty query file".to_string(),
            })
        }
    }
    let mut out = Vec::new();
    for (idx, line) in lines {
        if line.trim().is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.splitn(3, '\t');
        let (Some(tag), Some(unit_id), Some(xpath)) = (parts.next(), parts.next(), parts.next())
        else {
            return Err(QueryFileError {
                line: idx + 1,
                message: "expected three tab-separated fields".to_string(),
            });
        };
        let Some(mark) = parse_mark(tag) else {
            return Err(QueryFileError {
                line: idx + 1,
                message: format!("unknown mark kind {tag:?}"),
            });
        };
        let xpath = unescape(xpath);
        if wmx_xpath::Query::compile(&xpath).is_err() {
            return Err(QueryFileError {
                line: idx + 1,
                message: format!("query does not compile: {xpath}"),
            });
        }
        out.push(StoredQuery {
            unit_id: unescape(unit_id),
            xpath,
            logical: None,
            mark,
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<StoredQuery> {
        vec![
            StoredQuery {
                unit_id: "key:book|DB Design|attr=year".into(),
                xpath: "/db/book[title = 'DB Design']/year".into(),
                logical: None,
                mark: MarkKind::Value(DataType::Integer),
            },
            StoredQuery {
                unit_id: "fd:editor-publisher|lhs=Potter".into(),
                xpath: "/db/book[editor = 'Potter']/@publisher".into(),
                logical: None,
                mark: MarkKind::Value(DataType::Text),
            },
            StoredQuery {
                unit_id: "ord:book|A|attr=author".into(),
                xpath: "/db/book[title = 'A']/author".into(),
                logical: None,
                mark: MarkKind::SiblingOrder,
            },
        ]
    }

    #[test]
    fn roundtrip() {
        let text = to_string(&sample());
        let back = from_string(&text).unwrap();
        assert_eq!(back, sample());
    }

    #[test]
    fn weird_key_values_roundtrip() {
        let queries = vec![StoredQuery {
            unit_id: "key:book|Tab\there\nand newline|attr=year".into(),
            xpath: "/db/book[title = 'x']/year".into(),
            logical: None,
            mark: MarkKind::Value(DataType::Integer),
        }];
        let back = from_string(&to_string(&queries)).unwrap();
        assert_eq!(back, queries);
    }

    #[test]
    fn rejects_bad_header_and_lines() {
        assert!(from_string("").is_err());
        assert!(from_string("not a header\n").is_err());
        assert!(from_string("#wmxq v1\nonly-one-field\n").is_err());
        assert!(from_string("#wmxq v1\nzzz\tid\t/db/x\n").is_err());
        assert!(from_string("#wmxq v1\nint\tid\t/db/book[\n").is_err());
    }

    #[test]
    fn comments_and_blank_lines_skipped() {
        let text = "#wmxq v1\n\n# a comment\nint\tid\t/db/book/year\n";
        assert_eq!(from_string(text).unwrap().len(), 1);
    }

    #[test]
    fn all_mark_kinds_roundtrip() {
        for mark in [
            MarkKind::Value(DataType::Integer),
            MarkKind::Value(DataType::Decimal),
            MarkKind::Value(DataType::Text),
            MarkKind::Value(DataType::Base64Image),
            MarkKind::SiblingOrder,
        ] {
            let q = vec![StoredQuery {
                unit_id: "u".into(),
                xpath: "/a/b".into(),
                logical: None,
                mark,
            }];
            assert_eq!(from_string(&to_string(&q)).unwrap()[0].mark, mark);
        }
    }
}
