//! `wmxml` — command-line entry point.

use wmx_cli::args::Args;
use wmx_cli::commands::{run, usage};

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.is_empty() {
        println!("{}", usage());
        std::process::exit(1);
    }
    let args = match Args::parse(&argv) {
        Ok(args) => args,
        Err(e) => {
            eprintln!("error: {e}\n\n{}", usage());
            std::process::exit(1);
        }
    };
    match run(&args) {
        Ok(code) => std::process::exit(code),
        Err(message) => {
            eprintln!("error: {message}");
            std::process::exit(1);
        }
    }
}
