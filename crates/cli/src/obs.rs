//! CLI observability plumbing: `--telemetry-json`, `--audit-log`, and
//! `--trace` handling shared by the embed/detect commands.
//!
//! One [`Obs`] value brackets a command: [`Obs::begin`] enables trace
//! buffering when anything will consume it and pre-registers the
//! canonical metric catalog, [`Obs::finish`] drains the trace into the
//! audit event's per-phase timings, pretty-prints the span tree for
//! `--trace`, appends the audit line, and writes the validated
//! registry snapshot.

use std::path::Path;

use crate::args::Args;
use wmx_telemetry::{
    disable_trace, enable_trace, global, global_snapshot, phase_totals, render_trace, take_trace,
    validate_snapshot, AuditEvent, AuditSink,
};

/// Every metric the instrumented crates can emit, pre-registered (at
/// zero / empty) whenever a snapshot was requested. A single `wmx
/// detect` run exercises only part of the pipeline — a DOM detect
/// compiles no plan and streams no chunks — but consumers of the
/// snapshot still get the full catalog with zero values, the standard
/// metrics-exporter contract. Kept in one place so the README catalog,
/// this list, and the snapshot contents cannot drift apart.
pub const COUNTER_CATALOG: [&str; 17] = [
    "core.plan_cache.hits",
    "core.plan_cache.misses",
    "stream.records",
    "stream.chunks",
    "stream.votes",
    "stream.merges",
    "xpath.batch.calls",
    "xpath.batch.groups",
    "xpath.batch.answered",
    "xpath.batch.fallback",
    "lexer.text_spans_zero_copy",
    "lexer.text_spans_materialized",
    "detect.suspect_units",
    "detect.suspect_records",
    "detect.recovered_units",
    "recovery.repaired_nodes",
    "cli.invocations",
];

/// Histograms: the streaming chunk latencies plus one `span.<name>`
/// histogram per phase span the engines emit.
pub const HISTOGRAM_CATALOG: [&str; 15] = [
    "stream.chunk_micros",
    "span.parse",
    "span.serialize",
    "span.embed",
    "span.embed.plan",
    "span.embed.select",
    "span.embed.mark",
    "span.detect",
    "span.detect.resolve",
    "span.detect.select",
    "span.detect.extract",
    "span.detect.forensic",
    "span.stream_embed",
    "span.stream_detect",
    "span.recovery.repair",
];

/// Telemetry switches parsed from one command invocation.
#[derive(Debug, Default)]
pub struct Obs {
    telemetry_json: Option<String>,
    audit_log: Option<String>,
    trace: bool,
}

impl Obs {
    /// Reads `--telemetry-json`, `--audit-log`, and `--trace`.
    pub fn from_args(args: &Args) -> Obs {
        Obs {
            telemetry_json: args.optional("telemetry-json").map(str::to_string),
            audit_log: args.optional("audit-log").map(str::to_string),
            trace: args.optional("trace").is_some(),
        }
    }

    /// Arms tracing and warms the metric catalog. Call before the
    /// command does any instrumented work.
    pub fn begin(&self) {
        if self.trace || self.audit_log.is_some() {
            enable_trace();
            take_trace(); // start from a clean thread-local buffer
        }
        if self.telemetry_json.is_some() {
            let registry = global();
            for name in COUNTER_CATALOG {
                registry.counter(name);
            }
            for name in HISTOGRAM_CATALOG {
                registry.histogram(name);
            }
        }
        global().counter("cli.invocations").inc();
    }

    /// Completes the command's telemetry: fills `event.phases` from the
    /// trace, prints the span tree (`--trace`), appends the audit line
    /// (`--audit-log`), and writes the validated snapshot
    /// (`--telemetry-json`).
    pub fn finish(&self, mut event: AuditEvent) -> Result<(), String> {
        if self.trace || self.audit_log.is_some() {
            let events = take_trace();
            disable_trace();
            event.phases = phase_totals(&events)
                .into_iter()
                .map(|(name, micros)| (name.to_string(), micros))
                .collect();
            if self.trace {
                print!("{}", render_trace(&events));
            }
        }
        if let Some(path) = &self.audit_log {
            let sink = AuditSink::append_to(Path::new(path))
                .map_err(|e| format!("cannot open audit log {path}: {e}"))?;
            sink.record(&event)
                .map_err(|e| format!("cannot append to audit log {path}: {e}"))?;
        }
        if let Some(path) = &self.telemetry_json {
            let snapshot = global_snapshot();
            validate_snapshot(&snapshot)
                .map_err(|e| format!("telemetry snapshot failed validation: {e}"))?;
            std::fs::write(path, snapshot.to_pretty_string())
                .map_err(|e| format!("cannot write {path}: {e}"))?;
        }
        Ok(())
    }
}
