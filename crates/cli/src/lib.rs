//! Library backing the `wmxml` command-line tool.
//!
//! The demo paper walks a user through: pick a dataset, declare its
//! semantics, embed a watermark, save the query set, attack the data,
//! detect. The CLI packages that flow:
//!
//! ```text
//! wmxml generate --profile publications --records 500 --out db.xml
//! wmxml embed    --profile publications --in db.xml --key K \
//!                --message "© me" --bits 24 --out marked.xml --queries q.wmxq
//! wmxml attack   --in marked.xml --kind alteration --intensity 0.3 --out stolen.xml
//! wmxml detect   --profile publications --in stolen.xml --key K \
//!                --message "© me" --bits 24 --queries q.wmxq
//! ```
//!
//! [`queryfile`] defines the on-disk format of the safeguarded query set
//! (the artifact the paper says the user keeps together with the key).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod args;
pub mod commands;
pub mod obs;
pub mod profile;
pub mod queryfile;
