//! Minimal `--flag value` argument parsing (no external dependencies).

use std::collections::BTreeMap;

/// Parsed command line: a subcommand plus `--flag value` options.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Args {
    /// The subcommand (first positional argument).
    pub command: String,
    /// Flag → value map (flags without values get `"true"`).
    pub options: BTreeMap<String, String>,
}

/// Parse errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArgsError(pub String);

impl std::fmt::Display for ArgsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for ArgsError {}

impl Args {
    /// Parses an argument vector (without the program name).
    pub fn parse(argv: &[String]) -> Result<Self, ArgsError> {
        let mut iter = argv.iter().peekable();
        let command = iter
            .next()
            .ok_or_else(|| ArgsError("missing subcommand".to_string()))?
            .clone();
        if command.starts_with('-') {
            return Err(ArgsError(format!(
                "expected a subcommand, found flag {command:?}"
            )));
        }
        let mut options = BTreeMap::new();
        while let Some(arg) = iter.next() {
            let Some(flag) = arg.strip_prefix("--") else {
                return Err(ArgsError(format!("unexpected positional argument {arg:?}")));
            };
            let value = match iter.peek() {
                Some(next) if !next.starts_with("--") => {
                    let v = (*next).clone();
                    iter.next();
                    v
                }
                _ => "true".to_string(),
            };
            if options.insert(flag.to_string(), value).is_some() {
                return Err(ArgsError(format!("flag --{flag} given twice")));
            }
        }
        Ok(Args { command, options })
    }

    /// A required string option.
    pub fn required(&self, flag: &str) -> Result<&str, ArgsError> {
        self.options
            .get(flag)
            .map(String::as_str)
            .ok_or_else(|| ArgsError(format!("missing required flag --{flag}")))
    }

    /// An optional string option.
    pub fn optional(&self, flag: &str) -> Option<&str> {
        self.options.get(flag).map(String::as_str)
    }

    /// An optional parsed option with a default.
    pub fn parsed_or<T: std::str::FromStr>(&self, flag: &str, default: T) -> Result<T, ArgsError> {
        match self.options.get(flag) {
            None => Ok(default),
            Some(raw) => raw
                .parse()
                .map_err(|_| ArgsError(format!("flag --{flag} has invalid value {raw:?}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(parts: &[&str]) -> Vec<String> {
        parts.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_command_and_flags() {
        let args = Args::parse(&argv(&[
            "embed",
            "--in",
            "db.xml",
            "--bits",
            "24",
            "--verbose",
        ]))
        .unwrap();
        assert_eq!(args.command, "embed");
        assert_eq!(args.required("in").unwrap(), "db.xml");
        assert_eq!(args.parsed_or::<usize>("bits", 0).unwrap(), 24);
        assert_eq!(args.optional("verbose"), Some("true"));
        assert_eq!(args.optional("missing"), None);
    }

    #[test]
    fn defaults_apply() {
        let args = Args::parse(&argv(&["detect"])).unwrap();
        assert_eq!(args.parsed_or::<f64>("threshold", 0.85).unwrap(), 0.85);
    }

    #[test]
    fn errors() {
        assert!(Args::parse(&[]).is_err());
        assert!(Args::parse(&argv(&["--flag"])).is_err());
        assert!(Args::parse(&argv(&["cmd", "stray"])).is_err());
        assert!(Args::parse(&argv(&["cmd", "--a", "1", "--a", "2"])).is_err());
        let args = Args::parse(&argv(&["cmd", "--bits", "abc"])).unwrap();
        assert!(args.parsed_or::<usize>("bits", 1).is_err());
        assert!(args.required("nope").is_err());
    }
}
