//! Dataset profiles: the semantic package (binding, keys, FDs,
//! templates, encoder config) for each supported document family.
//!
//! A profile is what the demo user "discovers from the schema of the
//! copyrighted semi-structured data" and types into the UI; the CLI
//! ships the three demo families built in.

use wmx_core::EncoderConfig;
use wmx_core::QueryTemplate;
use wmx_data::{jobs, library, publications};
use wmx_rewrite::SchemaBinding;
use wmx_schema::{Fd, Key, Schema};

/// A named semantic package.
pub struct Profile {
    /// Profile name.
    pub name: &'static str,
    /// Structural schema.
    pub schema: Schema,
    /// Binding of logical entities.
    pub binding: SchemaBinding,
    /// Keys.
    pub keys: Vec<Key>,
    /// Functional dependencies.
    pub fds: Vec<Fd>,
    /// Usability templates.
    pub templates: Vec<QueryTemplate>,
    /// Default encoder configuration.
    pub config: EncoderConfig,
}

/// Resolves a profile by name.
pub fn resolve(name: &str) -> Option<Profile> {
    match name {
        "publications" => Some(Profile {
            name: "publications",
            schema: publications::schema(),
            binding: publications::binding(),
            keys: vec![Key::new("book-title", "/db/book", &["title"]).expect("static key")],
            fds: vec![publications::editor_publisher_fd()],
            templates: publications::templates(),
            config: default_config("publications"),
        }),
        "jobs" => Some(Profile {
            name: "jobs",
            schema: jobs::schema(),
            binding: jobs::binding(),
            keys: vec![Key::new("listing-ref", "/jobs/listing", &["@ref"]).expect("static key")],
            fds: vec![jobs::company_hq_fd()],
            templates: jobs::templates(),
            config: default_config("jobs"),
        }),
        "library" => Some(Profile {
            name: "library",
            schema: library::schema(),
            binding: library::binding(),
            keys: vec![Key::new("item-id", "/library/item", &["@id"]).expect("static key")],
            fds: Vec::new(),
            templates: library::templates(),
            config: default_config("library"),
        }),
        _ => None,
    }
}

/// Names of all built-in profiles.
pub const PROFILE_NAMES: &[&str] = &["publications", "jobs", "library"];

fn default_config(name: &str) -> EncoderConfig {
    use wmx_core::MarkableAttr;
    match name {
        "publications" => EncoderConfig::new(
            3,
            vec![
                MarkableAttr::integer("book", "year", 1),
                MarkableAttr::text("book", "publisher"),
            ],
        ),
        "jobs" => EncoderConfig::new(
            3,
            vec![
                MarkableAttr::integer("listing", "salary", 50),
                MarkableAttr::integer("listing", "posted", 1),
                MarkableAttr::text("listing", "hq"),
                MarkableAttr::text("listing", "summary"),
            ],
        ),
        _ => EncoderConfig::new(
            2,
            vec![
                MarkableAttr::integer("item", "pages", 1),
                MarkableAttr::decimal("item", "price", 0.02),
                MarkableAttr::text("item", "abstract"),
                MarkableAttr::image("item", "cover"),
            ],
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_profiles_resolve() {
        for name in PROFILE_NAMES {
            let p = resolve(name).unwrap_or_else(|| panic!("profile {name} missing"));
            assert_eq!(p.name, *name);
            assert!(!p.templates.is_empty());
            assert!(!p.config.markable.is_empty());
        }
        assert!(resolve("unknown").is_none());
    }

    #[test]
    fn profile_configs_match_generated_data() {
        let ds = wmx_data::publications::generate(&Default::default());
        let p = resolve("publications").unwrap();
        // The profile's binding reads the generated document.
        let entity = p.binding.entity("book").unwrap();
        assert!(!entity.instances(&ds.doc).is_empty());
        // Keys and FDs hold.
        for key in &p.keys {
            assert!(key.verify(&ds.doc).is_empty());
        }
        for fd in &p.fds {
            assert!(fd.verify(&ds.doc).is_empty());
        }
    }
}
