//! Subcommand implementations.

use crate::args::Args;
use crate::obs::Obs;
use crate::profile::{resolve, PROFILE_NAMES};
use crate::queryfile;
use std::fs;
use wmx_attacks::redundancy::UnifyStrategy;
use wmx_attacks::{AlterationAttack, ReductionAttack, RedundancyRemovalAttack, ShuffleAttack};
use wmx_core::{
    detect, detect_forensic, embed, measure_usability, DetectionInput, ForensicContext,
    ForensicsReport, UnitStatus, Watermark,
};
use wmx_crypto::SecretKey;
use wmx_data::{jobs, library, publications};
use wmx_telemetry::{span, AuditEvent};
use wmx_xml::{parse, to_pretty_string};

/// Runs a parsed command; returns the process exit code.
pub fn run(args: &Args) -> Result<i32, String> {
    match args.command.as_str() {
        "generate" => cmd_generate(args),
        "embed" => cmd_embed(args),
        "detect" => cmd_detect(args),
        "stream-embed" => cmd_stream_embed(args),
        "stream-detect" => cmd_stream_detect(args),
        "attack" => cmd_attack(args),
        "validate" => cmd_validate(args),
        "validate-telemetry" => cmd_validate_telemetry(args),
        "inspect" => cmd_inspect(args),
        "bench" => cmd_bench(args),
        "help" | "--help" => {
            println!("{}", usage());
            Ok(0)
        }
        other => Err(format!("unknown command {other:?}\n\n{}", usage())),
    }
}

/// The usage text.
pub fn usage() -> String {
    format!(
        "wmxml — WmXML watermarking system (VLDB 2005 reproduction)

USAGE: wmxml <command> [--flag value ...]

COMMANDS
  generate  --profile P --records N [--seed S] --out FILE
            synthesize a dataset document
  embed     --profile P --in FILE --key K --message M [--bits N]
            [--gamma G] [--redundancy R] --out FILE --queries FILE
            watermark a document; writes the marked XML and the query
            set; --redundancy R embeds each bit into R disjoint unit
            groups for error-correcting recovery (detect with the same R)
  detect    --in FILE --key K --message M [--bits N] [--threshold T]
            --queries FILE [--forensics [json] --profile P
            [--gamma G] [--redundancy R]]
            detect the watermark (exit 0 = detected, 2 = not detected,
            3 = detected but tampered); --forensics re-derives the
            marked units from the profile and localizes tampering to
            records (bare flag = summary, `--forensics json` = the full
            per-unit report)
  stream-embed
            --profile P --in FILE --key K --message M [--bits N]
            [--gamma G] [--redundancy R] [--workers W]
            --out FILE --queries FILE
            single-pass streaming embed: O(record) memory at --workers 1,
            parallel record chunking at --workers > 1; output bytes are
            identical to the DOM engine's compact serialization
  stream-detect
            --profile P --in FILE --key K --message M [--bits N]
            [--gamma G] [--redundancy R] [--threshold T] [--workers W]
            [--forensics [json]]
            single-pass detection without a query file (the key + profile
            re-derive the marked units); exit codes as for detect; with
            --forensics a truncated or garbled stream yields a partial
            verdict over the salvaged records instead of an error
  attack    --in FILE --kind alteration|reduction|shuffle|redundancy
            [--intensity X] [--seed S] [--profile P] --out FILE
            apply a demo attack
  validate  --profile P --in FILE
            validate against the profile schema, keys, and FDs
  validate-telemetry
            --in FILE [--audit FILE]
            check a --telemetry-json snapshot (and optionally an
            --audit-log file) against the telemetry schemas
            (exit 0 = valid, 2 = invalid)
  inspect   --in FILE
            print document statistics
  bench     [--suite smoke|full] [--out DIR] [--baseline FILE]
            [--write-baseline] [--no-compare]
            run the telemetry suite, write BENCH_<workload>.json,
            TELEMETRY_<workload>.json, and FORENSICS_<workload>.json,
            and gate against the checked-in baseline (exit 0 = pass,
            2 = throughput regression, detection-rate drop, or
            localization/recovery drop)

OBSERVABILITY (embed, detect, stream-embed, stream-detect)
  --telemetry-json FILE   write a schema-versioned metrics snapshot
  --audit-log FILE        append one JSON line per invocation (workload,
                          per-phase timings, vote totals, verdict)
  --trace                 pretty-print the span tree after the run

PROFILES: {}",
        PROFILE_NAMES.join(", ")
    )
}

fn read_doc(path: &str) -> Result<wmx_xml::Document, String> {
    let _s = span("parse");
    let text = fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    parse(&text).map_err(|e| format!("cannot parse {path}: {e}"))
}

fn write_file(path: &str, content: &str) -> Result<(), String> {
    fs::write(path, content).map_err(|e| format!("cannot write {path}: {e}"))
}

fn load_profile(args: &Args) -> Result<crate::profile::Profile, String> {
    let name = args.required("profile").map_err(|e| e.to_string())?;
    resolve(name).ok_or_else(|| {
        format!(
            "unknown profile {name:?}; available: {}",
            PROFILE_NAMES.join(", ")
        )
    })
}

/// The encoder configuration the embed/detect commands share: the
/// profile's defaults with the `--gamma` and `--redundancy` overrides
/// applied. Redundancy widens the effective watermark, so the same
/// value must be passed to embedding and (forensic) detection.
fn encoder_config(
    args: &Args,
    profile: &crate::profile::Profile,
) -> Result<wmx_core::EncoderConfig, String> {
    let mut config = profile.config.clone();
    config.gamma = args
        .parsed_or("gamma", config.gamma)
        .map_err(|e| e.to_string())?;
    let redundancy: u32 = args
        .parsed_or("redundancy", config.redundancy)
        .map_err(|e| e.to_string())?;
    if redundancy == 0 {
        return Err("--redundancy must be at least 1".to_string());
    }
    Ok(config.with_redundancy(redundancy))
}

/// How `--forensics` was requested on a detect command.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ForensicsMode {
    /// Flag absent: plain detection, no localization pass.
    Off,
    /// Bare `--forensics`: human-readable suspect-record summary.
    Summary,
    /// `--forensics json`: the full forensics report as JSON.
    Json,
}

fn forensics_mode(args: &Args) -> Result<ForensicsMode, String> {
    match args.optional("forensics") {
        None => Ok(ForensicsMode::Off),
        // A bare flag parses as the literal "true".
        Some("true") | Some("summary") => Ok(ForensicsMode::Summary),
        Some("json") => Ok(ForensicsMode::Json),
        Some(other) => Err(format!(
            "unknown --forensics mode {other:?}; use a bare --forensics for a summary or --forensics json"
        )),
    }
}

/// Renders the localization report: full JSON in `Json` mode, otherwise
/// a tally line plus the first flagged records.
fn print_forensics(f: &ForensicsReport, mode: ForensicsMode) {
    if mode == ForensicsMode::Json {
        println!("{}", f.to_json().to_pretty_string());
        return;
    }
    println!(
        "forensics: {} unit(s), {} selected: {} clean, {} suspect, {} recovered, {} unrecoverable",
        f.total_units,
        f.selected_units,
        f.clean_units,
        f.suspect_units,
        f.recovered_units,
        f.unrecoverable_units
    );
    println!("suspect records: {}/{}", f.suspect_records, f.records.len());
    let flagged: Vec<_> = f
        .records
        .iter()
        .filter(|r| {
            matches!(
                r.status,
                UnitStatus::Suspect | UnitStatus::Recovered | UnitStatus::Unrecoverable
            )
        })
        .collect();
    for r in flagged.iter().take(10) {
        println!(
            "  {} [{}]: {}/{} selected unit(s) suspect, {} recovered",
            r.record,
            r.status.label(),
            r.suspect_units,
            r.selected_units,
            r.recovered_units
        );
    }
    if flagged.len() > 10 {
        println!("  … and {} more flagged record(s)", flagged.len() - 10);
    }
}

/// Appends the forensic tallies to an audit event's `counts`.
fn forensic_counts(counts: &mut Vec<(String, u64)>, f: &ForensicsReport) {
    counts.push((
        "suspect_units".to_string(),
        (f.suspect_units + f.unrecoverable_units) as u64,
    ));
    counts.push(("suspect_records".to_string(), f.suspect_records as u64));
    counts.push(("recovered_units".to_string(), f.recovered_units as u64));
}

fn watermark_from(args: &Args) -> Result<Watermark, String> {
    let message = args.required("message").map_err(|e| e.to_string())?;
    let bits: usize = args.parsed_or("bits", 24).map_err(|e| e.to_string())?;
    if bits == 0 {
        return Err("--bits must be positive".to_string());
    }
    Ok(Watermark::from_message(message, bits))
}

fn cmd_generate(args: &Args) -> Result<i32, String> {
    let profile = args.required("profile").map_err(|e| e.to_string())?;
    let records: usize = args.parsed_or("records", 200).map_err(|e| e.to_string())?;
    let seed: u64 = args.parsed_or("seed", 2005).map_err(|e| e.to_string())?;
    let out = args.required("out").map_err(|e| e.to_string())?;
    let doc = match profile {
        "publications" => {
            publications::generate(&publications::PublicationsConfig {
                records,
                editors: (records / 20).max(2),
                seed,
                gamma: 3,
            })
            .doc
        }
        "jobs" => {
            jobs::generate(&jobs::JobsConfig {
                records,
                companies: (records / 25).max(2),
                seed,
                gamma: 3,
            })
            .doc
        }
        "library" => {
            library::generate(&library::LibraryConfig {
                records,
                image_size: 16,
                seed,
                gamma: 2,
            })
            .doc
        }
        other => return Err(format!("unknown profile {other:?}")),
    };
    write_file(out, &to_pretty_string(&doc))?;
    println!("wrote {records} {profile} records to {out}");
    Ok(0)
}

fn cmd_embed(args: &Args) -> Result<i32, String> {
    let profile = load_profile(args)?;
    let in_path = args.required("in").map_err(|e| e.to_string())?;
    let out_path = args.required("out").map_err(|e| e.to_string())?;
    let queries_path = args.required("queries").map_err(|e| e.to_string())?;
    let key = SecretKey::from_passphrase(args.required("key").map_err(|e| e.to_string())?);
    let watermark = watermark_from(args)?;
    let obs = Obs::from_args(args);
    obs.begin();

    let original = read_doc(in_path)?;
    let config = encoder_config(args, &profile)?;

    let issues = wmx_schema::validate(&original, &profile.schema);
    if !issues.is_empty() {
        eprintln!(
            "warning: document has {} schema issue(s); first:",
            issues.len()
        );
        eprintln!("  {}", issues[0]);
    }

    let mut marked = original.clone();
    let report = embed(
        &mut marked,
        &profile.binding,
        &profile.fds,
        &config,
        &key,
        &watermark,
    )
    .map_err(|e| format!("embedding failed: {e}"))?;

    let usability = measure_usability(
        &original,
        &profile.binding,
        &marked,
        &profile.binding,
        &profile.templates,
        &config,
    )
    .map_err(|e| format!("usability check failed: {e}"))?;

    {
        let _s = span("serialize");
        write_file(out_path, &to_pretty_string(&marked))?;
    }
    write_file(queries_path, &queryfile::to_string(&report.queries))?;
    obs.finish(AuditEvent {
        operation: "embed".to_string(),
        engine: "dom".to_string(),
        workload: in_path.to_string(),
        records: None,
        phases: Vec::new(),
        counts: vec![
            ("total_units".to_string(), report.total_units as u64),
            ("selected_units".to_string(), report.selected_units as u64),
            ("marked_units".to_string(), report.marked_units as u64),
            ("marked_nodes".to_string(), report.marked_nodes as u64),
        ],
        detected: None,
        p_value: None,
    })?;
    println!(
        "embedded {} marks across {} units (γ={}, utilization {:.1}%)",
        report.marked_units,
        report.total_units,
        config.gamma,
        100.0 * report.capacity_utilization()
    );
    println!(
        "usability after embedding: {:.1}%",
        100.0 * usability.overall()
    );
    println!("marked document: {out_path}");
    println!("query set (keep with your key!): {queries_path}");
    Ok(0)
}

fn cmd_detect(args: &Args) -> Result<i32, String> {
    let in_path = args.required("in").map_err(|e| e.to_string())?;
    let queries_path = args.required("queries").map_err(|e| e.to_string())?;
    let key = SecretKey::from_passphrase(args.required("key").map_err(|e| e.to_string())?);
    let watermark = watermark_from(args)?;
    let threshold: f64 = args
        .parsed_or("threshold", 0.85)
        .map_err(|e| e.to_string())?;
    let mode = forensics_mode(args)?;
    if mode == ForensicsMode::Off && args.optional("redundancy").is_some() {
        return Err(
            "--redundancy on detect requires --forensics (the group decode runs on the forensic path)"
                .to_string(),
        );
    }
    let obs = Obs::from_args(args);
    obs.begin();

    let doc = read_doc(in_path)?;
    let queries_text =
        fs::read_to_string(queries_path).map_err(|e| format!("cannot read {queries_path}: {e}"))?;
    let queries = queryfile::from_string(&queries_text).map_err(|e| e.to_string())?;

    let input = DetectionInput {
        queries: &queries,
        key,
        watermark,
        threshold,
        mapping: None,
    };
    let report = if mode == ForensicsMode::Off {
        detect(&doc, &input)
    } else {
        // Localization re-derives the marked units from the schema
        // binding, so the forensic path needs the profile the document
        // was embedded under.
        let profile = load_profile(args)
            .map_err(|e| format!("--forensics re-derives the marked units from a profile: {e}"))?;
        let config = encoder_config(args, &profile)?;
        detect_forensic(
            &doc,
            &input,
            ForensicContext {
                binding: &profile.binding,
                fds: &profile.fds,
                config: &config,
            },
        )
        .map_err(|e| format!("forensic detection failed: {e}"))?
    };
    let (votes_ones, votes_zeros) = report.vote_totals();
    let mut counts = vec![
        ("total_queries".to_string(), report.total_queries as u64),
        ("located_queries".to_string(), report.located_queries as u64),
        ("votes_cast".to_string(), report.votes_cast as u64),
        ("votes_ones".to_string(), votes_ones as u64),
        ("votes_zeros".to_string(), votes_zeros as u64),
        ("matched_bits".to_string(), report.matched_bits as u64),
        ("voted_bits".to_string(), report.voted_bits as u64),
    ];
    if let Some(f) = &report.forensics {
        forensic_counts(&mut counts, f);
    }
    obs.finish(AuditEvent {
        operation: "detect".to_string(),
        engine: "dom".to_string(),
        workload: in_path.to_string(),
        records: None,
        phases: Vec::new(),
        counts,
        detected: Some(report.detected),
        p_value: Some(report.p_value),
    })?;
    println!(
        "queries located: {}/{}; bits matched {}/{} ({:.1}%); p-value {:.2e}",
        report.located_queries,
        report.total_queries,
        report.matched_bits,
        report.voted_bits,
        100.0 * report.match_fraction(),
        report.p_value
    );
    if let Some(f) = &report.forensics {
        print_forensics(f, mode);
    }
    let tampered = report.forensics.as_ref().is_some_and(|f| f.tampered);
    if report.detected && tampered {
        println!("WATERMARK DETECTED but TAMPERED (τ = {threshold})");
        Ok(3)
    } else if report.detected {
        println!("WATERMARK DETECTED (τ = {threshold})");
        Ok(0)
    } else {
        println!("watermark NOT detected (τ = {threshold})");
        Ok(2)
    }
}

fn cmd_stream_embed(args: &Args) -> Result<i32, String> {
    let profile = load_profile(args)?;
    let in_path = args.required("in").map_err(|e| e.to_string())?;
    let out_path = args.required("out").map_err(|e| e.to_string())?;
    let queries_path = args.required("queries").map_err(|e| e.to_string())?;
    let key = SecretKey::from_passphrase(args.required("key").map_err(|e| e.to_string())?);
    let watermark = watermark_from(args)?;
    let workers: usize = args.parsed_or("workers", 1).map_err(|e| e.to_string())?;
    let obs = Obs::from_args(args);
    obs.begin();

    let config = encoder_config(args, &profile)?;
    let ctx = wmx_stream::StreamContext {
        binding: &profile.binding,
        fds: &profile.fds,
        config: &config,
    };

    let embed_span = span("stream_embed");
    let report = if workers > 1 {
        let text =
            fs::read_to_string(in_path).map_err(|e| format!("cannot read {in_path}: {e}"))?;
        let (marked, report) = wmx_stream::par_embed(&text, workers, ctx, &key, &watermark)
            .map_err(|e| format!("streaming embed failed: {e}"))?;
        write_file(out_path, &marked)?;
        report
    } else {
        // Stream into a sibling temp file and rename on success, so a
        // failed run never clobbers an existing output file.
        let tmp_path = format!("{out_path}.tmp");
        let input = fs::File::open(in_path).map_err(|e| format!("cannot read {in_path}: {e}"))?;
        let output =
            fs::File::create(&tmp_path).map_err(|e| format!("cannot write {tmp_path}: {e}"))?;
        let result = wmx_stream::stream_embed(
            std::io::BufReader::new(input),
            std::io::BufWriter::new(output),
            ctx,
            &key,
            &watermark,
        );
        match result {
            Ok(report) => {
                fs::rename(&tmp_path, out_path)
                    .map_err(|e| format!("cannot move {tmp_path} to {out_path}: {e}"))?;
                report
            }
            Err(e) => {
                let _ = fs::remove_file(&tmp_path);
                return Err(format!("streaming embed failed: {e}"));
            }
        }
    };

    drop(embed_span);

    write_file(queries_path, &queryfile::to_string(&report.report.queries))?;
    obs.finish(AuditEvent {
        operation: "stream-embed".to_string(),
        engine: if workers > 1 { "parallel" } else { "stream" }.to_string(),
        workload: in_path.to_string(),
        records: Some(report.records as u64),
        phases: Vec::new(),
        counts: vec![
            ("total_units".to_string(), report.report.total_units as u64),
            (
                "marked_units".to_string(),
                report.report.marked_units as u64,
            ),
            (
                "chunks".to_string(),
                report.chunk_summary().map_or(0, |s| s.chunks as u64),
            ),
        ],
        detected: None,
        p_value: None,
    })?;
    println!(
        "stream-embedded {} marks across {} units in {} records (γ={}, workers {workers})",
        report.report.marked_units, report.report.total_units, report.records, config.gamma,
    );
    println!(
        "peak resident nodes: {} (one record at a time)",
        report.peak_resident_nodes
    );
    println!("marked document: {out_path}");
    println!("query set (keep with your key!): {queries_path}");
    Ok(0)
}

fn cmd_stream_detect(args: &Args) -> Result<i32, String> {
    let profile = load_profile(args)?;
    let in_path = args.required("in").map_err(|e| e.to_string())?;
    let key = SecretKey::from_passphrase(args.required("key").map_err(|e| e.to_string())?);
    let watermark = watermark_from(args)?;
    let threshold: f64 = args
        .parsed_or("threshold", 0.85)
        .map_err(|e| e.to_string())?;
    let workers: usize = args.parsed_or("workers", 1).map_err(|e| e.to_string())?;
    let mode = forensics_mode(args)?;
    let obs = Obs::from_args(args);
    obs.begin();

    let config = encoder_config(args, &profile)?;
    let ctx = wmx_stream::StreamContext {
        binding: &profile.binding,
        fds: &profile.fds,
        config: &config,
    };

    let detect_span = span("stream_detect");
    let detection = if workers > 1 {
        let text =
            fs::read_to_string(in_path).map_err(|e| format!("cannot read {in_path}: {e}"))?;
        if mode == ForensicsMode::Off {
            wmx_stream::par_detect(&text, workers, ctx, &key, &watermark, threshold)
        } else {
            wmx_stream::par_detect_forensic(&text, workers, ctx, &key, &watermark, threshold)
        }
        .map_err(|e| format!("streaming detect failed: {e}"))?
    } else {
        let input = fs::File::open(in_path).map_err(|e| format!("cannot read {in_path}: {e}"))?;
        let reader = std::io::BufReader::new(input);
        if mode == ForensicsMode::Off {
            wmx_stream::stream_detect(reader, ctx, &key, &watermark, threshold)
        } else {
            wmx_stream::stream_detect_forensic(reader, ctx, &key, &watermark, threshold)
        }
        .map_err(|e| format!("streaming detect failed: {e}"))?
    };
    drop(detect_span);

    let report = &detection.report;
    let (votes_ones, votes_zeros) = report.vote_totals();
    let mut counts = vec![
        ("total_units".to_string(), report.total_queries as u64),
        ("located_units".to_string(), report.located_queries as u64),
        ("votes_cast".to_string(), report.votes_cast as u64),
        ("votes_ones".to_string(), votes_ones as u64),
        ("votes_zeros".to_string(), votes_zeros as u64),
        (
            "chunks".to_string(),
            detection.chunk_summary().map_or(0, |s| s.chunks as u64),
        ),
    ];
    if let Some(f) = &report.forensics {
        forensic_counts(&mut counts, f);
    }
    if let Some(fault) = &detection.fault {
        counts.push((
            "skipped_records".to_string(),
            fault.skipped_records.len() as u64,
        ));
    }
    obs.finish(AuditEvent {
        operation: "stream-detect".to_string(),
        engine: if workers > 1 { "parallel" } else { "stream" }.to_string(),
        workload: in_path.to_string(),
        records: Some(detection.records as u64),
        phases: Vec::new(),
        counts,
        detected: Some(report.detected),
        p_value: Some(report.p_value),
    })?;
    if let Some(summary) = detection.chunk_summary() {
        println!(
            "chunks: {} ({} records; {}µs min / {}µs mean / {}µs max)",
            summary.chunks,
            summary.records,
            summary.min_micros,
            summary.mean_micros(),
            summary.max_micros
        );
    }
    println!(
        "units voted: {}/{} across {} records; bits matched {}/{} ({:.1}%); p-value {:.2e}",
        report.located_queries,
        report.total_queries,
        detection.records,
        report.matched_bits,
        report.voted_bits,
        100.0 * report.match_fraction(),
        report.p_value
    );
    if let Some(fault) = &detection.fault {
        if fault.truncated {
            println!(
                "stream fault: stream broke after {} record(s) ({}); verdict covers the salvaged prefix",
                fault.records_processed, fault.error
            );
        } else {
            println!(
                "stream fault: {} record(s) skipped ({})",
                fault.skipped_records.len(),
                fault.error
            );
        }
    }
    if let Some(f) = &report.forensics {
        print_forensics(f, mode);
    }
    // A stream fault is tampering evidence even when the salvaged
    // prefix itself is clean (the rest of the stream is gone).
    let tampered =
        report.forensics.as_ref().is_some_and(|f| f.tampered) || detection.fault.is_some();
    if report.detected && tampered {
        println!("WATERMARK DETECTED but TAMPERED (τ = {threshold})");
        Ok(3)
    } else if report.detected {
        println!("WATERMARK DETECTED (τ = {threshold})");
        Ok(0)
    } else {
        println!("watermark NOT detected (τ = {threshold})");
        Ok(2)
    }
}

fn cmd_attack(args: &Args) -> Result<i32, String> {
    let in_path = args.required("in").map_err(|e| e.to_string())?;
    let out_path = args.required("out").map_err(|e| e.to_string())?;
    let kind = args.required("kind").map_err(|e| e.to_string())?;
    let intensity: f64 = args
        .parsed_or("intensity", 0.3)
        .map_err(|e| e.to_string())?;
    let seed: u64 = args.parsed_or("seed", 7).map_err(|e| e.to_string())?;

    let mut doc = read_doc(in_path)?;
    let touched = match kind {
        "alteration" => AlterationAttack::values(
            intensity,
            vec!["//*[not(*)]".to_string()], // all leaf elements
            seed,
        )
        .apply(&mut doc),
        "reduction" => {
            // Reduce the root's child records.
            let root_name = doc
                .root_element()
                .and_then(|r| doc.name(r))
                .unwrap_or("db")
                .to_string();
            let record_path = format!("/{root_name}/*");
            ReductionAttack::new(intensity, &record_path, seed).apply(&mut doc)
        }
        "shuffle" => ShuffleAttack::new(seed).apply(&mut doc),
        "redundancy" => {
            let profile = load_profile(args)?;
            RedundancyRemovalAttack::new(profile.fds, UnifyStrategy::MajorityValue).apply(&mut doc)
        }
        other => {
            return Err(format!(
                "unknown attack kind {other:?}; use alteration|reduction|shuffle|redundancy"
            ))
        }
    };
    write_file(out_path, &to_pretty_string(&doc))?;
    println!("attack {kind} touched {touched} node(s); wrote {out_path}");
    Ok(0)
}

fn cmd_validate(args: &Args) -> Result<i32, String> {
    let profile = load_profile(args)?;
    let doc = read_doc(args.required("in").map_err(|e| e.to_string())?)?;
    let issues = wmx_schema::validate(&doc, &profile.schema);
    for issue in &issues {
        println!("schema: {issue}");
    }
    let mut violations = 0usize;
    for key in &profile.keys {
        for v in key.verify(&doc) {
            println!("key: {v}");
            violations += 1;
        }
    }
    for fd in &profile.fds {
        for v in fd.verify(&doc) {
            println!("fd: {v}");
            violations += 1;
        }
    }
    if issues.is_empty() && violations == 0 {
        println!("document is valid under profile {}", profile.name);
        Ok(0)
    } else {
        println!(
            "{} schema issue(s), {} key/FD violation(s)",
            issues.len(),
            violations
        );
        Ok(2)
    }
}

fn cmd_validate_telemetry(args: &Args) -> Result<i32, String> {
    let in_path = args.required("in").map_err(|e| e.to_string())?;
    let text = fs::read_to_string(in_path).map_err(|e| format!("cannot read {in_path}: {e}"))?;
    let mut problems = 0usize;
    match wmx_telemetry::Json::parse(&text) {
        Ok(snapshot) => match wmx_telemetry::validate_snapshot(&snapshot) {
            Ok(()) => println!("snapshot {in_path}: valid (schema v1)"),
            Err(e) => {
                println!("snapshot {in_path}: INVALID — {e}");
                problems += 1;
            }
        },
        Err(e) => {
            println!("snapshot {in_path}: INVALID — not JSON: {e}");
            problems += 1;
        }
    }
    if let Some(audit_path) = args.optional("audit") {
        let text =
            fs::read_to_string(audit_path).map_err(|e| format!("cannot read {audit_path}: {e}"))?;
        let mut lines = 0usize;
        for (idx, line) in text.lines().enumerate() {
            lines += 1;
            if let Err(e) = wmx_telemetry::validate_audit_line(line) {
                println!("audit {audit_path}:{}: INVALID — {e}", idx + 1);
                problems += 1;
            }
        }
        if lines == 0 {
            println!("audit {audit_path}: INVALID — no audit lines");
            problems += 1;
        } else if problems == 0 {
            println!("audit {audit_path}: {lines} valid line(s) (schema v1)");
        }
    }
    Ok(if problems == 0 { 0 } else { 2 })
}

fn cmd_bench(args: &Args) -> Result<i32, String> {
    let params = match args.optional("suite").unwrap_or("smoke") {
        "smoke" => wmx_bench::SuiteParams::smoke(),
        "full" => wmx_bench::SuiteParams::full(),
        other => return Err(format!("unknown suite {other:?}; use smoke|full")),
    };
    let opts = wmx_bench::GateOptions {
        params,
        out_dir: args.optional("out").unwrap_or(".").into(),
        baseline_path: args.optional("baseline").map(Into::into),
        write_baseline: args.optional("write-baseline").is_some(),
        skip_compare: args.optional("no-compare").is_some(),
    };
    println!(
        "running the {:?} suite ({} records, {} iters, {} workers)",
        opts.params.workload, opts.params.records, opts.params.iters, opts.params.workers
    );
    let outcome = wmx_bench::run_gate(&opts)?;
    println!("report: {}", outcome.report_path.display());
    println!("telemetry: {}", outcome.telemetry_path.display());
    println!("forensics: {}", outcome.forensics_path.display());
    println!("{}", outcome.summary);
    Ok(outcome.exit_code)
}

fn cmd_inspect(args: &Args) -> Result<i32, String> {
    let doc = read_doc(args.required("in").map_err(|e| e.to_string())?)?;
    let root = doc.root_element();
    println!(
        "root element: {}",
        root.and_then(|r| doc.name(r)).unwrap_or("(none)")
    );
    println!("elements: {}", doc.element_count());
    if let Some(root) = root {
        let mut by_name: std::collections::BTreeMap<String, usize> = Default::default();
        for e in doc.descendant_elements(root) {
            *by_name
                .entry(doc.name(e).unwrap_or("?").to_string())
                .or_default() += 1;
        }
        let mut entries: Vec<_> = by_name.into_iter().collect();
        entries.sort_by_key(|&(_, count)| std::cmp::Reverse(count));
        for (name, count) in entries.into_iter().take(12) {
            println!("  <{name}>: {count}");
        }
    }
    Ok(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(parts: &[&str]) -> Args {
        Args::parse(&parts.iter().map(|s| s.to_string()).collect::<Vec<_>>()).unwrap()
    }

    fn tmp(name: &str) -> String {
        let dir = std::env::temp_dir().join("wmxml-cli-tests");
        fs::create_dir_all(&dir).unwrap();
        dir.join(name).to_string_lossy().into_owned()
    }

    #[test]
    fn end_to_end_generate_embed_detect() {
        let db = tmp("db.xml");
        let marked = tmp("marked.xml");
        let queries = tmp("q.wmxq");

        assert_eq!(
            run(&args(&[
                "generate",
                "--profile",
                "publications",
                "--records",
                "120",
                "--out",
                &db
            ]))
            .unwrap(),
            0
        );
        assert_eq!(
            run(&args(&[
                "embed",
                "--profile",
                "publications",
                "--in",
                &db,
                "--key",
                "cli-secret",
                "--message",
                "© cli",
                "--out",
                &marked,
                "--queries",
                &queries
            ]))
            .unwrap(),
            0
        );
        // Correct key detects.
        assert_eq!(
            run(&args(&[
                "detect",
                "--in",
                &marked,
                "--key",
                "cli-secret",
                "--message",
                "© cli",
                "--queries",
                &queries
            ]))
            .unwrap(),
            0
        );
        // Wrong key does not (exit code 2).
        assert_eq!(
            run(&args(&[
                "detect",
                "--in",
                &marked,
                "--key",
                "oops",
                "--message",
                "© cli",
                "--queries",
                &queries
            ]))
            .unwrap(),
            2
        );
    }

    #[test]
    fn attack_then_detect_roundtrip() {
        let db = tmp("db2.xml");
        let marked = tmp("marked2.xml");
        let queries = tmp("q2.wmxq");
        let attacked = tmp("attacked2.xml");

        run(&args(&[
            "generate",
            "--profile",
            "jobs",
            "--records",
            "200",
            "--out",
            &db,
        ]))
        .unwrap();
        run(&args(&[
            "embed",
            "--profile",
            "jobs",
            "--in",
            &db,
            "--key",
            "k",
            "--message",
            "m",
            "--out",
            &marked,
            "--queries",
            &queries,
        ]))
        .unwrap();
        assert_eq!(
            run(&args(&[
                "attack", "--in", &marked, "--kind", "shuffle", "--out", &attacked
            ]))
            .unwrap(),
            0
        );
        assert_eq!(
            run(&args(&[
                "detect",
                "--in",
                &attacked,
                "--key",
                "k",
                "--message",
                "m",
                "--queries",
                &queries
            ]))
            .unwrap(),
            0,
            "shuffle must not defeat detection"
        );
    }

    #[test]
    fn validate_generated_documents() {
        let db = tmp("db3.xml");
        run(&args(&[
            "generate",
            "--profile",
            "library",
            "--records",
            "30",
            "--out",
            &db,
        ]))
        .unwrap();
        assert_eq!(
            run(&args(&["validate", "--profile", "library", "--in", &db])).unwrap(),
            0
        );
        assert_eq!(run(&args(&["inspect", "--in", &db])).unwrap(), 0);
    }

    #[test]
    fn stream_embed_detect_roundtrip_and_dom_interop() {
        let db = tmp("sdb.xml");
        let marked1 = tmp("smarked1.xml");
        let marked4 = tmp("smarked4.xml");
        let queries = tmp("sq.wmxq");

        run(&args(&[
            "generate",
            "--profile",
            "publications",
            "--records",
            "150",
            "--out",
            &db,
        ]))
        .unwrap();
        // Sequential (bounded-memory) and parallel paths agree byte-wise.
        assert_eq!(
            run(&args(&[
                "stream-embed",
                "--profile",
                "publications",
                "--in",
                &db,
                "--key",
                "stream-secret",
                "--message",
                "© stream",
                "--out",
                &marked1,
                "--queries",
                &queries,
            ]))
            .unwrap(),
            0
        );
        assert_eq!(
            run(&args(&[
                "stream-embed",
                "--profile",
                "publications",
                "--in",
                &db,
                "--key",
                "stream-secret",
                "--message",
                "© stream",
                "--workers",
                "4",
                "--out",
                &marked4,
                "--queries",
                &tmp("sq4.wmxq"),
            ]))
            .unwrap(),
            0
        );
        assert_eq!(
            fs::read_to_string(&marked1).unwrap(),
            fs::read_to_string(&marked4).unwrap()
        );
        // Streaming detection needs no query file.
        assert_eq!(
            run(&args(&[
                "stream-detect",
                "--profile",
                "publications",
                "--in",
                &marked1,
                "--key",
                "stream-secret",
                "--message",
                "© stream",
            ]))
            .unwrap(),
            0
        );
        assert_eq!(
            run(&args(&[
                "stream-detect",
                "--profile",
                "publications",
                "--in",
                &marked1,
                "--key",
                "wrong",
                "--message",
                "© stream",
            ]))
            .unwrap(),
            2
        );
        // The stream-produced query set drives the DOM decoder too.
        assert_eq!(
            run(&args(&[
                "detect",
                "--in",
                &marked1,
                "--key",
                "stream-secret",
                "--message",
                "© stream",
                "--queries",
                &queries,
            ]))
            .unwrap(),
            0
        );
    }

    #[test]
    fn telemetry_flags_emit_validated_snapshot_and_audit_lines() {
        let db = tmp("obs-db.xml");
        let marked = tmp("obs-marked.xml");
        let queries = tmp("obs-q.wmxq");
        let snapshot = tmp("obs-telemetry.json");
        let audit = tmp("obs-audit.jsonl");
        let _ = fs::remove_file(&audit); // append mode: start clean

        run(&args(&[
            "generate",
            "--profile",
            "publications",
            "--records",
            "80",
            "--out",
            &db,
        ]))
        .unwrap();
        assert_eq!(
            run(&args(&[
                "embed",
                "--profile",
                "publications",
                "--in",
                &db,
                "--key",
                "obs-secret",
                "--message",
                "© obs",
                "--out",
                &marked,
                "--queries",
                &queries,
                "--audit-log",
                &audit,
            ]))
            .unwrap(),
            0
        );
        // Detected verdict, with snapshot + audit + trace all on.
        assert_eq!(
            run(&args(&[
                "detect",
                "--in",
                &marked,
                "--key",
                "obs-secret",
                "--message",
                "© obs",
                "--queries",
                &queries,
                "--telemetry-json",
                &snapshot,
                "--audit-log",
                &audit,
                "--trace",
            ]))
            .unwrap(),
            0
        );
        // Not-detected verdict must also append a valid audit line.
        assert_eq!(
            run(&args(&[
                "detect",
                "--in",
                &marked,
                "--key",
                "wrong-key",
                "--message",
                "© obs",
                "--queries",
                &queries,
                "--audit-log",
                &audit,
            ]))
            .unwrap(),
            2
        );
        // Streaming detect rides the same flags.
        assert_eq!(
            run(&args(&[
                "stream-detect",
                "--profile",
                "publications",
                "--in",
                &marked,
                "--key",
                "obs-secret",
                "--message",
                "© obs",
                "--workers",
                "2",
                "--audit-log",
                &audit,
            ]))
            .unwrap(),
            0
        );

        // The snapshot validates and carries the warmed catalog: phase
        // spans, plan-cache counters, and chunk histograms are all
        // present even though this invocation only ran a DOM detect.
        let text = fs::read_to_string(&snapshot).unwrap();
        let parsed = wmx_telemetry::Json::parse(&text).unwrap();
        wmx_telemetry::validate_snapshot(&parsed).unwrap();
        let counters = parsed.get("counters").unwrap();
        for name in crate::obs::COUNTER_CATALOG {
            assert!(counters.get(name).is_some(), "missing counter {name}");
        }
        let histograms = parsed.get("histograms").unwrap();
        for name in crate::obs::HISTOGRAM_CATALOG {
            assert!(histograms.get(name).is_some(), "missing histogram {name}");
        }
        // The detect that wrote this snapshot actually timed its phases.
        for phase in ["span.parse", "span.detect", "span.detect.select"] {
            let count = histograms
                .get(phase)
                .and_then(|h| h.get("count"))
                .and_then(wmx_telemetry::Json::as_usize)
                .unwrap();
            assert!(count > 0, "{phase} recorded no observations");
        }

        // Audit log: one line per invocation, both verdict outcomes.
        let audit_text = fs::read_to_string(&audit).unwrap();
        let lines: Vec<&str> = audit_text.lines().collect();
        assert_eq!(lines.len(), 4, "one audit line per invocation");
        for line in &lines {
            wmx_telemetry::validate_audit_line(line).unwrap();
        }
        let verdicts: Vec<Option<bool>> = lines
            .iter()
            .map(|l| {
                wmx_telemetry::Json::parse(l)
                    .unwrap()
                    .get("detected")
                    .and_then(wmx_telemetry::Json::as_bool)
            })
            .collect();
        assert_eq!(verdicts, [None, Some(true), Some(false), Some(true)]);
        // Detect lines carry vote totals and phase timings.
        let detect_line = wmx_telemetry::Json::parse(lines[1]).unwrap();
        assert!(detect_line
            .get("counts")
            .and_then(|c| c.get("votes_ones"))
            .and_then(wmx_telemetry::Json::as_usize)
            .is_some_and(|v| v > 0));
        assert!(matches!(
            detect_line.get("phases"),
            Some(wmx_telemetry::Json::Object(phases)) if !phases.is_empty()
        ));

        // The validator subcommand agrees, and flags corruption.
        assert_eq!(
            run(&args(&[
                "validate-telemetry",
                "--in",
                &snapshot,
                "--audit",
                &audit
            ]))
            .unwrap(),
            0
        );
        let bad = tmp("obs-bad.json");
        fs::write(&bad, "{\"schema_version\": 99}").unwrap();
        assert_eq!(
            run(&args(&["validate-telemetry", "--in", &bad])).unwrap(),
            2
        );
        assert!(run(&args(&[
            "validate-telemetry",
            "--in",
            &tmp("obs-missing.json")
        ]))
        .is_err());
    }

    /// Bumps every `every`-th `//book/year` by 7 (a parity flip) and
    /// writes the damaged document to `out` — localized tampering that
    /// leaves the watermark detectable.
    fn bump_years(marked: &str, every: usize, out: &str) {
        let mut doc = parse(&fs::read_to_string(marked).unwrap()).unwrap();
        let years = wmx_xpath::Query::compile("//book/year")
            .unwrap()
            .select(&doc);
        assert!(!years.is_empty());
        for (i, node) in years.iter().enumerate() {
            if !i.is_multiple_of(every) {
                continue;
            }
            let year: i64 = node.string_value(&doc).trim().parse().unwrap();
            wmx_core::write_value(&mut doc, node, &(year + 7).to_string()).unwrap();
        }
        fs::write(out, to_pretty_string(&doc)).unwrap();
    }

    fn audit_count(line: &str, name: &str) -> usize {
        wmx_telemetry::Json::parse(line)
            .unwrap()
            .get("counts")
            .and_then(|c| c.get(name))
            .and_then(wmx_telemetry::Json::as_usize)
            .unwrap_or_else(|| panic!("audit line missing count {name}"))
    }

    #[test]
    fn forensics_flag_localizes_tampering_and_sets_exit_code_3() {
        let db = tmp("fx-db.xml");
        let marked = tmp("fx-marked.xml");
        let queries = tmp("fx-q.wmxq");
        let tampered = tmp("fx-tampered.xml");
        let audit = tmp("fx-audit.jsonl");
        let _ = fs::remove_file(&audit);

        run(&args(&[
            "generate",
            "--profile",
            "publications",
            "--records",
            "120",
            "--out",
            &db,
        ]))
        .unwrap();
        run(&args(&[
            "embed",
            "--profile",
            "publications",
            "--in",
            &db,
            "--key",
            "fx-secret",
            "--message",
            "© fx",
            "--out",
            &marked,
            "--queries",
            &queries,
        ]))
        .unwrap();
        bump_years(&marked, 8, &tampered);

        // A clean document stays exit 0 even with forensics on.
        assert_eq!(
            run(&args(&[
                "detect",
                "--in",
                &marked,
                "--key",
                "fx-secret",
                "--message",
                "© fx",
                "--queries",
                &queries,
                "--forensics",
                "--profile",
                "publications",
            ]))
            .unwrap(),
            0
        );
        // The tampered one is still detected, but flagged: exit 3.
        assert_eq!(
            run(&args(&[
                "detect",
                "--in",
                &tampered,
                "--key",
                "fx-secret",
                "--message",
                "© fx",
                "--queries",
                &queries,
                "--forensics",
                "--profile",
                "publications",
                "--audit-log",
                &audit,
            ]))
            .unwrap(),
            3
        );
        // JSON mode and the parallel streaming engine agree on the verdict.
        assert_eq!(
            run(&args(&[
                "stream-detect",
                "--profile",
                "publications",
                "--in",
                &tampered,
                "--key",
                "fx-secret",
                "--message",
                "© fx",
                "--workers",
                "2",
                "--forensics",
                "json",
                "--audit-log",
                &audit,
            ]))
            .unwrap(),
            3
        );
        // Without --forensics the same document collapses to plain exit 0:
        // the distortion is too small to defeat majority voting.
        assert_eq!(
            run(&args(&[
                "detect",
                "--in",
                &tampered,
                "--key",
                "fx-secret",
                "--message",
                "© fx",
                "--queries",
                &queries,
            ]))
            .unwrap(),
            0
        );
        // --redundancy on detect only means something on the forensic path.
        assert!(run(&args(&[
            "detect",
            "--in",
            &tampered,
            "--key",
            "fx-secret",
            "--message",
            "© fx",
            "--queries",
            &queries,
            "--redundancy",
            "3",
        ]))
        .is_err());
        // Unknown --forensics modes are rejected.
        assert!(run(&args(&[
            "detect",
            "--in",
            &tampered,
            "--key",
            "fx-secret",
            "--message",
            "© fx",
            "--queries",
            &queries,
            "--forensics",
            "yaml",
            "--profile",
            "publications",
        ]))
        .is_err());

        // Both audit lines carry the suspect tallies, and the DOM and
        // stream engines agree on them.
        let audit_text = fs::read_to_string(&audit).unwrap();
        let lines: Vec<&str> = audit_text.lines().collect();
        assert_eq!(lines.len(), 2);
        for line in &lines {
            wmx_telemetry::validate_audit_line(line).unwrap();
            assert!(audit_count(line, "suspect_records") > 0);
            assert!(audit_count(line, "suspect_units") > 0);
            assert_eq!(audit_count(line, "recovered_units"), 0);
        }
        assert_eq!(
            audit_count(lines[0], "suspect_records"),
            audit_count(lines[1], "suspect_records")
        );
        assert_eq!(
            audit_count(lines[0], "suspect_units"),
            audit_count(lines[1], "suspect_units")
        );
    }

    #[test]
    fn redundancy_roundtrip_recovers_damage_via_cli() {
        let db = tmp("rx-db.xml");
        let marked = tmp("rx-marked.xml");
        let queries = tmp("rx-q.wmxq");
        let tampered = tmp("rx-tampered.xml");
        let audit = tmp("rx-audit.jsonl");
        let _ = fs::remove_file(&audit);

        run(&args(&[
            "generate",
            "--profile",
            "publications",
            "--records",
            "120",
            "--out",
            &db,
        ]))
        .unwrap();
        run(&args(&[
            "embed",
            "--profile",
            "publications",
            "--in",
            &db,
            "--key",
            "rx-secret",
            "--message",
            "rx",
            "--bits",
            "8",
            "--redundancy",
            "3",
            "--out",
            &marked,
            "--queries",
            &queries,
        ]))
        .unwrap();

        // Clean detection works on both engines when R matches.
        assert_eq!(
            run(&args(&[
                "detect",
                "--in",
                &marked,
                "--key",
                "rx-secret",
                "--message",
                "rx",
                "--bits",
                "8",
                "--queries",
                &queries,
            ]))
            .unwrap(),
            0
        );
        assert_eq!(
            run(&args(&[
                "stream-detect",
                "--profile",
                "publications",
                "--in",
                &marked,
                "--key",
                "rx-secret",
                "--message",
                "rx",
                "--bits",
                "8",
                "--redundancy",
                "3",
            ]))
            .unwrap(),
            0
        );

        // Thin damage is localized AND recovered by the group decode.
        bump_years(&marked, 10, &tampered);
        assert_eq!(
            run(&args(&[
                "detect",
                "--in",
                &tampered,
                "--key",
                "rx-secret",
                "--message",
                "rx",
                "--bits",
                "8",
                "--queries",
                &queries,
                "--forensics",
                "--profile",
                "publications",
                "--redundancy",
                "3",
                "--audit-log",
                &audit,
            ]))
            .unwrap(),
            3
        );
        let audit_text = fs::read_to_string(&audit).unwrap();
        let line = audit_text.lines().next().unwrap();
        assert!(audit_count(line, "recovered_units") > 0);

        // --redundancy 0 is rejected up front.
        assert!(run(&args(&[
            "embed",
            "--profile",
            "publications",
            "--in",
            &db,
            "--key",
            "rx-secret",
            "--message",
            "rx",
            "--redundancy",
            "0",
            "--out",
            &marked,
            "--queries",
            &queries,
        ]))
        .is_err());
    }

    #[test]
    fn bench_rejects_unknown_suite() {
        let err = run(&args(&["bench", "--suite", "nope"])).unwrap_err();
        assert!(err.contains("unknown suite"), "{err}");
    }

    #[test]
    fn unknown_command_and_profile_error() {
        assert!(run(&args(&["frobnicate"])).is_err());
        assert!(run(&args(&[
            "generate",
            "--profile",
            "nope",
            "--records",
            "1",
            "--out",
            "/tmp/x.xml"
        ]))
        .is_err());
    }
}
