//! End-to-end determinism of the embed → detect pipeline.
//!
//! WmXML's contract (paper §2.2) is that insertion and detection are
//! pure functions of (document, semantics, key, γ, watermark): the
//! encoder and the detector must *independently* recompute the same PRF
//! decisions. These tests pin that property at the byte level, without
//! any dataset-generator randomness in the loop.

use wmx_core::{detect, embed, DetectionInput, EncoderConfig, MarkableAttr, Watermark};
use wmx_crypto::SecretKey;
use wmx_rewrite::{AttrBinding, EntityBinding, SchemaBinding};
use wmx_schema::Fd;
use wmx_xml::{to_canonical_string, to_string, Document, ElementBuilder};

/// A small publications-style document built without any RNG.
fn fixture_doc(records: usize) -> Document {
    let editors = ["gray", "codd", "date", "ullman"];
    let publishers = ["mkp", "acm", "ieee", "springer"];
    let mut db = ElementBuilder::new("db");
    for i in 0..records {
        let e = i % editors.len();
        db = db.child(
            ElementBuilder::new("book")
                .attr("publisher", publishers[e])
                .leaf("title", format!("Title {i}"))
                .leaf("author", format!("Author {}", i % 7))
                .leaf("editor", editors[e])
                .leaf("year", (1970 + (i * 13) % 35).to_string()),
        );
    }
    db.into_document()
}

fn fixture_binding() -> SchemaBinding {
    SchemaBinding::new(
        "determinism-db1",
        vec![EntityBinding::new(
            "book",
            "/db/book",
            "title",
            vec![
                ("title", AttrBinding::ChildText("title".into())),
                ("editor", AttrBinding::ChildText("editor".into())),
                ("year", AttrBinding::ChildText("year".into())),
                ("publisher", AttrBinding::Attribute("publisher".into())),
            ],
        )
        .expect("static binding")],
    )
}

fn fixture_fds() -> Vec<Fd> {
    vec![Fd::new("editor-publisher", "/db/book", &["editor"], &["@publisher"]).expect("static fd")]
}

fn fixture_config(gamma: u32) -> EncoderConfig {
    EncoderConfig::new(
        gamma,
        vec![
            MarkableAttr::integer("book", "year", 1),
            MarkableAttr::text("book", "publisher"),
        ],
    )
}

#[test]
fn embedding_twice_is_byte_identical() {
    let key = SecretKey::from_passphrase("determinism-key");
    let wm = Watermark::from_message("deterministic mark", 24);

    let mut first = fixture_doc(80);
    let mut second = fixture_doc(80);
    let report_a = embed(
        &mut first,
        &fixture_binding(),
        &fixture_fds(),
        &fixture_config(2),
        &key,
        &wm,
    )
    .expect("first embed");
    let report_b = embed(
        &mut second,
        &fixture_binding(),
        &fixture_fds(),
        &fixture_config(2),
        &key,
        &wm,
    )
    .expect("second embed");

    assert!(report_a.marked_units > 0, "fixture produced no marks");
    assert_eq!(to_string(&first), to_string(&second), "marked bytes differ");
    assert_eq!(to_canonical_string(&first), to_canonical_string(&second));
    let xpaths_a: Vec<&str> = report_a.queries.iter().map(|q| q.xpath.as_str()).collect();
    let xpaths_b: Vec<&str> = report_b.queries.iter().map(|q| q.xpath.as_str()).collect();
    assert_eq!(xpaths_a, xpaths_b, "query sets differ between runs");
    assert_eq!(report_a.marked_units, report_b.marked_units);
    assert_eq!(report_a.selected_units, report_b.selected_units);
}

#[test]
fn unattacked_detection_has_zero_bit_errors() {
    let key = SecretKey::from_passphrase("determinism-key");
    let wm = Watermark::from_message("deterministic mark", 24);

    let mut marked = fixture_doc(120);
    let report = embed(
        &mut marked,
        &fixture_binding(),
        &fixture_fds(),
        &fixture_config(2),
        &key,
        &wm,
    )
    .expect("embed");

    let detection = detect(
        &marked,
        &DetectionInput {
            queries: &report.queries,
            key,
            watermark: wm,
            threshold: 0.85,
            mapping: None,
        },
    );
    assert!(detection.detected, "untouched marked document not detected");
    assert_eq!(
        detection.matched_bits, detection.voted_bits,
        "bit errors on an unattacked document"
    );
    assert_eq!(detection.match_fraction(), 1.0);
    assert_eq!(
        detection.located_queries, detection.total_queries,
        "some identity queries failed to locate their node"
    );
}

#[test]
fn different_keys_select_different_marks() {
    let wm = Watermark::from_message("deterministic mark", 24);
    let mut with_a = fixture_doc(80);
    let mut with_b = fixture_doc(80);
    embed(
        &mut with_a,
        &fixture_binding(),
        &fixture_fds(),
        &fixture_config(2),
        &SecretKey::from_passphrase("key-a"),
        &wm,
    )
    .expect("embed a");
    embed(
        &mut with_b,
        &fixture_binding(),
        &fixture_fds(),
        &fixture_config(2),
        &SecretKey::from_passphrase("key-b"),
        &wm,
    )
    .expect("embed b");
    assert_ne!(
        to_string(&with_a),
        to_string(&with_b),
        "two distinct keys produced identical marked documents"
    );
}
