//! Multi-bit watermarks.

use std::fmt;
use wmx_crypto::sha256::Sha256;

/// A watermark: an ordered bit string the owner embeds and later proves
/// knowledge of.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Watermark {
    bits: Vec<bool>,
}

impl Watermark {
    /// Creates a watermark from explicit bits.
    pub fn from_bits(bits: Vec<bool>) -> Self {
        Watermark { bits }
    }

    /// Parses a bit string like `"101101"`.
    ///
    /// # Errors
    /// Returns an error message if the string is empty or contains
    /// characters other than `0`/`1`.
    pub fn parse(text: &str) -> Result<Self, String> {
        if text.is_empty() {
            return Err("watermark bit string is empty".to_string());
        }
        let bits = text
            .chars()
            .map(|c| match c {
                '0' => Ok(false),
                '1' => Ok(true),
                other => Err(format!("invalid watermark character {other:?}")),
            })
            .collect::<Result<Vec<bool>, String>>()?;
        Ok(Watermark { bits })
    }

    /// Derives a deterministic `len`-bit watermark from an owner message
    /// (e.g. `"© 2005 ACME Publishing"`), by expanding SHA-256 output.
    ///
    /// # Panics
    /// Panics if `len == 0`.
    pub fn from_message(message: &str, len: usize) -> Self {
        assert!(len > 0, "watermark length must be positive");
        let mut bits = Vec::with_capacity(len);
        let mut counter = 0u64;
        while bits.len() < len {
            let mut h = Sha256::new();
            h.update(message.as_bytes());
            h.update(&counter.to_be_bytes());
            let digest = h.finalize();
            for byte in digest {
                for i in (0..8).rev() {
                    if bits.len() == len {
                        break;
                    }
                    bits.push((byte >> i) & 1 == 1);
                }
            }
            counter += 1;
        }
        Watermark { bits }
    }

    /// Number of bits.
    pub fn len(&self) -> usize {
        self.bits.len()
    }

    /// Whether the watermark has no bits (never true for constructed
    /// watermarks; present for API completeness).
    pub fn is_empty(&self) -> bool {
        self.bits.is_empty()
    }

    /// The bit at `index`.
    pub fn bit(&self, index: usize) -> bool {
        self.bits[index]
    }

    /// All bits.
    pub fn bits(&self) -> &[bool] {
        &self.bits
    }

    /// The watermark repeated `r` times back to back — the *effective*
    /// watermark of the error-correcting redundancy mode: a unit whose
    /// PRF bit index lands in copy `g` joins disjoint unit group `g` of
    /// base bit `index % len`, so each base bit is carried by `r`
    /// independent unit populations that decode by group majority.
    ///
    /// # Panics
    /// Panics if `r == 0`.
    pub fn repeat(&self, r: usize) -> Self {
        assert!(r > 0, "redundancy factor must be positive");
        let mut bits = Vec::with_capacity(self.bits.len() * r);
        for _ in 0..r {
            bits.extend_from_slice(&self.bits);
        }
        Watermark { bits }
    }

    /// Fraction of positions on which `self` and `other` agree
    /// (`None` when lengths differ).
    pub fn match_fraction(&self, other: &Watermark) -> Option<f64> {
        if self.len() != other.len() {
            return None;
        }
        let matches = self
            .bits
            .iter()
            .zip(&other.bits)
            .filter(|(a, b)| a == b)
            .count();
        Some(matches as f64 / self.len() as f64)
    }
}

impl fmt::Display for Watermark {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for b in &self.bits {
            write!(f, "{}", if *b { '1' } else { '0' })?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_and_display_roundtrip() {
        let wm = Watermark::parse("10110").unwrap();
        assert_eq!(wm.len(), 5);
        assert!(wm.bit(0));
        assert!(!wm.bit(1));
        assert_eq!(wm.to_string(), "10110");
    }

    #[test]
    fn parse_rejects_bad_input() {
        assert!(Watermark::parse("").is_err());
        assert!(Watermark::parse("10a1").is_err());
    }

    #[test]
    fn from_message_is_deterministic_and_spreads() {
        let a = Watermark::from_message("© ACME", 64);
        let b = Watermark::from_message("© ACME", 64);
        assert_eq!(a, b);
        let c = Watermark::from_message("© EVIL", 64);
        assert_ne!(a, c);
        // Not all-zero / all-one.
        let ones = a.bits().iter().filter(|b| **b).count();
        assert!(ones > 8 && ones < 56);
    }

    #[test]
    fn from_message_lengths() {
        for len in [1, 7, 8, 9, 255, 256, 300] {
            assert_eq!(Watermark::from_message("m", len).len(), len);
        }
    }

    #[test]
    fn match_fraction() {
        let a = Watermark::parse("1100").unwrap();
        let b = Watermark::parse("1010").unwrap();
        assert_eq!(a.match_fraction(&b), Some(0.5));
        assert_eq!(a.match_fraction(&a), Some(1.0));
        let c = Watermark::parse("11").unwrap();
        assert_eq!(a.match_fraction(&c), None);
    }
}
