//! Encoder configuration: markable attributes, tolerances, selection
//! density, and the FD-awareness switch.

use wmx_schema::DataType;

/// The usability tolerance attached to a markable attribute — how far an
/// embedded mark may move the value while the data stays "usable" under
/// the owner's query templates.
#[derive(Debug, Clone, PartialEq)]
pub enum Tolerance {
    /// The value must stay exactly equal (such attributes cannot carry
    /// marks; used for key attributes and template parameters).
    Exact,
    /// An integer that may move by at most ±delta.
    IntegerDelta(i64),
    /// A decimal that may move by at most ±delta (compared after
    /// parsing).
    DecimalDelta(f64),
    /// Free text compared after whitespace normalization; marks live in
    /// trailing whitespace.
    TextWhitespace,
    /// A base64 raster image compared ignoring pixel LSBs; marks live in
    /// the LSB plane.
    ImageLsb,
}

impl Tolerance {
    /// Whether two values are equal within this tolerance.
    pub fn matches(&self, a: &str, b: &str) -> bool {
        match self {
            Tolerance::Exact => a == b,
            Tolerance::IntegerDelta(delta) => match (parse_i64(a), parse_i64(b)) {
                (Some(x), Some(y)) => (x - y).abs() <= *delta,
                _ => a == b,
            },
            Tolerance::DecimalDelta(delta) => match (parse_f64(a), parse_f64(b)) {
                (Some(x), Some(y)) => (x - y).abs() <= *delta,
                _ => a == b,
            },
            Tolerance::TextWhitespace => normalize_whitespace(a) == normalize_whitespace(b),
            Tolerance::ImageLsb => {
                match (wmx_crypto::base64::decode(a), wmx_crypto::base64::decode(b)) {
                    (Ok(x), Ok(y)) => {
                        x.len() == y.len() && x.iter().zip(&y).all(|(p, q)| (p >> 1) == (q >> 1))
                    }
                    _ => a == b,
                }
            }
        }
    }
}

fn parse_i64(s: &str) -> Option<i64> {
    s.trim().parse().ok()
}

fn parse_f64(s: &str) -> Option<f64> {
    s.trim().parse().ok()
}

fn normalize_whitespace(s: &str) -> String {
    s.split_whitespace().collect::<Vec<_>>().join(" ")
}

/// Declaration of one attribute with watermark capacity: "specify the
/// data elements with watermark capacity" (demo part 1).
#[derive(Debug, Clone, PartialEq)]
pub struct MarkableAttr {
    /// Logical entity name.
    pub entity: String,
    /// Logical attribute name.
    pub attr: String,
    /// Data type (selects the embedding plug-in).
    pub data_type: DataType,
    /// Allowed perturbation.
    pub tolerance: Tolerance,
}

impl MarkableAttr {
    /// Integer attribute markable within ±delta.
    pub fn integer(entity: &str, attr: &str, delta: i64) -> Self {
        MarkableAttr {
            entity: entity.to_string(),
            attr: attr.to_string(),
            data_type: DataType::Integer,
            tolerance: Tolerance::IntegerDelta(delta),
        }
    }

    /// Decimal attribute markable within ±delta.
    pub fn decimal(entity: &str, attr: &str, delta: f64) -> Self {
        MarkableAttr {
            entity: entity.to_string(),
            attr: attr.to_string(),
            data_type: DataType::Decimal,
            tolerance: Tolerance::DecimalDelta(delta),
        }
    }

    /// Text attribute markable in trailing whitespace.
    pub fn text(entity: &str, attr: &str) -> Self {
        MarkableAttr {
            entity: entity.to_string(),
            attr: attr.to_string(),
            data_type: DataType::Text,
            tolerance: Tolerance::TextWhitespace,
        }
    }

    /// Base64 image attribute markable in the LSB plane.
    pub fn image(entity: &str, attr: &str) -> Self {
        MarkableAttr {
            entity: entity.to_string(),
            attr: attr.to_string(),
            data_type: DataType::Base64Image,
            tolerance: Tolerance::ImageLsb,
        }
    }
}

/// A *structure unit* declaration: the relative order of a multi-valued
/// attribute's values carries one bit (the paper's "structure units …
/// could contain bandwidth for watermarking"). Order marks cost no value
/// perturbation at all but are erased by sibling reordering — the
/// trade-off experiment E8 measures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StructuralAttr {
    /// Logical entity name.
    pub entity: String,
    /// Multi-valued logical attribute whose value order carries the bit.
    pub attr: String,
}

/// Encoder configuration.
#[derive(Debug, Clone)]
pub struct EncoderConfig {
    /// Selection density: one unit in `gamma` carries a mark.
    pub gamma: u32,
    /// Attributes with watermark capacity.
    pub markable: Vec<MarkableAttr>,
    /// Multi-valued attributes whose sibling order carries bits.
    pub structural: Vec<StructuralAttr>,
    /// Treat FD-redundancy groups as single units (the WmXML behaviour).
    /// Disabling this reproduces the FD-unaware scheme the paper's
    /// challenge (C) warns about — the E5 ablation.
    pub use_fd_groups: bool,
    /// Error-correcting redundancy factor `r` (default 1 = off). When
    /// `r > 1` the embedded watermark is the base watermark repeated `r`
    /// times: each base bit is carried by `r` disjoint unit groups and
    /// detection decodes by majority *of group verdicts*, so a locally
    /// concentrated distortion that flips one group's votes is outvoted
    /// by the untouched groups. Selection plans are redundancy-agnostic
    /// (unit enumeration and PRF selection do not depend on `r`); only
    /// the bit-index width changes, so embed and detect must agree on
    /// `r` exactly like they must agree on the key.
    pub redundancy: u32,
}

impl EncoderConfig {
    /// A config marking the given attributes with `gamma` density and
    /// FD-group handling enabled.
    pub fn new(gamma: u32, markable: Vec<MarkableAttr>) -> Self {
        EncoderConfig {
            gamma,
            markable,
            structural: Vec::new(),
            use_fd_groups: true,
            redundancy: 1,
        }
    }

    /// Returns the config with error-correcting redundancy factor `r`
    /// (values `0` and `1` both mean "off").
    pub fn with_redundancy(mut self, r: u32) -> Self {
        self.redundancy = r.max(1);
        self
    }

    /// Adds a structure-unit declaration.
    pub fn with_structural(mut self, entity: &str, attr: &str) -> Self {
        self.structural.push(StructuralAttr {
            entity: entity.to_string(),
            attr: attr.to_string(),
        });
        self
    }

    /// Looks up the markable declaration for `(entity, attr)`.
    pub fn markable_for(&self, entity: &str, attr: &str) -> Option<&MarkableAttr> {
        self.markable
            .iter()
            .find(|m| m.entity == entity && m.attr == attr)
    }

    /// Returns the config with FD-group handling disabled (ablation).
    pub fn without_fd_groups(mut self) -> Self {
        self.use_fd_groups = false;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wmx_crypto::base64;

    #[test]
    fn exact_tolerance() {
        let t = Tolerance::Exact;
        assert!(t.matches("a", "a"));
        assert!(!t.matches("a", "a "));
    }

    #[test]
    fn integer_tolerance() {
        let t = Tolerance::IntegerDelta(1);
        assert!(t.matches("1998", "1999"));
        assert!(t.matches("1998", "1997"));
        assert!(!t.matches("1998", "2000"));
        // Non-numeric falls back to exact.
        assert!(t.matches("n/a", "n/a"));
        assert!(!t.matches("n/a", "1998"));
    }

    #[test]
    fn decimal_tolerance() {
        let t = Tolerance::DecimalDelta(0.05);
        assert!(t.matches("9.99", "10.01"));
        assert!(!t.matches("9.99", "10.10"));
    }

    #[test]
    fn text_whitespace_tolerance() {
        let t = Tolerance::TextWhitespace;
        assert!(t.matches("Database  Systems", "Database Systems "));
        assert!(t.matches("a b", " a  b "));
        assert!(!t.matches("a b", "a c"));
    }

    #[test]
    fn image_lsb_tolerance() {
        let t = Tolerance::ImageLsb;
        let a = base64::encode(&[0b1010_1010, 0b1111_0000]);
        let b = base64::encode(&[0b1010_1011, 0b1111_0001]); // LSBs differ
        let c = base64::encode(&[0b1010_1000, 0b1111_0010]); // bit 1 differs
        assert!(t.matches(&a, &b));
        assert!(!t.matches(&a, &c));
        // Different lengths never match.
        let d = base64::encode(&[0b1010_1010]);
        assert!(!t.matches(&a, &d));
    }

    #[test]
    fn config_lookup() {
        let config = EncoderConfig::new(
            10,
            vec![
                MarkableAttr::integer("book", "year", 1),
                MarkableAttr::text("book", "abstract"),
            ],
        );
        assert!(config.markable_for("book", "year").is_some());
        assert!(config.markable_for("book", "title").is_none());
        assert!(config.use_fd_groups);
        assert!(!config.clone().without_fd_groups().use_fd_groups);
    }
}
