//! Embedding plug-ins — the `WA_i` boxes of the paper's Fig. 4.
//!
//! "As XML could contain various types of data, the system prepares
//! various plug-in watermarking algorithms for different data types."
//! Each plug-in writes one bit into a value (and can read it back):
//!
//! * [`NumericPlugin`] — integers and decimals: the bit becomes the
//!   parity of the value (of the scaled value for decimals), moved by at
//!   most the declared tolerance; a keyed nonce picks the perturbation
//!   direction so marks do not bias values systematically.
//! * [`TextPlugin`] — free text: the bit lives in a trailing space,
//!   invisible to whitespace-normalized comparison.
//! * [`ImagePlugin`] — base64 raster images: the bit is written into the
//!   LSBs of a keyed pseudo-random pixel subset and read back by
//!   majority, a spatial-domain LSB scheme in the spirit of the image
//!   watermarking literature the paper cites.

use wmx_crypto::base64;
use wmx_schema::DataType;

/// A type-specific embedding algorithm.
pub trait EmbedAlgorithm {
    /// Plug-in name (for reports).
    fn name(&self) -> &'static str;

    /// Embeds `bit` into `value`, using `nonce` as keyed randomness.
    /// Returns `None` when the value cannot carry a mark (e.g. not a
    /// number for the numeric plug-in).
    fn embed(&self, value: &str, bit: bool, nonce: u64) -> Option<String>;

    /// Extracts the bit from `value` (requires the same `nonce` for
    /// position-keyed plug-ins). `None` when unreadable.
    fn extract(&self, value: &str, nonce: u64) -> Option<bool>;
}

/// Returns the plug-in registered for `data_type`.
pub fn plugin_for(data_type: DataType) -> Box<dyn EmbedAlgorithm> {
    match data_type {
        DataType::Integer => Box::new(NumericPlugin::integer()),
        DataType::Decimal => Box::new(NumericPlugin::decimal(2)),
        DataType::Text => Box::new(TextPlugin),
        DataType::Base64Image => Box::new(ImagePlugin::default()),
    }
}

// ---------------------------------------------------------------------
// Numeric
// ---------------------------------------------------------------------

/// Parity-based numeric embedding.
#[derive(Debug, Clone)]
pub struct NumericPlugin {
    /// Decimal places to scale into the integer domain (0 = integers).
    pub scale_digits: u32,
}

impl NumericPlugin {
    /// Integer plug-in.
    pub fn integer() -> Self {
        NumericPlugin { scale_digits: 0 }
    }

    /// Decimal plug-in embedding into the `scale_digits`-th decimal
    /// place (2 = cents).
    pub fn decimal(scale_digits: u32) -> Self {
        NumericPlugin { scale_digits }
    }

    fn scale(&self) -> f64 {
        10f64.powi(self.scale_digits as i32)
    }

    fn to_scaled(&self, value: &str) -> Option<i64> {
        let v: f64 = value.trim().parse().ok()?;
        let scaled = (v * self.scale()).round();
        if scaled.abs() > 9e15 {
            return None;
        }
        Some(scaled as i64)
    }

    fn render(&self, scaled: i64) -> String {
        if self.scale_digits == 0 {
            scaled.to_string()
        } else {
            let denom = 10i64.pow(self.scale_digits);
            let sign = if scaled < 0 { "-" } else { "" };
            let abs = scaled.abs();
            format!(
                "{sign}{}.{:0width$}",
                abs / denom,
                abs % denom,
                width = self.scale_digits as usize
            )
        }
    }
}

impl EmbedAlgorithm for NumericPlugin {
    fn name(&self) -> &'static str {
        "numeric-parity"
    }

    fn embed(&self, value: &str, bit: bool, nonce: u64) -> Option<String> {
        let scaled = self.to_scaled(value)?;
        let want = i64::from(bit);
        let adjusted = if scaled.rem_euclid(2) == want {
            scaled
        } else {
            // Nonce picks the direction, keeping the expected perturbation
            // zero-mean across units.
            if nonce.is_multiple_of(2) {
                scaled + 1
            } else {
                scaled - 1
            }
        };
        Some(self.render(adjusted))
    }

    fn extract(&self, value: &str, _nonce: u64) -> Option<bool> {
        let scaled = self.to_scaled(value)?;
        Some(scaled.rem_euclid(2) == 1)
    }
}

// ---------------------------------------------------------------------
// Text
// ---------------------------------------------------------------------

/// Trailing-whitespace text embedding.
#[derive(Debug, Clone, Default)]
pub struct TextPlugin;

impl EmbedAlgorithm for TextPlugin {
    fn name(&self) -> &'static str {
        "text-trailing-space"
    }

    fn embed(&self, value: &str, bit: bool, _nonce: u64) -> Option<String> {
        let trimmed = value.trim_end_matches(' ');
        if trimmed.is_empty() {
            return None; // an all-space value cannot carry a reliable mark
        }
        Some(if bit {
            format!("{trimmed} ")
        } else {
            trimmed.to_string()
        })
    }

    fn extract(&self, value: &str, _nonce: u64) -> Option<bool> {
        if value.trim_end_matches(' ').is_empty() {
            return None;
        }
        Some(value.ends_with(' '))
    }
}

// ---------------------------------------------------------------------
// Image
// ---------------------------------------------------------------------

/// LSB-plane image embedding over base64 raster payloads.
///
/// The payload layout (produced by `wmx-data::image`) is
/// `WMIMG;<width>;<height>;` followed by `width*height` raw gray bytes,
/// all base64-encoded. The plug-in writes the bit into the LSBs of
/// `samples` pixels chosen by a nonce-seeded splitmix64 sequence, and
/// reads it back by majority vote over the same positions.
#[derive(Debug, Clone)]
pub struct ImagePlugin {
    /// Number of pixel positions carrying the bit.
    pub samples: usize,
}

impl Default for ImagePlugin {
    fn default() -> Self {
        ImagePlugin { samples: 32 }
    }
}

/// The header magic of the raster payload format.
pub const IMAGE_MAGIC: &[u8] = b"WMIMG;";

/// Splits a decoded payload into (header length, pixel region).
fn pixel_region(data: &[u8]) -> Option<std::ops::Range<usize>> {
    if !data.starts_with(IMAGE_MAGIC) {
        return None;
    }
    // Header: WMIMG;<w>;<h>;
    let mut semis = 0usize;
    for (i, &b) in data.iter().enumerate() {
        if b == b';' {
            semis += 1;
            if semis == 3 {
                let start = i + 1;
                if start >= data.len() {
                    return None;
                }
                return Some(start..data.len());
            }
        }
    }
    None
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl ImagePlugin {
    fn positions(&self, nonce: u64, len: usize) -> Vec<usize> {
        let mut state = nonce ^ 0x574d_494d_4721_1005; // domain-separate
        let count = self.samples.min(len);
        let mut out = Vec::with_capacity(count);
        let mut seen = std::collections::HashSet::with_capacity(count);
        while out.len() < count {
            let pos = (splitmix64(&mut state) % len as u64) as usize;
            if seen.insert(pos) {
                out.push(pos);
            }
        }
        out
    }
}

impl EmbedAlgorithm for ImagePlugin {
    fn name(&self) -> &'static str {
        "image-lsb"
    }

    fn embed(&self, value: &str, bit: bool, nonce: u64) -> Option<String> {
        let mut data = base64::decode(value).ok()?;
        let region = pixel_region(&data)?;
        if region.is_empty() {
            return None;
        }
        let offset = region.start;
        let len = region.len();
        for pos in self.positions(nonce, len) {
            let b = &mut data[offset + pos];
            *b = (*b & !1) | u8::from(bit);
        }
        Some(base64::encode(&data))
    }

    fn extract(&self, value: &str, nonce: u64) -> Option<bool> {
        let data = base64::decode(value).ok()?;
        let region = pixel_region(&data)?;
        if region.is_empty() {
            return None;
        }
        let offset = region.start;
        let len = region.len();
        let positions = self.positions(nonce, len);
        let ones = positions
            .iter()
            .filter(|&&pos| data[offset + pos] & 1 == 1)
            .count();
        Some(ones * 2 > positions.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numeric_integer_roundtrip_and_tolerance() {
        let p = NumericPlugin::integer();
        for (value, bit, nonce) in [("1998", true, 0), ("1998", false, 1), ("1997", true, 5)] {
            let marked = p.embed(value, bit, nonce).unwrap();
            assert_eq!(p.extract(&marked, nonce), Some(bit), "{value} bit={bit}");
            let before: i64 = value.parse().unwrap();
            let after: i64 = marked.parse().unwrap();
            assert!((before - after).abs() <= 1, "perturbation exceeds ±1");
        }
    }

    #[test]
    fn numeric_no_change_when_parity_matches() {
        let p = NumericPlugin::integer();
        assert_eq!(p.embed("1998", false, 0).unwrap(), "1998");
        assert_eq!(p.embed("1999", true, 0).unwrap(), "1999");
    }

    #[test]
    fn numeric_negative_values() {
        let p = NumericPlugin::integer();
        let marked = p.embed("-7", false, 0).unwrap();
        assert_eq!(p.extract(&marked, 0), Some(false));
        // rem_euclid keeps parity sensible for negatives.
        assert_eq!(p.extract("-7", 0), Some(true));
        assert_eq!(p.extract("-8", 0), Some(false));
    }

    #[test]
    fn numeric_rejects_non_numbers() {
        let p = NumericPlugin::integer();
        assert_eq!(p.embed("n/a", true, 0), None);
        assert_eq!(p.extract("n/a", 0), None);
    }

    #[test]
    fn decimal_scaling() {
        let p = NumericPlugin::decimal(2);
        let marked = p.embed("9.99", false, 0).unwrap();
        assert_eq!(marked, "10.00");
        assert_eq!(p.extract(&marked, 0), Some(false));
        let marked = p.embed("9.99", true, 0).unwrap();
        assert_eq!(marked, "9.99");
        // Render pads cents.
        let marked = p.embed("12.1", true, 0).unwrap();
        assert_eq!(p.extract(&marked, 0), Some(true));
        assert!(marked.contains('.'));
    }

    #[test]
    fn text_roundtrip() {
        let p = TextPlugin;
        let marked1 = p.embed("Database Systems", true, 0).unwrap();
        assert_eq!(marked1, "Database Systems ");
        assert_eq!(p.extract(&marked1, 0), Some(true));
        let marked0 = p.embed("Database Systems ", false, 0).unwrap();
        assert_eq!(marked0, "Database Systems");
        assert_eq!(p.extract(&marked0, 0), Some(false));
    }

    #[test]
    fn text_rejects_empty() {
        let p = TextPlugin;
        assert_eq!(p.embed("   ", true, 0), None);
        assert_eq!(p.extract("", 0), None);
    }

    fn sample_image() -> String {
        let mut payload = b"WMIMG;8;8;".to_vec();
        payload.extend((0..64u8).map(|i| i.wrapping_mul(3)));
        base64::encode(&payload)
    }

    #[test]
    fn image_roundtrip_both_bits() {
        let p = ImagePlugin::default();
        let img = sample_image();
        for bit in [true, false] {
            for nonce in [1u64, 42, 9999] {
                let marked = p.embed(&img, bit, nonce).unwrap();
                assert_eq!(p.extract(&marked, nonce), Some(bit));
            }
        }
    }

    #[test]
    fn image_perturbs_only_lsbs() {
        let p = ImagePlugin::default();
        let img = sample_image();
        let marked = p.embed(&img, true, 7).unwrap();
        let a = base64::decode(&img).unwrap();
        let b = base64::decode(&marked).unwrap();
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x >> 1, y >> 1, "non-LSB bits changed");
        }
        // Header untouched.
        assert_eq!(&a[..10], &b[..10]);
    }

    #[test]
    fn image_rejects_malformed_payloads() {
        let p = ImagePlugin::default();
        assert_eq!(p.embed("not base64!!", true, 0), None);
        assert_eq!(p.embed(&base64::encode(b"JPEG..."), true, 0), None);
        assert_eq!(p.embed(&base64::encode(b"WMIMG;1;1;"), true, 0), None); // no pixels
    }

    #[test]
    fn image_wrong_nonce_degrades_extraction() {
        // With the wrong nonce the positions differ; extraction still
        // returns *a* bit but it is no longer reliably the embedded one.
        // (This is what makes the secret key matter for images.)
        let p = ImagePlugin { samples: 8 };
        let img = sample_image();
        let marked = p.embed(&img, true, 1234).unwrap();
        let agreements = (0..64u64)
            .filter(|&n| p.extract(&marked, n) == Some(true))
            .count();
        assert!(agreements < 64, "wrong nonces should not always agree");
    }

    #[test]
    fn plugin_registry_covers_all_types() {
        for dt in [
            DataType::Integer,
            DataType::Decimal,
            DataType::Text,
            DataType::Base64Image,
        ] {
            let _ = plugin_for(dt);
        }
    }
}
