//! Watermark insertion (§2.2 step 2).

use crate::config::EncoderConfig;
use crate::identifier::MarkKind;
use crate::nodectx::{DomNodesMut, UnitMarker};
use crate::plan::global_plan_cache;
use crate::wm::Watermark;
use crate::WmError;
use wmx_crypto::SecretKey;
use wmx_rewrite::{LogicalQuery, SchemaBinding};
use wmx_schema::Fd;
use wmx_xml::Document;

/// One persisted identity query — what the user "safeguards … along with
/// the secret key" (§2.2). The query text is self-contained; the logical
/// form additionally enables automated rewriting after re-organization.
#[derive(Debug, Clone, PartialEq)]
pub struct StoredQuery {
    /// The unit id (PRF input; reproduces selection/bit-index/nonce).
    pub unit_id: String,
    /// The identity query text.
    pub xpath: String,
    /// Logical form for key-identified units.
    pub logical: Option<LogicalQuery>,
    /// How the bit is carried → extraction procedure.
    pub mark: MarkKind,
}

/// Embedding outcome.
#[derive(Debug, Clone)]
pub struct EmbedReport {
    /// Units enumerated (total watermark bandwidth).
    pub total_units: usize,
    /// Units the PRF selected (≈ total/γ).
    pub selected_units: usize,
    /// Selected units whose values accepted a mark.
    pub marked_units: usize,
    /// Individual node values rewritten (> marked_units when FD groups
    /// or multi-valued attributes are present).
    pub marked_nodes: usize,
    /// The query set Q to safeguard.
    pub queries: Vec<StoredQuery>,
}

impl EmbedReport {
    /// Fraction of selected units actually marked.
    pub fn capacity_utilization(&self) -> f64 {
        if self.selected_units == 0 {
            1.0
        } else {
            self.marked_units as f64 / self.selected_units as f64
        }
    }
}

/// Embeds `watermark` into `doc` in place and returns the report with
/// the identity-query set.
///
/// Follows §2.2: enumerate units (keys + FD groups), select one in γ via
/// `HMAC(K, unit-id)`, embed the assigned watermark bit through the
/// type's plug-in, and record the identity queries.
pub fn embed(
    doc: &mut Document,
    binding: &SchemaBinding,
    fds: &[Fd],
    config: &EncoderConfig,
    key: &SecretKey,
    watermark: &Watermark,
) -> Result<EmbedReport, WmError> {
    let _embed_span = wmx_telemetry::span("embed");
    if watermark.is_empty() {
        return Err(WmError::new("watermark must have at least one bit"));
    }
    // Redundancy mode widens the embedded watermark to r back-to-back
    // copies; selection and unit enumeration are untouched, each unit
    // just indexes into the wider bit string (see `Watermark::repeat`).
    let redundancy = config.redundancy.max(1) as usize;
    let eff;
    let watermark = if redundancy > 1 {
        eff = watermark.repeat(redundancy);
        &eff
    } else {
        watermark
    };
    // The compiled plan replays `enumerate_units` with its name
    // lookups and query parsing hoisted to (cached) compile time;
    // `plan_equivalence.rs` pins the bit-for-bit agreement.
    let plan = {
        let _s = wmx_telemetry::span("embed.plan");
        global_plan_cache().get_or_compile(binding, fds, config)?
    };
    let table = plan.table();
    let units = {
        let _s = wmx_telemetry::span("embed.select");
        plan.execute(doc)
    };
    let marker = UnitMarker::new(key.clone());

    let mut report = EmbedReport {
        total_units: units.len(),
        selected_units: 0,
        marked_units: 0,
        marked_nodes: 0,
        queries: Vec::new(),
    };

    let _mark_span = wmx_telemetry::span("embed.mark");
    for unit in units {
        // Selection feeds the compact key straight into the PRF — no
        // unit-id string is built for the ~(γ−1)/γ unselected units.
        if !marker.is_selected(&unit.key.id(table), config.gamma) {
            continue;
        }
        report.selected_units += 1;
        // The per-node decision lives in `UnitMarker` (shared with the
        // streaming engine); this path feeds it the DOM-backed context.
        let marked_nodes = marker.mark_unit(
            &mut DomNodesMut::new(doc, &unit.nodes),
            &unit.key.id(table),
            unit.mark,
            watermark,
        )?;
        if marked_nodes == 0 {
            continue; // value could not carry the mark (e.g. empty text)
        }
        report.marked_units += 1;
        report.marked_nodes += marked_nodes;
        // Only marked units pay for query construction and the textual
        // unit id (the persisted safeguard format is unchanged).
        let (query, logical) = unit.query_and_logical(table, binding, fds)?;
        report.queries.push(StoredQuery {
            unit_id: unit.key.display(table),
            xpath: query.to_string(),
            logical,
            mark: unit.mark,
        });
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MarkableAttr;
    use wmx_rewrite::binding::{AttrBinding, EntityBinding};
    use wmx_xml::parse;
    use wmx_xpath::Query;

    fn doc(n: usize) -> Document {
        let mut body = String::from("<db>");
        for i in 0..n {
            body.push_str(&format!(
                "<book publisher=\"pub{}\"><title>Book {i}</title><editor>Ed{}</editor><year>{}</year></book>",
                i % 3,
                i % 3,
                1990 + (i % 20)
            ));
        }
        body.push_str("</db>");
        parse(&body).unwrap()
    }

    fn binding() -> SchemaBinding {
        SchemaBinding::new(
            "db1",
            vec![EntityBinding::new(
                "book",
                "/db/book",
                "title",
                vec![
                    ("title", AttrBinding::ChildText("title".into())),
                    ("author", AttrBinding::ChildText("author".into())),
                    ("editor", AttrBinding::ChildText("editor".into())),
                    ("year", AttrBinding::ChildText("year".into())),
                    ("publisher", AttrBinding::Attribute("publisher".into())),
                ],
            )
            .unwrap()],
        )
    }

    fn config(gamma: u32) -> EncoderConfig {
        EncoderConfig::new(gamma, vec![MarkableAttr::integer("book", "year", 1)])
    }

    #[test]
    fn embedding_marks_roughly_one_in_gamma() {
        let mut d = doc(600);
        let report = embed(
            &mut d,
            &binding(),
            &[],
            &config(3),
            &SecretKey::from_passphrase("k"),
            &Watermark::parse("10110100").unwrap(),
        )
        .unwrap();
        assert_eq!(report.total_units, 600);
        let expect = 200.0;
        let sd = (600.0f64 * (1.0 / 3.0) * (2.0 / 3.0)).sqrt();
        assert!(
            (report.selected_units as f64 - expect).abs() < 5.0 * sd,
            "selected {} far from {expect}",
            report.selected_units
        );
        assert_eq!(report.marked_units, report.selected_units);
        assert_eq!(report.queries.len(), report.marked_units);
        assert_eq!(report.capacity_utilization(), 1.0);
    }

    #[test]
    fn marks_stay_within_tolerance() {
        let original = doc(100);
        let mut marked = doc(100);
        embed(
            &mut marked,
            &binding(),
            &[],
            &config(1),
            &SecretKey::from_passphrase("k"),
            &Watermark::parse("1011").unwrap(),
        )
        .unwrap();
        let years = Query::compile("/db/book/year").unwrap();
        let before: Vec<i64> = years
            .select(&original)
            .iter()
            .map(|n| n.string_value(&original).parse().unwrap())
            .collect();
        let after: Vec<i64> = years
            .select(&marked)
            .iter()
            .map(|n| n.string_value(&marked).parse().unwrap())
            .collect();
        assert_eq!(before.len(), after.len());
        for (b, a) in before.iter().zip(&after) {
            assert!((b - a).abs() <= 1, "year moved {b} -> {a}");
        }
    }

    #[test]
    fn embedding_is_deterministic() {
        let mut a = doc(50);
        let mut b = doc(50);
        let key = SecretKey::from_passphrase("same");
        let wm = Watermark::parse("110010").unwrap();
        embed(&mut a, &binding(), &[], &config(2), &key, &wm).unwrap();
        embed(&mut b, &binding(), &[], &config(2), &key, &wm).unwrap();
        assert_eq!(
            wmx_xml::to_canonical_string(&a),
            wmx_xml::to_canonical_string(&b)
        );
    }

    #[test]
    fn different_keys_mark_different_units() {
        let mut a = doc(200);
        let mut b = doc(200);
        let wm = Watermark::parse("110010").unwrap();
        let ra = embed(
            &mut a,
            &binding(),
            &[],
            &config(4),
            &SecretKey::from_passphrase("k1"),
            &wm,
        )
        .unwrap();
        let rb = embed(
            &mut b,
            &binding(),
            &[],
            &config(4),
            &SecretKey::from_passphrase("k2"),
            &wm,
        )
        .unwrap();
        let ids_a: std::collections::BTreeSet<_> =
            ra.queries.iter().map(|q| q.unit_id.clone()).collect();
        let ids_b: std::collections::BTreeSet<_> =
            rb.queries.iter().map(|q| q.unit_id.clone()).collect();
        assert_ne!(ids_a, ids_b);
    }

    #[test]
    fn fd_groups_marked_consistently() {
        let mut d = doc(60);
        let fd = Fd::new("editor-publisher", "/db/book", &["editor"], &["@publisher"]).unwrap();
        let mut cfg = config(1);
        cfg.markable.push(MarkableAttr::text("book", "publisher"));
        let report = embed(
            &mut d,
            &binding(),
            &[fd],
            &cfg,
            &SecretKey::from_passphrase("k"),
            &Watermark::parse("10").unwrap(),
        )
        .unwrap();
        // 60 year units + 3 fd groups (pub0..pub2).
        assert_eq!(report.total_units, 63);
        // Every duplicate in a group holds the identical value.
        for group_query in [
            "/db/book[editor = 'Ed0']/@publisher",
            "/db/book[editor = 'Ed1']/@publisher",
            "/db/book[editor = 'Ed2']/@publisher",
        ] {
            let q = Query::compile(group_query).unwrap();
            let values: std::collections::BTreeSet<String> =
                q.select(&d).iter().map(|n| n.string_value(&d)).collect();
            assert_eq!(values.len(), 1, "group {group_query} diverged: {values:?}");
        }
    }

    #[test]
    fn stored_queries_locate_marked_nodes() {
        let mut d = doc(80);
        let report = embed(
            &mut d,
            &binding(),
            &[],
            &config(2),
            &SecretKey::from_passphrase("k"),
            &Watermark::parse("1011").unwrap(),
        )
        .unwrap();
        for sq in &report.queries {
            let q = Query::compile(&sq.xpath).unwrap();
            assert!(
                !q.select(&d).is_empty(),
                "stored query {} finds nothing",
                sq.xpath
            );
        }
    }

    #[test]
    fn empty_watermark_rejected() {
        let mut d = doc(5);
        let err = embed(
            &mut d,
            &binding(),
            &[],
            &config(1),
            &SecretKey::from_passphrase("k"),
            &Watermark::from_bits(vec![]),
        )
        .unwrap_err();
        assert!(err.message.contains("at least one bit"));
    }

    #[test]
    fn gamma_zero_marks_nothing() {
        let mut d = doc(30);
        let before = wmx_xml::to_canonical_string(&d);
        let report = embed(
            &mut d,
            &binding(),
            &[],
            &config(0),
            &SecretKey::from_passphrase("k"),
            &Watermark::parse("10").unwrap(),
        )
        .unwrap();
        assert_eq!(report.selected_units, 0);
        assert_eq!(wmx_xml::to_canonical_string(&d), before);
    }

    /// A document with multi-author books for order-mark tests.
    fn doc_with_authors(n: usize) -> Document {
        let mut body = String::from("<db>");
        for i in 0..n {
            body.push_str(&format!(
                "<book publisher=\"p\"><title>Book {i}</title>\
                 <author>Author {}</author><author>Author {}</author>\
                 <editor>E</editor><year>2000</year></book>",
                (i * 7) % n,
                (i * 11 + 3) % n,
            ));
        }
        body.push_str("</db>");
        wmx_xml::parse(&body).unwrap()
    }

    #[test]
    fn order_bits_embed_and_extract() {
        let mut d = doc_with_authors(40);
        let cfg = EncoderConfig::new(1, vec![]).with_structural("book", "author");
        let key = SecretKey::from_passphrase("ord");
        let wm = Watermark::parse("1011").unwrap();
        let report = embed(&mut d, &binding(), &[], &cfg, &key, &wm).unwrap();
        assert!(report.marked_units > 0);
        // Extraction agrees with embedding for every stored query.
        let marker = UnitMarker::new(key);
        for sq in &report.queries {
            let q = Query::compile(&sq.xpath).unwrap();
            let nodes = q.select(&d);
            let votes = marker.extract_unit(
                &crate::nodectx::DomNodes::new(&d, &nodes),
                &sq.unit_id,
                sq.mark,
                wm.len(),
            );
            assert_eq!(
                votes.bits,
                vec![wm.bit(votes.bit_index)],
                "order bit mismatch for {}",
                sq.xpath
            );
        }
    }

    #[test]
    fn order_marks_do_not_change_values() {
        let original = doc_with_authors(30);
        let mut marked = doc_with_authors(30);
        let cfg = EncoderConfig::new(1, vec![]).with_structural("book", "author");
        embed(
            &mut marked,
            &binding(),
            &[],
            &cfg,
            &SecretKey::from_passphrase("ord"),
            &Watermark::parse("10").unwrap(),
        )
        .unwrap();
        // The multiset of author values per book is untouched; only the
        // order may differ.
        let authors = |d: &Document| -> Vec<std::collections::BTreeSet<String>> {
            let root = d.root_element().unwrap();
            d.child_elements_named(root, "book")
                .map(|b| {
                    d.child_elements_named(b, "author")
                        .map(|a| d.text_content(a))
                        .collect()
                })
                .collect()
        };
        assert_eq!(authors(&original), authors(&marked));
    }

    #[test]
    fn equal_valued_pairs_are_skipped() {
        let mut d = wmx_xml::parse(
            r#"<db><book publisher="p"><title>T</title><author>Same</author><author>Same</author><editor>E</editor><year>2000</year></book></db>"#,
        )
        .unwrap();
        let cfg = EncoderConfig::new(1, vec![]).with_structural("book", "author");
        let report = embed(
            &mut d,
            &binding(),
            &[],
            &cfg,
            &SecretKey::from_passphrase("ord"),
            &Watermark::parse("10").unwrap(),
        )
        .unwrap();
        assert_eq!(report.marked_units, 0, "equal values cannot carry order");
    }
}
