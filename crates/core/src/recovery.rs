//! Error-correcting redundancy decode and suspect-unit repair.
//!
//! In redundancy mode ([`EncoderConfig::redundancy`] > 1) the embedded
//! watermark is the base watermark repeated `r` times, so each base bit
//! is carried by `r` disjoint unit populations ("groups"). Detection
//! decodes each base bit by majority *of group verdicts*: a locally
//! concentrated distortion that flips one whole group's votes is
//! outvoted by the untouched groups — the plain pooled majority would
//! have been swamped. Ties among group verdicts fall back to the pooled
//! per-node majority, so the decode degrades to the plain scheme, never
//! below it.
//!
//! [`EncoderConfig::redundancy`]: crate::config::EncoderConfig::redundancy

use crate::decoder::{sign_test_p, BitVotes, DetectionReport, VoteCounters};
use crate::forensics::ForensicContext;
use crate::nodectx::{DomNodes, DomNodesMut, UnitMarker};
use crate::plan::global_plan_cache;
use crate::wm::Watermark;
use crate::WmError;
use wmx_crypto::SecretKey;
use wmx_xml::Document;

/// The group-majority decode of an effective-width vote tally.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RedundantDecode {
    /// Base watermark length `L`.
    pub base_len: usize,
    /// Redundancy factor `r` (number of groups).
    pub groups: usize,
    /// Pooled per-base-bit votes (all groups merged) — what the plain
    /// scheme would have tallied.
    pub pooled: Vec<BitVotes>,
    /// Per-base-bit group verdicts (`group_verdicts[j][g]` is group `g`'s
    /// majority for base bit `j`; `None` when the group cast no votes or
    /// tied).
    pub group_verdicts: Vec<Vec<Option<bool>>>,
    /// Decoded base bits: majority of group verdicts, pooled majority on
    /// a group-verdict tie.
    pub decoded: Vec<Option<bool>>,
}

/// Decodes an effective-width tally (`base_len * redundancy` slots) into
/// base bits by group majority.
pub fn decode_redundant(
    bit_votes_eff: &[BitVotes],
    base_len: usize,
    redundancy: u32,
) -> RedundantDecode {
    let groups = redundancy.max(1) as usize;
    debug_assert_eq!(bit_votes_eff.len(), base_len * groups);
    let mut pooled = vec![BitVotes::default(); base_len];
    let mut group_verdicts = vec![Vec::with_capacity(groups); base_len];
    let mut decoded = vec![None; base_len];
    for j in 0..base_len {
        let mut yes = 0usize;
        let mut no = 0usize;
        for g in 0..groups {
            let slot = &bit_votes_eff[g * base_len + j];
            pooled[j].merge(slot);
            let verdict = slot.majority();
            match verdict {
                Some(true) => yes += 1,
                Some(false) => no += 1,
                None => {}
            }
            group_verdicts[j].push(verdict);
        }
        decoded[j] = match yes.cmp(&no) {
            std::cmp::Ordering::Greater => Some(true),
            std::cmp::Ordering::Less => Some(false),
            std::cmp::Ordering::Equal => pooled[j].majority(),
        };
    }
    RedundantDecode {
        base_len,
        groups,
        pooled,
        group_verdicts,
        decoded,
    }
}

/// Builds a base-width [`DetectionReport`] from a redundant decode: the
/// reported `bit_votes` are the pooled per-base-bit tallies, `recovered`
/// is the group-majority decode, and the τ decision / sign test run over
/// the decoded bits.
pub fn report_from_redundant_votes(
    decode: &RedundantDecode,
    watermark: &Watermark,
    threshold: f64,
    counters: VoteCounters,
) -> DetectionReport {
    let mut voted_bits = 0usize;
    let mut matched_bits = 0usize;
    for (j, slot) in decode.pooled.iter().enumerate() {
        if slot.ones + slot.zeros > 0 {
            voted_bits += 1;
            if decode.decoded[j] == Some(watermark.bit(j)) {
                matched_bits += 1;
            }
        }
    }
    let p_value = sign_test_p(voted_bits, matched_bits);
    let match_fraction = if voted_bits == 0 {
        0.0
    } else {
        matched_bits as f64 / voted_bits as f64
    };
    let detected = voted_bits > 0 && match_fraction >= threshold;
    DetectionReport {
        total_queries: counters.total_queries,
        located_queries: counters.located_queries,
        unrewritable_queries: counters.unrewritable_queries,
        votes_cast: counters.votes_cast,
        bit_votes: decode.pooled.clone(),
        recovered: decode.decoded.clone(),
        voted_bits,
        matched_bits,
        detected,
        p_value,
        forensics: None,
    }
}

/// Outcome of [`repair_document`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RepairReport {
    /// Selected units whose observed votes contradicted the expected
    /// bit (or that yielded no vote).
    pub suspect_units: usize,
    /// Suspect units whose expected bit was re-embedded.
    pub repaired_units: usize,
    /// Individual node values rewritten during repair.
    pub repaired_nodes: usize,
    /// Suspect units whose value could no longer accept the mark.
    pub unrecoverable_units: usize,
}

/// Re-embeds the expected watermark bit into every *suspect* unit of
/// `doc`, leaving clean and unselected units untouched by construction
/// (they are never rewritten, only read). The owner must supply the same
/// key/watermark/config used at embedding.
///
/// Degrades gracefully: a unit whose value can no longer carry the mark
/// is counted `unrecoverable`, never an error.
pub fn repair_document(
    doc: &mut Document,
    ctx: ForensicContext<'_>,
    key: &SecretKey,
    watermark: &Watermark,
) -> Result<RepairReport, WmError> {
    let _span = wmx_telemetry::span("recovery.repair");
    let plan = global_plan_cache().get_or_compile(ctx.binding, ctx.fds, ctx.config)?;
    let table = plan.table();
    let redundancy = ctx.config.redundancy.max(1) as usize;
    let eff;
    let wm_eff = if redundancy > 1 {
        eff = watermark.repeat(redundancy);
        &eff
    } else {
        watermark
    };
    let marker = UnitMarker::new(key.clone());
    let units = plan.execute(doc);
    let mut report = RepairReport::default();
    for unit in units {
        if !marker.is_selected(&unit.key.id(table), ctx.config.gamma) {
            continue;
        }
        let votes = marker.extract_unit(
            &DomNodes::new(doc, &unit.nodes),
            &unit.key.id(table),
            unit.mark,
            wm_eff.len(),
        );
        let expected = wm_eff.bit(votes.bit_index);
        let clean = !votes.bits.is_empty() && votes.bits.iter().all(|&b| b == expected);
        if clean {
            continue;
        }
        report.suspect_units += 1;
        let repaired_nodes = marker.mark_unit(
            &mut DomNodesMut::new(doc, &unit.nodes),
            &unit.key.id(table),
            unit.mark,
            wm_eff,
        )?;
        if repaired_nodes == 0 {
            report.unrecoverable_units += 1;
        } else {
            report.repaired_units += 1;
            report.repaired_nodes += repaired_nodes;
        }
    }
    wmx_telemetry::global()
        .counter("recovery.repaired_nodes")
        .add(report.repaired_nodes as u64);
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{EncoderConfig, MarkableAttr};
    use crate::decoder::{detect, DetectionInput};
    use crate::encoder::embed;
    use crate::forensics::{detect_forensic, UnitStatus};
    use wmx_rewrite::binding::{AttrBinding, EntityBinding};
    use wmx_rewrite::SchemaBinding;
    use wmx_xpath::Query;

    fn votes(ones: usize, zeros: usize) -> BitVotes {
        BitVotes { ones, zeros }
    }

    #[test]
    fn group_majority_overrules_one_flipped_group() {
        // L = 2, r = 3. Base bit 0 is true; group 0 was flipped hard
        // (8 zeros), groups 1 and 2 agree (3 ones each). Pooled majority
        // would say false (8 zeros vs 6 ones); group decode says true.
        let eff = vec![
            votes(0, 8), // g0 bit0 (flipped)
            votes(5, 0), // g0 bit1
            votes(3, 0), // g1 bit0
            votes(4, 0), // g1 bit1
            votes(3, 0), // g2 bit0
            votes(2, 0), // g2 bit1
        ];
        let d = decode_redundant(&eff, 2, 3);
        assert_eq!(d.decoded, vec![Some(true), Some(true)]);
        assert_eq!(d.pooled[0], votes(6, 8));
        assert_eq!(d.pooled[0].majority(), Some(false), "pooled alone fails");
        assert_eq!(
            d.group_verdicts[0],
            vec![Some(false), Some(true), Some(true)]
        );
    }

    #[test]
    fn group_verdict_tie_falls_back_to_pooled() {
        // r = 2, the two groups disagree; pooled votes break the tie.
        let eff = vec![
            votes(1, 0), // g0 bit0 -> true
            votes(0, 9), // g1 bit0 -> false, and pooled is 1:9
        ];
        let d = decode_redundant(&eff, 1, 2);
        assert_eq!(d.decoded, vec![Some(false)]);
    }

    #[test]
    fn empty_groups_do_not_vote() {
        let eff = vec![
            votes(0, 0), // g0: silent
            votes(2, 0), // g1 -> true
            votes(0, 0), // g2: silent
        ];
        let d = decode_redundant(&eff, 1, 3);
        assert_eq!(d.decoded, vec![Some(true)]);
        assert_eq!(d.group_verdicts[0], vec![None, Some(true), None]);
    }

    fn doc(n: usize) -> Document {
        let mut body = String::from("<db>");
        for i in 0..n {
            body.push_str(&format!(
                "<book publisher=\"pub{}\"><title>Book {i}</title><year>{}</year></book>",
                i % 3,
                1950 + (i % 60)
            ));
        }
        body.push_str("</db>");
        wmx_xml::parse(&body).unwrap()
    }

    fn binding() -> SchemaBinding {
        SchemaBinding::new(
            "db1",
            vec![EntityBinding::new(
                "book",
                "/db/book",
                "title",
                vec![
                    ("title", AttrBinding::ChildText("title".into())),
                    ("year", AttrBinding::ChildText("year".into())),
                    ("publisher", AttrBinding::Attribute("publisher".into())),
                ],
            )
            .unwrap()],
        )
    }

    fn config(gamma: u32, r: u32) -> EncoderConfig {
        EncoderConfig::new(gamma, vec![MarkableAttr::integer("book", "year", 1)]).with_redundancy(r)
    }

    #[test]
    fn redundant_embed_detect_roundtrip_clean() {
        let mut d = doc(400);
        let key = SecretKey::from_passphrase("r3");
        let wm = Watermark::parse("101101").unwrap();
        let cfg = config(1, 3);
        let b = binding();
        let report = embed(&mut d, &b, &[], &cfg, &key, &wm).unwrap();
        assert_eq!(report.marked_units, report.selected_units);
        let input = DetectionInput {
            queries: &report.queries,
            key: key.clone(),
            watermark: wm.clone(),
            threshold: 0.85,
            mapping: None,
        };
        let ctx = ForensicContext {
            binding: &b,
            fds: &[],
            config: &cfg,
        };
        let det = detect_forensic(&d, &input, ctx).unwrap();
        assert!(det.detected);
        assert_eq!(det.match_fraction(), 1.0);
        // The report is base-width even though embedding was 3x wide.
        assert_eq!(det.bit_votes.len(), wm.len());
        assert_eq!(
            det.recovered,
            wm.bits().iter().map(|&b| Some(b)).collect::<Vec<_>>()
        );
        assert!(!det.forensics.unwrap().tampered);
    }

    #[test]
    fn localized_damage_is_recovered_by_groups() {
        let mut d = doc(600);
        let key = SecretKey::from_passphrase("r3-damage");
        let wm = Watermark::parse("1011").unwrap();
        let cfg = config(1, 3);
        let b = binding();
        let report = embed(&mut d, &b, &[], &cfg, &key, &wm).unwrap();
        // Damage ~12% of the years (+7: beyond tolerance, parity flip).
        let years = Query::compile("/db/book/year").unwrap().select(&d);
        for (i, node) in years.iter().enumerate() {
            if i % 8 == 0 {
                let v: i64 = node.string_value(&d).parse().unwrap();
                crate::write_value(&mut d, node, &(v + 7).to_string()).unwrap();
            }
        }
        let input = DetectionInput {
            queries: &report.queries,
            key: key.clone(),
            watermark: wm.clone(),
            threshold: 0.85,
            mapping: None,
        };
        let ctx = ForensicContext {
            binding: &b,
            fds: &[],
            config: &cfg,
        };
        let det = detect_forensic(&d, &input, ctx).unwrap();
        assert!(det.detected, "12% damage must not defeat r=3");
        let f = det.forensics.unwrap();
        assert!(f.tampered);
        assert!(f.recovered_units > 0, "damaged units should be recovered");
        assert_eq!(f.unrecoverable_units, 0, "group decode should hold");
        assert_eq!(f.suspect_units, 0, "r>1 splits suspects into rec/unrec");
        // Damage is localized to altered records only.
        for unit in &f.units {
            if unit.status == UnitStatus::Recovered {
                assert!(unit.votes_against > 0);
            }
        }
    }

    #[test]
    fn repair_restores_clean_detection() {
        let mut d = doc(300);
        let key = SecretKey::from_passphrase("repair");
        let wm = Watermark::parse("10110100").unwrap();
        let cfg = config(1, 1);
        let b = binding();
        let report = embed(&mut d, &b, &[], &cfg, &key, &wm).unwrap();
        // Vandalize a handful of marked years.
        let years = Query::compile("/db/book/year").unwrap().select(&d);
        for idx in [5usize, 50, 150, 250] {
            let v: i64 = years[idx].string_value(&d).parse().unwrap();
            crate::write_value(&mut d, &years[idx], &(v + 7).to_string()).unwrap();
        }
        let ctx = ForensicContext {
            binding: &b,
            fds: &[],
            config: &cfg,
        };
        let rep = repair_document(&mut d, ctx, &key, &wm).unwrap();
        assert!(rep.suspect_units > 0 && rep.suspect_units <= 4);
        assert_eq!(rep.repaired_units, rep.suspect_units);
        assert_eq!(rep.unrecoverable_units, 0);
        // Detection is perfect again and forensics finds nothing.
        let input = DetectionInput {
            queries: &report.queries,
            key: key.clone(),
            watermark: wm.clone(),
            threshold: 0.85,
            mapping: None,
        };
        let det = detect(&d, &input);
        assert!(det.detected);
        assert_eq!(det.match_fraction(), 1.0);
        let f = detect_forensic(&d, &input, ctx).unwrap().forensics.unwrap();
        assert!(!f.tampered, "repair must leave no suspects behind");
        // Repair is idempotent: a second pass finds nothing to do.
        let again = repair_document(&mut d, ctx, &key, &wm).unwrap();
        assert_eq!(again.suspect_units, 0);
        assert_eq!(again, RepairReport::default());
    }

    #[test]
    fn repair_leaves_clean_regions_untouched() {
        let mut d = doc(200);
        let key = SecretKey::from_passphrase("repair-clean");
        let wm = Watermark::parse("1011").unwrap();
        let cfg = config(2, 1);
        let b = binding();
        embed(&mut d, &b, &[], &cfg, &key, &wm).unwrap();
        let before = wmx_xml::to_canonical_string(&d);
        let ctx = ForensicContext {
            binding: &b,
            fds: &[],
            config: &cfg,
        };
        let rep = repair_document(&mut d, ctx, &key, &wm).unwrap();
        assert_eq!(rep, RepairReport::default());
        assert_eq!(
            wmx_xml::to_canonical_string(&d),
            before,
            "repair of a clean document must be a no-op"
        );
    }
}
