//! Usability query templates.
//!
//! §2.1: "A set of query templates, e.g. `db/book[title]/author`, are
//! specified by user to depict data usability." A template is an entity
//! access parameterized by the entity key: instantiating it with a key
//! value yields a concrete query; the collection of all instantiations
//! and their answers is the ground truth that the usability metric
//! compares against after watermarking or attack.

use crate::WmError;
use std::collections::BTreeMap;
use std::fmt;
use wmx_rewrite::{LogicalQuery, SchemaBinding};
use wmx_xml::Document;

/// A usability query template: *given a key value, return attribute
/// `result_attr` of entity `entity`*.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryTemplate {
    /// Template name for reports.
    pub name: String,
    /// Logical entity.
    pub entity: String,
    /// The logical attribute the template returns.
    pub result_attr: String,
}

impl QueryTemplate {
    /// Creates a template.
    pub fn new(name: &str, entity: &str, result_attr: &str) -> Self {
        QueryTemplate {
            name: name.to_string(),
            entity: entity.to_string(),
            result_attr: result_attr.to_string(),
        }
    }

    /// Instantiates the template with a key value.
    pub fn instantiate(&self, key_value: &str) -> LogicalQuery {
        LogicalQuery::new(&self.entity, key_value, &self.result_attr)
    }

    /// The paper-style rendering under a binding, e.g.
    /// `"/db/book[title]/author"`.
    pub fn render(&self, binding: &SchemaBinding) -> String {
        match binding.entity(&self.entity) {
            Some(e) => {
                let key = e.key_binding().to_path_text();
                let attr = e
                    .attr(&self.result_attr)
                    .map(|a| a.to_path_text())
                    .unwrap_or_else(|| format!("<unbound {}>", self.result_attr));
                format!("{}[{}]/{}", e.instance_path, key, attr)
            }
            None => format!("<unbound entity {}>", self.entity),
        }
    }

    /// Evaluates the template over every instance of the entity: a map
    /// from key value to the (sorted) multiset of result values.
    ///
    /// Instances without a key are skipped; instances that share a key
    /// pool their results (as a rewritten query would see them).
    pub fn ground_truth(
        &self,
        doc: &Document,
        binding: &SchemaBinding,
    ) -> Result<BTreeMap<String, Vec<String>>, WmError> {
        let entity = binding.entity(&self.entity).ok_or_else(|| {
            WmError::new(format!(
                "binding {} does not bind entity {}",
                binding.name, self.entity
            ))
        })?;
        let mut truth: BTreeMap<String, Vec<String>> = BTreeMap::new();
        for instance in entity.instances(doc) {
            let Some(key) = entity.key_of(doc, &instance) else {
                continue;
            };
            let results = entity.attr_values(doc, &instance, &self.result_attr);
            let slot = truth.entry(key).or_default();
            for r in results {
                if !slot.contains(&r) {
                    slot.push(r);
                }
            }
        }
        for values in truth.values_mut() {
            values.sort();
        }
        Ok(truth)
    }
}

impl fmt::Display for QueryTemplate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {}[key]/{}",
            self.name, self.entity, self.result_attr
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wmx_rewrite::binding::{paper_db1_binding, paper_db2_binding};
    use wmx_xml::parse;

    fn db1_doc() -> Document {
        parse(
            r#"<db>
                <book publisher="mkp">
                    <title>Readings</title>
                    <author>Stonebraker</author>
                    <author>Hellerstein</author>
                    <year>1998</year>
                </book>
                <book publisher="acm">
                    <title>DB Design</title>
                    <author>Berstein</author>
                    <year>1998</year>
                </book>
            </db>"#,
        )
        .unwrap()
    }

    #[test]
    fn renders_paper_style() {
        let t = QueryTemplate::new("who-wrote", "book", "author");
        assert_eq!(t.render(&paper_db1_binding()), "/db/book[title]/author");
    }

    #[test]
    fn ground_truth_maps_keys_to_results() {
        let t = QueryTemplate::new("who-wrote", "book", "author");
        let truth = t.ground_truth(&db1_doc(), &paper_db1_binding()).unwrap();
        assert_eq!(truth.len(), 2);
        assert_eq!(
            truth["Readings"],
            vec!["Hellerstein".to_string(), "Stonebraker".to_string()]
        );
        assert_eq!(truth["DB Design"], vec!["Berstein".to_string()]);
    }

    #[test]
    fn ground_truth_is_schema_independent() {
        // §2.1: db1 and db2 are equally usable — templates evaluated
        // under each binding agree on shared attributes.
        let db1 = db1_doc();
        let db2 = parse(
            r#"<db>
                <publisher name="mkp">
                    <author name="Stonebraker"><book>Readings</book></author>
                    <author name="Hellerstein"><book>Readings</book></author>
                </publisher>
                <publisher name="acm">
                    <author name="Berstein"><book>DB Design</book></author>
                </publisher>
            </db>"#,
        )
        .unwrap();
        let t = QueryTemplate::new("who-wrote", "book", "author");
        let a = t.ground_truth(&db1, &paper_db1_binding()).unwrap();
        let b = t.ground_truth(&db2, &paper_db2_binding()).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn instantiation_produces_logical_query() {
        let t = QueryTemplate::new("who-wrote", "book", "author");
        let q = t.instantiate("DB Design");
        assert_eq!(
            q.compile(&paper_db1_binding()).unwrap().to_string(),
            "/db/book[title = 'DB Design']/author"
        );
    }

    #[test]
    fn unbound_entity_errors() {
        let t = QueryTemplate::new("x", "journal", "issue");
        assert!(t.ground_truth(&db1_doc(), &paper_db1_binding()).is_err());
    }
}
