//! WmXML core: the watermarking system of *WmXML: A System for
//! Watermarking XML Data* (VLDB 2005).
//!
//! The system follows the paper's three-step scheme (§2.2):
//!
//! 1. **Initialization** — validate the document, take usability
//!    [query templates](template), [keys and FDs](wmx_schema), a secret
//!    key, and a multi-bit [watermark](wm). Enumerate
//!    [markable units](identifier) — entity attribute values identified
//!    by keys, and FD-redundancy groups identified by determinant tuples —
//!    and build an identity query per unit.
//! 2. **Insertion** ([encoder]) — a keyed PRF selects one unit in γ and
//!    assigns each selected unit a watermark bit index; the embedding
//!    [plug-in](embed) for the unit's data type writes the bit into the
//!    value (all members of a redundancy group receive the same mark).
//!    The output is the marked document plus the query set `Q` the user
//!    safeguards together with the key.
//! 3. **Detection** ([decoder]) — re-execute `Q` (rewritten through a
//!    [schema mapping](wmx_rewrite) if the data was reorganized), extract
//!    one vote per located node, majority-vote each watermark bit, and
//!    compare against the claimed watermark under a threshold τ with a
//!    sign-test false-positive probability.
//!
//! [usability] implements the paper's §2.1 metric — the fraction of
//! query-template results still answered correctly — and [baseline]
//! implements the semantics-free *value-identified* scheme the paper
//! argues against (challenge A), used as the comparator in experiments.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baseline;
pub mod config;
pub mod decoder;
pub mod embed;
pub mod encoder;
pub mod forensics;
pub mod identifier;
pub mod nodectx;
pub mod plan;
pub mod recovery;
pub mod template;
pub mod usability;
pub mod wm;

pub use config::{EncoderConfig, MarkableAttr, StructuralAttr, Tolerance};
pub use decoder::{
    detect, report_from_votes, BitVotes, DetectionInput, DetectionReport, VoteCounters,
};
pub use encoder::{embed, EmbedReport, StoredQuery};
pub use forensics::{
    detect_forensic, finalize_forensic_report, ForensicContext, ForensicTallies, ForensicsReport,
    RecordForensics, UnitForensics, UnitStatus,
};
pub use identifier::{enumerate_units, MarkKind, MarkUnit, SelectionTable, UnitKey, UnitTag};
pub use nodectx::{DomNodes, DomNodesMut, NodeCtx, NodeCtxMut, UnitMarker, UnitVotes};
pub use plan::{global_plan_cache, PlanCache, SelectionPlan};
pub use recovery::{
    decode_redundant, repair_document, report_from_redundant_votes, RedundantDecode, RepairReport,
};
pub use template::QueryTemplate;
pub use usability::{measure_usability, UsabilityReport};
pub use wm::Watermark;

/// Errors raised by the encoder/decoder pipeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WmError {
    /// Human-readable description.
    pub message: String,
}

impl WmError {
    /// Creates an error.
    pub fn new(message: impl Into<String>) -> Self {
        WmError {
            message: message.into(),
        }
    }
}

impl std::fmt::Display for WmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for WmError {}

impl From<wmx_rewrite::RewriteError> for WmError {
    fn from(e: wmx_rewrite::RewriteError) -> Self {
        WmError::new(format!("rewrite error: {e}"))
    }
}

impl From<wmx_xpath::XPathError> for WmError {
    fn from(e: wmx_xpath::XPathError) -> Self {
        WmError::new(format!("query error: {e}"))
    }
}

/// Writes a value back into the node addressed by `node`: element text
/// content, raw text node content, or attribute value.
pub fn write_value(
    doc: &mut wmx_xml::Document,
    node: &wmx_xpath::NodeRef,
    value: &str,
) -> Result<(), WmError> {
    match node {
        wmx_xpath::NodeRef::Node(id) => {
            if doc.is_element(*id) {
                doc.set_text_content(*id, value)
                    .map_err(|e| WmError::new(format!("cannot write text content: {e}")))?;
                Ok(())
            } else if doc.is_text(*id) {
                doc.set_text(*id, value);
                Ok(())
            } else {
                Err(WmError::new(format!("cannot write a value into node {id}")))
            }
        }
        wmx_xpath::NodeRef::Attribute { element, name } => doc
            .set_attribute(*element, name.clone(), value)
            .map_err(|e| WmError::new(format!("cannot write attribute: {e}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wmx_xml::parse;
    use wmx_xpath::{NodeRef, Query};

    #[test]
    fn write_value_into_element_text_and_attribute() {
        let mut doc = parse(r#"<db><book id="1"><year>1998</year></book></db>"#).unwrap();
        let year = Query::compile("//year").unwrap().select(&doc)[0].clone();
        write_value(&mut doc, &year, "1999").unwrap();
        assert_eq!(
            Query::compile("//year")
                .unwrap()
                .select_string(&doc)
                .unwrap(),
            "1999"
        );

        let id = Query::compile("//book/@id").unwrap().select(&doc)[0].clone();
        write_value(&mut doc, &id, "2").unwrap();
        assert_eq!(
            Query::compile("//book/@id")
                .unwrap()
                .select_string(&doc)
                .unwrap(),
            "2"
        );
    }

    #[test]
    fn write_value_into_text_node() {
        let mut doc = parse("<a>old</a>").unwrap();
        let root = doc.root_element().unwrap();
        let text = doc.children(root)[0];
        write_value(&mut doc, &NodeRef::Node(text), "new").unwrap();
        assert_eq!(doc.text_content(root), "new");
    }
}
