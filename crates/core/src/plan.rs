//! Compiled selection plans: the per-run form of unit enumeration.
//!
//! [`enumerate_units`] re-derives everything from the configuration on
//! every call: name → [`Sym`] lookups per unit, markable↔FD matching
//! (which renders and compares query texts) per call, and attribute
//! accesses through `BTreeMap` lookups per instance. That is invisible
//! for one DOM pass but dominates the streaming engine, which
//! enumerates per *record*. A [`SelectionPlan`] hoists all of it to
//! compile time — pre-resolved symbols, pre-cloned compiled
//! instance/key/attribute queries, pre-matched FD backing — so
//! [`SelectionPlan::execute`] runs against each record with zero name
//! lookups and zero query parsing.
//!
//! Plans are immutable and shareable (`Sync`); the [`PlanCache`] keys
//! them by a canonical schema description (hashed to
//! [`SelectionPlan::schema_hash`]) so every record, chunk, and worker
//! thread of a streaming run — and repeated runs over the same schema —
//! reuse one compiled plan.
//!
//! # Equivalence contract
//!
//! `plan.execute(doc)` returns exactly the units
//! `enumerate_units(doc, …)` returns — same order, same [`UnitKey`]s,
//! same nodes, same [`MarkKind`]s — and `plan.table()` assigns the same
//! symbols as `SelectionTable::build` on the same inputs. Selection,
//! bit indices, nonces, and vote tallies are therefore bit-for-bit
//! identical to the legacy path; `tests/plan_equivalence.rs` enforces
//! this across corpora and adversarial documents.

use crate::config::EncoderConfig;
use crate::identifier::{
    enumerate_units, markable_for_fd, MarkKind, MarkUnit, SelectionTable, UnitKey, UnitTag,
};
use crate::WmError;
use std::collections::{HashMap, HashSet};
use std::sync::{Arc, Mutex, OnceLock};

use wmx_rewrite::SchemaBinding;
use wmx_schema::{discover_groups_with, DataType, Fd};
use wmx_telemetry::Counter;
use wmx_xml::{Document, Sym};
use wmx_xpath::{Evaluator, NodeRef, Query};

/// One pre-compiled entity/attribute access: everything a structural or
/// markable declaration needs per instance, resolved once.
#[derive(Debug, Clone)]
struct PlanAccess {
    /// Entity name in the plan's [`SelectionTable`].
    entity_sym: Sym,
    /// Attribute name in the plan's [`SelectionTable`].
    attr_sym: Sym,
    /// The entity's instance query (cloned compiled form — never
    /// re-parsed).
    instance: Query,
    /// The key-attribute access (`None` when the bound key path does
    /// not compile: such instances are keyless and skipped, matching
    /// the binding accessors).
    key: Option<Query>,
    /// The marked attribute's access (`None` ⇒ locates no nodes).
    attr: Option<Query>,
}

impl PlanAccess {
    fn compile(
        binding: &SchemaBinding,
        entity_name: &str,
        attr_name: &str,
        table: &SelectionTable,
        role: &str,
    ) -> Result<Self, WmError> {
        let Some(entity) = binding.entity(entity_name) else {
            return Err(WmError::new(format!(
                "{role} attribute {entity_name}/{attr_name} references an entity not bound by {}",
                binding.name
            )));
        };
        if entity.attr(attr_name).is_none() {
            return Err(WmError::new(format!(
                "{role} attribute {entity_name}/{attr_name} is not bound by {}",
                binding.name
            )));
        }
        Ok(PlanAccess {
            entity_sym: table.lookup(entity_name),
            attr_sym: table.lookup(attr_name),
            instance: entity.instance_query().clone(),
            key: entity.attr_query(&entity.key_attr).cloned(),
            attr: entity.attr_query(attr_name).cloned(),
        })
    }

    fn key_of(&self, evaluator: &Evaluator<'_>, instance: &NodeRef) -> Option<String> {
        self.key
            .as_ref()?
            .select_from_with(evaluator, instance.clone())
            .first()
            .map(|n| n.string_value(evaluator.document()))
    }

    fn attr_nodes(&self, evaluator: &Evaluator<'_>, instance: &NodeRef) -> Vec<NodeRef> {
        match &self.attr {
            Some(q) => q.select_from_with(evaluator, instance.clone()),
            None => Vec::new(),
        }
    }
}

/// A compiled selection plan (see the module docs).
#[derive(Debug)]
pub struct SelectionPlan {
    table: SelectionTable,
    canon: String,
    schema_hash: u64,
    gamma: u32,
    /// FDs that are backed by a markable attribute, in declaration
    /// order. Legacy enumeration discovers groups for *all* FDs and
    /// skips unbacked ones before they touch `fd_covered`, so
    /// discovering over this filtered list yields the identical unit
    /// list.
    fds: Vec<Fd>,
    /// FD name → (interned name, data type of the backing markable).
    fd_info: HashMap<String, (Sym, DataType)>,
    structural: Vec<PlanAccess>,
    markable: Vec<(PlanAccess, DataType)>,
}

impl SelectionPlan {
    /// Compiles `binding`/`fds`/`config` into a plan, performing all
    /// the validation `enumerate_units` does (same errors, same order).
    pub fn compile(
        binding: &SchemaBinding,
        fds: &[Fd],
        config: &EncoderConfig,
    ) -> Result<Self, WmError> {
        let table = SelectionTable::build(config, fds);
        let canon = canonical_schema(binding, fds, config);
        let schema_hash = fnv1a(canon.as_bytes());

        let mut plan_fds = Vec::new();
        let mut fd_info = HashMap::new();
        if config.use_fd_groups {
            for fd in fds {
                if let Some(markable) = markable_for_fd(binding, fds, &fd.name, config) {
                    fd_info.insert(
                        fd.name.clone(),
                        (table.lookup(&fd.name), markable.data_type),
                    );
                    plan_fds.push(fd.clone());
                }
            }
        }

        let mut structural = Vec::with_capacity(config.structural.len());
        for s in &config.structural {
            structural.push(PlanAccess::compile(
                binding,
                &s.entity,
                &s.attr,
                &table,
                "structural",
            )?);
        }

        let mut markable = Vec::with_capacity(config.markable.len());
        for m in &config.markable {
            let entity_key = binding.entity(&m.entity).map(|e| e.key_attr.as_str());
            if entity_key == Some(m.attr.as_str()) {
                return Err(WmError::new(format!(
                    "attribute {}/{} is the entity key and cannot carry marks",
                    m.entity, m.attr
                )));
            }
            markable.push((
                PlanAccess::compile(binding, &m.entity, &m.attr, &table, "markable")?,
                m.data_type,
            ));
        }

        Ok(SelectionPlan {
            table,
            canon,
            schema_hash,
            gamma: config.gamma,
            fds: plan_fds,
            fd_info,
            structural,
            markable,
        })
    }

    /// The plan's selection table — identical symbol assignments to
    /// `SelectionTable::build` on the plan's inputs.
    pub fn table(&self) -> &SelectionTable {
        &self.table
    }

    /// Hash of the canonical schema description ([`PlanCache`] key).
    pub fn schema_hash(&self) -> u64 {
        self.schema_hash
    }

    /// The selection density γ the plan was compiled with.
    pub fn gamma(&self) -> u32 {
        self.gamma
    }

    /// Enumerates the markable units of `doc` — exactly what
    /// `enumerate_units` returns under the plan's inputs. Infallible:
    /// all validation happened in [`SelectionPlan::compile`].
    pub fn execute(&self, doc: &Document) -> Vec<MarkUnit> {
        self.execute_with(&Evaluator::new(doc))
    }

    /// [`execute`](SelectionPlan::execute) through a caller-owned
    /// evaluator (shared symbol memo / scratch buffers).
    pub fn execute_with(&self, evaluator: &Evaluator<'_>) -> Vec<MarkUnit> {
        let mut units = Vec::new();
        let mut fd_covered: HashSet<NodeRef> = HashSet::new();

        if !self.fds.is_empty() {
            for group in discover_groups_with(evaluator, &self.fds) {
                // Every plan FD is markable-backed by construction.
                let (sym, data_type) = self.fd_info[&group.fd_name];
                if group.members.is_empty() {
                    continue;
                }
                for n in &group.members {
                    fd_covered.insert(n.clone());
                }
                units.push(MarkUnit {
                    key: UnitKey {
                        tag: UnitTag::FdGroup,
                        name: sym,
                        attr: None,
                        values: group.lhs.into_iter().map(Into::into).collect(),
                    },
                    nodes: group.members,
                    mark: MarkKind::Value(data_type),
                });
            }
        }

        for access in &self.structural {
            for instance in access.instance.select_with(evaluator) {
                let Some(key_value) = access.key_of(evaluator, &instance) else {
                    continue;
                };
                let nodes = access.attr_nodes(evaluator, &instance);
                if nodes.len() < 2 {
                    continue;
                }
                units.push(MarkUnit {
                    key: UnitKey {
                        tag: UnitTag::SiblingOrder,
                        name: access.entity_sym,
                        attr: Some(access.attr_sym),
                        values: Box::new([key_value.into()]),
                    },
                    nodes,
                    mark: MarkKind::SiblingOrder,
                });
            }
        }

        for (access, data_type) in &self.markable {
            for instance in access.instance.select_with(evaluator) {
                let Some(key_value) = access.key_of(evaluator, &instance) else {
                    continue;
                };
                let nodes: Vec<NodeRef> = access
                    .attr_nodes(evaluator, &instance)
                    .into_iter()
                    .filter(|n| !fd_covered.contains(n))
                    .collect();
                if nodes.is_empty() {
                    continue;
                }
                units.push(MarkUnit {
                    key: UnitKey {
                        tag: UnitTag::KeyAttr,
                        name: access.entity_sym,
                        attr: Some(access.attr_sym),
                        values: Box::new([key_value.into()]),
                    },
                    nodes,
                    mark: MarkKind::Value(*data_type),
                });
            }
        }
        units
    }

    /// Debug-build cross-check against the legacy enumerator; used by
    /// tests that want both paths from one entry point.
    pub fn matches_legacy(
        &self,
        doc: &Document,
        binding: &SchemaBinding,
        fds: &[Fd],
        config: &EncoderConfig,
    ) -> bool {
        let table = SelectionTable::build(config, fds);
        match enumerate_units(doc, binding, fds, config, &table) {
            Ok(legacy) => {
                let planned = self.execute(doc);
                planned.len() == legacy.len()
                    && planned
                        .iter()
                        .zip(&legacy)
                        .all(|(p, l)| p.key == l.key && p.nodes == l.nodes && p.mark == l.mark)
            }
            Err(_) => false,
        }
    }
}

/// Canonical textual description of (binding, fds, config): everything
/// a plan's behaviour depends on, rendered deterministically. Cache
/// lookups compare this string after the hash, so a hash collision can
/// never serve the wrong plan. γ is included because callers read it
/// back off the cached plan.
fn canonical_schema(binding: &SchemaBinding, fds: &[Fd], config: &EncoderConfig) -> String {
    use std::fmt::Write;
    let mut out = String::with_capacity(256);
    let _ = writeln!(out, "binding:{}", binding.name);
    for (name, entity) in &binding.entities {
        let _ = writeln!(
            out,
            "entity:{name}\x1finstance:{}\x1fkey:{}",
            entity.instance_path, entity.key_attr
        );
        for (attr, access) in &entity.attrs {
            let _ = writeln!(out, "attr:{attr}\x1f{}", access.to_path_text());
        }
    }
    let _ = writeln!(
        out,
        "gamma:{}\x1ffd_groups:{}",
        config.gamma, config.use_fd_groups
    );
    for s in &config.structural {
        let _ = writeln!(out, "structural:{}\x1f{}", s.entity, s.attr);
    }
    for m in &config.markable {
        let _ = writeln!(
            out,
            "markable:{}\x1f{}\x1f{:?}\x1f{:?}",
            m.entity, m.attr, m.data_type, m.tolerance
        );
    }
    for fd in fds {
        let _ = write!(out, "fd:{}\x1f{}", fd.name, fd.entity);
        for lhs in &fd.lhs {
            let _ = write!(out, "\x1flhs:{lhs}");
        }
        for rhs in &fd.rhs {
            let _ = write!(out, "\x1frhs:{rhs}");
        }
        out.push('\n');
    }
    out
}

/// FNV-1a over the canonical schema bytes.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// A concurrent cache of compiled plans keyed by schema hash (verified
/// by canonical-description equality, so collisions cost a scan, never
/// a wrong plan).
///
/// Hit/miss tallies live on `wmx-telemetry` counters: the global cache
/// registers them by name so they show up in telemetry snapshots, while
/// standalone caches (tests, tools) get private unregistered counters.
#[derive(Debug)]
pub struct PlanCache {
    shelves: Mutex<HashMap<u64, Vec<Arc<SelectionPlan>>>>,
    hits: Arc<Counter>,
    misses: Arc<Counter>,
}

impl Default for PlanCache {
    fn default() -> Self {
        PlanCache::new()
    }
}

impl PlanCache {
    /// An empty cache with private (unregistered) stat counters.
    pub fn new() -> Self {
        PlanCache::with_counters(Arc::new(Counter::new()), Arc::new(Counter::new()))
    }

    /// An empty cache tallying onto caller-supplied counters — the
    /// global cache passes registry-owned handles here.
    pub fn with_counters(hits: Arc<Counter>, misses: Arc<Counter>) -> Self {
        PlanCache {
            shelves: Mutex::new(HashMap::new()),
            hits,
            misses,
        }
    }

    /// Returns the cached plan for this schema, compiling it on first
    /// use. Compilation happens outside the lock; a lost race keeps the
    /// first-inserted plan so every caller shares one `Arc`.
    pub fn get_or_compile(
        &self,
        binding: &SchemaBinding,
        fds: &[Fd],
        config: &EncoderConfig,
    ) -> Result<Arc<SelectionPlan>, WmError> {
        let canon = canonical_schema(binding, fds, config);
        let hash = fnv1a(canon.as_bytes());
        {
            let shelves = self.shelves.lock().expect("plan cache lock");
            if let Some(bucket) = shelves.get(&hash) {
                if let Some(plan) = bucket.iter().find(|p| p.canon == canon) {
                    self.hits.inc();
                    return Ok(Arc::clone(plan));
                }
            }
        }
        let plan = Arc::new(SelectionPlan::compile(binding, fds, config)?);
        self.misses.inc();
        let mut shelves = self.shelves.lock().expect("plan cache lock");
        let bucket = shelves.entry(hash).or_default();
        if let Some(existing) = bucket.iter().find(|p| p.canon == canon) {
            return Ok(Arc::clone(existing));
        }
        bucket.push(Arc::clone(&plan));
        Ok(plan)
    }

    /// Cache hits served so far.
    pub fn hits(&self) -> u64 {
        self.hits.get()
    }

    /// Cold compiles performed so far.
    pub fn misses(&self) -> u64 {
        self.misses.get()
    }
}

/// The process-wide plan cache: the DOM encoder and every streaming
/// `RecordEngine` resolve their plans here, so chunked and parallel
/// drivers share one compiled plan per schema.
pub fn global_plan_cache() -> &'static PlanCache {
    static CACHE: OnceLock<PlanCache> = OnceLock::new();
    CACHE.get_or_init(|| {
        let registry = wmx_telemetry::global();
        PlanCache::with_counters(
            registry.counter("core.plan_cache.hits"),
            registry.counter("core.plan_cache.misses"),
        )
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MarkableAttr;
    use wmx_rewrite::binding::{AttrBinding, EntityBinding};
    use wmx_xml::parse;

    fn doc() -> Document {
        parse(
            r#"<db>
                <book publisher="mkp"><title>A</title><editor>Potter</editor><year>1998</year></book>
                <book publisher="mkp"><title>B</title><editor>Potter</editor><year>2000</year></book>
                <book publisher="acm"><title>C</title><editor>Gamer</editor><year>2002</year></book>
            </db>"#,
        )
        .unwrap()
    }

    fn binding() -> SchemaBinding {
        SchemaBinding::new(
            "db1",
            vec![EntityBinding::new(
                "book",
                "/db/book",
                "title",
                vec![
                    ("title", AttrBinding::ChildText("title".into())),
                    ("editor", AttrBinding::ChildText("editor".into())),
                    ("year", AttrBinding::ChildText("year".into())),
                    ("publisher", AttrBinding::Attribute("publisher".into())),
                ],
            )
            .unwrap()],
        )
    }

    fn fd() -> Fd {
        Fd::new("editor-publisher", "/db/book", &["editor"], &["@publisher"]).unwrap()
    }

    #[test]
    fn plan_matches_legacy_enumeration() {
        let config = EncoderConfig::new(
            2,
            vec![
                MarkableAttr::integer("book", "year", 1),
                MarkableAttr::text("book", "publisher"),
            ],
        );
        let fds = [fd()];
        let plan = SelectionPlan::compile(&binding(), &fds, &config).unwrap();
        assert!(plan.matches_legacy(&doc(), &binding(), &fds, &config));
    }

    #[test]
    fn plan_validation_matches_legacy_errors() {
        // Marking the entity key is rejected with the same message.
        let config = EncoderConfig::new(1, vec![MarkableAttr::text("book", "title")]);
        let err = SelectionPlan::compile(&binding(), &[], &config).unwrap_err();
        assert!(err.message.contains("entity key"));
        // Unbound markable attribute / entity.
        let config = EncoderConfig::new(1, vec![MarkableAttr::integer("book", "isbn", 1)]);
        assert!(SelectionPlan::compile(&binding(), &[], &config).is_err());
        let config = EncoderConfig::new(1, vec![MarkableAttr::integer("journal", "year", 1)]);
        assert!(SelectionPlan::compile(&binding(), &[], &config).is_err());
        // Unbound structural attribute.
        let config = EncoderConfig::new(1, vec![]).with_structural("book", "translator");
        assert!(SelectionPlan::compile(&binding(), &[], &config).is_err());
    }

    #[test]
    fn cache_hit_returns_the_same_plan() {
        let cache = PlanCache::new();
        let config = EncoderConfig::new(3, vec![MarkableAttr::integer("book", "year", 1)]);
        let fds = [fd()];
        let a = cache.get_or_compile(&binding(), &fds, &config).unwrap();
        let b = cache.get_or_compile(&binding(), &fds, &config).unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(cache.misses(), 1);
        assert_eq!(cache.hits(), 1);
        // A different γ is a different plan (callers read γ off it).
        let config2 = EncoderConfig::new(4, vec![MarkableAttr::integer("book", "year", 1)]);
        let c = cache.get_or_compile(&binding(), &fds, &config2).unwrap();
        assert!(!Arc::ptr_eq(&a, &c));
        assert_eq!(c.gamma(), 4);
    }

    #[test]
    fn schema_hash_is_stable_and_input_sensitive() {
        let config = EncoderConfig::new(3, vec![MarkableAttr::integer("book", "year", 1)]);
        let p1 = SelectionPlan::compile(&binding(), &[], &config).unwrap();
        let p2 = SelectionPlan::compile(&binding(), &[], &config).unwrap();
        assert_eq!(p1.schema_hash(), p2.schema_hash());
        let p3 = SelectionPlan::compile(&binding(), &[fd()], &config).unwrap();
        assert_ne!(p1.schema_hash(), p3.schema_hash());
    }
}
