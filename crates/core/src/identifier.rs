//! Identifier creation (§2.3): enumerating markable units and building
//! their identity keys and queries from keys and functional
//! dependencies.
//!
//! The three criteria of §2.3, and how this module meets them:
//!
//! 1. *Differentiate different data elements* — per-entity units are
//!    identified by the entity **key** (`key:book|Readings|attr=year`),
//!    never by physical position, so two `<year>1998</year>` elements
//!    under different books are distinct units.
//! 2. *Identify data redundancies* — values determined by an FD are
//!    lifted out of their entities into **FD-group units** identified by
//!    the FD name and determinant tuple; every duplicate carries the same
//!    mark, so unifying duplicates cannot erase it.
//! 3. *Stay close to data usability* — identity queries are built from
//!    the same key/attribute accesses the usability templates use, so an
//!    attack cannot disable the identifiers without breaking the
//!    templates themselves.
//!
//! # Symbol-native unit identity
//!
//! A unit's identity used to be a `format!`-built `String` — one
//! allocation per unit on the hottest loop of both engines, hashed
//! again every time it keyed a set. It is now a compact [`UnitKey`]:
//! the entity/attribute/FD names are interned [`Sym`]s in a
//! [`SelectionTable`] (built once per run from the configuration, so
//! symbol ids agree across records, chunks, and worker threads), and
//! only the document-derived key value / determinant tuple is owned
//! bytes. The keyed PRF consumes the key **incrementally**
//! ([`UnitKey::id`] feeds the exact byte sequence of the old textual
//! id), so selection, bit assignment, whitening, and nonces are
//! bit-for-bit identical to the string path — `UnitKey::display`
//! lazily renders that same text for reports and persisted query files.

use crate::config::EncoderConfig;
use crate::WmError;
use std::collections::{HashMap, HashSet};
use wmx_crypto::{HmacSha256, PrfInput};
use wmx_rewrite::{LogicalQuery, SchemaBinding};
use wmx_schema::{discover_groups_with, DataType, Fd};
use wmx_xml::{Document, Interner, Sym};
use wmx_xpath::ast::Expr;
use wmx_xpath::{Evaluator, NodeRef, Query};

/// What kind of unit a [`UnitKey`] identifies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum UnitTag {
    /// An entity-attribute value identified by the entity key.
    KeyAttr,
    /// A structure unit: the sibling order of a multi-valued attribute.
    SiblingOrder,
    /// An FD-redundancy group identified by the determinant tuple.
    FdGroup,
}

/// Interned names of the selection vocabulary: every entity, markable
/// attribute, structural attribute, and FD name of one configuration.
///
/// Built deterministically (configuration order) so two tables built
/// from the same configuration assign identical symbols — that is what
/// lets the streaming engine compare and merge [`UnitKey`]s across
/// records, chunks, and worker threads without ever rendering them.
#[derive(Debug, Clone)]
pub struct SelectionTable {
    names: Interner,
}

impl SelectionTable {
    /// Builds the table for one configuration + FD set.
    pub fn build(config: &EncoderConfig, fds: &[Fd]) -> Self {
        let mut names = Interner::new();
        for s in &config.structural {
            names.intern(&s.entity);
            names.intern(&s.attr);
        }
        for m in &config.markable {
            names.intern(&m.entity);
            names.intern(&m.attr);
        }
        for fd in fds {
            names.intern(&fd.name);
        }
        SelectionTable { names }
    }

    /// The text of `sym`.
    ///
    /// # Panics
    /// Panics if `sym` did not come from this table.
    pub fn resolve(&self, sym: Sym) -> &str {
        self.names.resolve(sym)
    }

    pub(crate) fn lookup(&self, name: &str) -> Sym {
        self.names
            .lookup(name)
            .expect("selection vocabulary interned at build")
    }
}

/// The compact identity of one markable unit: interned names plus the
/// document-derived key bytes. `Eq`/`Ord`/`Hash` are cheap (two `u32`s
/// and the value bytes), which is what FD-group sets and cross-chunk
/// vote merging key on.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct UnitKey {
    /// Unit flavour (drives the id prefix and the mark family).
    pub tag: UnitTag,
    /// Entity name ([`UnitTag::KeyAttr`]/[`UnitTag::SiblingOrder`]) or
    /// FD name ([`UnitTag::FdGroup`]), interned in the run's
    /// [`SelectionTable`].
    pub name: Sym,
    /// The marked logical attribute (`None` for FD groups).
    pub attr: Option<Sym>,
    /// Key value (single element) or FD determinant tuple.
    pub values: Box<[Box<str>]>,
}

/// ASCII unit separator: joins determinant tuples exactly like the
/// legacy string ids did (`RedundancyGroup::unit_id`).
const LHS_SEPARATOR: &str = "\u{1f}";

impl UnitKey {
    fn key_attr(table: &SelectionTable, entity: &str, key_value: String, attr: &str) -> UnitKey {
        UnitKey {
            tag: UnitTag::KeyAttr,
            name: table.lookup(entity),
            attr: Some(table.lookup(attr)),
            values: Box::new([key_value.into()]),
        }
    }

    fn sibling_order(
        table: &SelectionTable,
        entity: &str,
        key_value: String,
        attr: &str,
    ) -> UnitKey {
        UnitKey {
            tag: UnitTag::SiblingOrder,
            name: table.lookup(entity),
            attr: Some(table.lookup(attr)),
            values: Box::new([key_value.into()]),
        }
    }

    fn fd_group(table: &SelectionTable, fd_name: &str, lhs: Vec<String>) -> UnitKey {
        UnitKey {
            tag: UnitTag::FdGroup,
            name: table.lookup(fd_name),
            attr: None,
            values: lhs.into_iter().map(Into::into).collect(),
        }
    }

    /// The PRF input view of this key: feeds the byte sequence of
    /// [`UnitKey::display`] into the MAC without materializing it.
    pub fn id<'a>(&'a self, table: &'a SelectionTable) -> UnitId<'a> {
        UnitId { key: self, table }
    }

    /// Renders the textual unit id (`key:…`, `ord:…`, `fd:…`) — the
    /// form persisted in safeguarded query files and shown in reports.
    /// Byte-for-byte equal to what [`UnitKey::id`] feeds the PRF.
    pub fn display(&self, table: &SelectionTable) -> String {
        match self.tag {
            UnitTag::KeyAttr => format!(
                "key:{}|{}|attr={}",
                table.resolve(self.name),
                self.values[0],
                table.resolve(self.attr.expect("key units carry an attr")),
            ),
            UnitTag::SiblingOrder => format!(
                "ord:{}|{}|attr={}",
                table.resolve(self.name),
                self.values[0],
                table.resolve(self.attr.expect("order units carry an attr")),
            ),
            UnitTag::FdGroup => format!(
                "fd:{}|lhs={}",
                table.resolve(self.name),
                self.values.join(LHS_SEPARATOR),
            ),
        }
    }

    /// Renders the *record scope* forensics group units by: the entity
    /// plus its key value for key-identified units (value and order
    /// units of one record share a scope), or the full group id for FD
    /// groups (which span records by construction). Rendered only at
    /// report-build time — never on the per-unit vote path.
    pub fn record_scope(&self, table: &SelectionTable) -> String {
        match self.tag {
            UnitTag::KeyAttr | UnitTag::SiblingOrder => {
                format!("{}|{}", table.resolve(self.name), self.values[0])
            }
            UnitTag::FdGroup => self.display(table),
        }
    }
}

/// Borrowed PRF-input view of a [`UnitKey`] (see [`UnitKey::id`]).
#[derive(Clone, Copy)]
pub struct UnitId<'a> {
    key: &'a UnitKey,
    table: &'a SelectionTable,
}

impl PrfInput for UnitId<'_> {
    fn feed(&self, mac: &mut HmacSha256) {
        let table = self.table;
        let key = self.key;
        match key.tag {
            UnitTag::KeyAttr | UnitTag::SiblingOrder => {
                mac.update(if key.tag == UnitTag::KeyAttr {
                    b"key:"
                } else {
                    b"ord:"
                });
                mac.update(table.resolve(key.name).as_bytes());
                mac.update(b"|");
                mac.update(key.values[0].as_bytes());
                mac.update(b"|attr=");
                mac.update(
                    table
                        .resolve(key.attr.expect("value units carry an attr"))
                        .as_bytes(),
                );
            }
            UnitTag::FdGroup => {
                mac.update(b"fd:");
                mac.update(table.resolve(key.name).as_bytes());
                mac.update(b"|lhs=");
                for (i, value) in key.values.iter().enumerate() {
                    if i > 0 {
                        mac.update(LHS_SEPARATOR.as_bytes());
                    }
                    mac.update(value.as_bytes());
                }
            }
        }
    }
}

/// How the unit physically carries its bit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MarkKind {
    /// The bit is embedded into the value via the plug-in for this type.
    Value(DataType),
    /// The bit is the relative order of the first two values (ascending
    /// lexicographic = 0, descending = 1).
    SiblingOrder,
}

/// One markable unit: a compact stable identity and the nodes currently
/// holding the value. The identity query is **not** pre-built — only
/// marked units need one (≈ 1/γ of enumerated units), so callers build
/// it on demand through [`MarkUnit::query_and_logical`].
#[derive(Debug, Clone)]
pub struct MarkUnit {
    /// Stable unit identity (input to the keyed PRF).
    pub key: UnitKey,
    /// Value nodes (≥ 1; > 1 for FD groups and multi-valued attributes).
    pub nodes: Vec<NodeRef>,
    /// How the bit is carried (value plug-in vs sibling order).
    pub mark: MarkKind,
}

impl MarkUnit {
    /// Builds the unit's identity query (and logical form, when the
    /// unit is key-identified) under `binding`/`fds`. Deferred from
    /// enumeration so the ~(γ−1)/γ unselected units never pay query
    /// construction.
    pub fn query_and_logical(
        &self,
        table: &SelectionTable,
        binding: &SchemaBinding,
        fds: &[Fd],
    ) -> Result<(Query, Option<LogicalQuery>), WmError> {
        match self.key.tag {
            UnitTag::KeyAttr | UnitTag::SiblingOrder => {
                let logical = LogicalQuery::new(
                    table.resolve(self.key.name),
                    &self.key.values[0],
                    table.resolve(self.key.attr.expect("value units carry an attr")),
                );
                let query = logical.compile(binding)?;
                Ok((query, Some(logical)))
            }
            UnitTag::FdGroup => {
                let fd_name = table.resolve(self.key.name);
                let fd = fds
                    .iter()
                    .find(|f| f.name == fd_name)
                    .ok_or_else(|| WmError::new(format!("unknown fd {fd_name:?}")))?;
                let query = fd_group_query(fd, &self.key.values)?;
                Ok((query, None))
            }
        }
    }
}

/// Enumerates all markable units of `doc` under `binding`, honouring
/// `config` (markable attributes, FD-group switch) and `fds`. `table`
/// must be built from the same `config`/`fds`
/// ([`SelectionTable::build`]); the streaming engine builds it once and
/// reuses it for every record.
///
/// # Errors
/// Fails if a markable attribute is an entity key (keys identify units
/// and must stay unperturbed), or if bindings/queries are inconsistent.
pub fn enumerate_units(
    doc: &Document,
    binding: &SchemaBinding,
    fds: &[Fd],
    config: &EncoderConfig,
    table: &SelectionTable,
) -> Result<Vec<MarkUnit>, WmError> {
    let mut units = Vec::new();
    let mut fd_covered: HashSet<NodeRef> = HashSet::new();
    // One evaluator for the whole enumeration: every per-instance
    // key/attribute access shares its memoized symbol resolutions.
    let evaluator = Evaluator::new(doc);

    if config.use_fd_groups {
        units.extend(fd_group_units(
            &evaluator,
            binding,
            fds,
            config,
            table,
            &mut fd_covered,
        )?);
    }

    // Structure units: sibling order of multi-valued attributes.
    for structural in &config.structural {
        let Some(entity) = binding.entity(&structural.entity) else {
            return Err(WmError::new(format!(
                "structural attribute {}/{} references an entity not bound by {}",
                structural.entity, structural.attr, binding.name
            )));
        };
        if entity.attr(&structural.attr).is_none() {
            return Err(WmError::new(format!(
                "structural attribute {}/{} is not bound by {}",
                structural.entity, structural.attr, binding.name
            )));
        }
        for instance in entity.instances_with(&evaluator) {
            let Some(key_value) = entity.key_of_with(&evaluator, &instance) else {
                continue;
            };
            let nodes = entity.attr_nodes_with(&evaluator, &instance, &structural.attr);
            // An order bit needs at least two distinct sibling values.
            if nodes.len() < 2 {
                continue;
            }
            units.push(MarkUnit {
                key: UnitKey::sibling_order(table, &structural.entity, key_value, &structural.attr),
                nodes,
                mark: MarkKind::SiblingOrder,
            });
        }
    }

    // Key-identified per-entity units.
    for markable in &config.markable {
        let Some(entity) = binding.entity(&markable.entity) else {
            return Err(WmError::new(format!(
                "markable attribute {}/{} references an entity not bound by {}",
                markable.entity, markable.attr, binding.name
            )));
        };
        if markable.attr == entity.key_attr {
            return Err(WmError::new(format!(
                "attribute {}/{} is the entity key and cannot carry marks",
                markable.entity, markable.attr
            )));
        }
        if entity.attr(&markable.attr).is_none() {
            return Err(WmError::new(format!(
                "markable attribute {}/{} is not bound by {}",
                markable.entity, markable.attr, binding.name
            )));
        }
        for instance in entity.instances_with(&evaluator) {
            let Some(key_value) = entity.key_of_with(&evaluator, &instance) else {
                continue; // keyless instances cannot be identified
            };
            let nodes: Vec<NodeRef> = entity
                .attr_nodes_with(&evaluator, &instance, &markable.attr)
                .into_iter()
                .filter(|n| !fd_covered.contains(n))
                .collect();
            if nodes.is_empty() {
                continue;
            }
            units.push(MarkUnit {
                key: UnitKey::key_attr(table, &markable.entity, key_value, &markable.attr),
                nodes,
                mark: MarkKind::Value(markable.data_type),
            });
        }
    }
    Ok(units)
}

/// Builds FD-group units and records which value nodes they cover.
fn fd_group_units(
    evaluator: &Evaluator<'_>,
    binding: &SchemaBinding,
    fds: &[Fd],
    config: &EncoderConfig,
    table: &SelectionTable,
    fd_covered: &mut HashSet<NodeRef>,
) -> Result<Vec<MarkUnit>, WmError> {
    let mut units = Vec::new();
    if fds.is_empty() {
        return Ok(units);
    }
    // The markable declaration backing each FD depends only on the
    // configuration — resolve it once per FD, not once per group (the
    // per-group path used to render both query texts per comparison).
    let fd_markable: HashMap<&str, &crate::config::MarkableAttr> = fds
        .iter()
        .filter_map(|fd| {
            markable_for_fd(binding, fds, &fd.name, config).map(|m| (fd.name.as_str(), m))
        })
        .collect();
    let groups = discover_groups_with(evaluator, fds);
    for group in groups {
        // The FD's dependent must correspond to a markable attribute so
        // we know its type/tolerance; otherwise the group is not marked.
        let Some(markable) = fd_markable.get(group.fd_name.as_str()) else {
            continue;
        };
        // All group members carry the mark, even singleton groups: the
        // unit identity must not depend on how many duplicates exist.
        if group.members.is_empty() {
            continue;
        }
        for n in &group.members {
            fd_covered.insert(n.clone());
        }
        units.push(MarkUnit {
            key: UnitKey::fd_group(table, &group.fd_name, group.lhs),
            nodes: group.members,
            mark: MarkKind::Value(markable.data_type),
        });
    }
    Ok(units)
}

/// Finds the markable declaration whose bound access path equals the
/// FD's dependent path (the FD is expressed physically, markables
/// logically; the binding connects them).
pub(crate) fn markable_for_fd<'c>(
    binding: &SchemaBinding,
    fds: &[Fd],
    fd_name: &str,
    config: &'c EncoderConfig,
) -> Option<&'c crate::config::MarkableAttr> {
    let fd = fds.iter().find(|f| f.name == fd_name)?;
    if fd.rhs.len() != 1 {
        return None; // multi-attribute dependents are split into several FDs
    }
    let rhs_text = fd.rhs[0].to_string();
    let entity_text = fd.entity.to_string();
    for markable in &config.markable {
        let Some(entity) = binding.entity(&markable.entity) else {
            continue;
        };
        let Some(attr_binding) = entity.attr(&markable.attr) else {
            continue;
        };
        if queries_equal(&entity.instance_path, &entity_text)
            && queries_equal(&attr_binding.to_path_text(), &rhs_text)
        {
            return Some(markable);
        }
    }
    None
}

/// Compares two query texts modulo reparsing (normalizes `//x` vs
/// `/descendant-or-self::node()/x` and whitespace).
///
/// Binding paths and FD selectors are persisted in canonical `Display`
/// form, so the overwhelmingly common case is byte equality — taken
/// without compiling. Only mismatching texts fall back to compiling
/// both sides and comparing ASTs (compilation is also how `//x` and its
/// expanded spelling are unified).
fn queries_equal(a: &str, b: &str) -> bool {
    if a == b {
        return true;
    }
    match (Query::compile(a), Query::compile(b)) {
        (Ok(qa), Ok(qb)) => qa.expr() == qb.expr(),
        _ => false,
    }
}

/// Builds the identity query of an FD group:
/// `entity_path[lhs1 = 'v1' and …]/rhs_path` — selecting *all* duplicate
/// value nodes at once.
fn fd_group_query(fd: &Fd, lhs_values: &[Box<str>]) -> Result<Query, WmError> {
    let Expr::Path(entity_path) = fd.entity.expr() else {
        return Err(WmError::new(format!(
            "fd {}: entity selector is not a path",
            fd.name
        )));
    };
    let mut path = entity_path.clone();
    let last = path
        .steps
        .last_mut()
        .ok_or_else(|| WmError::new(format!("fd {}: empty entity path", fd.name)))?;
    for (lhs_query, value) in fd.lhs.iter().zip(lhs_values) {
        let Expr::Path(lhs_path) = lhs_query.expr() else {
            return Err(WmError::new(format!(
                "fd {}: determinant selector is not a path",
                fd.name
            )));
        };
        last.predicates.push(Expr::eq(
            Expr::Path(lhs_path.clone()),
            Expr::Literal(value.to_string()),
        ));
    }
    let Expr::Path(rhs_path) = fd.rhs[0].expr() else {
        return Err(WmError::new(format!(
            "fd {}: dependent selector is not a path",
            fd.name
        )));
    };
    path.steps.extend(rhs_path.steps.clone());
    Ok(Query::from_expr(Expr::Path(path)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MarkableAttr;
    use wmx_rewrite::binding::{AttrBinding, EntityBinding};
    use wmx_xml::parse;

    fn doc() -> Document {
        parse(
            r#"<db>
                <book publisher="mkp"><title>A</title><editor>Potter</editor><year>1998</year></book>
                <book publisher="mkp"><title>B</title><editor>Potter</editor><year>2000</year></book>
                <book publisher="acm"><title>C</title><editor>Gamer</editor><year>2002</year></book>
            </db>"#,
        )
        .unwrap()
    }

    fn binding() -> SchemaBinding {
        SchemaBinding::new(
            "db1",
            vec![EntityBinding::new(
                "book",
                "/db/book",
                "title",
                vec![
                    ("title", AttrBinding::ChildText("title".into())),
                    ("editor", AttrBinding::ChildText("editor".into())),
                    ("year", AttrBinding::ChildText("year".into())),
                    ("publisher", AttrBinding::Attribute("publisher".into())),
                ],
            )
            .unwrap()],
        )
    }

    fn editor_publisher_fd() -> Fd {
        Fd::new("editor-publisher", "/db/book", &["editor"], &["@publisher"]).unwrap()
    }

    fn enumerate(
        doc: &Document,
        fds: &[Fd],
        config: &EncoderConfig,
    ) -> Result<(SelectionTable, Vec<MarkUnit>), WmError> {
        let table = SelectionTable::build(config, fds);
        let units = enumerate_units(doc, &binding(), fds, config, &table)?;
        Ok((table, units))
    }

    fn unit_ids(table: &SelectionTable, units: &[MarkUnit]) -> Vec<String> {
        units.iter().map(|u| u.key.display(table)).collect()
    }

    #[test]
    fn queries_equal_fast_path_and_normalization() {
        // Identical canonical texts short-circuit without compiling.
        assert!(queries_equal("/db/book/year", "/db/book/year"));
        assert!(queries_equal("not ( a [ query", "not ( a [ query"));
        // Different spellings of the same path still unify via the AST.
        assert!(queries_equal("//year", "/descendant-or-self::node()/year"));
        assert!(!queries_equal("/db/book", "/db/journal"));
        assert!(!queries_equal("not ( a [ query", "/db/book"));
    }

    #[test]
    fn key_units_enumerated_per_instance() {
        let config = EncoderConfig::new(1, vec![MarkableAttr::integer("book", "year", 1)]);
        let (table, units) = enumerate(&doc(), &[], &config).unwrap();
        assert_eq!(units.len(), 3);
        let ids = unit_ids(&table, &units);
        assert!(ids.contains(&"key:book|A|attr=year".to_string()));
        assert!(ids.contains(&"key:book|B|attr=year".to_string()));
        assert!(ids.contains(&"key:book|C|attr=year".to_string()));
        for u in &units {
            assert_eq!(u.nodes.len(), 1);
            let (query, logical) = u.query_and_logical(&table, &binding(), &[]).unwrap();
            assert!(logical.is_some());
            // Identity query re-selects exactly the unit's nodes.
            assert_eq!(query.select(&doc()), u.nodes);
        }
    }

    #[test]
    fn fd_groups_absorb_dependent_values() {
        let config = EncoderConfig::new(
            1,
            vec![
                MarkableAttr::integer("book", "year", 1),
                MarkableAttr::text("book", "publisher"),
            ],
        );
        let fds = [editor_publisher_fd()];
        let (table, units) = enumerate(&doc(), &fds, &config).unwrap();

        let fd_units: Vec<&MarkUnit> = units
            .iter()
            .filter(|u| u.key.tag == UnitTag::FdGroup)
            .collect();
        assert_eq!(fd_units.len(), 2); // Potter group, Gamer group
        let potter = fd_units
            .iter()
            .find(|u| u.key.display(&table).contains("Potter"))
            .unwrap();
        assert_eq!(potter.nodes.len(), 2);
        let (potter_query, potter_logical) =
            potter.query_and_logical(&table, &binding(), &fds).unwrap();
        assert!(potter_logical.is_none());
        assert_eq!(
            potter_query.to_string(),
            "/db/book[editor = 'Potter']/@publisher"
        );
        // The query selects both duplicates.
        assert_eq!(potter_query.select(&doc()).len(), 2);

        // publisher values are NOT also enumerated as key units.
        let key_publisher_units = units
            .iter()
            .filter(|u| {
                u.key.tag == UnitTag::KeyAttr
                    && u.key.attr.is_some_and(|a| table.resolve(a) == "publisher")
            })
            .count();
        assert_eq!(key_publisher_units, 0);

        // year units remain key-identified.
        let year_units = units
            .iter()
            .filter(|u| {
                u.key.tag == UnitTag::KeyAttr
                    && u.key.attr.is_some_and(|a| table.resolve(a) == "year")
            })
            .count();
        assert_eq!(year_units, 3);
    }

    #[test]
    fn fd_groups_disabled_leaves_per_entity_units() {
        let config = EncoderConfig::new(1, vec![MarkableAttr::text("book", "publisher")])
            .without_fd_groups();
        let (_, units) = enumerate(&doc(), &[editor_publisher_fd()], &config).unwrap();
        assert_eq!(units.len(), 3);
        assert!(units.iter().all(|u| u.key.tag == UnitTag::KeyAttr));
    }

    #[test]
    fn marking_the_key_is_rejected() {
        let config = EncoderConfig::new(1, vec![MarkableAttr::text("book", "title")]);
        let err = enumerate(&doc(), &[], &config).unwrap_err();
        assert!(err.message.contains("entity key"));
    }

    #[test]
    fn unbound_attribute_is_rejected() {
        let config = EncoderConfig::new(1, vec![MarkableAttr::integer("book", "isbn", 1)]);
        assert!(enumerate(&doc(), &[], &config).is_err());
        let config = EncoderConfig::new(1, vec![MarkableAttr::integer("journal", "year", 1)]);
        assert!(enumerate(&doc(), &[], &config).is_err());
    }

    #[test]
    fn unit_ids_stable_under_sibling_reorder() {
        let config = EncoderConfig::new(1, vec![MarkableAttr::integer("book", "year", 1)]);
        let d1 = doc();
        let mut d2 = doc();
        let root = d2.root_element().unwrap();
        d2.reorder_children(root, &[2, 0, 1]);
        let keys = |d: &Document| -> std::collections::BTreeSet<UnitKey> {
            let table = SelectionTable::build(&config, &[]);
            enumerate_units(d, &binding(), &[], &config, &table)
                .unwrap()
                .into_iter()
                .map(|u| u.key)
                .collect()
        };
        assert_eq!(keys(&d1), keys(&d2));
    }

    #[test]
    fn fd_group_without_matching_markable_is_skipped() {
        // FD on a dependent that is not declared markable → no FD units.
        let config = EncoderConfig::new(1, vec![MarkableAttr::integer("book", "year", 1)]);
        let (_, units) = enumerate(&doc(), &[editor_publisher_fd()], &config).unwrap();
        assert!(units.iter().all(|u| u.key.tag == UnitTag::KeyAttr));
    }

    #[test]
    fn unit_id_bytes_match_display() {
        // The incremental PRF feed and the rendered display must agree
        // byte for byte — that is the selection-compatibility contract.
        let config = EncoderConfig::new(
            1,
            vec![
                MarkableAttr::integer("book", "year", 1),
                MarkableAttr::text("book", "publisher"),
            ],
        )
        .with_structural("book", "author");
        let fds = [editor_publisher_fd()];
        let table = SelectionTable::build(&config, &fds);
        let keys = [
            UnitKey::key_attr(&table, "book", "A|odd".into(), "year"),
            UnitKey::sibling_order(&table, "book", "K".into(), "author"),
            UnitKey::fd_group(
                &table,
                "editor-publisher",
                vec!["Potter".into(), "Second".into()],
            ),
        ];
        let prf = wmx_crypto::Prf::new(wmx_crypto::SecretKey::from_passphrase("bytes"));
        for key in &keys {
            let rendered = key.display(&table);
            for gamma in [1u32, 2, 7] {
                assert_eq!(
                    prf.is_selected(&key.id(&table), gamma),
                    prf.is_selected(rendered.as_str(), gamma),
                    "selection mismatch for {rendered}"
                );
            }
            assert_eq!(
                prf.bit_index(&key.id(&table), 16),
                prf.bit_index(rendered.as_str(), 16)
            );
            assert_eq!(
                prf.value_nonce(&key.id(&table)),
                prf.value_nonce(rendered.as_str())
            );
            assert_eq!(
                prf.whiten_bit(&key.id(&table)),
                prf.whiten_bit(rendered.as_str())
            );
        }
    }

    fn doc_multi_author() -> Document {
        wmx_xml::parse(
            r#"<db>
                <book publisher="mkp"><title>A</title><author>Zed</author><author>Ann</author><year>1998</year></book>
                <book publisher="mkp"><title>B</title><author>Solo</author><year>2000</year></book>
                <book publisher="acm"><title>C</title><author>Bo</author><author>Cy</author><author>Al</author><year>2002</year></book>
            </db>"#,
        )
        .unwrap()
    }

    fn binding_with_author() -> SchemaBinding {
        SchemaBinding::new(
            "db1",
            vec![EntityBinding::new(
                "book",
                "/db/book",
                "title",
                vec![
                    ("title", AttrBinding::ChildText("title".into())),
                    ("author", AttrBinding::ChildText("author".into())),
                    ("year", AttrBinding::ChildText("year".into())),
                ],
            )
            .unwrap()],
        )
    }

    fn enumerate_authors(
        config: &EncoderConfig,
    ) -> Result<(SelectionTable, Vec<MarkUnit>), WmError> {
        let table = SelectionTable::build(config, &[]);
        let units = enumerate_units(
            &doc_multi_author(),
            &binding_with_author(),
            &[],
            config,
            &table,
        )?;
        Ok((table, units))
    }

    #[test]
    fn structural_units_require_two_values() {
        let config = EncoderConfig::new(1, vec![]).with_structural("book", "author");
        let (table, units) = enumerate_authors(&config).unwrap();
        // Books A and C have ≥ 2 authors; B has one.
        assert_eq!(units.len(), 2);
        assert!(units.iter().all(|u| u.key.tag == UnitTag::SiblingOrder));
        assert!(units.iter().all(|u| u.mark == MarkKind::SiblingOrder));
        let ids = unit_ids(&table, &units);
        assert!(ids.contains(&"ord:book|A|attr=author".to_string()));
        assert!(ids.contains(&"ord:book|C|attr=author".to_string()));
    }

    #[test]
    fn structural_units_coexist_with_value_units() {
        let config = EncoderConfig::new(1, vec![MarkableAttr::integer("book", "year", 1)])
            .with_structural("book", "author");
        let (_, units) = enumerate_authors(&config).unwrap();
        let value = units
            .iter()
            .filter(|u| matches!(u.mark, MarkKind::Value(_)))
            .count();
        let order = units
            .iter()
            .filter(|u| u.mark == MarkKind::SiblingOrder)
            .count();
        assert_eq!(value, 3);
        assert_eq!(order, 2);
    }

    #[test]
    fn structural_unit_on_unbound_attr_rejected() {
        let config = EncoderConfig::new(1, vec![]).with_structural("book", "translator");
        assert!(enumerate_authors(&config).is_err());
        let config = EncoderConfig::new(1, vec![]).with_structural("journal", "author");
        assert!(enumerate_authors(&config).is_err());
    }
}
