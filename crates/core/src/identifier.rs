//! Identifier creation (§2.3): enumerating markable units and building
//! their identity queries from keys and functional dependencies.
//!
//! The three criteria of §2.3, and how this module meets them:
//!
//! 1. *Differentiate different data elements* — per-entity units are
//!    identified by the entity **key** (`key:book|Readings|attr=year`),
//!    never by physical position, so two `<year>1998</year>` elements
//!    under different books are distinct units.
//! 2. *Identify data redundancies* — values determined by an FD are
//!    lifted out of their entities into **FD-group units** identified by
//!    the FD name and determinant tuple; every duplicate carries the same
//!    mark, so unifying duplicates cannot erase it.
//! 3. *Stay close to data usability* — identity queries are built from
//!    the same key/attribute accesses the usability templates use, so an
//!    attack cannot disable the identifiers without breaking the
//!    templates themselves.

use crate::config::EncoderConfig;
use crate::WmError;
use std::collections::HashSet;
use wmx_rewrite::{LogicalQuery, SchemaBinding};
use wmx_schema::{discover_groups, DataType, Fd};
use wmx_xml::Document;
use wmx_xpath::ast::Expr;
use wmx_xpath::{NodeRef, Query};

/// What kind of unit this is.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum UnitKind {
    /// An entity-attribute value identified by the entity key.
    KeyAttr {
        /// Logical entity.
        entity: String,
        /// The instance's key value.
        key_value: String,
        /// The marked logical attribute.
        attr: String,
    },
    /// An FD-redundancy group identified by the determinant tuple.
    FdGroup {
        /// FD name.
        fd_name: String,
        /// Determinant tuple.
        lhs: Vec<String>,
    },
    /// A structure unit: the sibling order of a multi-valued attribute.
    SiblingOrder {
        /// Logical entity.
        entity: String,
        /// The instance's key value.
        key_value: String,
        /// The multi-valued logical attribute.
        attr: String,
    },
}

/// How the unit physically carries its bit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MarkKind {
    /// The bit is embedded into the value via the plug-in for this type.
    Value(DataType),
    /// The bit is the relative order of the first two values (ascending
    /// lexicographic = 0, descending = 1).
    SiblingOrder,
}

/// One markable unit: a stable identity, the nodes currently holding the
/// value, and the identity query that will re-locate them at detection.
#[derive(Debug, Clone)]
pub struct MarkUnit {
    /// Stable unit id (input to the keyed PRF).
    pub unit_id: String,
    /// Unit kind.
    pub kind: UnitKind,
    /// Value nodes (≥ 1; > 1 for FD groups and multi-valued attributes).
    pub nodes: Vec<NodeRef>,
    /// How the bit is carried (value plug-in vs sibling order).
    pub mark: MarkKind,
    /// Concrete identity query (under the embedding-time binding).
    pub query: Query,
    /// Logical form, when the unit is key-identified (enables automated
    /// rewriting after re-organization).
    pub logical: Option<LogicalQuery>,
}

/// Enumerates all markable units of `doc` under `binding`, honouring
/// `config` (markable attributes, FD-group switch) and `fds`.
///
/// # Errors
/// Fails if a markable attribute is an entity key (keys identify units
/// and must stay unperturbed), or if bindings/queries are inconsistent.
pub fn enumerate_units(
    doc: &Document,
    binding: &SchemaBinding,
    fds: &[Fd],
    config: &EncoderConfig,
) -> Result<Vec<MarkUnit>, WmError> {
    let mut units = Vec::new();
    let mut fd_covered: HashSet<NodeRef> = HashSet::new();

    if config.use_fd_groups {
        units.extend(fd_group_units(doc, binding, fds, config, &mut fd_covered)?);
    }

    // Structure units: sibling order of multi-valued attributes.
    for structural in &config.structural {
        let Some(entity) = binding.entity(&structural.entity) else {
            return Err(WmError::new(format!(
                "structural attribute {}/{} references an entity not bound by {}",
                structural.entity, structural.attr, binding.name
            )));
        };
        if entity.attr(&structural.attr).is_none() {
            return Err(WmError::new(format!(
                "structural attribute {}/{} is not bound by {}",
                structural.entity, structural.attr, binding.name
            )));
        }
        for instance in entity.instances(doc) {
            let Some(key_value) = entity.key_of(doc, &instance) else {
                continue;
            };
            let nodes = entity.attr_nodes(doc, &instance, &structural.attr);
            // An order bit needs at least two distinct sibling values.
            if nodes.len() < 2 {
                continue;
            }
            let logical = LogicalQuery::new(&structural.entity, &key_value, &structural.attr);
            let query = logical.compile(binding)?;
            units.push(MarkUnit {
                unit_id: format!(
                    "ord:{}|{}|attr={}",
                    structural.entity, key_value, structural.attr
                ),
                kind: UnitKind::SiblingOrder {
                    entity: structural.entity.clone(),
                    key_value,
                    attr: structural.attr.clone(),
                },
                nodes,
                mark: MarkKind::SiblingOrder,
                query,
                logical: Some(logical),
            });
        }
    }

    // Key-identified per-entity units.
    for markable in &config.markable {
        let Some(entity) = binding.entity(&markable.entity) else {
            return Err(WmError::new(format!(
                "markable attribute {}/{} references an entity not bound by {}",
                markable.entity, markable.attr, binding.name
            )));
        };
        if markable.attr == entity.key_attr {
            return Err(WmError::new(format!(
                "attribute {}/{} is the entity key and cannot carry marks",
                markable.entity, markable.attr
            )));
        }
        if entity.attr(&markable.attr).is_none() {
            return Err(WmError::new(format!(
                "markable attribute {}/{} is not bound by {}",
                markable.entity, markable.attr, binding.name
            )));
        }
        for instance in entity.instances(doc) {
            let Some(key_value) = entity.key_of(doc, &instance) else {
                continue; // keyless instances cannot be identified
            };
            let nodes: Vec<NodeRef> = entity
                .attr_nodes(doc, &instance, &markable.attr)
                .into_iter()
                .filter(|n| !fd_covered.contains(n))
                .collect();
            if nodes.is_empty() {
                continue;
            }
            let logical = LogicalQuery::new(&markable.entity, &key_value, &markable.attr);
            let query = logical.compile(binding)?;
            units.push(MarkUnit {
                unit_id: format!(
                    "key:{}|{}|attr={}",
                    markable.entity, key_value, markable.attr
                ),
                kind: UnitKind::KeyAttr {
                    entity: markable.entity.clone(),
                    key_value,
                    attr: markable.attr.clone(),
                },
                nodes,
                mark: MarkKind::Value(markable.data_type),
                query,
                logical: Some(logical),
            });
        }
    }
    Ok(units)
}

/// Builds FD-group units and records which value nodes they cover.
fn fd_group_units(
    doc: &Document,
    binding: &SchemaBinding,
    fds: &[Fd],
    config: &EncoderConfig,
    fd_covered: &mut HashSet<NodeRef>,
) -> Result<Vec<MarkUnit>, WmError> {
    let mut units = Vec::new();
    let groups = discover_groups(doc, fds);
    for group in groups {
        let fd = fds
            .iter()
            .find(|f| f.name == group.fd_name)
            .expect("group came from this fd list");
        // The FD's dependent must correspond to a markable attribute so
        // we know its type/tolerance; otherwise the group is not marked.
        let Some(markable) = markable_for_fd(binding, fds, &group.fd_name, config) else {
            continue;
        };
        // All group members carry the mark, even singleton groups: the
        // unit identity must not depend on how many duplicates exist.
        let nodes: Vec<NodeRef> = group.members.clone();
        if nodes.is_empty() {
            continue;
        }
        for n in &nodes {
            fd_covered.insert(n.clone());
        }
        let query = fd_group_query(fd, &group.lhs)?;
        units.push(MarkUnit {
            unit_id: group.unit_id(),
            kind: UnitKind::FdGroup {
                fd_name: group.fd_name.clone(),
                lhs: group.lhs.clone(),
            },
            nodes,
            mark: MarkKind::Value(markable.data_type),
            query,
            logical: None,
        });
    }
    Ok(units)
}

/// Finds the markable declaration whose bound access path equals the
/// FD's dependent path (the FD is expressed physically, markables
/// logically; the binding connects them).
fn markable_for_fd<'c>(
    binding: &SchemaBinding,
    fds: &[Fd],
    fd_name: &str,
    config: &'c EncoderConfig,
) -> Option<&'c crate::config::MarkableAttr> {
    let fd = fds.iter().find(|f| f.name == fd_name)?;
    if fd.rhs.len() != 1 {
        return None; // multi-attribute dependents are split into several FDs
    }
    let rhs_text = fd.rhs[0].to_string();
    let entity_text = fd.entity.to_string();
    for markable in &config.markable {
        let Some(entity) = binding.entity(&markable.entity) else {
            continue;
        };
        let Some(attr_binding) = entity.attr(&markable.attr) else {
            continue;
        };
        if queries_equal(&entity.instance_path, &entity_text)
            && queries_equal(&attr_binding.to_path_text(), &rhs_text)
        {
            return Some(markable);
        }
    }
    None
}

/// Compares two query texts modulo reparsing (normalizes `//x` vs
/// `/descendant-or-self::node()/x` and whitespace).
///
/// Binding paths and FD selectors are persisted in canonical `Display`
/// form, so the overwhelmingly common case is byte equality — taken
/// without compiling. Only mismatching texts fall back to compiling
/// both sides and comparing ASTs (compilation is also how `//x` and its
/// expanded spelling are unified).
fn queries_equal(a: &str, b: &str) -> bool {
    if a == b {
        return true;
    }
    match (Query::compile(a), Query::compile(b)) {
        (Ok(qa), Ok(qb)) => qa.expr() == qb.expr(),
        _ => false,
    }
}

/// Builds the identity query of an FD group:
/// `entity_path[lhs1 = 'v1' and …]/rhs_path` — selecting *all* duplicate
/// value nodes at once.
fn fd_group_query(fd: &Fd, lhs_values: &[String]) -> Result<Query, WmError> {
    let Expr::Path(entity_path) = fd.entity.expr() else {
        return Err(WmError::new(format!(
            "fd {}: entity selector is not a path",
            fd.name
        )));
    };
    let mut path = entity_path.clone();
    let last = path
        .steps
        .last_mut()
        .ok_or_else(|| WmError::new(format!("fd {}: empty entity path", fd.name)))?;
    for (lhs_query, value) in fd.lhs.iter().zip(lhs_values) {
        let Expr::Path(lhs_path) = lhs_query.expr() else {
            return Err(WmError::new(format!(
                "fd {}: determinant selector is not a path",
                fd.name
            )));
        };
        last.predicates.push(Expr::eq(
            Expr::Path(lhs_path.clone()),
            Expr::Literal(value.clone()),
        ));
    }
    let Expr::Path(rhs_path) = fd.rhs[0].expr() else {
        return Err(WmError::new(format!(
            "fd {}: dependent selector is not a path",
            fd.name
        )));
    };
    path.steps.extend(rhs_path.steps.clone());
    Ok(Query::from_expr(Expr::Path(path)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MarkableAttr;
    use wmx_rewrite::binding::{AttrBinding, EntityBinding};
    use wmx_xml::parse;

    fn doc() -> Document {
        parse(
            r#"<db>
                <book publisher="mkp"><title>A</title><editor>Potter</editor><year>1998</year></book>
                <book publisher="mkp"><title>B</title><editor>Potter</editor><year>2000</year></book>
                <book publisher="acm"><title>C</title><editor>Gamer</editor><year>2002</year></book>
            </db>"#,
        )
        .unwrap()
    }

    fn binding() -> SchemaBinding {
        SchemaBinding::new(
            "db1",
            vec![EntityBinding::new(
                "book",
                "/db/book",
                "title",
                vec![
                    ("title", AttrBinding::ChildText("title".into())),
                    ("editor", AttrBinding::ChildText("editor".into())),
                    ("year", AttrBinding::ChildText("year".into())),
                    ("publisher", AttrBinding::Attribute("publisher".into())),
                ],
            )
            .unwrap()],
        )
    }

    fn editor_publisher_fd() -> Fd {
        Fd::new("editor-publisher", "/db/book", &["editor"], &["@publisher"]).unwrap()
    }

    #[test]
    fn queries_equal_fast_path_and_normalization() {
        // Identical canonical texts short-circuit without compiling.
        assert!(queries_equal("/db/book/year", "/db/book/year"));
        assert!(queries_equal("not ( a [ query", "not ( a [ query"));
        // Different spellings of the same path still unify via the AST.
        assert!(queries_equal("//year", "/descendant-or-self::node()/year"));
        assert!(!queries_equal("/db/book", "/db/journal"));
        assert!(!queries_equal("not ( a [ query", "/db/book"));
    }

    #[test]
    fn key_units_enumerated_per_instance() {
        let config = EncoderConfig::new(1, vec![MarkableAttr::integer("book", "year", 1)]);
        let units = enumerate_units(&doc(), &binding(), &[], &config).unwrap();
        assert_eq!(units.len(), 3);
        let ids: Vec<&str> = units.iter().map(|u| u.unit_id.as_str()).collect();
        assert!(ids.contains(&"key:book|A|attr=year"));
        assert!(ids.contains(&"key:book|B|attr=year"));
        assert!(ids.contains(&"key:book|C|attr=year"));
        for u in &units {
            assert_eq!(u.nodes.len(), 1);
            assert!(u.logical.is_some());
            // Identity query re-selects exactly the unit's nodes.
            assert_eq!(u.query.select(&doc()), u.nodes);
        }
    }

    #[test]
    fn fd_groups_absorb_dependent_values() {
        let config = EncoderConfig::new(
            1,
            vec![
                MarkableAttr::integer("book", "year", 1),
                MarkableAttr::text("book", "publisher"),
            ],
        );
        let units = enumerate_units(&doc(), &binding(), &[editor_publisher_fd()], &config).unwrap();

        let fd_units: Vec<&MarkUnit> = units
            .iter()
            .filter(|u| matches!(u.kind, UnitKind::FdGroup { .. }))
            .collect();
        assert_eq!(fd_units.len(), 2); // Potter group, Gamer group
        let potter = fd_units
            .iter()
            .find(|u| u.unit_id.contains("Potter"))
            .unwrap();
        assert_eq!(potter.nodes.len(), 2);
        assert_eq!(
            potter.query.to_string(),
            "/db/book[editor = 'Potter']/@publisher"
        );
        // The query selects both duplicates.
        assert_eq!(potter.query.select(&doc()).len(), 2);

        // publisher values are NOT also enumerated as key units.
        let key_publisher_units = units
            .iter()
            .filter(|u| matches!(&u.kind, UnitKind::KeyAttr { attr, .. } if attr == "publisher"))
            .count();
        assert_eq!(key_publisher_units, 0);

        // year units remain key-identified.
        let year_units = units
            .iter()
            .filter(|u| matches!(&u.kind, UnitKind::KeyAttr { attr, .. } if attr == "year"))
            .count();
        assert_eq!(year_units, 3);
    }

    #[test]
    fn fd_groups_disabled_leaves_per_entity_units() {
        let config = EncoderConfig::new(1, vec![MarkableAttr::text("book", "publisher")])
            .without_fd_groups();
        let units = enumerate_units(&doc(), &binding(), &[editor_publisher_fd()], &config).unwrap();
        assert_eq!(units.len(), 3);
        assert!(units
            .iter()
            .all(|u| matches!(u.kind, UnitKind::KeyAttr { .. })));
    }

    #[test]
    fn marking_the_key_is_rejected() {
        let config = EncoderConfig::new(1, vec![MarkableAttr::text("book", "title")]);
        let err = enumerate_units(&doc(), &binding(), &[], &config).unwrap_err();
        assert!(err.message.contains("entity key"));
    }

    #[test]
    fn unbound_attribute_is_rejected() {
        let config = EncoderConfig::new(1, vec![MarkableAttr::integer("book", "isbn", 1)]);
        assert!(enumerate_units(&doc(), &binding(), &[], &config).is_err());
        let config = EncoderConfig::new(1, vec![MarkableAttr::integer("journal", "year", 1)]);
        assert!(enumerate_units(&doc(), &binding(), &[], &config).is_err());
    }

    #[test]
    fn unit_ids_stable_under_sibling_reorder() {
        let config = EncoderConfig::new(1, vec![MarkableAttr::integer("book", "year", 1)]);
        let d1 = doc();
        let mut d2 = doc();
        let root = d2.root_element().unwrap();
        d2.reorder_children(root, &[2, 0, 1]);
        let ids = |d: &Document| -> std::collections::BTreeSet<String> {
            enumerate_units(d, &binding(), &[], &config)
                .unwrap()
                .into_iter()
                .map(|u| u.unit_id)
                .collect()
        };
        assert_eq!(ids(&d1), ids(&d2));
    }

    #[test]
    fn fd_group_without_matching_markable_is_skipped() {
        // FD on a dependent that is not declared markable → no FD units.
        let config = EncoderConfig::new(1, vec![MarkableAttr::integer("book", "year", 1)]);
        let units = enumerate_units(&doc(), &binding(), &[editor_publisher_fd()], &config).unwrap();
        assert!(units
            .iter()
            .all(|u| matches!(u.kind, UnitKind::KeyAttr { .. })));
    }

    fn doc_multi_author() -> Document {
        wmx_xml::parse(
            r#"<db>
                <book publisher="mkp"><title>A</title><author>Zed</author><author>Ann</author><year>1998</year></book>
                <book publisher="mkp"><title>B</title><author>Solo</author><year>2000</year></book>
                <book publisher="acm"><title>C</title><author>Bo</author><author>Cy</author><author>Al</author><year>2002</year></book>
            </db>"#,
        )
        .unwrap()
    }

    fn binding_with_author() -> SchemaBinding {
        SchemaBinding::new(
            "db1",
            vec![EntityBinding::new(
                "book",
                "/db/book",
                "title",
                vec![
                    ("title", AttrBinding::ChildText("title".into())),
                    ("author", AttrBinding::ChildText("author".into())),
                    ("year", AttrBinding::ChildText("year".into())),
                ],
            )
            .unwrap()],
        )
    }

    #[test]
    fn structural_units_require_two_values() {
        let config = EncoderConfig::new(1, vec![]).with_structural("book", "author");
        let units =
            enumerate_units(&doc_multi_author(), &binding_with_author(), &[], &config).unwrap();
        // Books A and C have ≥ 2 authors; B has one.
        assert_eq!(units.len(), 2);
        assert!(units
            .iter()
            .all(|u| matches!(u.kind, UnitKind::SiblingOrder { .. })));
        assert!(units.iter().all(|u| u.mark == MarkKind::SiblingOrder));
        let ids: Vec<&str> = units.iter().map(|u| u.unit_id.as_str()).collect();
        assert!(ids.contains(&"ord:book|A|attr=author"));
        assert!(ids.contains(&"ord:book|C|attr=author"));
    }

    #[test]
    fn structural_units_coexist_with_value_units() {
        let config = EncoderConfig::new(1, vec![MarkableAttr::integer("book", "year", 1)])
            .with_structural("book", "author");
        let units =
            enumerate_units(&doc_multi_author(), &binding_with_author(), &[], &config).unwrap();
        let value = units
            .iter()
            .filter(|u| matches!(u.mark, MarkKind::Value(_)))
            .count();
        let order = units
            .iter()
            .filter(|u| u.mark == MarkKind::SiblingOrder)
            .count();
        assert_eq!(value, 3);
        assert_eq!(order, 2);
    }

    #[test]
    fn structural_unit_on_unbound_attr_rejected() {
        let config = EncoderConfig::new(1, vec![]).with_structural("book", "translator");
        assert!(
            enumerate_units(&doc_multi_author(), &binding_with_author(), &[], &config).is_err()
        );
        let config = EncoderConfig::new(1, vec![]).with_structural("journal", "author");
        assert!(
            enumerate_units(&doc_multi_author(), &binding_with_author(), &[], &config).is_err()
        );
    }
}
