//! Tamper forensics: per-unit and per-record vote localization.
//!
//! Detection (§2.2 step 3) yields a document-level verdict; forensics
//! answers *where* the watermark broke. The forensic pass re-enumerates
//! the suspect document's markable units through the compiled
//! [`SelectionPlan`] — exactly the enumeration the streaming engine
//! performs per record — extracts each selected unit's votes, and
//! classifies every unit by comparing observed votes against the
//! expected watermark bit. Extraction already removes the whitening, so
//! a clean unit's votes all equal `watermark.bit(bit_index)`: any
//! contradicting vote is direct evidence the unit's value was disturbed
//! after embedding.
//!
//! Both execution engines accumulate the same symbol-native tally map
//! ([`ForensicTallies`], keyed by [`UnitKey`]) and render it through one
//! code path ([`ForensicsReport::from_tallies`]), which makes DOM and
//! stream forensics identical by construction. `UnitKey` display
//! strings are rendered only at report-build time, never on the
//! per-unit vote path.

use std::collections::BTreeMap;

use crate::config::EncoderConfig;
use crate::decoder::{
    collect_query_votes, report_from_votes, BitVotes, DetectionInput, DetectionReport,
};
use crate::identifier::{SelectionTable, UnitKey};
use crate::nodectx::{DomNodes, UnitMarker};
use crate::plan::global_plan_cache;
use crate::recovery::{decode_redundant, report_from_redundant_votes, RedundantDecode};
use crate::wm::Watermark;
use crate::WmError;
use wmx_rewrite::SchemaBinding;
use wmx_schema::Fd;
use wmx_telemetry::Json;
use wmx_xml::Document;

/// The semantic package the forensic pass needs to re-enumerate units —
/// the same binding/FDs/config the encoder used. (The default decoder
/// deliberately needs none of this: it works from the safeguarded query
/// set alone. Forensics trades that independence for localization.)
#[derive(Clone, Copy)]
pub struct ForensicContext<'a> {
    /// Entity binding onto the suspect document's layout.
    pub binding: &'a SchemaBinding,
    /// Functional dependencies (FD-group units).
    pub fds: &'a [Fd],
    /// Encoder configuration (γ, markable attributes, redundancy).
    pub config: &'a EncoderConfig,
}

/// Classification of one unit (or one record) after vote extraction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum UnitStatus {
    /// The PRF did not select this unit: it carries no mark and cannot
    /// testify either way.
    Unselected,
    /// Every observed vote agrees with the expected watermark bit.
    Clean,
    /// At least one observed vote contradicts the expected bit — or a
    /// selected unit yielded no vote at all (its value can no longer
    /// carry the mark it once accepted).
    Suspect,
    /// Redundancy mode: the unit's own votes contradicted, but the
    /// bit's group-majority decode still recovers the expected value —
    /// the distortion is localized and correctable.
    Recovered,
    /// Redundancy mode: the damage reached the bit's decode — the group
    /// majority no longer yields the expected value.
    Unrecoverable,
}

impl UnitStatus {
    /// Stable lower-case label used in JSON and CLI output.
    pub fn label(&self) -> &'static str {
        match self {
            UnitStatus::Unselected => "unselected",
            UnitStatus::Clean => "clean",
            UnitStatus::Suspect => "suspect",
            UnitStatus::Recovered => "recovered",
            UnitStatus::Unrecoverable => "unrecoverable",
        }
    }
}

/// Forensic verdict for one markable unit.
#[derive(Debug, Clone, PartialEq)]
pub struct UnitForensics {
    /// Rendered unit id (`key:…` / `ord:…` / `fd:…`).
    pub unit_id: String,
    /// The record scope the unit belongs to ([`UnitKey::record_scope`]).
    pub record: String,
    /// Effective watermark bit index the unit votes on (`None` when
    /// unselected).
    pub bit_index: Option<usize>,
    /// The expected bit value (`None` when unselected).
    pub expected: Option<bool>,
    /// Observed votes agreeing with the expected bit.
    pub votes_for: usize,
    /// Observed votes contradicting the expected bit.
    pub votes_against: usize,
    /// Classification.
    pub status: UnitStatus,
}

/// Forensic verdict for one record scope (all units sharing a record
/// key, or one FD group).
#[derive(Debug, Clone, PartialEq)]
pub struct RecordForensics {
    /// The record scope label.
    pub record: String,
    /// Units enumerated in this scope.
    pub units: usize,
    /// Units the PRF selected.
    pub selected_units: usize,
    /// Units classified [`UnitStatus::Suspect`] or
    /// [`UnitStatus::Unrecoverable`].
    pub suspect_units: usize,
    /// Units classified [`UnitStatus::Recovered`].
    pub recovered_units: usize,
    /// Record classification: `Suspect` when any unit is suspect or
    /// unrecoverable, `Recovered` when damage was fully recovered,
    /// `Unselected` when the scope carries no mark, `Clean` otherwise.
    pub status: UnitStatus,
}

/// The full localization report attached to a [`DetectionReport`].
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ForensicsReport {
    /// Every enumerated unit, in deterministic [`UnitKey`] order.
    pub units: Vec<UnitForensics>,
    /// Per-record rollup, in record-scope order.
    pub records: Vec<RecordForensics>,
    /// Units enumerated.
    pub total_units: usize,
    /// Units the PRF selected.
    pub selected_units: usize,
    /// Units classified clean.
    pub clean_units: usize,
    /// Units classified suspect (excludes recovered/unrecoverable).
    pub suspect_units: usize,
    /// Units whose damage the redundancy decode recovered.
    pub recovered_units: usize,
    /// Units whose damage reached the decode.
    pub unrecoverable_units: usize,
    /// Records classified suspect (including unrecoverable damage).
    pub suspect_records: usize,
    /// Whether any tampering evidence exists (suspect, recovered, or
    /// unrecoverable units).
    pub tampered: bool,
}

/// Per-unit accumulator entry: everything the render pass needs, with
/// no strings attached (literally — names stay interned).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
struct UnitTally {
    selected: bool,
    bit_index: usize,
    expected: bool,
    votes_for: usize,
    votes_against: usize,
}

/// Symbol-native forensic accumulator shared by the DOM forensic pass
/// and the streaming engine's per-record loop. Keyed by [`UnitKey`] so
/// FD-group fragments from different records/chunks merge by identity,
/// and iteration order is deterministic regardless of worker count.
#[derive(Debug, Clone, Default)]
pub struct ForensicTallies {
    map: BTreeMap<UnitKey, UnitTally>,
}

impl ForensicTallies {
    /// An empty accumulator.
    pub fn new() -> Self {
        ForensicTallies::default()
    }

    /// Records a unit the PRF did not select.
    pub fn observe_unselected(&mut self, key: &UnitKey) {
        if !self.map.contains_key(key) {
            self.map.insert(key.clone(), UnitTally::default());
        }
    }

    /// Records one selected unit's extraction outcome: `bits` are the
    /// observed votes, `expected` the watermark bit at `bit_index`.
    pub fn observe(&mut self, key: &UnitKey, bit_index: usize, expected: bool, bits: &[bool]) {
        let tally = match self.map.get_mut(key) {
            Some(t) => t,
            None => self.map.entry(key.clone()).or_default(),
        };
        tally.selected = true;
        tally.bit_index = bit_index;
        tally.expected = expected;
        for &bit in bits {
            if bit == expected {
                tally.votes_for += 1;
            } else {
                tally.votes_against += 1;
            }
        }
    }

    /// Merges another accumulator (cross-chunk FD fragments combine by
    /// key; disjoint units concatenate).
    pub fn merge(&mut self, other: ForensicTallies) {
        for (key, tally) in other.map {
            match self.map.get_mut(&key) {
                Some(existing) => {
                    existing.selected |= tally.selected;
                    if tally.selected {
                        existing.bit_index = tally.bit_index;
                        existing.expected = tally.expected;
                    }
                    existing.votes_for += tally.votes_for;
                    existing.votes_against += tally.votes_against;
                }
                None => {
                    self.map.insert(key, tally);
                }
            }
        }
    }

    /// Number of units observed.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether nothing was observed.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

impl ForensicsReport {
    /// Renders the accumulated tallies into the report: classifies each
    /// unit, rolls units up into record scopes, and totals the summary
    /// counters. `decode` carries the redundancy-mode group decode used
    /// to split suspects into recovered/unrecoverable; pass `None` in
    /// plain mode.
    pub fn from_tallies(
        tallies: &ForensicTallies,
        table: &SelectionTable,
        decode: Option<&RedundantDecode>,
    ) -> ForensicsReport {
        let mut report = ForensicsReport::default();
        let mut records: BTreeMap<String, RecordForensics> = BTreeMap::new();
        for (key, tally) in &tallies.map {
            let status = if !tally.selected {
                UnitStatus::Unselected
            } else if tally.votes_against == 0 && tally.votes_for > 0 {
                UnitStatus::Clean
            } else {
                // Contradicting votes — or a selected unit that yielded
                // no vote at all (its value lost the mark capacity it
                // once had): both are tampering evidence.
                match decode {
                    Some(d) if d.groups > 1 => {
                        if d.decoded[tally.bit_index % d.base_len] == Some(tally.expected) {
                            UnitStatus::Recovered
                        } else {
                            UnitStatus::Unrecoverable
                        }
                    }
                    _ => UnitStatus::Suspect,
                }
            };
            report.total_units += 1;
            match status {
                UnitStatus::Unselected => {}
                UnitStatus::Clean => {
                    report.selected_units += 1;
                    report.clean_units += 1;
                }
                UnitStatus::Suspect => {
                    report.selected_units += 1;
                    report.suspect_units += 1;
                }
                UnitStatus::Recovered => {
                    report.selected_units += 1;
                    report.recovered_units += 1;
                }
                UnitStatus::Unrecoverable => {
                    report.selected_units += 1;
                    report.unrecoverable_units += 1;
                }
            }
            let scope = key.record_scope(table);
            let entry = records
                .entry(scope.clone())
                .or_insert_with(|| RecordForensics {
                    record: scope.clone(),
                    units: 0,
                    selected_units: 0,
                    suspect_units: 0,
                    recovered_units: 0,
                    status: UnitStatus::Unselected,
                });
            entry.units += 1;
            if tally.selected {
                entry.selected_units += 1;
            }
            match status {
                UnitStatus::Suspect | UnitStatus::Unrecoverable => entry.suspect_units += 1,
                UnitStatus::Recovered => entry.recovered_units += 1,
                _ => {}
            }
            report.units.push(UnitForensics {
                unit_id: key.display(table),
                record: scope,
                bit_index: tally.selected.then_some(tally.bit_index),
                expected: tally.selected.then_some(tally.expected),
                votes_for: tally.votes_for,
                votes_against: tally.votes_against,
                status,
            });
        }
        for record in records.values_mut() {
            record.status = if record.suspect_units > 0 {
                UnitStatus::Suspect
            } else if record.recovered_units > 0 {
                UnitStatus::Recovered
            } else if record.selected_units == 0 {
                UnitStatus::Unselected
            } else {
                UnitStatus::Clean
            };
            if record.status == UnitStatus::Suspect {
                report.suspect_records += 1;
            }
        }
        report.records = records.into_values().collect();
        report.tampered =
            report.suspect_units + report.recovered_units + report.unrecoverable_units > 0;
        report
    }

    /// Serializes the report to the documented forensics JSON schema.
    pub fn to_json(&self) -> Json {
        let unit_json = |u: &UnitForensics| {
            Json::Object(vec![
                ("unit".into(), Json::String(u.unit_id.clone())),
                ("record".into(), Json::String(u.record.clone())),
                (
                    "bit".into(),
                    u.bit_index.map_or(Json::Null, |b| Json::Number(b as f64)),
                ),
                ("expected".into(), u.expected.map_or(Json::Null, Json::Bool)),
                ("votes_for".into(), Json::Number(u.votes_for as f64)),
                ("votes_against".into(), Json::Number(u.votes_against as f64)),
                ("status".into(), Json::String(u.status.label().into())),
            ])
        };
        let record_json = |r: &RecordForensics| {
            Json::Object(vec![
                ("record".into(), Json::String(r.record.clone())),
                ("units".into(), Json::Number(r.units as f64)),
                ("selected".into(), Json::Number(r.selected_units as f64)),
                ("suspect".into(), Json::Number(r.suspect_units as f64)),
                ("recovered".into(), Json::Number(r.recovered_units as f64)),
                ("status".into(), Json::String(r.status.label().into())),
            ])
        };
        Json::Object(vec![
            ("total_units".into(), Json::Number(self.total_units as f64)),
            (
                "selected_units".into(),
                Json::Number(self.selected_units as f64),
            ),
            ("clean_units".into(), Json::Number(self.clean_units as f64)),
            (
                "suspect_units".into(),
                Json::Number(self.suspect_units as f64),
            ),
            (
                "recovered_units".into(),
                Json::Number(self.recovered_units as f64),
            ),
            (
                "unrecoverable_units".into(),
                Json::Number(self.unrecoverable_units as f64),
            ),
            (
                "suspect_records".into(),
                Json::Number(self.suspect_records as f64),
            ),
            ("tampered".into(), Json::Bool(self.tampered)),
            (
                "records".into(),
                Json::Array(self.records.iter().map(record_json).collect()),
            ),
            (
                "units".into(),
                Json::Array(self.units.iter().map(unit_json).collect()),
            ),
        ])
    }
}

/// Runs the enumeration-driven forensic scan over `doc` into `tallies`:
/// every unit the plan enumerates is observed — unselected units for
/// record completeness, selected units with their extracted votes
/// against the effective watermark.
pub(crate) fn scan_units(
    doc: &Document,
    ctx: ForensicContext<'_>,
    marker: &UnitMarker,
    wm_eff: &Watermark,
    tallies: &mut ForensicTallies,
) -> Result<(), WmError> {
    let plan = global_plan_cache().get_or_compile(ctx.binding, ctx.fds, ctx.config)?;
    let table = plan.table();
    let wm_len = wm_eff.len();
    for unit in plan.execute(doc) {
        if !marker.is_selected(&unit.key.id(table), ctx.config.gamma) {
            tallies.observe_unselected(&unit.key);
            continue;
        }
        let votes = marker.extract_unit(
            &DomNodes::new(doc, &unit.nodes),
            &unit.key.id(table),
            unit.mark,
            wm_len,
        );
        tallies.observe(
            &unit.key,
            votes.bit_index,
            wm_eff.bit(votes.bit_index),
            &votes.bits,
        );
    }
    Ok(())
}

/// Finalizes an effective-width vote tally plus forensic tallies into a
/// [`DetectionReport`] with the forensics attached — the single render
/// seam both the DOM forensic decoder and the streaming engine's
/// partial-report finalization flow through (that shared tail is what
/// the DOM-vs-stream forensic equivalence suite pins).
pub fn finalize_forensic_report(
    bit_votes_eff: Vec<BitVotes>,
    watermark: &Watermark,
    threshold: f64,
    counters: crate::decoder::VoteCounters,
    forensic: Option<(&ForensicTallies, &SelectionTable)>,
) -> DetectionReport {
    let base_len = watermark.len();
    let redundancy = bit_votes_eff
        .len()
        .checked_div(base_len)
        .unwrap_or(1)
        .max(1) as u32;
    let decode = (redundancy > 1).then(|| decode_redundant(&bit_votes_eff, base_len, redundancy));
    let mut report = match &decode {
        Some(d) => report_from_redundant_votes(d, watermark, threshold, counters),
        None => report_from_votes(bit_votes_eff, watermark, threshold, counters),
    };
    if let Some((tallies, table)) = forensic {
        let forensics = ForensicsReport::from_tallies(tallies, table, decode.as_ref());
        let registry = wmx_telemetry::global();
        registry
            .counter("detect.suspect_units")
            .add(forensics.suspect_units as u64);
        registry
            .counter("detect.suspect_records")
            .add(forensics.suspect_records as u64);
        registry
            .counter("detect.recovered_units")
            .add(forensics.recovered_units as u64);
        report.forensics = Some(forensics);
    }
    report
}

/// Detection with tamper localization (and, when
/// [`EncoderConfig::redundancy`] > 1, error-correcting group decode).
///
/// The verdict comes from the same query-driven extraction [`detect`]
/// performs (at the effective watermark width); localization comes from
/// a second, enumeration-driven pass — the same per-unit walk the
/// streaming engine performs per record — so the attached
/// [`ForensicsReport`] is identical to the one `wmx-stream` produces on
/// the same document.
///
/// When `input.mapping` is set, forensics reflects only the units the
/// binding locates in the *original* layout; verdicts still follow the
/// rewritten queries.
///
/// [`detect`]: crate::decoder::detect
pub fn detect_forensic(
    doc: &Document,
    input: &DetectionInput<'_>,
    ctx: ForensicContext<'_>,
) -> Result<DetectionReport, WmError> {
    let _span = wmx_telemetry::span("detect.forensic");
    let plan = global_plan_cache().get_or_compile(ctx.binding, ctx.fds, ctx.config)?;
    let redundancy = ctx.config.redundancy.max(1) as usize;
    let eff;
    let wm_eff = if redundancy > 1 {
        eff = input.watermark.repeat(redundancy);
        &eff
    } else {
        &input.watermark
    };
    let (bit_votes, counters) = collect_query_votes(doc, input, wm_eff.len());
    let marker = UnitMarker::new(input.key.clone());
    let mut tallies = ForensicTallies::new();
    scan_units(doc, ctx, &marker, wm_eff, &mut tallies)?;
    Ok(finalize_forensic_report(
        bit_votes,
        &input.watermark,
        input.threshold,
        counters,
        Some((&tallies, plan.table())),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MarkableAttr;
    use crate::decoder::detect;
    use crate::encoder::embed;
    use wmx_crypto::SecretKey;
    use wmx_rewrite::binding::{AttrBinding, EntityBinding};
    use wmx_xpath::Query;

    fn doc(n: usize) -> Document {
        let mut body = String::from("<db>");
        for i in 0..n {
            body.push_str(&format!(
                "<book publisher=\"pub{}\"><title>Book {i}</title><editor>Ed{}</editor><year>{}</year></book>",
                i % 3,
                i % 3,
                1950 + (i % 60)
            ));
        }
        body.push_str("</db>");
        wmx_xml::parse(&body).unwrap()
    }

    fn binding() -> SchemaBinding {
        SchemaBinding::new(
            "db1",
            vec![EntityBinding::new(
                "book",
                "/db/book",
                "title",
                vec![
                    ("title", AttrBinding::ChildText("title".into())),
                    ("editor", AttrBinding::ChildText("editor".into())),
                    ("year", AttrBinding::ChildText("year".into())),
                    ("publisher", AttrBinding::Attribute("publisher".into())),
                ],
            )
            .unwrap()],
        )
    }

    fn config(gamma: u32) -> EncoderConfig {
        EncoderConfig::new(gamma, vec![MarkableAttr::integer("book", "year", 1)])
    }

    fn setup(n: usize, gamma: u32) -> (Document, Vec<crate::StoredQuery>, Watermark, SecretKey) {
        let mut d = doc(n);
        let key = SecretKey::from_passphrase("forensic-key");
        let wm = Watermark::parse("10110100").unwrap();
        let report = embed(&mut d, &binding(), &[], &config(gamma), &key, &wm).unwrap();
        (d, report.queries, wm, key)
    }

    fn input<'a>(
        queries: &'a [crate::StoredQuery],
        key: &SecretKey,
        wm: &Watermark,
    ) -> DetectionInput<'a> {
        DetectionInput {
            queries,
            key: key.clone(),
            watermark: wm.clone(),
            threshold: 0.85,
            mapping: None,
        }
    }

    fn ctx<'a>(binding: &'a SchemaBinding, config: &'a EncoderConfig) -> ForensicContext<'a> {
        ForensicContext {
            binding,
            fds: &[],
            config,
        }
    }

    #[test]
    fn clean_document_has_no_suspects() {
        let (d, queries, wm, key) = setup(200, 3);
        let b = binding();
        let cfg = config(3);
        let report = detect_forensic(&d, &input(&queries, &key, &wm), ctx(&b, &cfg)).unwrap();
        assert!(report.detected);
        let f = report.forensics.as_ref().unwrap();
        assert_eq!(f.total_units, 200);
        assert_eq!(f.suspect_units, 0);
        assert_eq!(f.suspect_records, 0);
        assert!(!f.tampered);
        assert_eq!(f.clean_units, f.selected_units);
        assert_eq!(f.selected_units, queries.len());
        // Verdict path matches the plain decoder bit for bit.
        let plain = detect(&d, &input(&queries, &key, &wm));
        assert_eq!(report.bit_votes, plain.bit_votes);
        assert_eq!(report.detected, plain.detected);
        assert_eq!(report.matched_bits, plain.matched_bits);
    }

    #[test]
    fn altered_records_are_localized_exactly() {
        let (mut d, queries, wm, key) = setup(300, 2);
        // Alter years of records 10, 20, 30 by +7 (beyond tolerance).
        let years = Query::compile("/db/book/year").unwrap().select(&d);
        let mut altered = Vec::new();
        for idx in [10usize, 20, 30] {
            let v: i64 = years[idx].string_value(&d).parse().unwrap();
            crate::write_value(&mut d, &years[idx], &(v + 7).to_string()).unwrap();
            altered.push(format!("book|Book {idx}"));
        }
        let b = binding();
        let cfg = config(2);
        let report = detect_forensic(&d, &input(&queries, &key, &wm), ctx(&b, &cfg)).unwrap();
        let f = report.forensics.as_ref().unwrap();
        // Every flagged record really was altered (perfect precision);
        // flagged ⊆ altered and every *selected* altered record flags.
        let flagged: Vec<&str> = f
            .records
            .iter()
            .filter(|r| r.status == UnitStatus::Suspect)
            .map(|r| r.record.as_str())
            .collect();
        for rec in &flagged {
            assert!(altered.iter().any(|a| a == rec), "false positive {rec}");
        }
        for rec in &altered {
            let entry = f.records.iter().find(|r| &r.record == rec).unwrap();
            if entry.selected_units > 0 {
                // A +7 shift flips the embedded LSB-parity mark.
                assert_eq!(entry.status, UnitStatus::Suspect, "missed {rec}");
            }
        }
        assert!(f.tampered);
        assert_eq!(f.suspect_records, flagged.len());
    }

    #[test]
    fn unselected_records_are_classified_as_such() {
        let (d, queries, wm, key) = setup(60, 4);
        let b = binding();
        let cfg = config(4);
        let report = detect_forensic(&d, &input(&queries, &key, &wm), ctx(&b, &cfg)).unwrap();
        let f = report.forensics.as_ref().unwrap();
        let unselected = f
            .records
            .iter()
            .filter(|r| r.status == UnitStatus::Unselected)
            .count();
        // γ=4 leaves ~3/4 of the records without a mark.
        assert!(unselected > 0, "γ=4 must leave unselected records");
        assert_eq!(f.records.len(), 60);
        assert_eq!(
            unselected,
            f.records.iter().filter(|r| r.selected_units == 0).count()
        );
    }

    #[test]
    fn tallies_merge_matches_single_pass() {
        let (d, _queries, wm, key) = setup(100, 2);
        let b = binding();
        let cfg = config(2);
        let fctx = ctx(&b, &cfg);
        let marker = UnitMarker::new(key.clone());
        let mut whole = ForensicTallies::new();
        scan_units(&d, fctx, &marker, &wm, &mut whole).unwrap();
        // Scanning the same doc twice then merging halves must equal the
        // doubled single scan (vote counts add; identities dedupe).
        let mut a = ForensicTallies::new();
        scan_units(&d, fctx, &marker, &wm, &mut a).unwrap();
        let mut b2 = ForensicTallies::new();
        scan_units(&d, fctx, &marker, &wm, &mut b2).unwrap();
        a.merge(b2);
        assert_eq!(a.len(), whole.len());
    }

    #[test]
    fn forensics_json_schema_fields() {
        let (d, queries, wm, key) = setup(50, 2);
        let b = binding();
        let cfg = config(2);
        let report = detect_forensic(&d, &input(&queries, &key, &wm), ctx(&b, &cfg)).unwrap();
        let json = report.forensics.as_ref().unwrap().to_json();
        for field in [
            "total_units",
            "selected_units",
            "clean_units",
            "suspect_units",
            "recovered_units",
            "unrecoverable_units",
            "suspect_records",
            "tampered",
            "records",
            "units",
        ] {
            assert!(json.get(field).is_some(), "missing field {field}");
        }
        let units = json.get("units").and_then(Json::as_array).unwrap();
        assert_eq!(units.len(), 50);
        assert!(units[0].get("unit").is_some());
        assert!(units[0].get("status").is_some());
    }
}
